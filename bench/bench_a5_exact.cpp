// A5 — exact-solver bounding ablation: node counts and wall time of the
// branch-and-bound under (a) the seed-equivalent configuration (DFS with
// combinatorial bounds only), (b) the dominance memo + stronger symmetry
// breaking, (c) the full LP-bounded search, and (d) the cold prove vs the
// dive-seeded prove (the dive-then-prove chain's payoff), plus the dive
// mode as the mid-size reference point. Documents the proven-optimal
// ceiling each configuration can close within the same node budget.

#include "bench_util.h"
#include "core/generators.h"
#include "exact/branch_bound.h"

using namespace setsched;

namespace {

struct Config {
  const char* name;
  ExactOptions options;
};

}  // namespace

int main() {
  bench::header("A5", "exact branch-and-bound: DFS-only vs LP-bounded nodes");

  const std::size_t seeds = bench::large_mode() ? 10 : 5;
  UnrelatedGenParams p;
  p.num_jobs = bench::large_mode() ? 16 : 14;
  p.num_machines = 4;
  p.num_classes = 5;

  ExactOptions seed_like;
  seed_like.use_lp_bounds = false;
  seed_like.memo_limit = 0;
  ExactOptions memo_only;
  memo_only.use_lp_bounds = false;
  ExactOptions lp_bounded;
  lp_bounded.lp_bound_depth = p.num_jobs;
  const Config configs[] = {{"dfs (seed-equivalent)", seed_like},
                            {"dfs + memo/symmetry", memo_only},
                            {"lp-bounded", lp_bounded}};

  Table table({"config", "seeds", "proven", "mean nodes", "max nodes",
               "mean lp probes", "mean ms"});
  for (const Config& config : configs) {
    std::vector<double> nodes, probes, times;
    std::size_t proven = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Instance inst = generate_unrelated(p, seed);
      Timer timer;
      const ExactResult r = solve_exact(inst, config.options);
      times.push_back(timer.elapsed_ms());
      nodes.push_back(static_cast<double>(r.nodes));
      probes.push_back(static_cast<double>(r.lp_bounds_used));
      if (r.proven_optimal) ++proven;
    }
    table.row()
        .add(config.name)
        .add(seeds)
        .add(proven)
        .add(summarize(nodes).mean, 0)
        .add(summarize(nodes).max, 0)
        .add(summarize(probes).mean, 1)
        .add(summarize(times).mean, 2);
  }
  table.print(std::cout);

  // Cold prove vs dive-seeded prove: the chain's point is that the dive's
  // incumbent makes the prove cutoff (and reduced-cost fixing) bite from
  // node 1, so the prove phase closes the same tree in a fraction of the
  // nodes. `chain` is the packaged dive-then-prove mode (its node count
  // includes the dive's beam states).
  Table chain_table({"phase", "seeds", "proven", "mean nodes", "mean ms"});
  {
    ExactOptions dive_opt;
    dive_opt.mode = ExactMode::kDive;
    ExactOptions chain_opt;
    chain_opt.mode = ExactMode::kDiveThenProve;
    std::vector<double> cold_nodes, cold_ms, seeded_nodes, seeded_ms,
        chain_nodes, chain_ms;
    std::size_t cold_proven = 0, seeded_proven = 0, chain_proven = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const Instance inst = generate_unrelated(p, seed);
      Timer cold_timer;
      const ExactResult cold = solve_exact(inst, lp_bounded);
      cold_ms.push_back(cold_timer.elapsed_ms());
      cold_nodes.push_back(static_cast<double>(cold.nodes));
      if (cold.proven_optimal) ++cold_proven;

      Timer seeded_timer;
      const ExactResult dive_r = solve_exact(inst, dive_opt);
      ExactOptions seeded_opt = lp_bounded;
      seeded_opt.initial_schedule = dive_r.schedule;
      const ExactResult seeded = solve_exact(inst, seeded_opt);
      seeded_ms.push_back(seeded_timer.elapsed_ms());
      seeded_nodes.push_back(static_cast<double>(seeded.nodes));
      if (seeded.proven_optimal) ++seeded_proven;

      Timer chain_timer;
      const ExactResult chain = solve_exact(inst, chain_opt);
      chain_ms.push_back(chain_timer.elapsed_ms());
      chain_nodes.push_back(static_cast<double>(chain.nodes));
      if (chain.proven_optimal) ++chain_proven;
    }
    chain_table.row()
        .add("cold prove")
        .add(seeds)
        .add(cold_proven)
        .add(summarize(cold_nodes).mean, 0)
        .add(summarize(cold_ms).mean, 2);
    chain_table.row()
        .add("dive-seeded prove")
        .add(seeds)
        .add(seeded_proven)
        .add(summarize(seeded_nodes).mean, 0)
        .add(summarize(seeded_ms).mean, 2);
    chain_table.row()
        .add("dive-then-prove")
        .add(seeds)
        .add(chain_proven)
        .add(summarize(chain_nodes).mean, 0)
        .add(summarize(chain_ms).mean, 2);
  }
  chain_table.print(std::cout);

  // Assignment bound vs config bound (branch-and-price): same prove search,
  // same instances, only the node relaxation differs. The config bound
  // prices configuration columns on top of the assignment probes, so its
  // tree can only shrink; the wall-time column shows what the pricing costs
  // to buy that reduction.
  Table bound_table({"bound", "seeds", "proven", "mean nodes", "max nodes",
                     "mean cg rounds", "mean ms"});
  {
    ExactOptions config_bounded = lp_bounded;
    config_bounded.bound = BoundMode::kConfig;
    config_bounded.cg_bound_depth = p.num_jobs;
    const Config bound_configs[] = {{"assignment", lp_bounded},
                                    {"config (branch-and-price)",
                                     config_bounded}};
    for (const Config& config : bound_configs) {
      std::vector<double> nodes, rounds, times;
      std::size_t proven = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const Instance inst = generate_unrelated(p, seed);
        Timer timer;
        const ExactResult r = solve_exact(inst, config.options);
        times.push_back(timer.elapsed_ms());
        nodes.push_back(static_cast<double>(r.nodes));
        rounds.push_back(static_cast<double>(r.cg_pricing_rounds));
        if (r.proven_optimal) ++proven;
      }
      bound_table.row()
          .add(config.name)
          .add(seeds)
          .add(proven)
          .add(summarize(nodes).mean, 0)
          .add(summarize(nodes).max, 0)
          .add(summarize(rounds).mean, 1)
          .add(summarize(times).mean, 2);
    }
  }
  bound_table.print(std::cout);

  // Mid-size dive reference: certified gap where proving is hopeless.
  UnrelatedGenParams mid;
  mid.num_jobs = bench::large_mode() ? 60 : 40;
  mid.num_machines = 6;
  mid.num_classes = 8;
  mid.eligibility = 0.85;
  mid.correlated = true;
  ExactOptions dive;
  dive.mode = ExactMode::kDive;
  dive.time_limit_s = bench::large_mode() ? 10.0 : 3.0;

  Table dive_table({"mode", "seeds", "mean gap", "max gap", "mean nodes",
                    "mean ms"});
  std::vector<double> gaps, dnodes, dtimes;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const Instance inst = generate_unrelated(mid, seed);
    Timer timer;
    const ExactResult r = solve_exact(inst, dive);
    dtimes.push_back(timer.elapsed_ms());
    gaps.push_back(r.gap);
    dnodes.push_back(static_cast<double>(r.nodes));
  }
  dive_table.row()
      .add("dive (mid-size)")
      .add(seeds)
      .add(summarize(gaps).mean, 4)
      .add(summarize(gaps).max, 4)
      .add(summarize(dnodes).mean, 0)
      .add(summarize(dtimes).mean, 2);
  dive_table.print(std::cout);
  return 0;
}
