// E4 — Theorem 3.5: the randomized SetCover reduction separates Yes- and
// No-instances by a Θ(log) factor in makespan. Yes-instances (planted cover
// of size t) admit schedules with ~K e t/m + 2 log2 m setups per machine;
// No-instances (all sets small) force >= K * cover_lb / m on any algorithm.

#include <cmath>

#include "bench_util.h"
#include "setcover/reduction.h"
#include "setcover/setcover.h"
#include "unrelated/greedy.h"

using namespace setsched;

int main() {
  bench::header("E4", "SetCover reduction: Yes/No makespan separation");
  Table table({"N", "m", "t", "K", "yes makespan", "yes greedy", "no lower bnd",
               "no greedy", "gap (no-lb / yes)", "theory r"});

  struct Config {
    std::size_t universe, m, t;
  };
  std::vector<Config> configs = {{32, 8, 2}, {64, 16, 4}, {128, 16, 4}};
  if (bench::large_mode()) {
    configs.push_back({256, 32, 8});
    configs.push_back({512, 32, 8});
  }

  for (const Config& cfg : configs) {
    // Yes-instance: planted cover of size t.
    const PlantedSetCover yes =
        generate_planted_setcover(cfg.universe, cfg.m, cfg.t, 1);
    ReductionParams params;
    params.seed = 2;
    const SetCoverReduction yes_red = reduce_setcover(yes.instance, cfg.t, params);
    const ScheduleResult yes_sched =
        schedule_from_cover(yes_red, yes.instance, yes.planted);
    const ScheduleResult yes_greedy = greedy_min_load(yes_red.instance);
    const std::size_t K = yes_red.num_classes();

    // No-instance: every set small => any cover needs >= 3t sets.
    const std::size_t max_set =
        std::max<std::size_t>(1, cfg.universe / (3 * cfg.t));
    const SetCoverInstance no_sc =
        generate_small_sets_setcover(cfg.universe, cfg.m, max_set, 3);
    ReductionParams no_params;
    no_params.num_classes = K;
    no_params.seed = 4;
    const SetCoverReduction no_red = reduce_setcover(no_sc, cfg.t, no_params);
    const double no_lb = reduction_makespan_lower_bound(
        K, cfg.m, min_cover_lower_bound(no_sc));
    const ScheduleResult no_greedy = greedy_min_load(no_red.instance);

    const double theory_r =
        2.0 * double(K) * std::exp(1.0) * double(cfg.t) / double(cfg.m) +
        2.0 * std::log2(double(cfg.m));

    table.row()
        .add(cfg.universe)
        .add(cfg.m)
        .add(cfg.t)
        .add(K)
        .add(yes_sched.makespan, 1)
        .add(yes_greedy.makespan, 1)
        .add(no_lb, 1)
        .add(no_greedy.makespan, 1)
        .add(no_lb / yes_sched.makespan, 2)
        .add(theory_r, 1);
  }
  table.print(std::cout);
  std::cout << "\n(Makespans on reduction instances count setups; the"
               " Yes-schedule stays below the No lower bound, and the gap is"
               " the hardness separation of Theorem 3.5.)\n";
  return 0;
}
