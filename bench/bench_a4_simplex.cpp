// A4 — micro-benchmarks of the LP substrate (google-benchmark): random
// dense LPs and the scheduling LPs the algorithms actually build.

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "lp/simplex.h"
#include "restricted/relaxed_lp.h"
#include "unrelated/assignment_lp.h"

using namespace setsched;

namespace {

lp::Model random_dense_lp(std::size_t vars, std::size_t cons, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  lp::Model m(lp::Objective::kMaximize);
  for (std::size_t j = 0; j < vars; ++j) {
    m.add_variable(0, 1, rng.next_real(0.1, 1.0));
  }
  for (std::size_t r = 0; r < cons; ++r) {
    std::vector<lp::Entry> row;
    for (std::size_t j = 0; j < vars; ++j) {
      row.push_back({j, rng.next_real(0.1, 1.0)});
    }
    m.add_constraint(std::move(row), lp::Sense::kLessEqual,
                     rng.next_real(1.0, double(vars) / 4));
  }
  return m;
}

void BM_SimplexDense(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  const auto model = random_dense_lp(vars, vars / 2, 42);
  for (auto _ : state) {
    const lp::Solution sol = lp::solve(model);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120);

void BM_AssignmentLp(benchmark::State& state) {
  UnrelatedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 7);
  const double T = unrelated_upper_bound(inst);
  for (auto _ : state) {
    const auto frac = solve_assignment_lp(inst, T);
    benchmark::DoNotOptimize(frac.has_value());
  }
}
BENCHMARK(BM_AssignmentLp)->Arg(16)->Arg(32)->Arg(64);

void BM_RelaxedRaLp(benchmark::State& state) {
  RestrictedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 8;
  p.num_classes = 12;
  p.min_eligible = 2;
  const Instance inst = generate_restricted_class_uniform(p, 9);
  const double T = relaxed_lp_floor(inst) * 1.3;
  for (auto _ : state) {
    const auto lp = solve_relaxed_lp(inst, T);
    benchmark::DoNotOptimize(lp.has_value());
  }
}
BENCHMARK(BM_RelaxedRaLp)->Arg(50)->Arg(150);

}  // namespace

BENCHMARK_MAIN();
