// A4 — micro-benchmarks of the LP substrate (google-benchmark): random
// dense LPs and the scheduling LPs the algorithms actually build, with the
// dense tableau pinned against the sparse revised simplex (candidate-list
// vs Devex pricing), the assignment-LP T-search measured cold (fresh model
// per probe) vs warm (one parametric model, basis chained across probes),
// and the exact solver's min-makespan relaxation measured as a chain of
// dual re-optimizations under pin changes.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/prng.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "lp/simplex.h"
#include "restricted/relaxed_lp.h"
#include "unrelated/assignment_lp.h"

using namespace setsched;

namespace {

/// 0 = tableau, 1 = revised + candidate pricing, 2 = revised + Devex,
/// 3 = dual-preferring revised + Devex.
lp::SimplexOptions algorithm_options(std::int64_t which) {
  lp::SimplexOptions options;
  switch (which) {
    case 0: options.algorithm = lp::SimplexAlgorithm::kTableau; break;
    case 1:
      options.algorithm = lp::SimplexAlgorithm::kRevised;
      options.pricing = lp::SimplexPricing::kCandidate;
      break;
    case 2:
      options.algorithm = lp::SimplexAlgorithm::kRevised;
      options.pricing = lp::SimplexPricing::kDevex;
      break;
    default:
      options.algorithm = lp::SimplexAlgorithm::kDual;
      options.pricing = lp::SimplexPricing::kDevex;
      break;
  }
  return options;
}

lp::Model random_dense_lp(std::size_t vars, std::size_t cons, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  lp::Model m(lp::Objective::kMaximize);
  for (std::size_t j = 0; j < vars; ++j) {
    m.add_variable(0, 1, rng.next_real(0.1, 1.0));
  }
  for (std::size_t r = 0; r < cons; ++r) {
    std::vector<lp::Entry> row;
    for (std::size_t j = 0; j < vars; ++j) {
      row.push_back({j, rng.next_real(0.1, 1.0)});
    }
    m.add_constraint(std::move(row), lp::Sense::kLessEqual,
                     rng.next_real(1.0, double(vars) / 4));
  }
  return m;
}

/// Args: (vars, algorithm_options code).
void BM_SimplexDense(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  const auto model = random_dense_lp(vars, vars / 2, 42);
  const lp::SimplexOptions options = algorithm_options(state.range(1));
  for (auto _ : state) {
    const lp::Solution sol = lp::solve(model, options);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexDense)
    ->Args({20, 0})->Args({60, 0})->Args({120, 0})
    ->Args({20, 1})->Args({60, 1})->Args({120, 1})
    ->Args({20, 2})->Args({60, 2})->Args({120, 2});

/// Args: (jobs, algorithm_options code). One solve at the upper bound.
void BM_AssignmentLp(benchmark::State& state) {
  UnrelatedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 7);
  const double T = unrelated_upper_bound(inst);
  AssignmentLpOptions options;
  options.simplex = algorithm_options(state.range(1));
  for (auto _ : state) {
    const auto frac = solve_assignment_lp(inst, T, options);
    benchmark::DoNotOptimize(frac.has_value());
  }
}
BENCHMARK(BM_AssignmentLp)
    ->Args({16, 0})->Args({32, 0})->Args({64, 0})
    ->Args({16, 1})->Args({32, 1})->Args({64, 1})
    ->Args({16, 2})->Args({32, 2})->Args({64, 2});

/// The exact solver's per-node workload: ONE min-makespan relaxation,
/// re-optimized under a rolling chain of pin/unpin mutations. Args: (jobs,
/// algorithm_options code, guard, incremental_duals) — code 3
/// (dual-preferring) is what LpBounder runs; code 1 approximates the PR 4
/// behavior (primal re-optimization). guard=1 runs the post-solve residual
/// audit on every probe (LpBounder's configuration; guard=0 quantifies the
/// disarmed safety net, which must be free). incremental_duals=0 recomputes
/// the duals with one BTRAN per dual pivot instead of the drift-guarded
/// y -= theta_d * rho update.
void BM_MakespanLpPinChain(benchmark::State& state) {
  UnrelatedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 4;
  p.num_classes = 5;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, 13);
  const double hi = unrelated_upper_bound(inst);
  AssignmentLpOptions options;
  options.makespan_objective = true;
  options.simplex = algorithm_options(state.range(1));
  options.simplex.guard = state.range(2) != 0;
  options.simplex.incremental_duals = state.range(3) != 0;
  // Pin targets must be pairs the model actually carries — eligible AND
  // within the proc <= T_build filter — or run_solve short-circuits on
  // impossible_pins_ and the benchmark times an early return instead of
  // the simplex: rotate each job through its admissible-machine list.
  const std::size_t prefix = std::min<std::size_t>(8, inst.num_jobs());
  std::vector<MachineId> pin_target(prefix);
  for (JobId j = 0; j < prefix; ++j) {
    std::vector<MachineId> admissible;
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      if (inst.eligible(i, j) && inst.proc(i, j) <= hi) admissible.push_back(i);
    }
    pin_target[j] = admissible[j % admissible.size()];
  }
  for (auto _ : state) {
    ParametricAssignmentLp lp(inst, hi, options);
    benchmark::DoNotOptimize(lp.min_makespan(hi));
    // A DFS-flavored pin walk: pin a prefix of jobs, probing after every
    // mutation, then unwind.
    for (JobId j = 0; j < prefix; ++j) {
      lp.pin_job(j, pin_target[j]);
      benchmark::DoNotOptimize(lp.min_makespan(hi));
    }
    for (JobId j = prefix; j-- > 0;) {
      lp.unpin_job(j);
      benchmark::DoNotOptimize(lp.min_makespan(hi));
    }
  }
}
BENCHMARK(BM_MakespanLpPinChain)
    ->Args({32, 1, 0, 1})->Args({32, 3, 0, 1})
    ->Args({64, 1, 0, 1})->Args({64, 3, 0, 1})
    // Safety-net cost on the LpBounder configuration: audited every probe
    // vs disarmed, and the incremental dual update vs per-pivot BTRAN.
    ->Args({64, 3, 1, 1})->Args({64, 3, 0, 0});

/// The geometric T-search solved the pre-PR-3 way: a fresh model and a cold
/// revised solve per probe (no warm starting, no re-parameterization).
void BM_AssignmentLpSearchCold(benchmark::State& state) {
  UnrelatedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 4;
  p.num_classes = 5;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, 11);
  for (auto _ : state) {
    double lo = std::max(assignment_lp_floor(inst), unrelated_lower_bound(inst));
    double hi = unrelated_upper_bound(inst);
    lo = std::min(lo, hi);
    auto best = solve_assignment_lp(inst, hi);
    while (hi / lo > 1.05) {
      const double mid = std::sqrt(lo * hi);
      if (auto sol = solve_assignment_lp(inst, mid)) {
        hi = mid;
        best = std::move(sol);
      } else {
        lo = mid;
      }
    }
    benchmark::DoNotOptimize(best.has_value());
  }
}
BENCHMARK(BM_AssignmentLpSearchCold)->Arg(32)->Arg(64)->Arg(120);

/// The same search through search_assignment_lp: model built once at hi,
/// every probe warm-started from the previous basis.
void BM_AssignmentLpSearchWarm(benchmark::State& state) {
  UnrelatedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 4;
  p.num_classes = 5;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, 11);
  for (auto _ : state) {
    const LpSearchResult r = search_assignment_lp(inst, 0.05);
    benchmark::DoNotOptimize(r.feasible_T);
  }
}
BENCHMARK(BM_AssignmentLpSearchWarm)->Arg(32)->Arg(64)->Arg(120);

void BM_RelaxedRaLp(benchmark::State& state) {
  RestrictedGenParams p;
  p.num_jobs = static_cast<std::size_t>(state.range(0));
  p.num_machines = 8;
  p.num_classes = 12;
  p.min_eligible = 2;
  const Instance inst = generate_restricted_class_uniform(p, 9);
  const double T = relaxed_lp_floor(inst) * 1.3;
  for (auto _ : state) {
    const auto lp = solve_relaxed_lp(inst, T);
    benchmark::DoNotOptimize(lp.has_value());
  }
}
BENCHMARK(BM_RelaxedRaLp)->Arg(50)->Arg(150);

}  // namespace

BENCHMARK_MAIN();
