// A1 — ablation: the rounding's repetition constant c. The paper runs
// c log n sampling rounds; fewer rounds leave jobs to the argmin-p fallback
// (hurting the guarantee), more rounds cost time without gain.

#include "bench_util.h"
#include "core/generators.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  bench::header("A1", "rounding rounds c ablation");
  Table table({"c", "rounds", "seeds", "mean makespan vs LP-lb",
               "mean fallback jobs", "max fallback jobs"});

  // Random unrelated instances with partial eligibility: their tight-T LP
  // solutions are genuinely fractional, so the number of sampling rounds
  // matters (planted instances have near-integral LP optima and would make
  // this ablation flat).
  UnrelatedGenParams p;
  p.num_jobs = bench::large_mode() ? 128 : 48;
  p.num_machines = 6;
  p.num_classes = 12;
  p.eligibility = 0.7;

  const std::size_t seeds = bench::large_mode() ? 10 : 5;
  for (const double c : {0.25, 0.5, 1.0, 2.0, 3.0, 5.0}) {
    std::vector<double> ratio, fallback;
    std::size_t rounds = 0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const Instance inst = generate_unrelated(p, seed);
      RoundingOptions opt;
      opt.c = c;
      opt.seed = seed + 7;
      opt.search_precision = 0.1;
      const RoundingResult r = randomized_rounding(inst, opt);
      ratio.push_back(r.makespan / r.lp_lower_bound);
      fallback.push_back(static_cast<double>(r.fallback_jobs));
      rounds = r.rounds;
    }
    table.row()
        .add(c, 2)
        .add(rounds)
        .add(seeds)
        .add(summarize(ratio).mean)
        .add(summarize(fallback).mean, 1)
        .add(summarize(fallback).max, 0);
  }
  table.print(std::cout);
  return 0;
}
