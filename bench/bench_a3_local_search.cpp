// A3 — ablation: local-search post-pass on top of every algorithm's output.
// Documents how much of the approximation slack is recoverable by simple
// move/swap/class-batch improvements.

#include "bench_util.h"
#include "core/generators.h"
#include "improve/local_search.h"
#include "restricted/approx.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  bench::header("A3", "local-search post-pass on each algorithm");
  Table table({"start", "seeds", "mean before", "mean after", "mean gain %",
               "mean moves"});

  const std::size_t seeds = bench::large_mode() ? 12 : 5;

  // Unrelated instances for the general algorithms.
  UnrelatedGenParams up;
  up.num_jobs = bench::large_mode() ? 80 : 40;
  up.num_machines = 6;
  up.num_classes = 8;

  struct Row {
    const char* name;
    std::vector<double> before, after, moves;
  };
  Row rows[] = {{"greedy min-load", {}, {}, {}},
                {"greedy class-batch", {}, {}, {}},
                {"randomized rounding", {}, {}, {}},
                {"2-approx (restricted)", {}, {}, {}}};

  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const Instance inst = generate_unrelated(up, seed);
    const auto run = [&](Row& row, const Schedule& start) {
      const double before = makespan(inst, start);
      const LocalSearchResult ls = local_search(inst, start);
      row.before.push_back(before);
      row.after.push_back(ls.makespan);
      row.moves.push_back(static_cast<double>(ls.moves_applied));
    };
    run(rows[0], greedy_min_load(inst).schedule);
    run(rows[1], greedy_class_batch(inst).schedule);
    RoundingOptions ropt;
    ropt.seed = seed;
    ropt.search_precision = 0.1;
    run(rows[2], randomized_rounding(inst, ropt).schedule);

    // Restricted family for the 2-approx.
    RestrictedGenParams rp;
    rp.num_jobs = up.num_jobs;
    rp.num_machines = up.num_machines;
    rp.num_classes = up.num_classes;
    rp.min_eligible = 2;
    const Instance rinst = generate_restricted_class_uniform(rp, seed);
    const ConstantApproxResult two = two_approx_restricted(rinst, 0.05);
    const double before = two.makespan;
    const LocalSearchResult ls = local_search(rinst, two.schedule);
    rows[3].before.push_back(before);
    rows[3].after.push_back(ls.makespan);
    rows[3].moves.push_back(static_cast<double>(ls.moves_applied));
  }

  for (const Row& row : rows) {
    const double before = summarize(row.before).mean;
    const double after = summarize(row.after).mean;
    table.row()
        .add(row.name)
        .add(row.before.size())
        .add(before, 1)
        .add(after, 1)
        .add(100.0 * (before - after) / before, 1)
        .add(summarize(row.moves).mean, 1);
  }
  table.print(std::cout);
  return 0;
}
