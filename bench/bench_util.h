#pragma once

// Shared helpers for the experiment harness. Every bench binary prints its
// experiment's table(s) with small default presets so the whole bench
// directory can be executed in one sweep; SETSCHED_BENCH_LARGE=1 switches to
// the full parameter grids reported in EXPERIMENTS.md.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace setsched::bench {

inline bool large_mode() {
  const char* env = std::getenv("SETSCHED_BENCH_LARGE");
  return env != nullptr && std::string(env) != "0";
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title
            << (large_mode() ? "  [large]" : "  [small preset]") << " ===\n";
}

}  // namespace setsched::bench
