// F1 — Figure 1 of the paper: the speed-group structure behind the PTAS.
// Prints, for a representative instance and makespan guess, the group
// occupancy (machines per group with the two-group overlap) and, per class,
// its core group and the core/fringe split of its jobs — the quantities
// Fig. 1 illustrates on the speed axis.

#include <algorithm>

#include "bench_util.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "uniform/groups.h"
#include "uniform/simplify.h"

using namespace setsched;

int main() {
  bench::header("F1", "speed groups, native and core groups (paper Fig. 1)");

  UniformGenParams p;
  p.num_jobs = 40;
  p.num_machines = 10;
  p.num_classes = 6;
  p.profile = SpeedProfile::kGeometric;
  p.max_speed_ratio = bench::large_mode() ? 4096.0 : 256.0;
  const UniformInstance raw = generate_uniform(p, 11);

  const double eps = 0.5;
  const double T = uniform_lower_bound(raw) * 2.0;
  const SimplifiedInstance simplified = simplify_instance(raw, T, eps);
  const UniformInstance& inst = simplified.instance;
  const double vmin =
      *std::min_element(inst.speed.begin(), inst.speed.end());
  const GroupStructure groups(eps, vmin, T);

  std::cout << "eps = " << eps << ", gamma = " << groups.gamma()
            << ", T = " << T << ", machines = " << inst.num_machines() << "\n\n";

  // Machines per group (each machine in exactly two groups).
  int max_group = 0;
  for (const double v : inst.speed) {
    max_group = std::max(max_group, groups.machine_lower_group(v));
  }
  Table occupancy({"group g", "speed range [v_g, v^g)", "machines (overlap)"});
  for (int g = 0; g <= max_group; ++g) {
    std::size_t count = 0;
    for (const double v : inst.speed) count += groups.machine_in_group(v, g);
    std::string range = "[";
    range += format_double(groups.lower_boundary(g), 3);
    range += ", ";
    range += format_double(groups.lower_boundary(g + 2), 3);
    range += ")";
    occupancy.row().add(static_cast<long long>(g)).add(range).add(count);
  }
  occupancy.print(std::cout);

  // Classes: core group and job split (the braces/intervals of Fig. 1).
  std::cout << "\n";
  Table classes({"class", "setup size", "core group", "core jobs",
                 "fringe jobs", "native groups of fringe jobs"});
  const auto by_class = inst.jobs_by_class();
  for (ClassId k = 0; k < inst.num_classes(); ++k) {
    std::size_t core = 0, fringe = 0;
    std::string natives;
    for (const JobId j : by_class[k]) {
      if (groups.is_fringe_job(inst.job_size[j], inst.setup_size[k])) {
        ++fringe;
        if (!natives.empty()) natives += ' ';
        natives += std::to_string(groups.native_group(inst.job_size[j]));
      } else {
        ++core;
      }
    }
    classes.row()
        .add(static_cast<std::size_t>(k))
        .add(inst.setup_size[k], 2)
        .add(static_cast<long long>(groups.core_group(inst.setup_size[k])))
        .add(core)
        .add(fringe)
        .add(natives.empty() ? "-" : natives);
  }
  classes.print(std::cout);
  return 0;
}
