// E5 — Theorem 3.10: the pseudoforest rounding is a 2-approximation for
// restricted assignment with class-uniform restrictions. Measured ratios
// against the exact optimum (small) and the LP window (all sizes).

#include "bench_util.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "restricted/approx.h"
#include "unrelated/greedy.h"

using namespace setsched;

int main() {
  bench::header("E5", "Theorem 3.10 2-approx on class-uniform restrictions");
  Table table({"n", "m", "K", "seeds", "mean vs opt", "max vs opt",
               "mean vs LP-lb", "max vs lp_T", "greedy vs opt", "bound"});

  struct Config {
    std::size_t n, m, k;
    bool exact;
  };
  std::vector<Config> configs = {{10, 3, 3, true}, {12, 4, 4, true},
                                 {60, 8, 10, false}};
  if (bench::large_mode()) {
    configs.push_back({150, 12, 20, false});
    configs.push_back({400, 16, 40, false});
  }
  const std::size_t seeds = bench::large_mode() ? 20 : 8;

  for (const Config& cfg : configs) {
    RestrictedGenParams p;
    p.num_jobs = cfg.n;
    p.num_machines = cfg.m;
    p.num_classes = cfg.k;
    p.min_eligible = 2;
    p.max_eligible = std::max<std::size_t>(3, cfg.m / 2);

    std::vector<double> vs_opt, vs_lb, vs_t, greedy_vs;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const Instance inst = generate_restricted_class_uniform(p, seed);
      const ConstantApproxResult r = two_approx_restricted(inst, 0.02);
      vs_lb.push_back(r.makespan / r.lp_lower_bound);
      vs_t.push_back(r.makespan / r.lp_T);
      if (cfg.exact) {
        const ExactResult opt = solve_exact(inst);
        if (!opt.proven_optimal) continue;
        vs_opt.push_back(r.makespan / opt.makespan);
        greedy_vs.push_back(greedy_min_load(inst).makespan / opt.makespan);
      }
    }
    table.row()
        .add(cfg.n)
        .add(cfg.m)
        .add(cfg.k)
        .add(seeds)
        .add(vs_opt.empty() ? std::string("-") : format_double(summarize(vs_opt).mean))
        .add(vs_opt.empty() ? std::string("-") : format_double(summarize(vs_opt).max))
        .add(summarize(vs_lb).mean)
        .add(summarize(vs_t).max)
        .add(greedy_vs.empty() ? std::string("-")
                               : format_double(summarize(greedy_vs).mean))
        .add(2.0, 1);
  }
  table.print(std::cout);
  std::cout << "\n(max vs lp_T must never exceed 2.0 — that is the proven"
               " guarantee; vs-optimum ratios are much smaller in practice.)\n";
  return 0;
}
