// E2 — Section 2.1 PTAS: approximation quality and dynamic-program cost as
// the accuracy ε shrinks. Ratios are measured against the exact optimum;
// DP states and probe counts document the (nmK)^poly(1/eps) growth.

#include "bench_util.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "uniform/lpt.h"
#include "uniform/ptas.h"

using namespace setsched;

int main() {
  bench::header("E2", "uniform-machines PTAS: ratio and DP cost vs epsilon");
  Table table({"eps", "n", "m", "K", "seeds", "mean ratio", "max ratio",
               "mean LPT ratio", "max DP states", "mean probes", "mean ms",
               "limited"});

  const std::size_t seeds = bench::large_mode() ? 16 : 8;
  struct Size {
    std::size_t n, m, k;
  };
  const Size sizes[] = {{8, 3, 2}, {10, 3, 3}};
  const double epsilons[] = {0.5, 0.25};

  for (const double eps : epsilons) {
    for (const Size& size : sizes) {
      UniformGenParams p;
      p.num_jobs = size.n;
      p.num_machines = size.m;
      p.num_classes = size.k;
      p.max_speed_ratio = 4.0;

      std::vector<double> ratios, lpt_ratios, times, probes;
      std::size_t max_states = 0;
      std::size_t limited = 0;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        const UniformInstance inst = generate_uniform(p, seed);
        const ExactResult opt = solve_exact(inst);
        if (!opt.proven_optimal) continue;
        PtasOptions popt;
        popt.epsilon = eps;
        popt.max_states = bench::large_mode() ? 2'000'000 : 400'000;
        Timer timer;
        const PtasResult r = ptas_uniform(inst, popt);
        times.push_back(timer.elapsed_ms());
        ratios.push_back(r.makespan / opt.makespan);
        lpt_ratios.push_back(lpt_with_placeholders(inst).makespan / opt.makespan);
        probes.push_back(static_cast<double>(r.probes));
        max_states = std::max(max_states, r.max_dp_states);
        limited += r.resource_limited;
      }
      const Summary s = summarize(ratios);
      table.row()
          .add(eps, 4)
          .add(size.n)
          .add(size.m)
          .add(size.k)
          .add(s.count)
          .add(s.mean)
          .add(s.max)
          .add(summarize(lpt_ratios).mean)
          .add(max_states)
          .add(summarize(probes).mean, 1)
          .add(summarize(times).mean, 1)
          .add(limited);
    }
  }
  table.print(std::cout);
  std::cout << "\n(The PTAS's DP is meant for small instances; its guarantee"
               " is (1+O(eps))OPT while LPT's is 4.74 OPT.)\n";
  return 0;
}
