// A2 — ablation: direct assignment LP vs configuration-LP column generation
// as the fractional-solution oracle of Theorem 3.3. The direct LP has
// Θ(n m) coupling rows; the configuration LP trades exactness (pricing on a
// scaled grid) for scalability.

#include "bench_util.h"
#include "colgen/config_lp.h"
#include "core/generators.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  bench::header("A2", "direct assignment LP vs configuration LP");
  Table table({"n", "m", "oracle", "T*", "vs planted", "makespan", "time ms",
               "LP solves"});

  struct Config {
    std::size_t n, m, k;
    bool run_direct;
  };
  std::vector<Config> configs = {{24, 4, 6, true}, {48, 6, 10, true},
                                 {96, 8, 12, true}};
  if (bench::large_mode()) {
    configs.push_back({192, 10, 16, false});
    configs.push_back({384, 12, 24, false});
  }
  ThreadPool pool;

  for (const Config& cfg : configs) {
    PlantedGenParams p;
    p.num_jobs = cfg.n;
    p.num_machines = cfg.m;
    p.num_classes = cfg.k;
    const PlantedUnrelated planted = generate_planted_unrelated(p, 3);

    RoundingOptions ropt;
    ropt.seed = 5;
    ropt.trials = 2;
    ropt.search_precision = 0.08;
    ropt.pool = &pool;

    if (cfg.run_direct) {
      Timer t;
      const RoundingResult direct = randomized_rounding(planted.instance, ropt);
      table.row()
          .add(cfg.n)
          .add(cfg.m)
          .add("direct")
          .add(direct.lp_T, 1)
          .add(direct.makespan / planted.planted_makespan)
          .add(direct.makespan, 1)
          .add(t.elapsed_ms(), 1)
          .add(direct.lp_solves);
    }
    {
      ConfigLpOptions copt;
      copt.pool = &pool;
      copt.grid = 1024;
      Timer t;
      const RoundingResult via =
          randomized_rounding_config(planted.instance, ropt, copt);
      table.row()
          .add(cfg.n)
          .add(cfg.m)
          .add("colgen")
          .add(via.lp_T, 1)
          .add(via.makespan / planted.planted_makespan)
          .add(via.makespan, 1)
          .add(t.elapsed_ms(), 1)
          .add(via.lp_solves);
    }
  }
  table.print(std::cout);
  return 0;
}
