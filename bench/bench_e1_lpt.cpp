// E1 — Lemma 2.1: the setup-aware LPT is a 3(1+1/sqrt(3)) ~= 4.74-approx on
// uniformly related machines. Measures its ratio against the exact optimum
// (small instances) and the combinatorial lower bound (large instances),
// next to plain LPT, across instance families.

#include "bench_util.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "uniform/lpt.h"

using namespace setsched;

namespace {

struct Family {
  const char* name;
  UniformGenParams params;
};

void ratio_vs_exact() {
  Table table({"family", "n", "m", "K", "seeds", "mean ratio", "max ratio",
               "plain-LPT max", "bound"});
  std::vector<Family> families;
  {
    UniformGenParams base;
    base.num_jobs = 10;
    base.num_machines = 3;
    base.num_classes = 3;
    families.push_back({"balanced", base});
    Family setup_heavy{"setup-heavy", base};
    setup_heavy.params.min_setup = 30;
    setup_heavy.params.max_setup = 80;
    setup_heavy.params.min_job_size = 1;
    setup_heavy.params.max_job_size = 15;
    families.push_back(setup_heavy);
    Family tiny_jobs{"tiny-jobs", base};
    tiny_jobs.params.min_job_size = 1;
    tiny_jobs.params.max_job_size = 4;
    tiny_jobs.params.min_setup = 10;
    tiny_jobs.params.max_setup = 20;
    families.push_back(tiny_jobs);
    Family identical{"identical-machines", base};
    identical.params.profile = SpeedProfile::kIdentical;
    families.push_back(identical);
  }
  const std::size_t seeds = bench::large_mode() ? 40 : 12;

  for (const Family& family : families) {
    std::vector<double> ratios, plain_ratios;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const UniformInstance inst = generate_uniform(family.params, seed);
      const ExactResult opt = solve_exact(inst);
      if (!opt.proven_optimal) continue;
      ratios.push_back(lpt_with_placeholders(inst).makespan / opt.makespan);
      plain_ratios.push_back(lpt_uniform(inst).makespan / opt.makespan);
    }
    const Summary s = summarize(ratios);
    const Summary p = summarize(plain_ratios);
    table.row()
        .add(family.name)
        .add(family.params.num_jobs)
        .add(family.params.num_machines)
        .add(family.params.num_classes)
        .add(s.count)
        .add(s.mean)
        .add(s.max)
        .add(p.max)
        .add(kLptSetupFactor);
  }
  table.print(std::cout);
}

void ratio_vs_lower_bound() {
  Table table({"n", "m", "K", "seeds", "mean vs LB", "max vs LB", "bound"});
  const std::size_t seeds = bench::large_mode() ? 20 : 6;
  const std::size_t sizes[] = {100, 300, bench::large_mode() ? 1000u : 600u};
  for (const std::size_t n : sizes) {
    UniformGenParams p;
    p.num_jobs = n;
    p.num_machines = 8;
    p.num_classes = 12;
    std::vector<double> ratios;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const UniformInstance inst = generate_uniform(p, seed + 100);
      ratios.push_back(lpt_with_placeholders(inst).makespan /
                       uniform_lower_bound(inst));
    }
    const Summary s = summarize(ratios);
    table.row()
        .add(n)
        .add(p.num_machines)
        .add(p.num_classes)
        .add(s.count)
        .add(s.mean)
        .add(s.max)
        .add(kLptSetupFactor);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::header("E1", "Lemma 2.1 setup-aware LPT approximation ratios");
  std::cout << "\nSmall instances (ratio vs exact optimum):\n";
  ratio_vs_exact();
  std::cout << "\nLarge instances (ratio vs combinatorial lower bound):\n";
  ratio_vs_lower_bound();
  return 0;
}
