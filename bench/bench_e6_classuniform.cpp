// E6 — Theorem 3.11: the modified pseudoforest rounding is a
// 3-approximation for unrelated machines with class-uniform processing
// times (and the problem is APX-hard: no (2-ε)-approx unless P=NP).

#include "bench_util.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "restricted/approx.h"
#include "unrelated/greedy.h"

using namespace setsched;

int main() {
  bench::header("E6", "Theorem 3.11 3-approx on class-uniform processing");
  Table table({"n", "m", "K", "seeds", "mean vs opt", "max vs opt",
               "mean vs LP-lb", "max vs lp_T", "bound"});

  struct Config {
    std::size_t n, m, k;
    bool exact;
  };
  std::vector<Config> configs = {{10, 3, 3, true}, {12, 4, 4, true},
                                 {60, 8, 10, false}};
  if (bench::large_mode()) {
    configs.push_back({150, 12, 20, false});
    configs.push_back({400, 16, 40, false});
  }
  const std::size_t seeds = bench::large_mode() ? 20 : 8;

  for (const Config& cfg : configs) {
    ClassUniformGenParams p;
    p.num_jobs = cfg.n;
    p.num_machines = cfg.m;
    p.num_classes = cfg.k;

    std::vector<double> vs_opt, vs_lb, vs_t;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      const Instance inst = generate_class_uniform_processing(p, seed);
      const ConstantApproxResult r = three_approx_class_uniform(inst, 0.02);
      vs_lb.push_back(r.makespan / r.lp_lower_bound);
      vs_t.push_back(r.makespan / r.lp_T);
      if (cfg.exact) {
        const ExactResult opt = solve_exact(inst);
        if (!opt.proven_optimal) continue;
        vs_opt.push_back(r.makespan / opt.makespan);
      }
    }
    table.row()
        .add(cfg.n)
        .add(cfg.m)
        .add(cfg.k)
        .add(seeds)
        .add(vs_opt.empty() ? std::string("-") : format_double(summarize(vs_opt).mean))
        .add(vs_opt.empty() ? std::string("-") : format_double(summarize(vs_opt).max))
        .add(summarize(vs_lb).mean)
        .add(summarize(vs_t).max)
        .add(3.0, 1);
  }
  table.print(std::cout);
  std::cout << "\n(max vs lp_T must never exceed 3.0 — the proven guarantee.)\n";
  return 0;
}
