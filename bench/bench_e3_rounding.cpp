// E3 — Theorem 3.3: randomized rounding of the assignment LP is an
// O(log n + log m)-approximation on unrelated machines. Measures the ratio
// against the planted schedule's makespan and the LP lower bound as n and m
// grow; direct LP for moderate sizes, configuration-LP column generation for
// the larger ones; greedy baselines for context.

#include <cmath>

#include "bench_util.h"
#include "colgen/config_lp.h"
#include "core/generators.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  bench::header("E3", "randomized rounding: growth with n and m");
  Table table({"n", "m", "K", "LP", "seeds", "mean vs planted", "max vs planted",
               "mean vs LP-lb", "greedy vs planted", "log2(n)+log2(m)",
               "fallback jobs"});

  struct Config {
    std::size_t n, m, k;
    bool use_colgen;
  };
  std::vector<Config> configs = {{32, 4, 8, false},
                                 {64, 6, 12, false},
                                 {128, 8, 16, true}};
  if (bench::large_mode()) {
    configs.push_back({256, 12, 24, true});
    configs.push_back({512, 16, 32, true});
  }
  const std::size_t seeds = bench::large_mode() ? 8 : 3;
  ThreadPool pool;

  for (const Config& cfg : configs) {
    std::vector<double> vs_planted, vs_lp, greedy_ratio;
    std::size_t fallback = 0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      PlantedGenParams p;
      p.num_jobs = cfg.n;
      p.num_machines = cfg.m;
      p.num_classes = cfg.k;
      const PlantedUnrelated planted = generate_planted_unrelated(p, seed);

      RoundingOptions ropt;
      ropt.seed = seed * 17 + 1;
      ropt.trials = 3;
      ropt.pool = &pool;
      ropt.search_precision = 0.08;

      RoundingResult r;
      if (cfg.use_colgen) {
        ConfigLpOptions copt;
        copt.pool = &pool;
        copt.grid = 1024;
        r = randomized_rounding_config(planted.instance, ropt, copt);
      } else {
        r = randomized_rounding(planted.instance, ropt);
      }
      vs_planted.push_back(r.makespan / planted.planted_makespan);
      vs_lp.push_back(r.makespan / r.lp_lower_bound);
      fallback += r.fallback_jobs;
      greedy_ratio.push_back(greedy_min_load(planted.instance).makespan /
                             planted.planted_makespan);
    }
    table.row()
        .add(cfg.n)
        .add(cfg.m)
        .add(cfg.k)
        .add(cfg.use_colgen ? "colgen" : "direct")
        .add(vs_planted.size())
        .add(summarize(vs_planted).mean)
        .add(summarize(vs_planted).max)
        .add(summarize(vs_lp).mean)
        .add(summarize(greedy_ratio).mean)
        .add(std::log2(double(cfg.n)) + std::log2(double(cfg.m)), 2)
        .add(fallback);
  }
  table.print(std::cout);
  std::cout << "\n(Theory: the ratio grows at most like log2(n)+log2(m); the"
               " measured ratios should stay far below that envelope and"
               " grow slowly.)\n";
  return 0;
}
