#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace setsched::lp {
namespace {

TEST(Simplex, SimpleMaximize) {
  // max 3x + 2y  s.t. x + y <= 4, x <= 2, x,y >= 0  ->  x=2, y=2, obj=10
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, kInfinity, 3);
  const auto y = m.add_variable(0, kInfinity, 2);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 4);
  m.add_constraint({{x, 1}}, Sense::kLessEqual, 2);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 10.0, 1e-7);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-7);
}

TEST(Simplex, SimpleMinimizeWithEquality) {
  // min x + 2y  s.t. x + y = 3, y >= 1  ->  x=2, y=1, obj=4
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, kInfinity, 1);
  const auto y = m.add_variable(0, kInfinity, 2);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kEqual, 3);
  m.add_constraint({{y, 1}}, Sense::kGreaterEqual, 1);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, kInfinity, 1);
  m.add_constraint({{x, 1}}, Sense::kLessEqual, 1);
  m.add_constraint({{x, 1}}, Sense::kGreaterEqual, 2);
  const Solution sol = solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleBounds) {
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, 1, 0);
  const auto y = m.add_variable(0, 1, 0);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 3);
  const Solution sol = solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, kInfinity, 1);
  const auto y = m.add_variable(0, kInfinity, 0);
  m.add_constraint({{x, 1}, {y, -1}}, Sense::kLessEqual, 1);
  const Solution sol = solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Simplex, UsesVariableUpperBounds) {
  // max x + y with x,y in [0,1], x + y <= 1.5  ->  obj 1.5
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, 1, 1);
  const auto y = m.add_variable(0, 1, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 1.5);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.5, 1e-7);
}

TEST(Simplex, BoundFlipOnly) {
  // max x + y, both in [0,2], single loose constraint: both at upper bounds.
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, 2, 1);
  const auto y = m.add_variable(0, 2, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 100);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-7);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + y, x >= 2, y in [1, 5], x + y >= 4 -> x=2, y=2? No: y can be 2.
  // Optimal: x=2, y=2, obj=4 (any split with x+y=4, x>=2, y>=1; cost equal).
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(2, kInfinity, 1);
  const auto y = m.add_variable(1, 5, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 4);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
  EXPECT_GE(sol.x[x], 2.0 - 1e-9);
  EXPECT_GE(sol.x[y], 1.0 - 1e-9);
}

TEST(Simplex, FeasibilityProblemZeroObjective) {
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, 1, 0);
  const auto y = m.add_variable(0, 1, 0);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kEqual, 1);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[x] + sol.x[y], 1.0, 1e-7);
  EXPECT_LE(m.max_violation(sol.x), 1e-7);
}

TEST(Simplex, KnownDuals) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic example).
  // Optimum x=2, y=6, obj=36; duals y1=0, y2=1.5, y3=1.
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, kInfinity, 3);
  const auto y = m.add_variable(0, kInfinity, 5);
  m.add_constraint({{x, 1}}, Sense::kLessEqual, 4);
  m.add_constraint({{y, 2}}, Sense::kLessEqual, 12);
  m.add_constraint({{x, 3}, {y, 2}}, Sense::kLessEqual, 18);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  ASSERT_EQ(sol.duals.size(), 3u);
  EXPECT_NEAR(sol.duals[0], 0.0, 1e-7);
  EXPECT_NEAR(sol.duals[1], 1.5, 1e-7);
  EXPECT_NEAR(sol.duals[2], 1.0, 1e-7);
  // Strong duality: b^T y == objective.
  const double dual_obj =
      4 * sol.duals[0] + 12 * sol.duals[1] + 18 * sol.duals[2];
  EXPECT_NEAR(dual_obj, sol.objective, 1e-6);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Classic cycling-prone LP (Beale); Bland fallback must terminate.
  Model m(Objective::kMinimize);
  const auto x1 = m.add_variable(0, kInfinity, -0.75);
  const auto x2 = m.add_variable(0, kInfinity, 150);
  const auto x3 = m.add_variable(0, kInfinity, -0.02);
  const auto x4 = m.add_variable(0, kInfinity, 6);
  m.add_constraint({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}},
                   Sense::kLessEqual, 0);
  m.add_constraint({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}},
                   Sense::kLessEqual, 0);
  m.add_constraint({{x3, 1}}, Sense::kLessEqual, 1);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Simplex, MergesDuplicateEntries) {
  Model m(Objective::kMaximize);
  const auto x = m.add_variable(0, kInfinity, 1);
  // x + x <= 4  ->  x <= 2
  m.add_constraint({{x, 1}, {x, 1}}, Sense::kLessEqual, 4);
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.x[x], 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, kInfinity, 1);
  const auto y = m.add_variable(0, kInfinity, 1);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kEqual, 2);
  m.add_constraint({{x, 2}, {y, 2}}, Sense::kEqual, 4);  // redundant copy
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Differential testing against brute-force vertex enumeration.
// ---------------------------------------------------------------------------

/// Solves square linear systems by Gaussian elimination with partial
/// pivoting; returns false if (near-)singular.
bool solve_square(std::vector<std::vector<double>> a, std::vector<double> b,
                  std::vector<double>& out) {
  const std::size_t n = b.size();
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t piv = c;
    for (std::size_t r = c + 1; r < n; ++r) {
      if (std::abs(a[r][c]) > std::abs(a[piv][c])) piv = r;
    }
    if (std::abs(a[piv][c]) < 1e-9) return false;
    std::swap(a[piv], a[c]);
    std::swap(b[piv], b[c]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == c) continue;
      const double f = a[r][c] / a[c][c];
      for (std::size_t cc = c; cc < n; ++cc) a[r][cc] -= f * a[c][cc];
      b[r] -= f * b[c];
    }
  }
  out.resize(n);
  for (std::size_t c = 0; c < n; ++c) out[c] = b[c] / a[c][c];
  return true;
}

/// Brute-force LP optimum over a bounded polytope by enumerating all
/// candidate vertices (intersections of #vars tight hyperplanes drawn from
/// constraints and box bounds). Only valid for small dimensions.
double brute_force_lp(const Model& m, bool& feasible) {
  const std::size_t n = m.num_variables();
  // Hyperplanes: every constraint as equality + x_j = l_j + x_j = u_j.
  std::vector<std::vector<double>> planes;
  std::vector<double> rhs;
  for (std::size_t r = 0; r < m.num_constraints(); ++r) {
    std::vector<double> row(n, 0.0);
    for (const auto& e : m.row(r)) row[e.col] += e.value;
    planes.push_back(row);
    rhs.push_back(m.rhs(r));
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> row(n, 0.0);
    row[j] = 1.0;
    planes.push_back(row);
    rhs.push_back(m.lower(j));
    if (std::isfinite(m.upper(j))) {
      planes.push_back(row);
      rhs.push_back(m.upper(j));
    }
  }

  feasible = false;
  double best = m.objective_sense() == Objective::kMaximize
                    ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();

  const std::size_t total = planes.size();
  std::vector<std::size_t> pick(n);
  // Enumerate all n-subsets of planes.
  const auto recurse = [&](auto&& self, std::size_t start,
                           std::size_t depth) -> void {
    if (depth == n) {
      std::vector<std::vector<double>> a(n);
      std::vector<double> b(n);
      for (std::size_t t = 0; t < n; ++t) {
        a[t] = planes[pick[t]];
        b[t] = rhs[pick[t]];
      }
      std::vector<double> x;
      if (!solve_square(a, b, x)) return;
      if (m.max_violation(x) > 1e-7) return;
      feasible = true;
      const double obj = m.objective_value(x);
      if (m.objective_sense() == Objective::kMaximize) {
        best = std::max(best, obj);
      } else {
        best = std::min(best, obj);
      }
      return;
    }
    for (std::size_t p = start; p < total; ++p) {
      pick[depth] = p;
      self(self, p + 1, depth + 1);
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

class RandomLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpTest, MatchesBruteForceVertexEnumeration) {
  Xoshiro256 rng(GetParam());
  const std::size_t nvars = 2 + rng.next_below(2);  // 2..3
  const std::size_t ncons = 2 + rng.next_below(3);  // 2..4

  Model m(rng.next_bernoulli(0.5) ? Objective::kMaximize
                                  : Objective::kMinimize);
  for (std::size_t j = 0; j < nvars; ++j) {
    const double ub = rng.next_real(0.5, 4.0);
    m.add_variable(0, ub, rng.next_real(-3, 3));
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    for (std::size_t j = 0; j < nvars; ++j) {
      row.push_back({j, rng.next_real(0.1, 2.0)});  // nonneg coefficients
    }
    // rhs positive -> origin feasible -> LP feasible and bounded (box).
    m.add_constraint(std::move(row), Sense::kLessEqual, rng.next_real(0.5, 5.0));
  }

  bool feasible = false;
  const double expected = brute_force_lp(m, feasible);
  ASSERT_TRUE(feasible);

  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal()) << "seed " << GetParam();
  EXPECT_NEAR(sol.objective, expected, 1e-5) << "seed " << GetParam();
  EXPECT_LE(m.max_violation(sol.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest,
                         ::testing::Range<std::uint64_t>(0, 40));

class RandomEqualityLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEqualityLpTest, PhaseOneFindsFeasiblePoints) {
  // Build LPs known to be feasible: pick a random point in the box, derive
  // equality rhs from it. Checks two-phase handling of equality rows.
  Xoshiro256 rng(GetParam() + 1000);
  const std::size_t nvars = 3 + rng.next_below(3);  // 3..5
  const std::size_t ncons = 1 + rng.next_below(3);  // 1..3

  Model m(Objective::kMinimize);
  std::vector<double> point(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    m.add_variable(0, 2.0, rng.next_real(-1, 1));
    point[j] = rng.next_real(0, 2);
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    double rhs = 0;
    for (std::size_t j = 0; j < nvars; ++j) {
      const double coef = rng.next_real(-2, 2);
      row.push_back({j, coef});
      rhs += coef * point[j];
    }
    m.add_constraint(std::move(row), Sense::kEqual, rhs);
  }

  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal()) << "seed " << GetParam();
  EXPECT_LE(m.max_violation(sol.x), 1e-6);
  EXPECT_LE(sol.objective, m.objective_value(point) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEqualityLpTest,
                         ::testing::Range<std::uint64_t>(0, 30));

class AuditedRandomLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditedRandomLpTest, AuditModeAcceptsEveryPivot) {
  // Random mixed LPs solved in paranoid mode: any drift between the
  // incremental tableau state and the original system throws.
  Xoshiro256 rng(GetParam() * 7919 + 13);
  const std::size_t nvars = 4 + rng.next_below(6);
  const std::size_t ncons = 2 + rng.next_below(5);

  Model m(rng.next_bernoulli(0.5) ? Objective::kMaximize
                                  : Objective::kMinimize);
  std::vector<double> point(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    m.add_variable(0, rng.next_bernoulli(0.7) ? rng.next_real(0.5, 3.0)
                                              : kInfinity,
                   rng.next_real(-2, 2));
    point[j] = rng.next_real(0, 0.5);
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    double activity = 0.0;
    for (std::size_t j = 0; j < nvars; ++j) {
      const double coef = rng.next_real(-1.0, 2.0);
      row.push_back({j, coef});
      activity += coef * point[j];
    }
    // Keep `point` feasible so the LP is feasible; cap variables to keep the
    // problem bounded when maximizing.
    const auto sense = rng.next_bernoulli(0.5) ? Sense::kLessEqual : Sense::kEqual;
    m.add_constraint(std::move(row), sense,
                     sense == Sense::kEqual ? activity
                                            : activity + rng.next_real(0, 2));
  }

  SimplexOptions audit;
  audit.audit = true;
  const Solution sol = solve(m, audit);  // throws CheckError on any drift
  if (sol.optimal()) {
    EXPECT_LE(m.max_violation(sol.x), 1e-6) << "seed " << GetParam();
  } else {
    EXPECT_TRUE(sol.status == SolveStatus::kUnbounded ||
                sol.status == SolveStatus::kInfeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditedRandomLpTest,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Simplex, BasicSolutionHasFewFractionals) {
  // Extreme-point property: strictly-interior variables are basic, and there
  // are at most num_constraints basic variables.
  Xoshiro256 rng(5);
  Model m(Objective::kMaximize);
  const std::size_t nvars = 12;
  for (std::size_t j = 0; j < nvars; ++j) {
    m.add_variable(0, 1, rng.next_real(0.1, 1.0));
  }
  for (std::size_t r = 0; r < 3; ++r) {
    std::vector<Entry> row;
    for (std::size_t j = 0; j < nvars; ++j) {
      row.push_back({j, rng.next_real(0.1, 1.0)});
    }
    m.add_constraint(std::move(row), Sense::kLessEqual, 2.0);
  }
  const Solution sol = solve(m);
  ASSERT_TRUE(sol.optimal());
  std::size_t interior = 0;
  for (std::size_t j = 0; j < nvars; ++j) {
    if (sol.x[j] > 1e-7 && sol.x[j] < 1 - 1e-7) ++interior;
  }
  EXPECT_LE(interior, m.num_constraints());
}

}  // namespace
}  // namespace setsched::lp
