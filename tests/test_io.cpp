// Round-trip and rejection tests for the plain-text instance format of
// core/io.h (complements the smaller smoke checks in test_core.cpp).

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "core/generators.h"
#include "core/io.h"

namespace setsched {
namespace {

TEST(IoRoundTrip, UnrelatedGeneratedInstance) {
  UnrelatedGenParams params;
  params.num_jobs = 15;
  params.num_machines = 4;
  params.num_classes = 5;
  params.eligibility = 0.8;  // exercises the "inf" token path
  const Instance original = generate_unrelated(params, 23);

  std::stringstream stream;
  save_instance(stream, original);
  const Instance loaded = load_instance(stream);
  EXPECT_EQ(loaded, original);
}

TEST(IoRoundTrip, UniformGeneratedInstance) {
  UniformGenParams params;
  params.num_jobs = 12;
  params.num_machines = 5;
  params.num_classes = 3;
  params.profile = SpeedProfile::kGeometric;
  params.max_speed_ratio = 4.0;
  const UniformInstance original = generate_uniform(params, 23);

  std::stringstream stream;
  save_uniform(stream, original);
  const UniformInstance loaded = load_uniform(stream);
  EXPECT_EQ(loaded, original);
}

TEST(IoRoundTrip, RestrictedInstanceKeepsEligibility) {
  RestrictedGenParams params;
  params.num_jobs = 10;
  params.num_machines = 4;
  params.num_classes = 4;
  params.max_eligible = 2;  // plenty of inf entries
  const Instance original = generate_restricted_class_uniform(params, 7);

  std::stringstream stream;
  save_instance(stream, original);
  const Instance loaded = load_instance(stream);
  EXPECT_EQ(loaded, original);
  EXPECT_TRUE(is_restricted_class_uniform(loaded));
}

TEST(IoRejects, BadMagic) {
  std::stringstream stream("wrongmagic unrelated 1\n1 1 1\n0\n1\n1\n");
  EXPECT_THROW((void)load_instance(stream), CheckError);
}

TEST(IoRejects, KindMismatch) {
  const UniformInstance uniform{{1.0}, {0}, {1.0}, {1.0}};
  std::stringstream stream;
  save_uniform(stream, uniform);
  EXPECT_THROW((void)load_instance(stream), CheckError);
}

TEST(IoRejects, UnsupportedVersion) {
  std::stringstream stream("setsched unrelated 2\n1 1 1\n0\n1\n1\n");
  EXPECT_THROW((void)load_instance(stream), CheckError);
}

TEST(IoRejects, TruncatedStream) {
  Instance original(2, 1, {0});
  original.set_proc(0, 0, 1);
  original.set_proc(1, 0, 2);
  std::stringstream stream;
  save_instance(stream, original);
  const std::string text = stream.str();
  std::stringstream truncated(text.substr(0, text.size() - 4));
  EXPECT_THROW((void)load_instance(truncated), CheckError);
}

TEST(IoRejects, StructurallyInvalidInstance) {
  // Well-formed stream, but job 0's class id is out of range.
  std::stringstream stream("setsched unrelated 1\n1 1 1\n3\n1\n1\n");
  EXPECT_THROW((void)load_instance(stream), CheckError);
}

}  // namespace
}  // namespace setsched
