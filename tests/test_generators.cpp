#include <gtest/gtest.h>

#include <cmath>

#include "core/generators.h"
#include "core/schedule.h"

namespace setsched {
namespace {

TEST(GenerateUniform, Deterministic) {
  UniformGenParams p;
  const auto a = generate_uniform(p, 123);
  const auto b = generate_uniform(p, 123);
  EXPECT_EQ(a, b);
  const auto c = generate_uniform(p, 124);
  EXPECT_NE(a, c);
}

TEST(GenerateUniform, RespectsRanges) {
  UniformGenParams p;
  p.num_jobs = 200;
  p.min_job_size = 5;
  p.max_job_size = 10;
  p.min_setup = 2;
  p.max_setup = 4;
  const auto inst = generate_uniform(p, 7);
  for (const double s : inst.job_size) {
    EXPECT_GE(s, 5.0);
    EXPECT_LE(s, 10.0);
    EXPECT_DOUBLE_EQ(s, std::round(s));
  }
  for (const double s : inst.setup_size) {
    EXPECT_GE(s, 2.0);
    EXPECT_LE(s, 4.0);
  }
}

TEST(GenerateUniform, SpeedProfiles) {
  UniformGenParams p;
  p.num_machines = 6;
  p.max_speed_ratio = 9.0;

  p.profile = SpeedProfile::kIdentical;
  for (const double v : generate_uniform(p, 1).speed) EXPECT_DOUBLE_EQ(v, 1.0);

  p.profile = SpeedProfile::kGeometric;
  const auto geo = generate_uniform(p, 1).speed;
  EXPECT_DOUBLE_EQ(geo.front(), 1.0);
  EXPECT_NEAR(geo.back(), 9.0, 1e-9);
  for (std::size_t i = 1; i < geo.size(); ++i) EXPECT_GT(geo[i], geo[i - 1]);

  p.profile = SpeedProfile::kTwoTier;
  const auto two = generate_uniform(p, 1).speed;
  EXPECT_DOUBLE_EQ(two.front(), 1.0);
  EXPECT_DOUBLE_EQ(two.back(), 9.0);
}

TEST(GenerateUnrelated, ValidAndDeterministic) {
  UnrelatedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 4;
  const auto a = generate_unrelated(p, 9);
  const auto b = generate_unrelated(p, 9);
  EXPECT_EQ(a, b);
  EXPECT_NO_THROW(a.validate());
}

TEST(GenerateUnrelated, PartialEligibilityKeepsJobsSchedulable) {
  UnrelatedGenParams p;
  p.num_jobs = 60;
  p.num_machines = 6;
  p.eligibility = 0.25;
  const auto inst = generate_unrelated(p, 21);
  EXPECT_NO_THROW(inst.validate());
  bool some_ineligible = false;
  for (MachineId i = 0; i < inst.num_machines() && !some_ineligible; ++i) {
    for (JobId j = 0; j < inst.num_jobs() && !some_ineligible; ++j) {
      some_ineligible = !inst.eligible(i, j);
    }
  }
  EXPECT_TRUE(some_ineligible);
}

TEST(GeneratePlanted, PlantedScheduleIsFeasible) {
  PlantedGenParams p;
  p.num_jobs = 50;
  p.num_machines = 5;
  p.num_classes = 10;
  const auto planted = generate_planted_unrelated(p, 3);
  EXPECT_FALSE(schedule_error(planted.instance, planted.planted).has_value());
  EXPECT_DOUBLE_EQ(planted.planted_makespan,
                   makespan(planted.instance, planted.planted));
  EXPECT_GT(planted.planted_makespan, 0.0);
}

TEST(GeneratePlanted, OffPlanTimesNotCheaper) {
  PlantedGenParams p;
  p.num_jobs = 40;
  p.num_machines = 4;
  const auto planted = generate_planted_unrelated(p, 5);
  for (JobId j = 0; j < planted.instance.num_jobs(); ++j) {
    const MachineId home = planted.planted.assignment[j];
    for (MachineId i = 0; i < planted.instance.num_machines(); ++i) {
      EXPECT_GE(planted.instance.proc(i, j) + 1e-9,
                planted.instance.proc(home, j));
    }
  }
}

TEST(GenerateRestricted, IsClassUniform) {
  RestrictedGenParams p;
  p.num_jobs = 40;
  p.num_machines = 6;
  p.num_classes = 5;
  p.min_eligible = 2;
  p.max_eligible = 4;
  const auto inst = generate_restricted_class_uniform(p, 11);
  EXPECT_NO_THROW(inst.validate());
  EXPECT_TRUE(is_restricted_class_uniform(inst));
}

TEST(GenerateRestricted, EligibleSetSizesInRange) {
  RestrictedGenParams p;
  p.num_machines = 8;
  p.min_eligible = 3;
  p.max_eligible = 3;
  const auto inst = generate_restricted_class_uniform(p, 13);
  for (ClassId k = 0; k < inst.num_classes(); ++k) {
    std::size_t eligible = 0;
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      eligible += inst.setup(i, k) < kInfinity;
    }
    EXPECT_EQ(eligible, 3u);
  }
}

TEST(GenerateClassUniform, IsClassUniformProcessing) {
  ClassUniformGenParams p;
  p.num_jobs = 40;
  p.num_machines = 5;
  p.num_classes = 6;
  const auto inst = generate_class_uniform_processing(p, 17);
  EXPECT_NO_THROW(inst.validate());
  EXPECT_TRUE(is_class_uniform_processing(inst));
}

TEST(Generators, AllClassesInRange) {
  UniformGenParams p;
  p.num_jobs = 100;
  p.num_classes = 3;
  const auto inst = generate_uniform(p, 19);
  for (const ClassId k : inst.job_class) EXPECT_LT(k, 3u);
}

}  // namespace
}  // namespace setsched
