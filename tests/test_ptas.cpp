#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "uniform/groups.h"
#include "uniform/lpt.h"
#include "uniform/ptas.h"
#include "uniform/reconstruct.h"
#include "uniform/relaxed_dp.h"
#include "uniform/simplify.h"

namespace setsched {
namespace {

UniformInstance tiny_uniform(std::uint64_t seed, std::size_t jobs = 8,
                             std::size_t machines = 3, std::size_t classes = 2) {
  UniformGenParams p;
  p.num_jobs = jobs;
  p.num_machines = machines;
  p.num_classes = classes;
  p.min_job_size = 1;
  p.max_job_size = 30;
  p.min_setup = 1;
  p.max_setup = 15;
  p.profile = seed % 2 == 0 ? SpeedProfile::kIdentical
                            : SpeedProfile::kUniformRandom;
  p.max_speed_ratio = 4.0;
  return generate_uniform(p, seed);
}

TEST(RelaxedDp, FeasibleAtGenerousT) {
  const UniformInstance u = tiny_uniform(1);
  const double eps = 0.5;
  const double T = uniform_lower_bound(u) * 8.0;
  const SimplifiedInstance s = simplify_instance(u, T, eps);
  const double vmin = *std::min_element(s.instance.speed.begin(),
                                        s.instance.speed.end());
  const GroupStructure groups(eps, vmin, T);
  const RelaxedDpResult dp = solve_relaxed_dp(s.instance, groups);
  EXPECT_EQ(dp.status, DpStatus::kFeasible);
}

TEST(RelaxedDp, InfeasibleBelowLowerBound) {
  const UniformInstance u = tiny_uniform(2);
  const double eps = 0.5;
  const double T = uniform_lower_bound(u) * 0.25;
  const SimplifiedInstance s = simplify_instance(u, T, eps);
  const double vmin = *std::min_element(s.instance.speed.begin(),
                                        s.instance.speed.end());
  const GroupStructure groups(eps, vmin, T);
  const RelaxedDpResult dp = solve_relaxed_dp(s.instance, groups);
  EXPECT_EQ(dp.status, DpStatus::kInfeasible);
}

TEST(RelaxedDp, FeasibleVerdictYieldsValidRelaxedSchedule) {
  const UniformInstance u = tiny_uniform(3);
  const double eps = 0.5;
  const double T = uniform_lower_bound(u) * 4.0;
  const SimplifiedInstance s = simplify_instance(u, T, eps);
  const double vmin = *std::min_element(s.instance.speed.begin(),
                                        s.instance.speed.end());
  const GroupStructure groups(eps, vmin, T);
  const RelaxedDpResult dp = solve_relaxed_dp(s.instance, groups);
  ASSERT_EQ(dp.status, DpStatus::kFeasible);

  // Every job is either integrally assigned or recorded as fractional.
  std::vector<char> seen(s.instance.num_jobs(), 0);
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    if (dp.relaxed.integral.assignment[j] != kUnassigned) seen[j] = 1;
  }
  for (const auto& [g, jobs] : dp.relaxed.fractional_by_group) {
    for (const JobId j : jobs) {
      EXPECT_FALSE(seen[j]) << "job " << j << " both integral and fractional";
      seen[j] = 1;
    }
  }
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    EXPECT_TRUE(seen[j]) << "job " << j << " unaccounted";
  }
  // Relaxed loads respect the makespan guess.
  for (MachineId i = 0; i < s.instance.num_machines(); ++i) {
    EXPECT_LE(dp.relaxed.relaxed_load[i],
              s.instance.speed[i] * T * (1 + 1e-9));
  }
}

TEST(RelaxedDp, ReconstructionPlacesAllJobs) {
  const UniformInstance u = tiny_uniform(4, 12, 3, 3);
  const double eps = 0.5;
  const double T = uniform_lower_bound(u) * 3.0;
  const SimplifiedInstance s = simplify_instance(u, T, eps);
  const double vmin = *std::min_element(s.instance.speed.begin(),
                                        s.instance.speed.end());
  const GroupStructure groups(eps, vmin, T);
  const RelaxedDpResult dp = solve_relaxed_dp(s.instance, groups);
  ASSERT_EQ(dp.status, DpStatus::kFeasible);
  const Schedule rec = reconstruct_schedule(s.instance, groups, dp.relaxed);
  EXPECT_TRUE(rec.complete());
  EXPECT_FALSE(schedule_error(s.instance.to_unrelated(), rec).has_value());
}

TEST(Ptas, ResultAtLeastLowerBoundAndBeatsNothing) {
  const UniformInstance u = tiny_uniform(5);
  PtasOptions opt;
  opt.epsilon = 0.5;
  const PtasResult r = ptas_uniform(u, opt);
  EXPECT_FALSE(schedule_error(u.to_unrelated(), r.schedule).has_value());
  EXPECT_GE(r.makespan + 1e-9, uniform_lower_bound(u));
  // probes may legitimately be 0 when LPT already matches the lower bound
  // within (1 + eps); the schedule must still be valid (checked above).
}

class PtasVsExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtasVsExactTest, CompletenessNeverRejectsOptimalGuess) {
  // Soundness of the dual test: the DP must accept T = OPT (after the
  // simplification inflation), i.e. the PTAS's certified lower bound is a
  // true lower bound on OPT.
  const UniformInstance u = tiny_uniform(GetParam(), 8, 3, 2);
  const ExactResult opt = solve_exact(u);
  ASSERT_TRUE(opt.proven_optimal);
  PtasOptions popt;
  popt.epsilon = 0.5;
  const PtasResult r = ptas_uniform(u, popt);
  EXPECT_FALSE(r.resource_limited) << "seed " << GetParam();
  EXPECT_LE(r.lower_bound, opt.makespan * (1 + 1e-9)) << "seed " << GetParam();
  EXPECT_GE(r.makespan + 1e-9, opt.makespan);  // no schedule beats OPT
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtasVsExactTest,
                         ::testing::Range<std::uint64_t>(0, 12));

class PtasRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtasRatioTest, EmpiricalRatioModest) {
  const UniformInstance u = tiny_uniform(GetParam() + 40, 9, 3, 3);
  const ExactResult opt = solve_exact(u);
  ASSERT_TRUE(opt.proven_optimal);
  PtasOptions popt;
  popt.epsilon = 0.5;
  const PtasResult r = ptas_uniform(u, popt);
  // The worst-case chain of lemma factors at eps = 1/2 is large; empirically
  // the PTAS stays well below 2x optimal on these instances. Fixed seeds
  // keep this deterministic.
  EXPECT_LE(r.makespan, 2.0 * opt.makespan + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtasRatioTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Ptas, SmallerEpsilonNoWorse) {
  const UniformInstance u = tiny_uniform(77, 8, 2, 2);
  PtasOptions coarse;
  coarse.epsilon = 0.5;
  PtasOptions fine;
  fine.epsilon = 0.25;
  fine.max_states = 800'000;
  const PtasResult rc = ptas_uniform(u, coarse);
  const PtasResult rf = ptas_uniform(u, fine);
  if (!rf.resource_limited) {
    // Finer eps probes a denser T grid; its accepted schedule should not be
    // meaningfully worse.
    EXPECT_LE(rf.makespan, rc.makespan * 1.25 + 1e-9);
  }
}

TEST(Ptas, LowerBoundBelowAccepted) {
  const UniformInstance u = tiny_uniform(6);
  const PtasResult r = ptas_uniform(u);
  if (r.lower_bound > 0.0) {
    EXPECT_LE(r.lower_bound, r.accepted_T * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace setsched
