#include <gtest/gtest.h>

#include "core/generators.h"
#include "exact/branch_bound.h"
#include "restricted/approx.h"
#include "restricted/relaxed_lp.h"

namespace setsched {
namespace {

TEST(RelaxedLp, FeasibleAtOptimum) {
  RestrictedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  p.min_eligible = 2;
  const Instance inst = generate_restricted_class_uniform(p, 1);
  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const auto lp = solve_relaxed_lp(inst, opt.makespan);
  ASSERT_TRUE(lp.has_value());
  // (12): every class with jobs sums to 1.
  const auto by_class = inst.jobs_by_class();
  for (ClassId k = 0; k < inst.num_classes(); ++k) {
    if (by_class[k].empty()) continue;
    double total = 0.0;
    for (MachineId i = 0; i < inst.num_machines(); ++i) total += lp->xbar(i, k);
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(RelaxedLp, InfeasibleBelowFloor) {
  RestrictedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 4;
  const Instance inst = generate_restricted_class_uniform(p, 2);
  const double floor = relaxed_lp_floor(inst);
  EXPECT_FALSE(solve_relaxed_lp(inst, floor * 0.49).has_value());
}

TEST(RelaxedLp, ExtremeSolutionSupportBound) {
  // Basic solutions have at most m + K positive variables.
  RestrictedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 8;
  p.min_eligible = 2;
  const Instance inst = generate_restricted_class_uniform(p, 3);
  const double T = relaxed_lp_floor(inst) * 1.05;
  const auto lp = solve_relaxed_lp(inst, T);
  if (!lp.has_value()) GTEST_SKIP() << "tight guess infeasible for this seed";
  std::size_t positive = 0;
  for (MachineId i = 0; i < inst.num_machines(); ++i) {
    for (ClassId k = 0; k < inst.num_classes(); ++k) {
      positive += lp->xbar(i, k) > 1e-7;
    }
  }
  EXPECT_LE(positive, inst.num_machines() + inst.num_classes());
}

TEST(RelaxedLp, RespectsExclusionRule) {
  RestrictedGenParams p;
  p.num_jobs = 15;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_restricted_class_uniform(p, 4);
  const double T = relaxed_lp_floor(inst) * 1.5;
  const auto lp = solve_relaxed_lp(inst, T);
  ASSERT_TRUE(lp.has_value());
  const auto by_class = inst.jobs_by_class();
  for (MachineId i = 0; i < inst.num_machines(); ++i) {
    for (ClassId k = 0; k < inst.num_classes(); ++k) {
      if (lp->xbar(i, k) <= 1e-9) continue;
      double max_job = 0.0;
      for (const JobId j : by_class[k]) {
        max_job = std::max(max_job, inst.proc(i, j));
      }
      EXPECT_LE(inst.setup(i, k) + max_job, T + 1e-6);
    }
  }
}

class TwoApproxTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoApproxTest, MeetsGuaranteeAndBeatsExactBound) {
  RestrictedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  p.min_eligible = 1;
  p.max_eligible = 3;
  const Instance inst = generate_restricted_class_uniform(p, GetParam());
  const double prec = 0.02;
  const ConstantApproxResult r = two_approx_restricted(inst, prec);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_LE(r.makespan, 2.0 * r.lp_T + 1e-6);

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  // lp_T <= (1+prec) * LP* <= (1+prec) * OPT.
  EXPECT_LE(r.makespan, 2.0 * (1 + prec) * opt.makespan + 1e-6)
      << "seed " << GetParam();
  EXPECT_GE(opt.makespan + 1e-9, r.lp_lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoApproxTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class TwoApproxLargeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoApproxLargeTest, GuaranteeHoldsOnLargerInstances) {
  RestrictedGenParams p;
  p.num_jobs = 80;
  p.num_machines = 8;
  p.num_classes = 12;
  p.min_eligible = 2;
  p.max_eligible = 5;
  const Instance inst = generate_restricted_class_uniform(p, GetParam() + 50);
  const ConstantApproxResult r = two_approx_restricted(inst, 0.05);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_LE(r.makespan, 2.0 * r.lp_T + 1e-6) << "seed " << GetParam();
  EXPECT_GE(r.makespan + 1e-9, r.lp_lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoApproxLargeTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(TwoApprox, RejectsGeneralUnrelatedInstance) {
  UnrelatedGenParams p;
  const Instance inst = generate_unrelated(p, 5);
  EXPECT_THROW((void)two_approx_restricted(inst), CheckError);
}

TEST(TwoApprox, SingleMachineTrivial) {
  RestrictedGenParams p;
  p.num_jobs = 6;
  p.num_machines = 1;
  p.num_classes = 2;
  const Instance inst = generate_restricted_class_uniform(p, 6);
  const ConstantApproxResult r = two_approx_restricted(inst);
  const ExactResult opt = solve_exact(inst);
  // One machine: everything there; 2-approx must still be valid, and with a
  // single machine the LP equals the schedule, so the result is optimal.
  EXPECT_NEAR(r.makespan, opt.makespan, 1e-6);
}

class ThreeApproxTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreeApproxTest, MeetsGuaranteeAndBeatsExactBound) {
  ClassUniformGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_class_uniform_processing(p, GetParam());
  const double prec = 0.02;
  const ConstantApproxResult r = three_approx_class_uniform(inst, prec);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_LE(r.makespan, 3.0 * r.lp_T + 1e-6);

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_LE(r.makespan, 3.0 * (1 + prec) * opt.makespan + 1e-6)
      << "seed " << GetParam();
  EXPECT_GE(opt.makespan + 1e-9, r.lp_lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeApproxTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class ThreeApproxLargeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreeApproxLargeTest, GuaranteeHoldsOnLargerInstances) {
  ClassUniformGenParams p;
  p.num_jobs = 80;
  p.num_machines = 8;
  p.num_classes = 12;
  const Instance inst = generate_class_uniform_processing(p, GetParam() + 70);
  const ConstantApproxResult r = three_approx_class_uniform(inst, 0.05);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_LE(r.makespan, 3.0 * r.lp_T + 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeApproxLargeTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(ThreeApprox, RejectsNonClassUniformInstance) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  const Instance inst = generate_unrelated(p, 9);
  EXPECT_THROW((void)three_approx_class_uniform(inst), CheckError);
}

TEST(ThreeApprox, AcceptsRestrictedClassUniformToo) {
  // Restricted class-uniform instances are also class-uniform in processing
  // times (on eligible machines p_ij = p_j is not class-uniform in general
  // because jobs of a class may differ in size) — build a truly class-uniform
  // one by hand instead: every job of class k takes p_ik.
  ClassUniformGenParams p;
  p.num_jobs = 12;
  p.num_machines = 4;
  p.num_classes = 2;
  const Instance inst = generate_class_uniform_processing(p, 10);
  EXPECT_NO_THROW((void)three_approx_class_uniform(inst));
}

}  // namespace
}  // namespace setsched
