#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "improve/local_search.h"
#include "unrelated/greedy.h"

namespace setsched {
namespace {

TEST(LocalSearch, NeverWorsens) {
  UnrelatedGenParams p;
  p.num_jobs = 24;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 1);
  const ScheduleResult start = greedy_class_batch(inst);
  const LocalSearchResult r = local_search(inst, start.schedule);
  EXPECT_LE(r.makespan, start.makespan + 1e-9);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
}

TEST(LocalSearch, FixesObviouslyBadSchedule) {
  // Everything dumped on machine 0; moves must spread the load.
  UnrelatedGenParams p;
  p.num_jobs = 16;
  p.num_machines = 4;
  p.num_classes = 2;
  const Instance inst = generate_unrelated(p, 2);
  Schedule bad{std::vector<MachineId>(16, 0)};
  const double before = makespan(inst, bad);
  const LocalSearchResult r = local_search(inst, bad);
  EXPECT_LT(r.makespan, before);
  EXPECT_GT(r.moves_applied, 0u);
}

TEST(LocalSearch, RespectsEligibility) {
  UnrelatedGenParams p;
  p.num_jobs = 20;
  p.num_machines = 5;
  p.num_classes = 3;
  p.eligibility = 0.5;
  const Instance inst = generate_unrelated(p, 3);
  const ScheduleResult start = greedy_min_load(inst);
  const LocalSearchResult r = local_search(inst, start.schedule);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
}

TEST(LocalSearch, ReachesOptimumOnEasyInstance) {
  // 4 equal jobs, 2 identical machines, independent classes: OPT splits 2/2.
  Instance inst(2, 4, {0, 1, 2, 3});
  for (MachineId i = 0; i < 2; ++i) {
    for (JobId j = 0; j < 4; ++j) inst.set_proc(i, j, 5);
    for (ClassId k = 0; k < 4; ++k) inst.set_setup(i, k, 1);
  }
  Schedule bad{{0, 0, 0, 0}};
  const LocalSearchResult r = local_search(inst, bad);
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);  // 2 jobs + 2 setups per machine
}

TEST(LocalSearch, SwapEscapesMovePlateaus) {
  // Two machines; loads (10+2, 10+2) achievable only by exchanging jobs.
  Instance inst(2, 1, {0, 0, 0, 0});
  inst.set_setup(0, 0, 0);
  inst.set_setup(1, 0, 0);
  // sizes 10, 2 on one machine and 6, 6 on the other -> swap balances.
  const double sizes[] = {10, 2, 6, 6};
  for (JobId j = 0; j < 4; ++j) {
    inst.set_proc(0, j, sizes[j]);
    inst.set_proc(1, j, sizes[j]);
  }
  Schedule start{{0, 0, 1, 1}};
  const LocalSearchResult r = local_search(inst, start);
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);
}

class LocalSearchQualityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchQualityTest, WithinFactorTwoOfExactOnSmall) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, GetParam() + 60);
  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const ScheduleResult start = greedy_min_load(inst);
  const LocalSearchResult r = local_search(inst, start.schedule);
  EXPECT_LE(r.makespan, 2.0 * opt.makespan + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchQualityTest,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(LocalSearch, RejectsIncompleteSchedule) {
  UnrelatedGenParams p;
  const Instance inst = generate_unrelated(p, 5);
  const Schedule incomplete = Schedule::empty(inst.num_jobs());
  EXPECT_THROW((void)local_search(inst, incomplete), CheckError);
}

}  // namespace
}  // namespace setsched
