// Differential suite pinning the sparse revised simplex against the dense
// two-phase tableau (the reference oracle), on seeded random LPs and on the
// real scheduling LPs the algorithms build, plus warm-start regression
// coverage for the re-parameterized assignment-LP T-search.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/presets.h"
#include "colgen/config_lp.h"
#include "common/prng.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "restricted/relaxed_lp.h"
#include "unrelated/assignment_lp.h"

namespace setsched::lp {
namespace {

SimplexOptions with(SimplexAlgorithm algorithm) {
  SimplexOptions options;
  options.algorithm = algorithm;
  return options;
}

/// Checks that (x, duals) is an optimal certificate: primal feasibility,
/// dual feasibility of the reduced costs under the documented convention
/// (d_j = c_j - y^T A_j in the model's original sense), and complementary
/// slackness on the rows.
void expect_optimality_certificate(const Model& m, const Solution& sol,
                                   double tol = 1e-5) {
  ASSERT_TRUE(sol.optimal());
  EXPECT_LE(m.max_violation(sol.x), tol);
  const double sense = m.objective_sense() == Objective::kMinimize ? 1.0 : -1.0;
  // Reduced costs per column.
  std::vector<double> reduced(m.num_variables());
  for (std::size_t j = 0; j < m.num_variables(); ++j) {
    reduced[j] = m.objective(j);
  }
  for (std::size_t r = 0; r < m.num_constraints(); ++r) {
    for (const Entry& e : m.row(r)) reduced[e.col] -= sol.duals[r] * e.value;
  }
  for (std::size_t j = 0; j < m.num_variables(); ++j) {
    const double d = sense * reduced[j];  // internal-minimize sign
    const bool at_lower = sol.x[j] <= m.lower(j) + tol;
    const bool at_upper =
        std::isfinite(m.upper(j)) && sol.x[j] >= m.upper(j) - tol;
    if (!at_lower && !at_upper) {
      EXPECT_NEAR(d, 0.0, tol) << "interior var " << j;
    } else {
      if (at_lower && !at_upper) {
        EXPECT_GE(d, -tol) << "at-lower var " << j;
      }
      if (at_upper && !at_lower) {
        EXPECT_LE(d, tol) << "at-upper var " << j;
      }
    }
  }
  // Complementary slackness: a nonzero row dual needs a binding row.
  for (std::size_t r = 0; r < m.num_constraints(); ++r) {
    if (m.row_sense(r) == Sense::kEqual) continue;
    if (std::abs(sol.duals[r]) > tol) {
      EXPECT_NEAR(m.row_activity(r, sol.x), m.rhs(r),
                  tol * std::max(1.0, std::abs(m.rhs(r))))
          << "row " << r;
    }
  }
}

/// Extreme-point structure: at most num_constraints variables strictly
/// between their bounds, and every such variable flagged basic.
void expect_extreme_point(const Model& m, const Solution& sol,
                          double tol = 1e-7) {
  std::size_t interior = 0;
  for (std::size_t j = 0; j < m.num_variables(); ++j) {
    const bool inside = sol.x[j] > m.lower(j) + tol &&
                        (!std::isfinite(m.upper(j)) ||
                         sol.x[j] < m.upper(j) - tol);
    if (inside) {
      ++interior;
      EXPECT_TRUE(sol.basic[j]) << "interior var " << j << " not basic";
    }
  }
  EXPECT_LE(interior, m.num_constraints());
  std::size_t basics = 0;
  for (std::size_t j = 0; j < m.num_variables(); ++j) {
    basics += sol.basic[j] ? 1 : 0;
  }
  EXPECT_LE(basics, m.num_constraints());
}

/// bench_util-style seeded random LP: box-bounded variables, mixed <= / =
/// rows built around a known feasible point so the instance is never vacuous.
Model random_lp(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t nvars = 4 + rng.next_below(12);  // 4..15
  const std::size_t ncons = 2 + rng.next_below(8);   // 2..9
  Model m(rng.next_bernoulli(0.5) ? Objective::kMaximize
                                  : Objective::kMinimize);
  std::vector<double> point(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    const double ub =
        rng.next_bernoulli(0.8) ? rng.next_real(0.5, 4.0) : kInfinity;
    m.add_variable(0, ub, rng.next_real(-3, 3));
    point[j] = rng.next_real(0, std::isfinite(ub) ? ub : 1.0);
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    double activity = 0.0;
    for (std::size_t j = 0; j < nvars; ++j) {
      if (rng.next_bernoulli(0.3)) continue;  // keep rows sparse
      const double coef = rng.next_real(-1.5, 2.5);
      row.push_back({j, coef});
      activity += coef * point[j];
    }
    if (row.empty()) row.push_back({0, 1.0}), activity = point[0];
    const auto sense =
        rng.next_bernoulli(0.6) ? Sense::kLessEqual : Sense::kEqual;
    m.add_constraint(std::move(row), sense,
                     sense == Sense::kEqual ? activity
                                            : activity + rng.next_real(0, 2));
  }
  return m;
}

class DifferentialLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialLpTest, RevisedMatchesTableauOracle) {
  const Model m = random_lp(GetParam() * 7919 + 101);
  const Solution tableau = solve(m, with(SimplexAlgorithm::kTableau));
  const Solution revised = solve(m, with(SimplexAlgorithm::kRevised));
  ASSERT_EQ(tableau.status, revised.status) << "seed " << GetParam();
  if (!tableau.optimal()) return;
  EXPECT_NEAR(tableau.objective, revised.objective,
              1e-6 * std::max(1.0, std::abs(tableau.objective)))
      << "seed " << GetParam();
  expect_optimality_certificate(m, tableau);
  expect_optimality_certificate(m, revised);
  expect_extreme_point(m, revised);
  // The revised solver returns a reusable basis snapshot.
  EXPECT_EQ(revised.basis.structurals.size(), m.num_variables());
  EXPECT_EQ(revised.basis.logicals.size(), m.num_constraints());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialLpTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(DifferentialLp, UnboundedAndInfeasibleVerdictsAgree) {
  {
    Model m(Objective::kMaximize);
    const auto x = m.add_variable(0, kInfinity, 1);
    const auto y = m.add_variable(0, kInfinity, 0);
    m.add_constraint({{x, 1}, {y, -1}}, Sense::kLessEqual, 1);
    EXPECT_EQ(solve(m, with(SimplexAlgorithm::kTableau)).status,
              SolveStatus::kUnbounded);
    EXPECT_EQ(solve(m, with(SimplexAlgorithm::kRevised)).status,
              SolveStatus::kUnbounded);
  }
  {
    Model m(Objective::kMinimize);
    const auto x = m.add_variable(0, 1, 0);
    const auto y = m.add_variable(0, 1, 0);
    m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 3);
    EXPECT_EQ(solve(m, with(SimplexAlgorithm::kTableau)).status,
              SolveStatus::kInfeasible);
    const Solution revised = solve(m, with(SimplexAlgorithm::kRevised));
    EXPECT_EQ(revised.status, SolveStatus::kInfeasible);
    // Even an infeasible probe hands back a basis for the next warm start.
    EXPECT_FALSE(revised.basis.empty());
  }
}

TEST(DifferentialLp, WarmStartReproducesOptimumAfterReparameterization) {
  // min x + 2y st x + y >= 4, x <= 3, y <= 5  ->  x=3, y=1, obj=5.
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, 3, 1);
  const auto y = m.add_variable(0, 5, 2);
  const auto row = m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 4);
  const Solution first = solve(m, with(SimplexAlgorithm::kRevised));
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 5.0, 1e-7);

  // Re-parameterize: tighter x, larger demand, new coefficient.
  m.set_bounds(x, 0, 2);
  m.set_rhs(row, 6);
  m.update_entry(row, y, 2.0);  // x + 2y >= 6 -> x=2, y=2, obj=6.
  SimplexOptions warm = with(SimplexAlgorithm::kRevised);
  warm.warm_start = &first.basis;
  const Solution second = solve(m, warm);
  ASSERT_TRUE(second.optimal());
  EXPECT_NEAR(second.objective, 6.0, 1e-7);
  const Solution cold = solve(m, with(SimplexAlgorithm::kRevised));
  EXPECT_NEAR(second.objective, cold.objective, 1e-9);
}

TEST(DifferentialLp, WarmStartSurvivesAppendedColumns) {
  // Column-generation shape: maximize coverage, then append a better column
  // and warm-start from the old (now undersized) basis.
  Model m(Objective::kMaximize);
  const auto u = m.add_variable(0, 1, 1);
  const auto row = m.add_constraint({{u, 1}}, Sense::kLessEqual, 0.5);
  const Solution first = solve(m, with(SimplexAlgorithm::kRevised));
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 0.5, 1e-7);

  const auto z = m.add_variable(0, 1, 0.25);
  m.add_to_row(row, z, -1.0);  // u - z <= 0.5 -> u = 1, z = 1 -> obj 1.25
  SimplexOptions warm = with(SimplexAlgorithm::kRevised);
  warm.warm_start = &first.basis;
  const Solution second = solve(m, warm);
  ASSERT_TRUE(second.optimal());
  EXPECT_NEAR(second.objective, 1.25, 1e-6);
}

}  // namespace
}  // namespace setsched::lp

namespace setsched {
namespace {

using lp::SimplexAlgorithm;

AssignmentLpOptions lp_options(SimplexAlgorithm algorithm,
                               bool strengthen = false) {
  AssignmentLpOptions options;
  options.strengthen = strengthen;
  options.simplex.algorithm = algorithm;
  return options;
}

class DifferentialAssignmentLpTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialAssignmentLpTest, FeasibilityAndObjectiveMatchTableau) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, GetParam() + 31);
  const double floor = assignment_lp_floor(inst);
  for (const bool strengthen : {false, true}) {
    for (const double factor : {0.6, 0.9, 1.2, 1.8, 3.0}) {
      const double T = floor * factor;
      const auto tableau = solve_assignment_lp(
          inst, T, lp_options(SimplexAlgorithm::kTableau, strengthen));
      const auto revised = solve_assignment_lp(
          inst, T, lp_options(SimplexAlgorithm::kRevised, strengthen));
      ASSERT_EQ(tableau.has_value(), revised.has_value())
          << "seed " << GetParam() << " T=" << T
          << " strengthen=" << strengthen;
      if (!tableau) continue;
      // Same minimal total fractional setup mass (the LP objective).
      double mass_tableau = 0.0, mass_revised = 0.0;
      for (MachineId i = 0; i < inst.num_machines(); ++i) {
        for (ClassId k = 0; k < inst.num_classes(); ++k) {
          mass_tableau += tableau->y(i, k);
          mass_revised += revised->y(i, k);
        }
      }
      EXPECT_NEAR(mass_tableau, mass_revised, 1e-5)
          << "seed " << GetParam() << " T=" << T;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialAssignmentLpTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(DifferentialRelaxedLp, VerdictsMatchTableauAcrossGuesses) {
  RestrictedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 8;
  p.min_eligible = 2;
  const Instance inst = generate_restricted_class_uniform(p, 5);
  const double floor = relaxed_lp_floor(inst);
  lp::SimplexOptions tableau;
  tableau.algorithm = SimplexAlgorithm::kTableau;
  lp::SimplexOptions revised;
  revised.algorithm = SimplexAlgorithm::kRevised;
  for (const double factor : {0.7, 1.0, 1.4, 2.0}) {
    const double T = floor * factor;
    const auto a = solve_relaxed_lp(inst, T, tableau);
    const auto b = solve_relaxed_lp(inst, T, revised);
    ASSERT_EQ(a.has_value(), b.has_value()) << "T=" << T;
  }
}

TEST(DifferentialConfigLp, StatusAndCoverageMatchTableau) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 3;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 9);
  const double floor = assignment_lp_floor(inst);
  for (const double factor : {1.0, 2.0, 4.0}) {
    ConfigLpOptions tableau;
    tableau.simplex.algorithm = SimplexAlgorithm::kTableau;
    ConfigLpOptions revised;
    revised.simplex.algorithm = SimplexAlgorithm::kRevised;
    const ConfigLpResult a = solve_config_lp(inst, floor * factor, tableau);
    const ConfigLpResult b = solve_config_lp(inst, floor * factor, revised);
    EXPECT_EQ(a.status, b.status) << "factor " << factor;
    EXPECT_NEAR(a.coverage, b.coverage, 1e-5) << "factor " << factor;
    EXPECT_GT(b.lp_solves, 0u);
  }
}

TEST(WarmStart, ProbeAfterSeedTakesFewerIterationsThanColdOnMedium) {
  // The regression the tentpole exists for: on the unrelated-medium shape
  // (120 jobs x 10 machines, the ~1.1k-row assignment LP), a warm-started
  // probe must be strictly cheaper than solving the same probe cold.
  const ProblemInput input = generate_preset("unrelated-medium", 1);
  const Instance& inst = input.instance;
  const double hi = unrelated_upper_bound(inst);

  ParametricAssignmentLp warm_chain(inst, hi);
  ASSERT_TRUE(warm_chain.solve(hi).has_value());
  const std::size_t cold_iterations = warm_chain.last_iterations();
  EXPECT_GT(cold_iterations, 0u);

  const double probe = hi * 0.9;  // next T-search step stays feasible
  ASSERT_TRUE(warm_chain.solve(probe).has_value());
  const std::size_t warm_iterations = warm_chain.last_iterations();

  ParametricAssignmentLp cold(inst, probe);
  ASSERT_TRUE(cold.solve(probe).has_value());
  const std::size_t cold_probe_iterations = cold.last_iterations();

  EXPECT_LT(warm_iterations, cold_probe_iterations)
      << "warm-started probe must beat a cold solve";
  // And not marginally: the warm re-optimization should be a small fraction.
  EXPECT_LT(warm_iterations * 2, cold_probe_iterations);
}

TEST(WarmStart, SearchCountersAreReported) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 77);
  const LpSearchResult r = search_assignment_lp(inst, 0.05);
  EXPECT_GE(r.lp_solves, 1u);
  EXPECT_GT(r.simplex_iterations, 0u);
}

TEST(ParametricAssignmentLp, MatchesOneShotSolvesAcrossProbes) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 4);
  const double floor = assignment_lp_floor(inst);
  const double hi = floor * 4.0;
  ParametricAssignmentLp parametric(inst, hi);
  for (const double factor : {4.0, 0.5, 1.1, 0.8, 1.6, 1.05}) {
    const double T = floor * factor;
    const auto chained = parametric.solve(T);
    const auto fresh = solve_assignment_lp(inst, T);
    ASSERT_EQ(chained.has_value(), fresh.has_value()) << "T=" << T;
    if (!chained) continue;
    double mass_chained = 0.0, mass_fresh = 0.0;
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      for (ClassId k = 0; k < inst.num_classes(); ++k) {
        mass_chained += chained->y(i, k);
        mass_fresh += fresh->y(i, k);
      }
    }
    EXPECT_NEAR(mass_chained, mass_fresh, 1e-5) << "T=" << T;
  }
  EXPECT_EQ(parametric.lp_solves(), 6u);
}

}  // namespace
}  // namespace setsched
