// Docs-vs-code consistency: the tables in docs/SOLVERS.md must list exactly
// the registered solvers and presets, and docs/BENCH_SCHEMA.md must document
// every key the JSONL writer emits. These tests are what keeps the docs/
// subsystem from rotting: adding a solver, a preset, or a RunRecord field
// without updating the page is a test failure, not a silent drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/presets.h"
#include "api/registry.h"
#include "expt/record_io.h"
#include "obs/phase.h"

namespace setsched {
namespace {

std::string read_doc(const std::string& name) {
  const std::string path = std::string(SETSCHED_SOURCE_DIR) + "/docs/" + name;
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

/// Extracts the section of `text` between the heading line `## <title>` and
/// the next `## ` heading (or end of file).
std::string section(const std::string& text, const std::string& title) {
  const std::string heading = "## " + title;
  const std::size_t start = text.find(heading);
  EXPECT_NE(start, std::string::npos) << "missing section '" << heading << "'";
  if (start == std::string::npos) return {};
  const std::size_t end = text.find("\n## ", start + heading.size());
  return text.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

/// First backticked token of every markdown table body row ("| `name` ...").
std::set<std::string> table_names(const std::string& sect) {
  std::set<std::string> names;
  std::istringstream lines(sect);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t open = line.find("| `");
    if (open != 0) continue;  // not a table body row with a backticked name
    const std::size_t from = open + 3;
    const std::size_t close = line.find('`', from);
    if (close == std::string::npos) continue;
    names.insert(line.substr(from, close - from));
  }
  return names;
}

testing::AssertionResult same_sets(const std::set<std::string>& documented,
                                   const std::vector<std::string>& actual,
                                   const char* what) {
  const std::set<std::string> live(actual.begin(), actual.end());
  std::ostringstream diff;
  for (const std::string& name : live) {
    if (!documented.contains(name)) {
      diff << " undocumented " << what << " '" << name << "';";
    }
  }
  for (const std::string& name : documented) {
    if (!live.contains(name)) {
      diff << " stale documented " << what << " '" << name << "';";
    }
  }
  if (diff.str().empty()) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "docs/SOLVERS.md disagrees with the code:" << diff.str();
}

TEST(Docs, SolversTableMatchesRegistry) {
  const std::string doc = read_doc("SOLVERS.md");
  EXPECT_TRUE(same_sets(table_names(section(doc, "Solvers")),
                        SolverRegistry::global().names(), "solver"));
}

TEST(Docs, PresetsTableMatchesPresetNames) {
  const std::string doc = read_doc("SOLVERS.md");
  EXPECT_TRUE(same_sets(table_names(section(doc, "Presets")), preset_names(),
                        "preset"));
}

TEST(Docs, BenchSchemaDocumentsEveryJsonlKey) {
  std::ostringstream row;
  expt::write_jsonl(row, expt::RunRecord{});
  const std::string line = row.str();
  const std::string schema = read_doc("BENCH_SCHEMA.md");

  // Pull the keys out of the emitted JSONL line ("key": ...) and require a
  // backticked mention of each in the schema page.
  std::size_t pos = 0;
  std::size_t keys = 0;
  while ((pos = line.find('"', pos)) != std::string::npos) {
    const std::size_t close = line.find('"', pos + 1);
    ASSERT_NE(close, std::string::npos);
    const std::string token = line.substr(pos + 1, close - pos - 1);
    pos = close + 1;
    if (pos >= line.size() || line[pos] != ':') continue;  // a value, not a key
    ++keys;
    EXPECT_NE(schema.find("`" + token + "`"), std::string::npos)
        << "JSONL key '" << token << "' is not documented in BENCH_SCHEMA.md";
  }
  EXPECT_EQ(keys, 32u) << "RunRecord schema size changed; update "
                          "docs/BENCH_SCHEMA.md and this pin";

  // The nested phase_ms keys are elided when zero, so the default record
  // above never exercises them: emit one record with every phase non-zero
  // and require each phase name to be documented too.
  expt::RunRecord traced;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    traced.phase_ms[static_cast<obs::Phase>(i)] = 1.0;
  }
  std::ostringstream traced_row;
  expt::write_jsonl(traced_row, traced);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const std::string name(obs::phase_name(static_cast<obs::Phase>(i)));
    EXPECT_NE(traced_row.str().find("\"" + name + "\":"), std::string::npos);
    EXPECT_NE(schema.find("`" + name + "`"), std::string::npos)
        << "phase '" << name << "' is not documented in BENCH_SCHEMA.md";
  }
}

TEST(Docs, CorePagesExistAndAreNonTrivial) {
  for (const char* name : {"ARCHITECTURE.md", "LP.md", "SOLVERS.md",
                           "BENCH_SCHEMA.md", "OBSERVABILITY.md",
                           "ROBUSTNESS.md"}) {
    const std::string doc = read_doc(name);
    EXPECT_GT(doc.size(), 1000u) << name << " looks like a stub";
  }
  // The architecture page must name every src/ subsystem.
  const std::string arch = read_doc("ARCHITECTURE.md");
  for (const char* subsystem :
       {"src/common", "src/core", "src/lp", "src/unrelated", "src/colgen",
        "src/restricted", "src/uniform", "src/setcover", "src/improve",
        "src/exact", "src/api", "src/expt", "src/obs"}) {
    EXPECT_NE(arch.find(subsystem), std::string::npos)
        << "ARCHITECTURE.md does not mention " << subsystem;
  }
}

}  // namespace
}  // namespace setsched
