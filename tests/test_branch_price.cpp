// Branch-and-price suite (src/exact/config_bound.h + BoundMode wiring):
// differential checks of the configuration-LP bound against brute force and
// the assignment-LP bound, the warm-start / column-pool invariants of the
// ConfigLpBounder, and the node-count acceptance pin of the config bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/generators.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"
#include "exact/config_bound.h"
#include "lp/fault.h"

namespace setsched {
namespace {

/// Reference: plain exhaustive enumeration, no pruning.
double enumerate_opt(const Instance& inst) {
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  Schedule s = Schedule::empty(n);
  double best = kInfinity;
  const auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n) {
      if (!schedule_error(inst, s).has_value()) {
        best = std::min(best, makespan(inst, s));
      }
      return;
    }
    for (MachineId i = 0; i < m; ++i) {
      if (!inst.eligible(i, depth)) continue;
      s.assignment[depth] = i;
      self(self, depth + 1);
      s.assignment[depth] = kUnassigned;
    }
  };
  recurse(recurse, 0);
  return best;
}

UnrelatedGenParams tiny_params() {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  return p;
}

/// Root lower bound of a one-node run under the given bound mode (the search
/// aborts immediately after the root bounding phase, so `lower_bound` is the
/// root certificate itself).
double root_bound(const Instance& inst, BoundMode mode) {
  ExactOptions opt;
  opt.max_nodes = 1;
  opt.bound = mode;
  opt.cg_bound_depth = inst.num_jobs();
  return solve_exact(inst, opt).lower_bound;
}

class CgRootBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

// Satellite 1 (root): the config-LP root bound must dominate the
// assignment-LP root bound (it is computed ON TOP of it — the bisection
// starts from the assignment certificate) and stay a valid lower bound on
// the brute-force optimum.
TEST_P(CgRootBoundTest, ConfigRootBoundDominatesAssignmentAndStaysValid) {
  const Instance inst = generate_unrelated(tiny_params(), GetParam());
  const double opt = enumerate_opt(inst);
  const double assignment_lb = root_bound(inst, BoundMode::kAssignment);
  const double config_lb = root_bound(inst, BoundMode::kConfig);
  EXPECT_GE(config_lb, assignment_lb - 1e-9) << "seed " << GetParam();
  EXPECT_LE(config_lb, opt * (1.0 + 1e-9)) << "seed " << GetParam();
  EXPECT_LE(assignment_lb, opt * (1.0 + 1e-9)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgRootBoundTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// Satellite 1 (pinned nodes): along a prefix of a PROVEN-optimal schedule,
// the bounder must keep answering "feasible" at T = OPT — an infeasible
// verdict there would certify away the optimum itself (the exact unsound
// prune the grid-conservatism inflation exists to prevent).
TEST(CgPinnedNodes, NeverCertifiesAwayTheOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = generate_unrelated(tiny_params(), seed + 50);
    const ExactResult optimum = solve_exact(inst);
    ASSERT_TRUE(optimum.proven_optimal) << "seed " << seed;
    const double T = optimum.makespan * (1.0 + 1e-6);

    exact::ConfigBoundOptions copt;
    copt.rounds_per_node = 50;  // generous: a stall would mask the check
    exact::ConfigLpBounder bounder(inst, T, copt);
    ASSERT_TRUE(bounder.available()) << "seed " << seed;
    EXPECT_TRUE(bounder.feasible(T)) << "seed " << seed << " at the root";
    for (JobId j = 0; j < inst.num_jobs() / 2; ++j) {
      bounder.pin(j, optimum.schedule.assignment[j]);
      EXPECT_TRUE(bounder.feasible(T))
          << "seed " << seed << " after pinning job " << j
          << " per the optimal schedule";
    }
    EXPECT_EQ(bounder.fallbacks(), 0u) << "seed " << seed;
  }
}

// The flip side: well below the assignment-LP floor the configuration LP
// must certify infeasibility (the verdict the search prunes on).
TEST(CgPinnedNodes, CertifiesInfeasibilityBelowTheFloor) {
  const Instance inst = generate_unrelated(tiny_params(), 3);
  const double floor = assignment_lp_floor(inst);
  exact::ConfigBoundOptions copt;
  copt.rounds_per_node = 50;
  exact::ConfigLpBounder bounder(inst, floor, copt);
  ASSERT_TRUE(bounder.available());
  EXPECT_FALSE(bounder.feasible(floor * 0.4));
}

/// Satellite 2 contract: under `mode`, branch-and-price must reproduce brute
/// force exactly, proven, with a coherent certificate.
void expect_matches_enumeration(const Instance& inst, BoundMode mode,
                                std::uint64_t seed,
                                const lp::FaultPlan* plan = nullptr) {
  const double reference = enumerate_opt(inst);
  ExactOptions opt;
  opt.bound = mode;
  opt.cg_bound_depth = inst.num_jobs();
  opt.fault_plan = plan;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
  EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << seed;
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_NEAR(makespan(inst, r.schedule), r.makespan, 1e-9);
  EXPECT_DOUBLE_EQ(r.gap, 0.0);
  EXPECT_NEAR(r.lower_bound, r.makespan, 1e-9);
}

class CgHolesRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CgHolesRandomTest, MatchesEnumerationWithEligibilityHoles) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.5;
  const Instance inst = generate_unrelated(p, GetParam() + 100);
  expect_matches_enumeration(inst, BoundMode::kConfig, GetParam());
  expect_matches_enumeration(inst, BoundMode::kAuto, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgHolesRandomTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(CgDifferential, MatchesEnumerationWithZeroSetups) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 2;
  p.min_setup = 0.0;
  p.max_setup = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_matches_enumeration(generate_unrelated(p, seed + 300),
                               BoundMode::kConfig, seed);
  }
}

TEST(CgDifferential, MatchesEnumerationWithSingleClass) {
  // One class degenerates every configuration to "one setup + a job set":
  // the class-opening bookkeeping of the pricer must not break.
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 1;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    expect_matches_enumeration(generate_unrelated(p, seed + 700),
                               BoundMode::kConfig, seed);
  }
}

// Satellite 2 (injection): under deterministic LP fault injection the
// branch-and-price search must still match the oracle — a non-clean RMP
// solve demotes the probe to the assignment bound, it never prunes.
TEST(CgDifferential, MatchesEnumerationUnderFaultInjection) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 3;
  p.eligibility = 0.8;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = generate_unrelated(p, seed + 400);
    const lp::FaultPlan plan = lp::FaultPlan::parse("all@0.05", seed * 17 + 1);
    expect_matches_enumeration(inst, BoundMode::kConfig, seed, &plan);
  }
}

// Satellite 3 (warm start): probes resuming the parent's column pool and
// basis must price fewer total rounds down a DFS path than cold bounders
// rebuilding each pinned node from an empty pool — the whole point of
// keeping ONE RMP alive across the tree. A single child node can lose the
// comparison (pins reshape the duals enough that a fresh pool sometimes
// converges faster than a stale one), so the regression pins the AGGREGATE
// over a 6-deep descent along an optimal schedule, where pool reuse
// compounds while every cold rebuild pays full price.
TEST(CgWarmStart, PathDescentBeatsColdRebuilds) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 8);
  const ExactResult optimum = solve_exact(inst);
  ASSERT_TRUE(optimum.proven_optimal);
  const double T = optimum.makespan * 1.02;
  exact::ConfigBoundOptions copt;
  copt.rounds_per_node = 200;  // no stalls: measure real rounds-to-converge

  exact::ConfigLpBounder warm(inst, T, copt);
  ASSERT_TRUE(warm.available());
  ASSERT_TRUE(warm.feasible(T));  // root probe fills the pool
  std::size_t warm_total = 0;
  std::size_t cold_total = 0;
  for (std::size_t d = 1; d <= 6; ++d) {
    warm.pin(d - 1, optimum.schedule.assignment[d - 1]);
    ASSERT_TRUE(warm.feasible(T)) << "depth " << d;
    warm_total += warm.last_probe_rounds();

    exact::ConfigLpBounder cold(inst, T, copt);
    for (std::size_t j = 0; j < d; ++j) {
      cold.pin(j, optimum.schedule.assignment[j]);
    }
    ASSERT_TRUE(cold.feasible(T)) << "depth " << d;
    cold_total += cold.last_probe_rounds();
  }
  EXPECT_LT(warm_total, cold_total)
      << "warm chain " << warm_total << " rounds vs cold rebuilds "
      << cold_total;
}

// Satellite 3 (pool invariant): a pin / probe / unpin walk — the shape of a
// DFS descent and backtrack — must keep the pool/RMP invariants intact
// (recounted pin-blocks, bound toggles, basis within model bounds) and may
// only ever GROW the column pool: backtracking never drops a column, so no
// basis can be left referencing a vanished variable.
TEST(CgColumnPool, SurvivesPinProbeUnpinWalkWithoutDroppingColumns) {
  const Instance inst = generate_unrelated(tiny_params(), 13);
  const ExactResult optimum = solve_exact(inst);
  ASSERT_TRUE(optimum.proven_optimal);
  const double T = optimum.makespan * (1.0 + 1e-6);

  exact::ConfigBoundOptions copt;
  copt.rounds_per_node = 50;
  exact::ConfigLpBounder bounder(inst, T, copt);
  ASSERT_TRUE(bounder.available());
  ASSERT_TRUE(bounder.feasible(T));
  ASSERT_TRUE(bounder.check_invariants());

  std::size_t columns = bounder.columns();
  const JobId depth = inst.num_jobs() / 2;
  for (JobId j = 0; j < depth; ++j) {
    bounder.pin(j, optimum.schedule.assignment[j]);
    (void)bounder.feasible(T);
    EXPECT_TRUE(bounder.check_invariants()) << "after pinning job " << j;
    EXPECT_GE(bounder.columns(), columns) << "pool shrank at job " << j;
    columns = bounder.columns();
  }
  for (JobId j = depth; j-- > 0;) {
    bounder.unpin(j);
    EXPECT_TRUE(bounder.check_invariants()) << "after unpinning job " << j;
    EXPECT_EQ(bounder.columns(), columns) << "backtracking dropped columns";
  }
  // Fully unwound, the root probe must still run clean on the same pool.
  EXPECT_TRUE(bounder.feasible(T));
  EXPECT_TRUE(bounder.check_invariants());
}

// Tentpole acceptance pin: on the pinned n=14 instance the config bound must
// close the tree in at most 0.7x the assignment bound's nodes, at the same
// proven optimum. (<= is guaranteed deterministically — the config probe
// runs after the assignment probe and only removes certified-improvement-free
// subtrees; the 0.7 factor is the measured tightness payoff.)
TEST(CgAcceptance, ConfigBoundCutsNodesOnPinnedFourteenJobInstance) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);

  ExactOptions assignment;
  assignment.lp_bound_depth = 14;
  const ExactResult base = solve_exact(inst, assignment);

  ExactOptions config = assignment;
  config.bound = BoundMode::kConfig;
  config.cg_bound_depth = 14;
  const ExactResult cg = solve_exact(inst, config);

  ASSERT_TRUE(base.proven_optimal);
  ASSERT_TRUE(cg.proven_optimal);
  EXPECT_NEAR(base.makespan, cg.makespan, 1e-9);
  EXPECT_GT(cg.cg_pricing_rounds, 0u);
  EXPECT_GT(cg.cg_columns, 0u);
  EXPECT_LE(cg.nodes, base.nodes) << "config probes may only remove nodes";
  EXPECT_LE(10 * cg.nodes, 7 * base.nodes)
      << "config " << cg.nodes << " vs assignment " << base.nodes;
}

}  // namespace
}  // namespace setsched
