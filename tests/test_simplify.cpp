#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"
#include "core/generators.h"
#include "uniform/simplify.h"

namespace setsched {
namespace {

UniformInstance small_instance() {
  UniformInstance u;
  u.job_size = {20, 7, 0.5, 0.25, 9};
  u.job_class = {0, 0, 1, 1, 1};
  u.setup_size = {4, 8};
  u.speed = {1, 2};
  return u;
}

TEST(Simplify, RejectsNonPowerOfTwoEpsilon) {
  EXPECT_THROW((void)simplify_instance(small_instance(), 10.0, 0.3), CheckError);
}

TEST(Simplify, SlowMachinesRemoved) {
  UniformInstance u;
  u.job_size = {10};
  u.job_class = {0};
  u.setup_size = {1};
  u.speed = {100.0, 0.1, 50.0};  // with eps=1/2, threshold = 0.5*100/3 = 16.7
  const SimplifiedInstance s = simplify_instance(u, 10.0, 0.5);
  EXPECT_EQ(s.instance.num_machines(), 2u);
  EXPECT_EQ(s.machine_map, (std::vector<MachineId>{0, 2}));
}

TEST(Simplify, SmallJobsBecomePlaceholders) {
  const SimplifiedInstance s = simplify_instance(small_instance(), 10.0, 0.5);
  // Class 1: jobs 0.5, 0.25 are <= eps*s_1 = 4 -> replaced by placeholders
  // of size 4 (count = ceil(0.75/4) = 1). Job 9 (class 1) stays.
  std::size_t placeholders = 0;
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    if (s.original_job[j] == kUnassigned) {
      ++placeholders;
      EXPECT_EQ(s.instance.job_class[j], 1u);
    }
  }
  EXPECT_EQ(placeholders, 1u);
  EXPECT_EQ(s.merged_small_jobs[1], (std::vector<JobId>{2, 3}));
  EXPECT_TRUE(s.merged_small_jobs[0].empty());
}

TEST(Simplify, RoundingInflatesAtMostByEps) {
  UniformGenParams p;
  p.num_jobs = 60;
  p.num_classes = 6;
  const UniformInstance u = generate_uniform(p, 3);
  const double eps = 0.25;
  const SimplifiedInstance s = simplify_instance(u, 100.0, eps);
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    const JobId orig = s.original_job[j];
    if (orig == kUnassigned) continue;
    EXPECT_GE(s.instance.job_size[j] + 1e-9, u.job_size[orig]);
    EXPECT_LE(s.instance.job_size[j], (1 + eps) * u.job_size[orig] * (1 + 1e-9));
  }
  for (ClassId k = 0; k < u.num_classes(); ++k) {
    EXPECT_GE(s.instance.setup_size[k] + 1e-9, u.setup_size[k]);
  }
}

TEST(Simplify, SpeedsRoundedDownGeometrically) {
  UniformGenParams p;
  p.num_machines = 8;
  p.profile = SpeedProfile::kUniformRandom;
  p.max_speed_ratio = 16;
  const UniformInstance u = generate_uniform(p, 4);
  const double eps = 0.5;
  const SimplifiedInstance s = simplify_instance(u, 50.0, eps);
  for (std::size_t i = 0; i < s.instance.num_machines(); ++i) {
    const double orig = u.speed[s.machine_map[i]];
    EXPECT_LE(s.instance.speed[i], orig * (1 + 1e-9));
    EXPECT_GE(s.instance.speed[i] * (1 + eps), orig * (1 - 1e-9));
  }
}

TEST(Simplify, SizesAreOnTheDyadicGrid) {
  UniformGenParams p;
  p.num_jobs = 40;
  const UniformInstance u = generate_uniform(p, 5);
  const double eps = 0.25;
  const SimplifiedInstance s = simplify_instance(u, 75.0, eps);
  for (const double t : s.instance.job_size) {
    const int e = std::ilogb(t);
    const double unit = eps * std::ldexp(1.0, e);
    const double steps = t / unit;
    EXPECT_NEAR(steps, std::round(steps), 1e-9) << t;
  }
}

TEST(Simplify, LiftRestoresAllJobs) {
  const UniformInstance u = small_instance();
  const SimplifiedInstance s = simplify_instance(u, 10.0, 0.5);
  // Assign every simplified job to machine 0 (mapped id 0).
  Schedule simple{std::vector<MachineId>(s.instance.num_jobs(), 0)};
  const Schedule lifted = lift_schedule(s, u, simple);
  EXPECT_TRUE(lifted.complete());
  EXPECT_FALSE(schedule_error(u.to_unrelated(), lifted).has_value());
}

class LiftRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiftRoundTripTest, LiftedMakespanWithinEpsFactors) {
  UniformGenParams p;
  p.num_jobs = 30;
  p.num_machines = 4;
  p.num_classes = 4;
  p.min_job_size = 1;
  p.max_job_size = 60;
  const UniformInstance u = generate_uniform(p, GetParam());
  const double eps = 0.25;
  const double T = uniform_lower_bound(u) * 2.0;
  const SimplifiedInstance s = simplify_instance(u, T, eps);

  // Any schedule of the simplified instance: round-robin by job index.
  Schedule simple = Schedule::empty(s.instance.num_jobs());
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    simple.assignment[j] = static_cast<MachineId>(j % s.instance.num_machines());
  }
  const Schedule lifted = lift_schedule(s, u, simple);
  EXPECT_TRUE(lifted.complete());

  // Lemma 2.2-2.4 (backwards direction): the lifted schedule's makespan is
  // at most (1+eps)^2 times the simplified one (placeholder unpacking may
  // add one small job per class-machine; removed machines receive nothing).
  const double simplified_ms = makespan(s.instance, simple);
  const double lifted_ms = makespan(u, lifted);
  EXPECT_LE(lifted_ms, simplified_ms * (1 + eps) * (1 + eps) + 1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiftRoundTripTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Simplify, PlaceholderCountMatchesCeil) {
  UniformInstance u;
  u.job_size = {1, 1, 1, 1, 1, 1, 1, 10};  // 7 small of total 7
  u.job_class = {0, 0, 0, 0, 0, 0, 0, 0};
  u.setup_size = {4};  // eps*s = 2 at eps=1/2 -> ceil(7/2) = 4 placeholders
  u.speed = {1};
  // T small enough that the minimum-size raise (eps*vmin*T/(n+K)) stays
  // below the original sizes.
  const SimplifiedInstance s = simplify_instance(u, 16.0, 0.5);
  std::size_t placeholders = 0;
  for (JobId j = 0; j < s.instance.num_jobs(); ++j) {
    placeholders += s.original_job[j] == kUnassigned;
  }
  EXPECT_EQ(placeholders, 4u);
}

}  // namespace
}  // namespace setsched
