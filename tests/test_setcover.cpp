#include <gtest/gtest.h>

#include <cmath>

#include "setcover/reduction.h"
#include "setcover/setcover.h"
#include "unrelated/greedy.h"

namespace setsched {
namespace {

TEST(SetCover, ValidateRejectsUncoverable) {
  SetCoverInstance sc;
  sc.universe_size = 3;
  sc.sets = {{0, 1}};  // element 2 uncovered
  EXPECT_THROW(sc.validate(), CheckError);
}

TEST(SetCover, IsCoverBasics) {
  SetCoverInstance sc;
  sc.universe_size = 4;
  sc.sets = {{0, 1}, {2}, {3}, {1, 2, 3}};
  EXPECT_TRUE(is_cover(sc, {0, 3}));
  EXPECT_FALSE(is_cover(sc, {0, 1}));
  EXPECT_TRUE(is_cover(sc, {0, 1, 2}));
}

TEST(SetCover, GreedyFindsCover) {
  SetCoverInstance sc;
  sc.universe_size = 6;
  sc.sets = {{0, 1, 2}, {3, 4}, {5}, {0, 3, 5}, {1, 4}};
  const auto cover = greedy_cover(sc);
  EXPECT_TRUE(is_cover(sc, cover));
}

TEST(SetCover, GreedyOptimalOnPartition) {
  // Sets forming a partition: greedy must take all (and only) them.
  SetCoverInstance sc;
  sc.universe_size = 6;
  sc.sets = {{0, 1}, {2, 3}, {4, 5}};
  const auto cover = greedy_cover(sc);
  EXPECT_EQ(cover.size(), 3u);
}

TEST(SetCover, MinCoverLowerBound) {
  SetCoverInstance sc;
  sc.universe_size = 10;
  sc.sets = {{0, 1, 2}, {3, 4, 5}, {6, 7}, {8, 9}, {0, 5, 9}};
  EXPECT_EQ(min_cover_lower_bound(sc), 4u);  // ceil(10 / 3)
}

class PlantedSetCoverTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlantedSetCoverTest, PlantedIsCoverAndGreedyNearOptimal) {
  const std::size_t universe = 48;
  const std::size_t sets = 24;
  const std::size_t t = 6;
  const PlantedSetCover planted =
      generate_planted_setcover(universe, sets, t, GetParam());
  EXPECT_EQ(planted.planted.size(), t);
  EXPECT_TRUE(is_cover(planted.instance, planted.planted));
  const auto greedy = greedy_cover(planted.instance);
  EXPECT_TRUE(is_cover(planted.instance, greedy));
  // Greedy is an H_n approximation; on these instances it stays within
  // (ln universe + 1) * t.
  const double hn = std::log(static_cast<double>(universe)) + 1.0;
  EXPECT_LE(static_cast<double>(greedy.size()), hn * static_cast<double>(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedSetCoverTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SmallSetsSetCover, LowerBoundCertificate) {
  const std::size_t universe = 60;
  const std::size_t max_size = 5;
  const SetCoverInstance sc =
      generate_small_sets_setcover(universe, 30, max_size, 3);
  EXPECT_GE(min_cover_lower_bound(sc), universe / max_size);
  for (const auto& set : sc.sets) EXPECT_LE(set.size(), max_size);
}

TEST(Reduction, DimensionsAndStructure) {
  const PlantedSetCover planted = generate_planted_setcover(16, 8, 4, 1);
  ReductionParams params;
  params.num_classes = 6;
  params.seed = 2;
  const SetCoverReduction red = reduce_setcover(planted.instance, 4, params);
  EXPECT_EQ(red.instance.num_machines(), 8u);
  EXPECT_EQ(red.instance.num_classes(), 6u);
  EXPECT_EQ(red.instance.num_jobs(), 6u * 16u);
  // Unit setups everywhere; processing in {0, inf}.
  for (MachineId i = 0; i < 8; ++i) {
    for (ClassId k = 0; k < 6; ++k) {
      EXPECT_DOUBLE_EQ(red.instance.setup(i, k), 1.0);
    }
    for (JobId j = 0; j < red.instance.num_jobs(); ++j) {
      const double p = red.instance.proc(i, j);
      EXPECT_TRUE(p == 0.0 || p == kInfinity);
    }
  }
}

TEST(Reduction, EligibilityMatchesPermutedMembership) {
  const PlantedSetCover planted = generate_planted_setcover(12, 6, 3, 4);
  ReductionParams params;
  params.num_classes = 4;
  params.seed = 5;
  const SetCoverReduction red = reduce_setcover(planted.instance, 3, params);
  for (ClassId k = 0; k < 4; ++k) {
    for (MachineId i = 0; i < 6; ++i) {
      const auto& set = planted.instance.sets[red.permutation[k][i]];
      for (std::uint32_t e = 0; e < 12; ++e) {
        const bool member =
            std::find(set.begin(), set.end(), e) != set.end();
        EXPECT_EQ(red.instance.proc(i, red.job_of(k, e)) == 0.0, member);
      }
    }
  }
}

TEST(Reduction, DefaultClassCountFollowsPaper) {
  const PlantedSetCover planted = generate_planted_setcover(16, 8, 4, 6);
  const SetCoverReduction red = reduce_setcover(planted.instance, 4, {});
  // K = ceil(m/t * log2 m) = ceil(8/4 * 3) = 6.
  EXPECT_EQ(red.instance.num_classes(), 6u);
}

class YesInstanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YesInstanceTest, CoverScheduleIsValidAndBalanced) {
  const std::size_t universe = 32;
  const std::size_t m = 16;
  const std::size_t t = 4;
  const PlantedSetCover planted =
      generate_planted_setcover(universe, m, t, GetParam());
  ReductionParams params;
  params.seed = GetParam() + 100;
  const SetCoverReduction red = reduce_setcover(planted.instance, t, params);
  const ScheduleResult sr =
      schedule_from_cover(red, planted.instance, planted.planted);
  EXPECT_FALSE(schedule_error(red.instance, sr.schedule).has_value());
  // Whp bound from the proof: r = 2*K*e*t/m + 2*log2(m) setups per machine.
  const double K = static_cast<double>(red.num_classes());
  const double r = 2.0 * K * std::exp(1.0) * static_cast<double>(t) /
                       static_cast<double>(m) +
                   2.0 * std::log2(static_cast<double>(m));
  EXPECT_LE(sr.makespan, r) << "seed " << GetParam();
  // Total setups are exactly K * t (each class opens t machines).
  EXPECT_EQ(total_setups(red.instance, sr.schedule), red.num_classes() * t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, YesInstanceTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(NoInstance, AveragingLowerBoundHolds) {
  // Small-sets instance: any cover needs >= universe / max_set sets, so any
  // schedule of the reduction needs makespan >= K * that / m. Verify with a
  // heuristic schedule.
  const std::size_t universe = 40;
  const std::size_t m = 10;
  const std::size_t max_set = 4;  // cover lb = 10
  const SetCoverInstance sc =
      generate_small_sets_setcover(universe, m, max_set, 7);
  ReductionParams params;
  params.num_classes = 5;
  params.seed = 8;
  const SetCoverReduction red = reduce_setcover(sc, 10, params);
  const double lb = reduction_makespan_lower_bound(5, m, min_cover_lower_bound(sc));
  const ScheduleResult greedy = greedy_min_load(red.instance);
  EXPECT_GE(greedy.makespan + 1e-9, lb);
}

TEST(GapDemonstration, YesBeatsNoByLogFactorHeadroom) {
  // The experiment behind E4, in miniature: Yes instances admit schedules
  // with ~K*t/m setups per machine; No instances force >= K*cover_lb/m.
  const std::size_t universe = 36;
  const std::size_t m = 12;
  const std::size_t t = 3;
  const std::size_t kc = 12;

  const PlantedSetCover yes = generate_planted_setcover(universe, m, t, 11);
  ReductionParams params;
  params.num_classes = kc;
  params.seed = 12;
  const SetCoverReduction yes_red = reduce_setcover(yes.instance, t, params);
  const ScheduleResult yes_sched =
      schedule_from_cover(yes_red, yes.instance, yes.planted);

  const std::size_t max_set = universe / (3 * t);  // cover lb = 3t = 9
  const SetCoverInstance no_sc =
      generate_small_sets_setcover(universe, m, max_set, 13);
  const double no_lb = reduction_makespan_lower_bound(
      kc, m, min_cover_lower_bound(no_sc));

  // Yes-instance schedule strictly below the No-instance *lower bound*.
  EXPECT_LT(yes_sched.makespan, no_lb);
}

}  // namespace
}  // namespace setsched
