#include <gtest/gtest.h>

#include "uniform/groups.h"

namespace setsched {
namespace {

TEST(Groups, EpsilonFlooring) {
  EXPECT_DOUBLE_EQ(floor_epsilon_to_power_of_two(0.5), 0.5);
  EXPECT_DOUBLE_EQ(floor_epsilon_to_power_of_two(0.4), 0.25);
  EXPECT_DOUBLE_EQ(floor_epsilon_to_power_of_two(0.25), 0.25);
  EXPECT_DOUBLE_EQ(floor_epsilon_to_power_of_two(0.1), 0.0625);
  EXPECT_DOUBLE_EQ(floor_epsilon_to_power_of_two(1.0), 0.5);
}

TEST(Groups, BoundariesArePowersOfGammaOverVmin) {
  const GroupStructure g(0.5, 2.0, 10.0);  // gamma = 1/8
  EXPECT_DOUBLE_EQ(g.gamma(), 0.125);
  EXPECT_DOUBLE_EQ(g.delta(), 0.25);
  EXPECT_DOUBLE_EQ(g.lower_boundary(1), 2.0);        // vmin
  EXPECT_DOUBLE_EQ(g.lower_boundary(2), 16.0);       // vmin / gamma
  EXPECT_DOUBLE_EQ(g.lower_boundary(0), 0.25);       // vmin * gamma
}

TEST(Groups, LowerIndexConsistentWithBoundaries) {
  const GroupStructure g(0.5, 1.0, 1.0);  // gamma = 1/8, vmin = 1
  EXPECT_EQ(g.lower_index(1.0), 1);    // exactly vmin
  EXPECT_EQ(g.lower_index(7.9), 1);    // below 8
  EXPECT_EQ(g.lower_index(8.0), 2);    // boundary belongs to the next group
  EXPECT_EQ(g.lower_index(63.9), 2);
  EXPECT_EQ(g.lower_index(64.0), 3);
  EXPECT_EQ(g.lower_index(0.99), 0);
  EXPECT_EQ(g.lower_index(0.124), -1);  // below vmin * gamma
}

TEST(Groups, EverySpeedInExactlyTwoGroups) {
  const GroupStructure g(0.25, 1.0, 1.0);
  for (const double v : {1.0, 3.7, 64.0, 1000.0, 123456.0}) {
    int member = 0;
    for (int grp = -5; grp < 20; ++grp) {
      member += g.machine_in_group(v, grp);
    }
    EXPECT_EQ(member, 2) << "speed " << v;
  }
}

TEST(Groups, FringeCoreClassification) {
  const GroupStructure g(0.5, 1.0, 1.0);  // delta = 1/4
  const double setup = 8.0;
  EXPECT_TRUE(g.is_fringe_job(32.0, setup));   // >= s/delta = 32
  EXPECT_FALSE(g.is_fringe_job(31.0, setup));  // core (if >= eps*s)
}

TEST(Groups, SmallBigHugePartitionSizes) {
  const GroupStructure g(0.5, 1.0, 10.0);
  const double v = 2.0;  // capacity vT = 20, eps*v*T = 10
  EXPECT_TRUE(g.small_for(9.9, v));
  EXPECT_TRUE(g.big_for(10.0, v));
  EXPECT_TRUE(g.big_for(20.0, v));
  EXPECT_TRUE(g.huge_for(20.1, v));
  for (const double size : {0.1, 5.0, 10.0, 15.0, 20.0, 25.0}) {
    const int classification =
        g.small_for(size, v) + g.big_for(size, v) + g.huge_for(size, v);
    EXPECT_EQ(classification, 1) << "size " << size;
  }
}

TEST(Groups, NativeGroupContainsAllBigSpeeds) {
  // Remark-2.7-style property: for every job size, all speeds for which the
  // job is big lie inside the native group's range [lower, upper).
  const double eps = 0.25;
  const GroupStructure g(eps, 1.0, 4.0);
  for (const double p : {0.5, 1.0, 3.0, 17.0, 260.0}) {
    const int native = g.native_group(p);
    // Speeds with eps*v*T <= p <= v*T:  v in [p/T, p/(eps T)].
    const double v_lo = p / g.T();
    const double v_hi = p / (eps * g.T());
    EXPECT_GE(v_lo, g.lower_boundary(native)) << p;
    EXPECT_LT(v_hi, g.lower_boundary(native + 2)) << p;  // < v̂_native
  }
}

TEST(Groups, CoreGroupContainsCoreMachineSpeeds) {
  const double eps = 0.25;
  const GroupStructure g(eps, 1.0, 4.0);
  const double gamma = eps * eps * eps;
  for (const double s : {0.7, 2.0, 9.0, 200.0}) {
    const int core = g.core_group(s);
    // Core machine speeds: s <= T v < s / gamma.
    const double v_lo = s / g.T();
    const double v_hi = s / (gamma * g.T());
    EXPECT_GE(v_lo, g.lower_boundary(core)) << s;
    EXPECT_LE(v_hi, g.lower_boundary(core + 2)) << s;
  }
}

}  // namespace
}  // namespace setsched
