#include <gtest/gtest.h>

#include "core/generators.h"
#include "unrelated/greedy.h"

namespace setsched {
namespace {

TEST(GreedyMinLoad, ValidSchedule) {
  UnrelatedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 4;
  p.eligibility = 0.7;
  const Instance inst = generate_unrelated(p, 1);
  const ScheduleResult r = greedy_min_load(inst);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_NEAR(r.makespan, makespan(inst, r.schedule), 1e-9);
}

TEST(GreedyMinLoad, BalancesTrivialInstance) {
  // 4 unit jobs of one class, 2 identical machines, no setups: 2 each.
  Instance inst(2, 1, {0, 0, 0, 0});
  for (MachineId i = 0; i < 2; ++i) {
    for (JobId j = 0; j < 4; ++j) inst.set_proc(i, j, 1);
    inst.set_setup(i, 0, 0);
  }
  const ScheduleResult r = greedy_min_load(inst);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(GreedyClassBatch, OneSetupPerClass) {
  UnrelatedGenParams p;
  p.num_jobs = 24;
  p.num_machines = 4;
  p.num_classes = 6;
  const Instance inst = generate_unrelated(p, 2);
  const ScheduleResult r = greedy_class_batch(inst);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_LE(total_setups(inst, r.schedule), inst.num_classes());
}

TEST(GreedyClassBatch, BeatsMinLoadWhenSetupsDominate) {
  // Many tiny jobs per class with enormous setups: splitting a class (which
  // greedy_min_load will do) pays the setup repeatedly.
  UnrelatedGenParams p;
  p.num_jobs = 40;
  p.num_machines = 4;
  p.num_classes = 4;
  p.min_proc = 1;
  p.max_proc = 2;
  p.min_setup = 200;
  p.max_setup = 300;
  const Instance inst = generate_unrelated(p, 3);
  const ScheduleResult batch = greedy_class_batch(inst);
  const ScheduleResult spread = greedy_min_load(inst);
  EXPECT_LE(batch.makespan, spread.makespan + 1e-9);
}

TEST(GreedyMinLoad, BeatsClassBatchWhenSetupsFree) {
  // Zero setups and one giant class: batching on one machine is terrible.
  Instance inst(4, 1, std::vector<ClassId>(16, 0));
  for (MachineId i = 0; i < 4; ++i) {
    for (JobId j = 0; j < 16; ++j) inst.set_proc(i, j, 1);
    inst.set_setup(i, 0, 0);
  }
  const ScheduleResult batch = greedy_class_batch(inst);
  const ScheduleResult spread = greedy_min_load(inst);
  EXPECT_DOUBLE_EQ(spread.makespan, 4.0);
  EXPECT_DOUBLE_EQ(batch.makespan, 16.0);
}

TEST(GreedyClassBatch, FallsBackWhenClassDoesNotFitOneMachine) {
  // Class 0's jobs are split across eligibility: no single machine can host
  // the whole class.
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(1, 0, kInfinity);
  inst.set_proc(0, 1, kInfinity);
  inst.set_proc(1, 1, 1);
  inst.set_setup(0, 0, 5);
  inst.set_setup(1, 0, 5);
  const ScheduleResult r = greedy_class_batch(inst);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

class GreedyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyPropertyTest, BothHeuristicsProduceValidSchedules) {
  UnrelatedGenParams p;
  p.num_jobs = 25 + (GetParam() % 3) * 10;
  p.num_machines = 3 + GetParam() % 4;
  p.num_classes = 2 + GetParam() % 5;
  p.eligibility = GetParam() % 2 == 0 ? 1.0 : 0.6;
  const Instance inst = generate_unrelated(p, GetParam());
  const ScheduleResult a = greedy_min_load(inst);
  const ScheduleResult b = greedy_class_batch(inst);
  EXPECT_FALSE(schedule_error(inst, a.schedule).has_value());
  EXPECT_FALSE(schedule_error(inst, b.schedule).has_value());
  EXPECT_GT(a.makespan, 0.0);
  EXPECT_GT(b.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace setsched
