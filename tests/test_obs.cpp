// src/obs unit tests: phase-name round trips, PhaseTimer accumulation
// semantics, and — the load-bearing one — trace-buffer thread safety: many
// workers emitting spans concurrently under the real ThreadPool must lose
// nothing, duplicate nothing, and keep per-track timestamps monotone after
// the merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched::obs {
namespace {

// The suites mutate the process-wide timing/tracing gates; restore the
// defaults so test order never matters.
struct GateGuard {
  ~GateGuard() {
    set_timing_enabled(false);
    stop_trace();
  }
};

TEST(ObsPhase, NamesRoundTripAndStayStable) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    Phase back{};
    ASSERT_TRUE(phase_from_name(phase_name(phase), &back));
    EXPECT_EQ(back, phase);
  }
  Phase out{};
  EXPECT_FALSE(phase_from_name("no_such_phase", &out));
  EXPECT_FALSE(phase_from_name("", &out));
  // Serialization contract: these names are in JSONL files in the wild.
  EXPECT_EQ(phase_name(Phase::kLpSolve), "lp_solve");
  EXPECT_EQ(phase_name(Phase::kRootBound), "root_bound");
  EXPECT_EQ(phase_name(Phase::kColgenPricing), "colgen_pricing");
}

TEST(ObsPhase, PhaseTimesArithmeticAndEmptiness) {
  PhaseTimes a;
  EXPECT_TRUE(a.empty());
  a[Phase::kLpSolve] = 3.0;
  a[Phase::kDive] = 1.0;
  EXPECT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(a.lp_ms(), 3.0);

  PhaseTimes b;
  b[Phase::kLpSolve] = 1.0;
  const PhaseTimes d = a - b;
  EXPECT_DOUBLE_EQ(d[Phase::kLpSolve], 2.0);
  EXPECT_DOUBLE_EQ(d[Phase::kDive], 1.0);

  PhaseTimes c = b;
  c += d;
  EXPECT_EQ(c, a);
}

TEST(ObsPhase, TimerAccumulatesOnlyWhenEnabled) {
  const GateGuard guard;
  set_timing_enabled(false);
  const PhaseTimes before = phase_snapshot();
  {
    const PhaseTimer timer(Phase::kLpFtran);
  }
  EXPECT_TRUE((phase_snapshot() - before).empty());

  set_timing_enabled(true);
  {
    const PhaseTimer timer(Phase::kLpFtran);
    // Spin briefly so the span is strictly positive even on coarse clocks.
    double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink += static_cast<double>(i);
    ASSERT_GT(sink, 0.0);
  }
  const PhaseTimes delta = phase_snapshot() - before;
#ifdef SETSCHED_OBS_DISABLED
  EXPECT_TRUE(delta.empty());
#else
  EXPECT_GT(delta[Phase::kLpFtran], 0.0);
  EXPECT_DOUBLE_EQ(delta[Phase::kLpBtran], 0.0);
#endif
}

// Regression pin for the harness's per-cell attribution: phase_ms is the
// delta of two thread-local snapshots taken around solve(), so a pool worker
// that runs several cells back-to-back must never leak cell A's phase time
// into cell B's delta even though the worker's accumulator only ever grows.
TEST(PhaseLedger, WorkerReuseKeepsCellDeltasDisjoint) {
  const GateGuard guard;
  set_timing_enabled(true);
  constexpr std::size_t kCells = 8;  // 8 cells on 2 workers => heavy reuse
  std::array<PhaseTimes, kCells> deltas;
  ThreadPool pool(2);
  pool.parallel_for_dynamic(0, kCells, [&deltas](std::size_t cell) {
    const PhaseTimes before = phase_snapshot();
    // Direct accumulator write: deterministic, gate-independent stand-in for
    // the PhaseTimer spans a real solve would record on this worker.
    internal::local_phase_times()[static_cast<Phase>(cell)] +=
        5.0 + static_cast<double>(cell);
    deltas[cell] = phase_snapshot() - before;  // slot-exclusive, like records
  });
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const double expected =
          p == cell ? 5.0 + static_cast<double>(cell) : 0.0;
      EXPECT_DOUBLE_EQ(deltas[cell].ms[p], expected)
          << "cell " << cell << " phase " << phase_name(static_cast<Phase>(p));
    }
  }
}

// Same property on one thread across sequential "cells" (the --all task path
// and threads=1 sweeps): each delta covers exactly its own cell.
TEST(PhaseLedger, SequentialCellsOnOneThreadStayDisjoint) {
  const GateGuard guard;
  set_timing_enabled(true);
  const PhaseTimes before_a = phase_snapshot();
  internal::local_phase_times()[Phase::kDive] += 3.0;
  const PhaseTimes delta_a = phase_snapshot() - before_a;

  const PhaseTimes before_b = phase_snapshot();
  internal::local_phase_times()[Phase::kProve] += 4.0;
  const PhaseTimes delta_b = phase_snapshot() - before_b;

  EXPECT_DOUBLE_EQ(delta_a[Phase::kDive], 3.0);
  EXPECT_DOUBLE_EQ(delta_a[Phase::kProve], 0.0);
  EXPECT_DOUBLE_EQ(delta_b[Phase::kProve], 4.0);
  EXPECT_DOUBLE_EQ(delta_b[Phase::kDive], 0.0) << "cell A leaked into cell B";
}

#ifndef SETSCHED_OBS_DISABLED

TEST(ObsTrace, SpanAndInstantLifecycle) {
  const GateGuard guard;
  start_trace();
  {
    TraceSpan span("outer", "test");
    span.set_arg("value", 42.0);
    const TraceSpan inner("inner", "test");
    emit_instant("marker", "test", "reason", "because", "depth", 2.0);
  }
  stop_trace();

  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(trace_counts().events, 3u);
  EXPECT_EQ(trace_counts().dropped, 0u);

  // Destruction order records inner-first... but the merge sorts by ts, so
  // the instant (emitted inside both spans) comes after neither span starts.
  const auto find = [&](const std::string& name) {
    const auto it =
        std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
          return name == e.name;
        });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const TraceEvent outer = find("outer");
  const TraceEvent inner = find("inner");
  const TraceEvent marker = find("marker");
  EXPECT_GE(outer.dur_us, 0.0);
  EXPECT_GE(inner.dur_us, 0.0);
  EXPECT_LT(marker.dur_us, 0.0);  // instant
  EXPECT_STREQ(marker.arg_str_name, "reason");
  EXPECT_STREQ(marker.arg_str, "because");
  EXPECT_DOUBLE_EQ(marker.arg_num, 2.0);
  EXPECT_DOUBLE_EQ(outer.arg_num, 42.0);
  // Nesting: inner lies within outer on the same track.
  EXPECT_EQ(outer.track, inner.track);
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(ObsTrace, NothingRecordsWhileDisabled) {
  const GateGuard guard;
  stop_trace();
  {
    const TraceSpan span("ghost", "test");
    emit_instant("ghost", "test");
  }
  start_trace();
  stop_trace();  // start_trace clears buffers; nothing new recorded
  EXPECT_EQ(trace_counts().events, 0u);
  EXPECT_TRUE(collect_trace_events().empty());
}

// The tentpole thread-safety pin: N pool workers each record M spans
// concurrently. After the merge: no lost events, no duplicates, per-track
// timestamps monotone, zero dropped.
TEST(ObsTrace, ConcurrentSpansSurviveMergeIntact) {
  const GateGuard guard;
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kSpansPerTask = 50;
  constexpr std::size_t kTasks = 64;

  ThreadPool pool(kWorkers);
  start_trace();
  pool.parallel_for_dynamic(0, kTasks, [&](std::size_t task) {
    for (std::size_t s = 0; s < kSpansPerTask; ++s) {
      TraceSpan span("work", "test");
      span.set_arg("id", static_cast<double>(task * kSpansPerTask + s));
    }
  });
  stop_trace();

  const std::vector<TraceEvent> events = collect_trace_events();
  ASSERT_EQ(events.size(), kTasks * kSpansPerTask);
  EXPECT_EQ(trace_counts().dropped, 0u);

  // Every span id 0..N-1 exactly once: nothing lost, nothing duplicated.
  std::vector<char> seen(kTasks * kSpansPerTask, 0);
  for (const TraceEvent& e : events) {
    const auto id = static_cast<std::size_t>(e.arg_num);
    ASSERT_LT(id, seen.size());
    EXPECT_EQ(seen[id], 0) << "duplicate span id " << id;
    seen[id] = 1;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<std::ptrdiff_t>(seen.size()));

  // Per-track monotone timestamps after the global (ts, track) sort, and
  // every track is a named pool worker.
  std::map<std::uint32_t, double> last_ts;
  for (const TraceEvent& e : events) {
    const auto it = last_ts.find(e.track);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, e.ts_us);
    }
    last_ts[e.track] = e.ts_us;
  }
  EXPECT_LE(last_ts.size(), kWorkers);
  std::map<std::uint32_t, std::string> names;
  for (const auto& [track, name] : track_names()) names[track] = name;
  for (const auto& [track, ts] : last_ts) {
    (void)ts;
    ASSERT_TRUE(names.contains(track));
    EXPECT_EQ(names[track].rfind("worker-", 0), 0u) << names[track];
  }
}

TEST(ObsTrace, DropNewestCountsOverflow) {
  const GateGuard guard;
  // start_trace floors the per-thread capacity at 16; also pins that a
  // smaller capacity takes effect even after a prior larger trace (the
  // limit must not be the vector's high-water allocation).
  start_trace(/*capacity_per_thread=*/16);
  for (int i = 0; i < 20; ++i) emit_instant("tick", "test");
  stop_trace();
  EXPECT_EQ(trace_counts().events, 16u);
  EXPECT_EQ(trace_counts().dropped, 4u);
}

TEST(ObsTrace, ChromeJsonIsWellFormedAndCarriesMetadata) {
  const GateGuard guard;
  start_trace();
  set_thread_track_name("main");
  {
    TraceSpan span(intern("exact-dive"), "solve");
    span.set_arg("preset", intern("unrelated-small"));
    emit_instant("node", "exact", "reason", "beam", "depth", 1.0);
  }
  stop_trace();

  std::ostringstream os;
  write_chrome_trace(os);
  const std::string out = os.str();

  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
  EXPECT_NE(out.find("\"setschedDropped\":0"), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);  // thread_name meta
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"exact-dive\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"reason\":\"beam\""), std::string::npos);
  // Balanced braces/brackets: cheap structural well-formedness check (the CI
  // python validator does the real JSON parse).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

#endif  // SETSCHED_OBS_DISABLED

}  // namespace
}  // namespace setsched::obs
