#include <gtest/gtest.h>

#include <algorithm>

#include "colgen/config_lp.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"

namespace setsched {
namespace {

TEST(ConfigLp, FeasibleAtGenerousT) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 1);
  const double T = unrelated_upper_bound(inst) * 1.5;
  const ConfigLpResult r = solve_config_lp(inst, T);
  EXPECT_EQ(r.status, ConfigLpStatus::kFeasible);
  EXPECT_GT(r.columns, 0u);
}

TEST(ConfigLp, InfeasibleWellBelowFloor) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 2);
  const double T = assignment_lp_floor(inst) * 0.4;
  const ConfigLpResult r = solve_config_lp(inst, T);
  EXPECT_EQ(r.status, ConfigLpStatus::kInfeasibleAtGrid);
  EXPECT_LT(r.coverage, static_cast<double>(inst.num_jobs()));
}

void expect_valid_fractional(const Instance& inst,
                             const FractionalAssignment& f, double T) {
  const double tol = 1e-5;
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    double total = 0.0;
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      const double x = f.x(i, j);
      if (x > tol) {
        EXPECT_TRUE(inst.eligible(i, j));
        EXPECT_LE(x, f.y(i, inst.job_class(j)) + tol);  // (4)
      }
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-4) << "job " << j;        // (2)
  }
  for (MachineId i = 0; i < inst.num_machines(); ++i) {   // (1)
    double load = 0.0;
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      if (f.x(i, j) > 0.0) load += f.x(i, j) * inst.proc(i, j);
    }
    for (ClassId k = 0; k < inst.num_classes(); ++k) {
      if (f.y(i, k) > 0.0 && inst.setup(i, k) < kInfinity) {
        load += f.y(i, k) * inst.setup(i, k);
      }
    }
    EXPECT_LE(load, T * (1 + 1e-3)) << "machine " << i;
  }
}

class ConfigLpRecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigLpRecoveryTest, RecoveredSolutionSatisfiesAssignmentLp) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, GetParam());
  const double T = unrelated_upper_bound(inst);
  const ConfigLpResult r = solve_config_lp(inst, T);
  ASSERT_EQ(r.status, ConfigLpStatus::kFeasible) << "seed " << GetParam();
  expect_valid_fractional(inst, r.fractional, T);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigLpRecoveryTest,
                         ::testing::Range<std::uint64_t>(0, 10));

class ConfigLpVsDirectTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigLpVsDirectTest, GridFeasibleImpliesDirectLpFeasible) {
  // The configuration LP is at least as strong as ILP-UM's relaxation; a
  // grid-feasible verdict must therefore be accepted by the direct LP.
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, GetParam() + 20);
  for (const double f : {1.0, 1.4}) {
    const double T = assignment_lp_floor(inst) * f * 1.6;
    const ConfigLpResult cfg = solve_config_lp(inst, T);
    if (cfg.status == ConfigLpStatus::kFeasible) {
      EXPECT_TRUE(solve_assignment_lp(inst, T * (1 + 1e-6)).has_value())
          << "seed " << GetParam() << " T " << T;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigLpVsDirectTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(ConfigLp, ParallelPricingMatchesSequential) {
  UnrelatedGenParams p;
  p.num_jobs = 16;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 30);
  const double T = unrelated_upper_bound(inst);
  ThreadPool pool(3);
  ConfigLpOptions seq;
  ConfigLpOptions par;
  par.pool = &pool;
  const ConfigLpResult a = solve_config_lp(inst, T, seq);
  const ConfigLpResult b = solve_config_lp(inst, T, par);
  EXPECT_EQ(a.status, b.status);
  EXPECT_NEAR(a.coverage, b.coverage, 1e-6);
}

TEST(ConfigRounding, ProducesValidSchedule) {
  UnrelatedGenParams p;
  p.num_jobs = 18;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 40);
  RoundingOptions ropt;
  ropt.seed = 3;
  ropt.trials = 2;
  ropt.search_precision = 0.1;
  const RoundingResult r = randomized_rounding_config(inst, ropt);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_GT(r.lp_T, 0.0);
  EXPECT_GE(r.makespan + 1e-9, r.lp_lower_bound);
}

TEST(ConfigRounding, ComparableToDirectLpRounding) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 3;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 50);
  RoundingOptions ropt;
  ropt.seed = 9;
  ropt.trials = 3;
  ropt.search_precision = 0.08;
  const RoundingResult direct = randomized_rounding(inst, ropt);
  const RoundingResult config = randomized_rounding_config(inst, ropt);
  // Both target the same fractional polytope (config at a conservative
  // grid); results should be within a small factor of each other.
  EXPECT_LE(config.makespan, 2.0 * direct.makespan + 1e-9);
  EXPECT_LE(direct.makespan, 2.0 * config.makespan + 1e-9);
}

// Regression: randomized_rounding_config used to set lp_solves to the
// number of *outer* solve_config_lp calls (one per T-search probe), dropping
// the inner per-round RMP counters on the floor. With the bisection disabled
// (huge search_precision) the T-search makes exactly one outer call at hi,
// so the reported effort must equal that call's inner counters — the old
// code reported exactly 1.
TEST(ConfigRounding, LpEffortCountersAccumulateInnerRounds) {
  UnrelatedGenParams p;
  p.num_jobs = 16;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 60);
  const double lo = assignment_lp_floor(inst);
  const double hi = std::max(lo, unrelated_upper_bound(inst));
  const ConfigLpResult probe = solve_config_lp(inst, hi);
  // Preconditions for the equality below: the first probe is already
  // feasible (no widening) and column generation ran more than one round.
  ASSERT_EQ(probe.status, ConfigLpStatus::kFeasible);
  ASSERT_GT(probe.lp_solves, 1u);
  ASSERT_GT(probe.simplex_iterations, 0u);

  RoundingOptions ropt;
  ropt.seed = 1;
  ropt.trials = 1;
  ropt.search_precision = 1e9;  // hi/lo < 1 + precision: no bisection probes
  const RoundingResult r = randomized_rounding_config(inst, ropt);
  EXPECT_EQ(r.lp_solves, probe.lp_solves);
  EXPECT_EQ(r.lp_iterations, probe.simplex_iterations);
}

TEST(ConfigLp, PricingHonorsSetupCosts) {
  // One machine, two classes; T fits one class + its setup but not both.
  Instance inst(1, 2, {0, 1});
  inst.set_proc(0, 0, 4);
  inst.set_proc(0, 1, 4);
  inst.set_setup(0, 0, 4);
  inst.set_setup(0, 1, 4);
  // T = 8: exactly one (job + setup); coverage can only reach 1 of 2.
  const ConfigLpResult r = solve_config_lp(inst, 8.0);
  EXPECT_NE(r.status, ConfigLpStatus::kFeasible);
  EXPECT_LE(r.coverage, 1.0 + 1e-6);
  // T = 16: both classes fit.
  const ConfigLpResult r2 = solve_config_lp(inst, 16.0);
  EXPECT_EQ(r2.status, ConfigLpStatus::kFeasible);
}

}  // namespace
}  // namespace setsched
