#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"

namespace setsched {
namespace {

TEST(Exact, SingleJobSingleMachine) {
  Instance inst(1, 1, {0});
  inst.set_proc(0, 0, 5);
  inst.set_setup(0, 0, 3);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
  EXPECT_DOUBLE_EQ(r.lower_bound, 8.0);
  EXPECT_DOUBLE_EQ(r.gap, 0.0);
}

TEST(Exact, PrefersSplittingAcrossMachines) {
  // Two identical machines, two independent classes: split is optimal.
  Instance inst(2, 2, {0, 1});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 4);
    inst.set_proc(i, 1, 4);
    inst.set_setup(i, 0, 1);
    inst.set_setup(i, 1, 1);
  }
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_NE(r.schedule.assignment[0], r.schedule.assignment[1]);
}

TEST(Exact, BatchingBeatsSplittingWithHugeSetups) {
  // Class 0 has a huge setup and two jobs; class 1 occupies the other
  // machine. Splitting class 0 would pay the 100-setup twice on top of the
  // class-1 work: batching it on one machine is optimal (makespan 104).
  Instance inst(2, 2, {0, 0, 1});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 2);
    inst.set_proc(i, 1, 2);
    inst.set_proc(i, 2, 50);
    inst.set_setup(i, 0, 100);
    inst.set_setup(i, 1, 1);
  }
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 104.0);
  EXPECT_EQ(r.schedule.assignment[0], r.schedule.assignment[1]);
  EXPECT_NE(r.schedule.assignment[2], r.schedule.assignment[0]);
}

TEST(Exact, RespectsEligibility) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(1, 0, kInfinity);
  inst.set_proc(0, 1, kInfinity);
  inst.set_proc(1, 1, 1);
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.schedule.assignment[0], 0u);
  EXPECT_EQ(r.schedule.assignment[1], 1u);
}

TEST(Exact, HonorsInitialUpperBound) {
  Instance inst(1, 1, {0, 0});
  inst.set_proc(0, 0, 2);
  inst.set_proc(0, 1, 3);
  inst.set_setup(0, 0, 1);
  ExactOptions opt;
  opt.initial_upper_bound = 6.0;  // exactly optimal; must still find it
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

// Regression for the unsound upper-bound cut: the external bound used to be
// treated exclusively (`new_load >= best_ - 1e-12` with best_ tightened to
// the bound WITHOUT a schedule), so a bound equal to OPT pruned every
// optimal schedule and the solver returned the strictly worse greedy
// incumbent — above its own reported bound — still flagged proven_optimal.
TEST(Exact, BoundEqualToOptimumIsInclusive) {
  // best_machine_schedule puts both jobs on machine 0 (4+1 < 5+1 per job)
  // for makespan 9; the optimum splits them for makespan 6.
  Instance inst(2, 1, {0, 0});
  for (JobId j = 0; j < 2; ++j) {
    inst.set_proc(0, j, 4);
    inst.set_proc(1, j, 5);
  }
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  ASSERT_DOUBLE_EQ(makespan(inst, best_machine_schedule(inst)), 9.0);

  for (const bool lp : {false, true}) {
    ExactOptions opt;
    opt.use_lp_bounds = lp;
    opt.initial_upper_bound = 6.0;  // == OPT: inclusive, must be attained
    const ExactResult r = solve_exact(inst, opt);
    EXPECT_TRUE(r.proven_optimal) << "lp=" << lp;
    EXPECT_DOUBLE_EQ(r.makespan, 6.0) << "lp=" << lp;
    // The returned schedule must actually meet the reported makespan (the
    // old bug returned the greedy schedule with makespan 9 here).
    EXPECT_NEAR(makespan(inst, r.schedule), r.makespan, 1e-12) << "lp=" << lp;
    EXPECT_LE(r.makespan, opt.initial_upper_bound + 1e-9) << "lp=" << lp;
  }
}

TEST(Exact, UniformOverloadMatchesUnrelated) {
  UniformGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 2;
  const UniformInstance u = generate_uniform(p, 77);
  const ExactResult a = solve_exact(u);
  const ExactResult b = solve_exact(u.to_unrelated());
  EXPECT_TRUE(a.proven_optimal);
  EXPECT_NEAR(a.makespan, b.makespan, 1e-9);
}

ExactOptions no_lp_options() {
  ExactOptions opt;
  opt.use_lp_bounds = false;
  return opt;
}

TEST(Exact, NodeBudgetAborts) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 5);
  ExactOptions opt = no_lp_options();
  opt.max_nodes = 10;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_LE(r.nodes, 10u);
  // Still returns a feasible schedule (the greedy incumbent) with a
  // certified gap against the combinatorial lower bound.
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_GT(r.gap, 0.0);
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GE(r.makespan, r.lower_bound);
}

// A one-node budget is the extreme abort path: the result must be the
// incumbent with proven_optimal == false and a finite positive gap — never
// a silent claim of ground truth.
TEST(Exact, OneNodeBudgetReportsGapNotOptimality) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 5);
  for (const bool lp : {false, true}) {
    ExactOptions opt;
    opt.use_lp_bounds = lp;
    opt.max_nodes = 1;
    const ExactResult r = solve_exact(inst, opt);
    EXPECT_FALSE(r.proven_optimal) << "lp=" << lp;
    EXPECT_GT(r.gap, 0.0) << "lp=" << lp;
    EXPECT_TRUE(std::isfinite(r.gap)) << "lp=" << lp;
    EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  }
}

// Regression for the off-by-one budget check: a tree fully explored at
// EXACTLY max_nodes nodes used to be flagged aborted. Only a search that
// actually stops early may clear proven_optimal.
TEST(Exact, ExactlyExhaustedBudgetStaysProven) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 7);
  const ExactResult full = solve_exact(inst, no_lp_options());
  ASSERT_TRUE(full.proven_optimal);
  ASSERT_GT(full.nodes, 1u);

  ExactOptions exact_budget = no_lp_options();
  exact_budget.max_nodes = full.nodes;
  const ExactResult at_budget = solve_exact(inst, exact_budget);
  EXPECT_TRUE(at_budget.proven_optimal);
  EXPECT_EQ(at_budget.nodes, full.nodes);
  EXPECT_DOUBLE_EQ(at_budget.makespan, full.makespan);

  ExactOptions too_small = no_lp_options();
  too_small.max_nodes = full.nodes - 1;
  const ExactResult truncated = solve_exact(inst, too_small);
  EXPECT_FALSE(truncated.proven_optimal);
}

/// Reference: plain exhaustive enumeration, no pruning.
double enumerate_opt(const Instance& inst) {
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  Schedule s = Schedule::empty(n);
  double best = kInfinity;
  const auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n) {
      if (!schedule_error(inst, s).has_value()) {
        best = std::min(best, makespan(inst, s));
      }
      return;
    }
    for (MachineId i = 0; i < m; ++i) {
      if (!inst.eligible(i, depth)) continue;
      s.assignment[depth] = i;
      self(self, depth + 1);
      s.assignment[depth] = kUnassigned;
    }
  };
  recurse(recurse, 0);
  return best;
}

/// Differential contract shared by every randomized suite below: both LP
/// configurations must reproduce brute force exactly and report a coherent
/// certificate.
void expect_matches_enumeration(const Instance& inst, std::uint64_t seed) {
  const double reference = enumerate_opt(inst);
  for (const bool lp : {false, true}) {
    ExactOptions opt;
    opt.use_lp_bounds = lp;
    const ExactResult r = solve_exact(inst, opt);
    EXPECT_TRUE(r.proven_optimal) << "seed " << seed << " lp " << lp;
    EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << seed << " lp " << lp;
    EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
    EXPECT_NEAR(makespan(inst, r.schedule), r.makespan, 1e-9);
    EXPECT_DOUBLE_EQ(r.gap, 0.0);
    EXPECT_NEAR(r.lower_bound, r.makespan, 1e-9);
  }
}

class ExactRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRandomTest, MatchesExhaustiveEnumeration) {
  UnrelatedGenParams p;
  p.num_jobs = 7;
  p.num_machines = 3;
  p.num_classes = 3;
  p.eligibility = 0.8;
  expect_matches_enumeration(generate_unrelated(p, GetParam()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandomTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class ExactHolesRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

// Aggressive eligibility holes (each job still has one machine by the
// generator contract): pruning and symmetry breaking must stay sound when
// machines are not interchangeable for every job.
TEST_P(ExactHolesRandomTest, MatchesEnumerationWithEligibilityHoles) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.5;
  expect_matches_enumeration(generate_unrelated(p, GetParam() + 100),
                             GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactHolesRandomTest,
                         ::testing::Range<std::uint64_t>(0, 15));

class ExactZeroSetupRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Zero setup times degenerate the problem to plain R||Cmax; the setup-aware
// pruning (class_on bookkeeping, paid-setup dominance) must not break.
TEST_P(ExactZeroSetupRandomTest, MatchesEnumerationWithZeroSetups) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 2;
  p.min_setup = 0.0;
  p.max_setup = 0.0;
  expect_matches_enumeration(generate_unrelated(p, GetParam() + 300),
                             GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactZeroSetupRandomTest,
                         ::testing::Range<std::uint64_t>(0, 15));

class ExactUniformRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactUniformRandomTest, OptimalAtLeastLowerBound) {
  UniformGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  const UniformInstance u = generate_uniform(p, GetParam() + 500);
  const ExactResult r = solve_exact(u);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_GE(r.makespan + 1e-9, uniform_lower_bound(u)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactUniformRandomTest,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(Exact, SymmetryBreakingStillOptimal) {
  // 4 identical machines: symmetry breaking must not lose the optimum.
  UniformGenParams p;
  p.num_jobs = 9;
  p.num_machines = 4;
  p.num_classes = 2;
  p.profile = SpeedProfile::kIdentical;
  const UniformInstance u = generate_uniform(p, 31);
  const Instance inst = u.to_unrelated();
  const double reference = enumerate_opt(inst);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.makespan, reference, 1e-9);
}

// Acceptance pin: on an n=14 unrelated instance the LP-bounded search must
// close the tree with >= 5x fewer nodes than the seed-equivalent
// configuration (DFS with combinatorial bounds only, no memo), at the same
// optimum. This is the instance class the seed solver could not close
// within small node budgets.
TEST(Exact, LpBoundsCutNodesAtLeastFiveFold) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);

  ExactOptions seed_like = no_lp_options();
  seed_like.memo_limit = 0;
  const ExactResult plain = solve_exact(inst, seed_like);

  ExactOptions lp_bounded;
  lp_bounded.lp_bound_depth = 14;
  const ExactResult bounded = solve_exact(inst, lp_bounded);

  ASSERT_TRUE(plain.proven_optimal);
  ASSERT_TRUE(bounded.proven_optimal);
  EXPECT_NEAR(plain.makespan, bounded.makespan, 1e-9);
  EXPECT_GT(bounded.lp_bounds_used, 0u);
  EXPECT_GE(plain.nodes, 5 * bounded.nodes)
      << "plain " << plain.nodes << " vs lp " << bounded.nodes;
}

// Reduced-cost fixing must be an acceleration, never a change of answer:
// with fixing on and off the search proves the same optimum, and fixing
// never expands MORE nodes. Differential against brute force on aggressive
// eligibility holes, where an unsound exclusion would show immediately.
TEST(Exact, ReducedCostFixingNeverExcludesTheOptimum) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.6;
  std::size_t total_on = 0;
  std::size_t total_off = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Instance inst = generate_unrelated(p, seed + 900);
    const double reference = enumerate_opt(inst);
    ExactOptions fixing_on;
    ExactOptions fixing_off;
    fixing_off.reduced_cost_fixing = false;
    const ExactResult on = solve_exact(inst, fixing_on);
    const ExactResult off = solve_exact(inst, fixing_off);
    ASSERT_TRUE(on.proven_optimal) << "seed " << seed;
    ASSERT_TRUE(off.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(on.makespan, reference, 1e-9) << "seed " << seed;
    EXPECT_NEAR(off.makespan, reference, 1e-9) << "seed " << seed;
    EXPECT_EQ(off.fixed_vars, 0u) << "seed " << seed;
    EXPECT_FALSE(schedule_error(inst, on.schedule).has_value());
    total_on += on.nodes;
    total_off += off.nodes;
  }
  // Per-seed node counts are not strictly monotone (a fixed pair can deprive
  // the dominance memo of a state that would have pruned a later sibling),
  // but in aggregate fixing must not blow the tree up.
  EXPECT_LE(total_on, total_off + total_off / 10)
      << "fixing on " << total_on << " vs off " << total_off;
}

// The new LP-substrate counters must actually fire on an instance the LP
// bounder works hard on: node probes are dual re-optimizations of one
// parametric model, and reduced-cost fixing excludes pairs along the way.
TEST(Exact, LpBoundsReportDualSolvesAndFixedVars) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);
  ExactOptions opt;
  opt.lp_bound_depth = 14;
  const ExactResult r = solve_exact(inst, opt);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_GT(r.lp_bounds_used, 0u);
  EXPECT_GT(r.lp_dual_solves, 0u)
      << "min-T node probes must re-optimize dually";
  EXPECT_LE(r.lp_dual_solves, r.lp_bounds_used);
  EXPECT_GT(r.fixed_vars, 0u) << "no pair was ever reduced-cost-fixed";
}

TEST(ExactDive, FindsOptimumOnTinyInstancesAndProvesIt) {
  // With a beam wider than the full state space the dive is exhaustive, so
  // it must return the brute-force optimum and may claim proven_optimal.
  UnrelatedGenParams p;
  p.num_jobs = 7;
  p.num_machines = 3;
  p.num_classes = 3;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = generate_unrelated(p, seed);
    const double reference = enumerate_opt(inst);
    ExactOptions opt;
    opt.mode = ExactMode::kDive;
    opt.beam_width = 100000;
    const ExactResult r = solve_exact(inst, opt);
    EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << seed;
  }
}

TEST(ExactDive, MidSizeIncumbentCarriesCertifiedGap) {
  UnrelatedGenParams p;
  p.num_jobs = 40;
  p.num_machines = 6;
  p.num_classes = 8;
  p.eligibility = 0.85;
  p.correlated = true;
  const Instance inst = generate_unrelated(p, 1);
  ExactOptions opt;
  opt.mode = ExactMode::kDive;
  opt.time_limit_s = 10.0;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_NEAR(makespan(inst, r.schedule), r.makespan, 1e-9);
  EXPECT_GE(r.gap, 0.0);
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GE(r.makespan, r.lower_bound * (1.0 - 1e-9));
  EXPECT_GE(r.lower_bound, unrelated_lower_bound(inst) * (1.0 - 1e-9));
  EXPECT_GT(r.nodes, 0u);
  // The dive must beat the trivial incumbent it starts from.
  EXPECT_LE(r.makespan, makespan(inst, best_machine_schedule(inst)) + 1e-9);
}

// PR 5's dive silently ignored initial_upper_bound; the bound must now prune
// (inclusively — an exclusive cut here would prune the optimum itself and
// return the greedy makespan 9).
TEST(ExactDive, HonorsInitialUpperBoundInclusively) {
  Instance inst(2, 1, {0, 0});
  for (JobId j = 0; j < 2; ++j) {
    inst.set_proc(0, j, 4);
    inst.set_proc(1, j, 5);
  }
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  ExactOptions opt;
  opt.mode = ExactMode::kDive;
  opt.initial_upper_bound = 6.0;  // == OPT
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_NEAR(makespan(inst, r.schedule), 6.0, 1e-12);
}

// A budget-starved dive seeded with a known schedule must never return a
// worse one: the initial_schedule is the incumbent the beam has to beat,
// not a hint it may drop (this is the contract the dive-then-prove chain's
// abort guarantee stands on).
TEST(ExactDive, AdoptsInitialScheduleUnderZeroNodeBudget) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);
  const ExactResult full = solve_exact(inst);
  ASSERT_TRUE(full.proven_optimal);

  ExactOptions opt;
  opt.mode = ExactMode::kDive;
  opt.max_nodes = 0;  // beam collapses to width 1 from the root
  opt.initial_schedule = full.schedule;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_NEAR(r.makespan, full.makespan, 1e-9);
  EXPECT_NEAR(makespan(inst, r.schedule), full.makespan, 1e-9);
}

TEST(ExactDive, RejectsInfeasibleInitialSchedule) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(1, 0, kInfinity);  // job 0 not eligible on machine 1
  inst.set_proc(0, 1, 1);
  inst.set_proc(1, 1, 1);
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  Schedule bad = Schedule::empty(2);
  bad.assignment = {1, 1};
  for (const ExactMode mode :
       {ExactMode::kDive, ExactMode::kProve, ExactMode::kDiveThenProve}) {
    ExactOptions opt;
    opt.mode = mode;
    opt.initial_schedule = bad;
    EXPECT_THROW((void)solve_exact(inst, opt), CheckError);
  }
}

/// Hand-built level where the survivors exactly fit the beam and the only
/// overflow candidate is a duplicate state reached through two job orders:
/// machine columns are distinct (no machine symmetry), j0 is its own class,
/// j1/j2 are identical class-1 jobs. At the last level the beam {11,7} and
/// {17,0} both reach loads {17,7} with identical paid setups — a true
/// duplicate that sorts last.
Instance truncation_pin_instance() {
  Instance inst(2, 3, {0, 1, 1});
  inst.set_proc(0, 0, 10);
  inst.set_proc(1, 0, 20);
  for (JobId j = 1; j <= 2; ++j) {
    inst.set_proc(0, j, 4);
    inst.set_proc(1, j, 5);
  }
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_setup(i, 0, 1);
    inst.set_setup(i, 1, 2);
  }
  return inst;
}

// Regression for the over-eager truncated flag: PR 5 declared the beam
// truncated the moment the kept set filled, BEFORE checking whether the
// overflowing candidate was dominated. A dominated (here: duplicate)
// overflow is redundant — dropping it loses nothing — so a beam whose width
// exactly fits the reachable survivors is still an exhaustive search and
// must keep its proven_optimal certificate.
TEST(ExactDive, ExactFitBeamWithDominatedOverflowStaysProven) {
  const Instance inst = truncation_pin_instance();
  ASSERT_DOUBLE_EQ(enumerate_opt(inst), 12.0);

  ExactOptions opt;
  opt.mode = ExactMode::kDive;
  opt.use_lp_bounds = false;  // keep the level trace free of fixed pairs
  opt.beam_width = 2;         // survivors per level: 1, 2, 2 — exact fit
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_NEAR(r.makespan, 12.0, 1e-9);
  EXPECT_TRUE(r.proven_optimal)
      << "dominated overflow at an exactly-full beam flagged as truncation";

  // Control: width 1 genuinely drops a non-dominated state, and the
  // combinatorial lower bound sits below OPT — establishing that the width-2
  // certificate above can only come from search completeness, which is
  // exactly what the old flag destroyed.
  ExactOptions narrow = opt;
  narrow.beam_width = 1;
  const ExactResult t = solve_exact(inst, narrow);
  EXPECT_FALSE(t.proven_optimal);
  EXPECT_LT(t.lower_bound, 12.0 - 1e-9);
}

// The dominance prefilter cap is a speed/coverage dial, never a correctness
// one: a kept dominated state wastes a beam slot but is never wrong, so on a
// beam wide enough to hold every survivor the makespan must not depend on
// the scan depth (1 = nearly no prefilter, 64 = default, 0 = scan all).
TEST(ExactDive, DominanceScanCapNeverChangesTheMakespan) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = generate_unrelated(p, seed + 40);
    double reference = -1.0;
    for (const std::size_t scan : {std::size_t{1}, std::size_t{64},
                                   std::size_t{0}}) {
      ExactOptions opt;
      opt.mode = ExactMode::kDive;
      opt.beam_width = 100000;
      opt.dive_dominance_scan = scan;
      const ExactResult r = solve_exact(inst, opt);
      EXPECT_TRUE(r.proven_optimal) << "seed " << seed << " scan " << scan;
      if (reference < 0.0) {
        reference = r.makespan;
      } else {
        EXPECT_NEAR(r.makespan, reference, 1e-9)
            << "seed " << seed << " scan " << scan;
      }
    }
  }
}

TEST(ExactDive, NeverClaimsOptimalityBelowTheBound) {
  // Dive on a hard mid-size instance: whatever it returns, a proven claim
  // must coincide with a zero gap and makespan == lower_bound.
  UnrelatedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 6;
  const Instance inst = generate_unrelated(p, 9);
  ExactOptions opt;
  opt.mode = ExactMode::kDive;
  opt.beam_width = 64;
  const ExactResult r = solve_exact(inst, opt);
  if (r.proven_optimal) {
    EXPECT_DOUBLE_EQ(r.gap, 0.0);
    EXPECT_NEAR(r.makespan, r.lower_bound, 1e-9 * std::max(1.0, r.makespan));
  } else {
    EXPECT_GT(r.gap, 0.0);
  }
}

// The half of the ignored-bound bug that bit the prove mode: a bare
// initial_upper_bound tightened the cutoff but the SCHEDULE achieving it was
// thrown away, so a budget abort fell back to the greedy incumbent. With
// initial_schedule the abort path must return at least that schedule.
TEST(Exact, InitialScheduleSurvivesBudgetAbort) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);
  const ExactResult full = solve_exact(inst);
  ASSERT_TRUE(full.proven_optimal);
  const double greedy = makespan(inst, best_machine_schedule(inst));
  ASSERT_GT(greedy, full.makespan + 1e-9);

  ExactOptions opt;
  opt.max_nodes = 1;
  opt.initial_schedule = full.schedule;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_NEAR(r.makespan, full.makespan, 1e-9);
  EXPECT_NEAR(makespan(inst, r.schedule), full.makespan, 1e-9);
}

class DiveThenProveRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// The chain is still ground truth: on small instances with eligibility holes
// it must reproduce brute force exactly, proven, with merged counters that
// at least account for the dive phase.
TEST_P(DiveThenProveRandomTest, MatchesEnumerationWithEligibilityHoles) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.5;
  const Instance inst = generate_unrelated(p, GetParam() + 100);
  const double reference = enumerate_opt(inst);
  ExactOptions opt;
  opt.mode = ExactMode::kDiveThenProve;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_TRUE(r.proven_optimal) << "seed " << GetParam();
  EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << GetParam();
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_DOUBLE_EQ(r.gap, 0.0);
  EXPECT_GT(r.nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiveThenProveRandomTest,
                         ::testing::Range<std::uint64_t>(0, 15));

// Zero setups (plain R||Cmax) through the chain: the dive's paid-setup
// dominance and the seeded prove must both stay sound when every setup
// degenerates to zero.
TEST(DiveThenProve, MatchesEnumerationWithZeroSetups) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 2;
  p.min_setup = 0.0;
  p.max_setup = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = generate_unrelated(p, seed + 300);
    ExactOptions opt;
    opt.mode = ExactMode::kDiveThenProve;
    const ExactResult r = solve_exact(inst, opt);
    EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(r.makespan, enumerate_opt(inst), 1e-9) << "seed " << seed;
  }
}

// Acceptance pin of this PR: seeding the prove pass with the dive's
// incumbent must close the pinned n=14 tree in at least 2x fewer DFS nodes
// than the PR 5 cold start — the whole point of chaining is that the cutoff
// (and with it reduced-cost fixing and the load cuts) bites from node 1.
// (Measured: cold 321 nodes vs seeded 132 on this instance; the chain mode
// itself additionally charges the dive's beam states to its node counter,
// so the prove-phase speedup is pinned on the seeded prove directly.)
TEST(DiveThenProve, SeededProveHalvesNodesOnPinnedFourteenJobInstance) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 23);

  const ExactResult cold = solve_exact(inst);  // PR 5 baseline configuration

  ExactOptions dive_opt;
  dive_opt.mode = ExactMode::kDive;
  const ExactResult dive = solve_exact(inst, dive_opt);

  ExactOptions seeded_opt;
  seeded_opt.initial_schedule = dive.schedule;
  const ExactResult seeded = solve_exact(inst, seeded_opt);

  ASSERT_TRUE(cold.proven_optimal);
  ASSERT_TRUE(seeded.proven_optimal);
  EXPECT_NEAR(seeded.makespan, cold.makespan, 1e-9);
  EXPECT_GE(cold.nodes, 2 * seeded.nodes)
      << "cold " << cold.nodes << " vs seeded " << seeded.nodes;

  // And the packaged chain reaches the same proven optimum end to end.
  ExactOptions chain;
  chain.mode = ExactMode::kDiveThenProve;
  const ExactResult chained = solve_exact(inst, chain);
  ASSERT_TRUE(chained.proven_optimal);
  EXPECT_NEAR(chained.makespan, cold.makespan, 1e-9);
}

// The budget-abort guarantee: however small the node budget, the chain never
// reports a schedule worse than what its own dive phase would produce under
// the same budget (the prove phase starts FROM that schedule; aborting it
// just returns the adopted incumbent).
TEST(DiveThenProve, BudgetAbortNeverWorseThanTheDivePhase) {
  UnrelatedGenParams p;
  p.num_jobs = 30;
  p.num_machines = 5;
  p.num_classes = 6;
  const Instance inst = generate_unrelated(p, 9);

  ExactOptions opt;
  opt.mode = ExactMode::kDiveThenProve;
  opt.max_nodes = 500;  // deterministic truncation: node cap, not wall clock
  opt.time_limit_s = 60.0;
  opt.dive_time_limit_s = 10.0;
  const ExactResult chained = solve_exact(inst, opt);

  ExactOptions dive_opt = opt;
  dive_opt.mode = ExactMode::kDive;
  dive_opt.time_limit_s = std::min(opt.dive_time_limit_s,
                                   0.5 * opt.time_limit_s);
  const ExactResult dive = solve_exact(inst, dive_opt);

  EXPECT_FALSE(schedule_error(inst, chained.schedule).has_value());
  EXPECT_LE(chained.makespan, dive.makespan + 1e-9)
      << "chain returned a worse schedule than its own dive phase";
  EXPECT_GE(chained.nodes, dive.nodes);  // merged counters include the dive
}

}  // namespace
}  // namespace setsched
