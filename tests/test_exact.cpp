#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"

namespace setsched {
namespace {

TEST(Exact, SingleJobSingleMachine) {
  Instance inst(1, 1, {0});
  inst.set_proc(0, 0, 5);
  inst.set_setup(0, 0, 3);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
}

TEST(Exact, PrefersSplittingAcrossMachines) {
  // Two identical machines, two independent classes: split is optimal.
  Instance inst(2, 2, {0, 1});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 4);
    inst.set_proc(i, 1, 4);
    inst.set_setup(i, 0, 1);
    inst.set_setup(i, 1, 1);
  }
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_NE(r.schedule.assignment[0], r.schedule.assignment[1]);
}

TEST(Exact, BatchingBeatsSplittingWithHugeSetups) {
  // Class 0 has a huge setup and two jobs; class 1 occupies the other
  // machine. Splitting class 0 would pay the 100-setup twice on top of the
  // class-1 work: batching it on one machine is optimal (makespan 104).
  Instance inst(2, 2, {0, 0, 1});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 2);
    inst.set_proc(i, 1, 2);
    inst.set_proc(i, 2, 50);
    inst.set_setup(i, 0, 100);
    inst.set_setup(i, 1, 1);
  }
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 104.0);
  EXPECT_EQ(r.schedule.assignment[0], r.schedule.assignment[1]);
  EXPECT_NE(r.schedule.assignment[2], r.schedule.assignment[0]);
}

TEST(Exact, RespectsEligibility) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(1, 0, kInfinity);
  inst.set_proc(0, 1, kInfinity);
  inst.set_proc(1, 1, 1);
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.schedule.assignment[0], 0u);
  EXPECT_EQ(r.schedule.assignment[1], 1u);
}

TEST(Exact, HonorsInitialUpperBound) {
  Instance inst(1, 1, {0, 0});
  inst.set_proc(0, 0, 2);
  inst.set_proc(0, 1, 3);
  inst.set_setup(0, 0, 1);
  ExactOptions opt;
  opt.initial_upper_bound = 6.0;  // exactly optimal; must still find it
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(Exact, UniformOverloadMatchesUnrelated) {
  UniformGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 2;
  const UniformInstance u = generate_uniform(p, 77);
  const ExactResult a = solve_exact(u);
  const ExactResult b = solve_exact(u.to_unrelated());
  EXPECT_TRUE(a.proven_optimal);
  EXPECT_NEAR(a.makespan, b.makespan, 1e-9);
}

TEST(Exact, NodeBudgetAborts) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 5);
  ExactOptions opt;
  opt.max_nodes = 10;
  const ExactResult r = solve_exact(inst, opt);
  EXPECT_FALSE(r.proven_optimal);
  // Still returns a feasible schedule (the greedy incumbent).
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
}

/// Reference: plain exhaustive enumeration, no pruning.
double enumerate_opt(const Instance& inst) {
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  Schedule s = Schedule::empty(n);
  double best = kInfinity;
  std::vector<std::size_t> stack(n, 0);
  const auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n) {
      if (!schedule_error(inst, s).has_value()) {
        best = std::min(best, makespan(inst, s));
      }
      return;
    }
    for (MachineId i = 0; i < m; ++i) {
      if (!inst.eligible(i, depth)) continue;
      s.assignment[depth] = i;
      self(self, depth + 1);
      s.assignment[depth] = kUnassigned;
    }
  };
  recurse(recurse, 0);
  return best;
}

class ExactRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactRandomTest, MatchesExhaustiveEnumeration) {
  UnrelatedGenParams p;
  p.num_jobs = 7;
  p.num_machines = 3;
  p.num_classes = 3;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, GetParam());
  const double reference = enumerate_opt(inst);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << GetParam();
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_NEAR(makespan(inst, r.schedule), r.makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandomTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class ExactUniformRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactUniformRandomTest, OptimalAtLeastLowerBound) {
  UniformGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  const UniformInstance u = generate_uniform(p, GetParam() + 500);
  const ExactResult r = solve_exact(u);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_GE(r.makespan + 1e-9, uniform_lower_bound(u)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactUniformRandomTest,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(Exact, SymmetryBreakingStillOptimal) {
  // 4 identical machines: symmetry breaking must not lose the optimum.
  UniformGenParams p;
  p.num_jobs = 9;
  p.num_machines = 4;
  p.num_classes = 2;
  p.profile = SpeedProfile::kIdentical;
  const UniformInstance u = generate_uniform(p, 31);
  const Instance inst = u.to_unrelated();
  const double reference = enumerate_opt(inst);
  const ExactResult r = solve_exact(inst);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.makespan, reference, 1e-9);
}

}  // namespace
}  // namespace setsched
