// Differential suite for the PR 5 LP additions: the bounded-variable dual
// simplex (forced via SimplexAlgorithm::kDual and exercised automatically by
// warm re-optimization) and Devex reference-framework pricing, both pinned
// against the dense tableau oracle; plus regression coverage proving that a
// warm basis mutated into primal infeasibility is re-optimized by the dual
// loop in far fewer iterations than a cold solve.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "api/presets.h"
#include "common/prng.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "unrelated/assignment_lp.h"

namespace setsched::lp {
namespace {

SimplexOptions with(SimplexAlgorithm algorithm,
                    SimplexPricing pricing = SimplexPricing::kDevex) {
  SimplexOptions options;
  options.algorithm = algorithm;
  options.pricing = pricing;
  return options;
}

/// Seeded random LP: box-bounded variables, mixed <= / >= / = rows built
/// around a known feasible point so the instance is never vacuous.
Model random_lp(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t nvars = 4 + rng.next_below(12);  // 4..15
  const std::size_t ncons = 2 + rng.next_below(8);   // 2..9
  Model m(rng.next_bernoulli(0.5) ? Objective::kMaximize
                                  : Objective::kMinimize);
  std::vector<double> point(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    const double ub =
        rng.next_bernoulli(0.8) ? rng.next_real(0.5, 4.0) : kInfinity;
    m.add_variable(0, ub, rng.next_real(-3, 3));
    point[j] = rng.next_real(0, std::isfinite(ub) ? ub : 1.0);
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    double activity = 0.0;
    for (std::size_t j = 0; j < nvars; ++j) {
      if (rng.next_bernoulli(0.3)) continue;  // keep rows sparse
      const double coef = rng.next_real(-1.5, 2.5);
      row.push_back({j, coef});
      activity += coef * point[j];
    }
    if (row.empty()) row.push_back({0, 1.0}), activity = point[0];
    const double roll = rng.next_real(0, 1);
    const auto sense = roll < 0.5   ? Sense::kLessEqual
                       : roll < 0.8 ? Sense::kGreaterEqual
                                    : Sense::kEqual;
    double rhs = activity;
    if (sense == Sense::kLessEqual) rhs += rng.next_real(0, 2);
    if (sense == Sense::kGreaterEqual) rhs -= rng.next_real(0, 2);
    m.add_constraint(std::move(row), sense, rhs);
  }
  return m;
}

class DualDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualDifferentialTest, ForcedDualMatchesTableauOracle) {
  const Model m = random_lp(GetParam() * 104729 + 7);
  const Solution oracle = solve(m, with(SimplexAlgorithm::kTableau));
  const Solution dual = solve(m, with(SimplexAlgorithm::kDual));
  ASSERT_EQ(oracle.status, dual.status) << "seed " << GetParam();
  if (!oracle.optimal()) return;
  EXPECT_NEAR(oracle.objective, dual.objective,
              1e-6 * std::max(1.0, std::abs(oracle.objective)))
      << "seed " << GetParam();
  EXPECT_LE(m.max_violation(dual.x), 1e-5) << "seed " << GetParam();
}

TEST_P(DualDifferentialTest, CandidateAndDevexPricingAgree) {
  const Model m = random_lp(GetParam() * 15485863 + 3);
  const Solution candidate =
      solve(m, with(SimplexAlgorithm::kRevised, SimplexPricing::kCandidate));
  const Solution devex =
      solve(m, with(SimplexAlgorithm::kRevised, SimplexPricing::kDevex));
  ASSERT_EQ(candidate.status, devex.status) << "seed " << GetParam();
  if (!candidate.optimal()) return;
  EXPECT_NEAR(candidate.objective, devex.objective,
              1e-6 * std::max(1.0, std::abs(candidate.objective)))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(DualSimplex, WarmRhsMutationTakesTheDualPath) {
  // min x + 2y st x + y >= 4, x <= 4, y <= 5  ->  x=4, y=0, obj 4. Raising
  // the demand to 8.5 overflows the basic slack (the nonbasic columns sit at
  // x=4, y=0, so the basis turns primal-infeasible) while every reduced
  // cost stays untouched: the textbook dual re-optimization case.
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, 4, 1);
  const auto y = m.add_variable(0, 5, 2);
  const auto row = m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 4);
  const Solution first = solve(m, with(SimplexAlgorithm::kRevised));
  ASSERT_TRUE(first.optimal());
  EXPECT_FALSE(first.via_dual);  // cold primal solve
  EXPECT_NEAR(first.objective, 4.0, 1e-7);

  m.set_rhs(row, 8.5);  // x=4, y=4.5 -> obj 13
  SimplexOptions warm = with(SimplexAlgorithm::kAuto);
  warm.warm_start = &first.basis;
  const Solution second = solve(m, warm);
  ASSERT_TRUE(second.optimal());
  EXPECT_TRUE(second.via_dual);
  EXPECT_NEAR(second.objective, 13.0, 1e-7);

  // Explicit kRevised is the primal-only PR 3 baseline: same warm start,
  // same answer, no dual prologue.
  SimplexOptions primal_only = with(SimplexAlgorithm::kRevised);
  primal_only.warm_start = &first.basis;
  const Solution primal = solve(m, primal_only);
  ASSERT_TRUE(primal.optimal());
  EXPECT_FALSE(primal.via_dual);
  EXPECT_NEAR(primal.objective, 13.0, 1e-7);
}

TEST(DualSimplex, DetectsInfeasibilityOfWarmProbe) {
  // Tightening the box so the demand row cannot be met: the dual loop must
  // report kInfeasible (dual unbounded) and still hand back a basis.
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, 3, 1);
  const auto y = m.add_variable(0, 5, 2);
  const auto row = m.add_constraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 4);
  const Solution first = solve(m, with(SimplexAlgorithm::kRevised));
  ASSERT_TRUE(first.optimal());

  m.set_rhs(row, 10);  // max attainable x + y is 8
  SimplexOptions warm = with(SimplexAlgorithm::kAuto);
  warm.warm_start = &first.basis;
  const Solution probe = solve(m, warm);
  EXPECT_EQ(probe.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(probe.via_dual);
  EXPECT_FALSE(probe.basis.empty());
}

TEST(DualSimplex, ColdDualSolvesNonnegativeCostModels) {
  // All costs >= 0 means the all-logical basis is dual-feasible: kDual must
  // solve without a single primal pivot and match the tableau.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Xoshiro256 rng(seed + 991);
    Model m(Objective::kMinimize);
    const std::size_t nvars = 3 + rng.next_below(8);
    for (std::size_t j = 0; j < nvars; ++j) {
      m.add_variable(0, 1 + rng.next_real(0, 3), rng.next_real(0, 2));
    }
    for (std::size_t r = 0; r < 2 + rng.next_below(4); ++r) {
      std::vector<Entry> row;
      for (std::size_t j = 0; j < nvars; ++j) {
        if (rng.next_bernoulli(0.5)) row.push_back({j, rng.next_real(0.2, 2)});
      }
      if (row.empty()) row.push_back({0, 1.0});
      m.add_constraint(std::move(row), Sense::kGreaterEqual,
                       rng.next_real(0.5, 2.0));
    }
    const Solution oracle = solve(m, with(SimplexAlgorithm::kTableau));
    const Solution dual = solve(m, with(SimplexAlgorithm::kDual));
    ASSERT_EQ(oracle.status, dual.status) << "seed " << seed;
    if (!oracle.optimal()) continue;
    EXPECT_TRUE(dual.via_dual) << "seed " << seed;
    EXPECT_NEAR(oracle.objective, dual.objective,
                1e-6 * std::max(1.0, std::abs(oracle.objective)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace setsched::lp

namespace setsched {
namespace {

using lp::SimplexAlgorithm;

TEST(DualWarmStart, TSearchProbesReoptimizeDually) {
  // The tentpole regression, pinned like the PR 3 warm-start test: on the
  // unrelated-medium shape, descending T probes eventually mutate the warm
  // basis into primal infeasibility; the first such probe must (a) go
  // through the dual simplex and (b) re-optimize in fewer iterations than a
  // cold solve of the same probe — by a wide margin. (Early probes whose
  // basis keeps enough load slack stay primal and cost ~0 pivots; that case
  // is covered by the PR 3 warm-start regression.)
  const ProblemInput input = generate_preset("unrelated-medium", 1);
  const Instance& inst = input.instance;
  const double hi = unrelated_upper_bound(inst);

  ParametricAssignmentLp warm_chain(inst, hi);
  ASSERT_TRUE(warm_chain.solve(hi).has_value());
  EXPECT_FALSE(warm_chain.last_via_dual());  // cold primal seed
  EXPECT_GT(warm_chain.last_iterations(), 0u);

  double probe = hi;
  bool dual_fired = false;
  for (int step = 0; step < 20 && !dual_fired; ++step) {
    probe *= 0.92;
    if (!warm_chain.solve(probe).has_value()) break;
    dual_fired = warm_chain.last_via_dual();
  }
  ASSERT_TRUE(dual_fired)
      << "no descending feasible probe ever took the dual path";
  const std::size_t warm_iterations = warm_chain.last_iterations();
  EXPECT_GE(warm_chain.dual_solves(), 1u);

  ParametricAssignmentLp cold(inst, probe);
  ASSERT_TRUE(cold.solve(probe).has_value());
  const std::size_t cold_probe_iterations = cold.last_iterations();

  EXPECT_LT(warm_iterations, cold_probe_iterations)
      << "dual re-optimization must beat a cold solve";
  EXPECT_LT(warm_iterations * 2, cold_probe_iterations);
}

TEST(DualWarmStart, SearchReportsDualSolves) {
  UnrelatedGenParams p;
  p.num_jobs = 20;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 11);
  const LpSearchResult r = search_assignment_lp(inst, 0.05);
  EXPECT_GE(r.lp_solves, 2u);
  // Every post-seed probe mutates bounds/rhs of a warm optimal (or
  // dual-terminal) basis, so the dual path must fire at least once.
  EXPECT_GT(r.lp_dual_solves, 0u);
  EXPECT_LE(r.lp_dual_solves, r.lp_solves);
}

class MakespanLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MakespanLpTest, MinMakespanMatchesTableauAndFeasibilityThreshold) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, GetParam() + 61);
  const double hi = unrelated_upper_bound(inst);

  AssignmentLpOptions dual_opts;
  dual_opts.makespan_objective = true;
  dual_opts.simplex.algorithm = SimplexAlgorithm::kDual;
  ParametricAssignmentLp dual_lp(inst, hi, dual_opts);
  const auto dual_value = dual_lp.min_makespan(hi);
  ASSERT_TRUE(dual_value.has_value());

  AssignmentLpOptions oracle_opts;
  oracle_opts.makespan_objective = true;
  oracle_opts.simplex.algorithm = SimplexAlgorithm::kTableau;
  ParametricAssignmentLp oracle_lp(inst, hi, oracle_opts);
  const auto oracle_value = oracle_lp.min_makespan(hi);
  ASSERT_TRUE(oracle_value.has_value());
  EXPECT_NEAR(*dual_value, *oracle_value,
              1e-5 * std::max(1.0, *oracle_value));

  // Threshold property against the classic feasibility LP: LP(T) is
  // feasible iff T >= min fractional makespan.
  const double v = *dual_value;
  EXPECT_TRUE(solve_assignment_lp(inst, v * 1.01).has_value());
  if (v * 0.97 >= assignment_lp_floor(inst)) {
    EXPECT_FALSE(solve_assignment_lp(inst, v * 0.97).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MakespanLpTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace setsched
