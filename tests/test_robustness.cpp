// Pathological-instance robustness suite: extreme processing-time spreads,
// zero and identical setups, and machines with no eligible job must never
// produce an invalid schedule, a non-finite makespan, or a NaN that reaches
// the JSONL stream. Every registered solver is exercised on every instance
// it supports.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "common/check.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "expt/record_io.h"

namespace setsched {
namespace {

/// Twelve orders of magnitude between the fastest and slowest job, on both
/// the processing and the setup side.
Instance extreme_spread() {
  Instance inst(3, 2, {0, 0, 1, 1, 0, 1});
  for (MachineId i = 0; i < 3; ++i) {
    inst.set_proc(i, 0, 1e-6);
    inst.set_proc(i, 1, 1e9);
    inst.set_proc(i, 2, 1e-6);
    inst.set_proc(i, 3, 1e9);
    inst.set_proc(i, 4, 1.0);
    inst.set_proc(i, 5, 1e3);
    inst.set_setup(i, 0, 1e-6);
    inst.set_setup(i, 1, 1e9);
  }
  return inst;
}

/// Setups all zero: the setup terms vanish and class structure is inert.
Instance zero_setups() {
  Instance inst(3, 3, {0, 1, 2, 0, 1, 2});
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 6; ++j) {
      inst.set_proc(i, j, static_cast<double>(1 + (i + j) % 4));
    }
    for (ClassId k = 0; k < 3; ++k) inst.set_setup(i, k, 0.0);
  }
  return inst;
}

/// Every setup identical: ties everywhere in the setup-aware orderings.
Instance identical_setups() {
  Instance inst(3, 3, {0, 1, 2, 0, 1, 2});
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 6; ++j) {
      inst.set_proc(i, j, static_cast<double>(2 + (j * 3 + i) % 5));
    }
    for (ClassId k = 0; k < 3; ++k) inst.set_setup(i, k, 7.0);
  }
  return inst;
}

/// Machine 2 is eligible for nothing (every proc infinite); the instance is
/// still feasible because machines 0 and 1 cover every job.
Instance dead_machine() {
  Instance inst(3, 2, {0, 0, 1, 1});
  for (JobId j = 0; j < 4; ++j) {
    inst.set_proc(0, j, 2.0 + static_cast<double>(j));
    inst.set_proc(1, j, 3.0);
    inst.set_proc(2, j, kInfinity);
  }
  for (MachineId i = 0; i < 3; ++i) {
    inst.set_setup(i, 0, 1.0);
    inst.set_setup(i, 1, 2.0);
  }
  return inst;
}

std::vector<std::pair<std::string, Instance>> pathological_instances() {
  std::vector<std::pair<std::string, Instance>> out;
  out.emplace_back("extreme-spread", extreme_spread());
  out.emplace_back("zero-setups", zero_setups());
  out.emplace_back("identical-setups", identical_setups());
  out.emplace_back("dead-machine", dead_machine());
  return out;
}

TEST(Robustness, EverySolverSurvivesPathologicalInstances) {
  for (const auto& [label, inst] : pathological_instances()) {
    ASSERT_NO_THROW(inst.validate()) << label;
    const ProblemInput input = ProblemInput::from_unrelated(inst);
    SolverContext context;
    context.seed = 3;
    context.precision = 0.05;
    context.time_limit_s = 5.0;
    for (const std::string& name : SolverRegistry::global().names()) {
      const std::unique_ptr<Solver> solver =
          SolverRegistry::global().create(name);
      if (!solver->supports(input)) continue;
      const ScheduleResult result = solver->solve(input, context);
      EXPECT_FALSE(schedule_error(inst, result.schedule).has_value())
          << label << " / " << name;
      ASSERT_TRUE(std::isfinite(result.makespan)) << label << " / " << name;
      EXPECT_NEAR(makespan(inst, result.schedule), result.makespan,
                  1e-9 * std::max(1.0, result.makespan))
          << label << " / " << name;
      EXPECT_TRUE(std::isfinite(result.stats.gap) || result.stats.gap == -1.0)
          << label << " / " << name;

      // No NaN/inf may reach the JSONL stream: build the record a sweep
      // would and serialize it (record_io refuses non-finite doubles).
      expt::RunRecord record;
      record.solver = name;
      record.preset = label;
      record.makespan = result.makespan;
      record.lower_bound = 1.0;
      record.ratio = result.makespan;
      record.gap = result.stats.gap;
      record.proven_optimal = result.stats.proven_optimal;
      std::ostringstream os;
      EXPECT_NO_THROW(expt::write_jsonl(os, record)) << label << " / " << name;
      EXPECT_EQ(os.str().find("nan"), std::string::npos)
          << label << " / " << name;
      EXPECT_EQ(os.str().find("inf"), std::string::npos)
          << label << " / " << name;
    }
  }
}

}  // namespace
}  // namespace setsched
