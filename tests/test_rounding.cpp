#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "unrelated/rounding.h"

namespace setsched {
namespace {

/// Builds the integral fractional solution matching a schedule.
FractionalAssignment integral_fractional(const Instance& inst,
                                         const Schedule& s) {
  FractionalAssignment f{
      Matrix<double>(inst.num_machines(), inst.num_jobs(), 0.0),
      Matrix<double>(inst.num_machines(), inst.num_classes(), 0.0)};
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const MachineId i = s.assignment[j];
    f.x(i, j) = 1.0;
    f.y(i, inst.job_class(j)) = 1.0;
  }
  return f;
}

TEST(RoundFractional, IntegralSolutionReproducedExactly) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 1);
  const ExactResult opt = solve_exact(inst);
  const FractionalAssignment f = integral_fractional(inst, opt.schedule);
  std::size_t fallback = 99;
  const Schedule s = round_fractional(inst, f, 1, 123, &fallback);
  EXPECT_EQ(s, opt.schedule);
  EXPECT_EQ(fallback, 0u);
}

TEST(RoundFractional, ZeroRoundsUsesFallbackEverywhere) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 2;
  const Instance inst = generate_unrelated(p, 2);
  const FractionalAssignment f{
      Matrix<double>(3, 10, 0.0), Matrix<double>(3, 2, 0.0)};
  std::size_t fallback = 0;
  const Schedule s = round_fractional(inst, f, 0, 5, &fallback);
  EXPECT_EQ(fallback, 10u);
  EXPECT_FALSE(schedule_error(inst, s).has_value());
  // Fallback picks argmin processing time.
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const MachineId chosen = s.assignment[j];
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      if (inst.eligible(i, j)) {
        EXPECT_LE(inst.proc(chosen, j), inst.proc(i, j) + 1e-12);
      }
    }
  }
}

TEST(RoundFractional, DeterministicPerSeed) {
  UnrelatedGenParams p;
  p.num_jobs = 15;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 3);
  const LpSearchResult lp = search_assignment_lp(inst, 0.1);
  const Schedule a = round_fractional(inst, lp.fractional, 8, 999);
  const Schedule b = round_fractional(inst, lp.fractional, 8, 999);
  const Schedule c = round_fractional(inst, lp.fractional, 8, 1000);
  EXPECT_EQ(a, b);
  // Different seed very likely differs on a 15-job instance.
  EXPECT_NE(a, c);
}

TEST(RandomizedRounding, ValidScheduleAndBookkeeping) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 4);
  RoundingOptions opt;
  opt.seed = 7;
  const RoundingResult r = randomized_rounding(inst, opt);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  EXPECT_NEAR(r.makespan, makespan(inst, r.schedule), 1e-9);
  EXPECT_GT(r.lp_T, 0.0);
  EXPECT_LE(r.lp_lower_bound, r.lp_T + 1e-9);
  EXPECT_GE(r.rounds, 1u);
  EXPECT_GE(r.lp_solves, 2u);
}

TEST(RandomizedRounding, DeterministicPerSeed) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 5);
  RoundingOptions opt;
  opt.seed = 11;
  const RoundingResult a = randomized_rounding(inst, opt);
  const RoundingResult b = randomized_rounding(inst, opt);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(RandomizedRounding, MoreTrialsNeverWorseGivenSameSeedStream) {
  UnrelatedGenParams p;
  p.num_jobs = 16;
  p.num_machines = 4;
  p.num_classes = 5;
  const Instance inst = generate_unrelated(p, 6);

  RoundingOptions one;
  one.seed = 21;
  one.trials = 1;
  RoundingOptions four;
  four.seed = 21;
  four.trials = 4;
  const RoundingResult r1 = randomized_rounding(inst, one);
  const RoundingResult r4 = randomized_rounding(inst, four);
  // Trial seeds are drawn from the same stream, so trial 0 coincides and
  // best-of-4 can only improve.
  EXPECT_LE(r4.makespan, r1.makespan + 1e-9);
}

TEST(RandomizedRounding, ParallelTrialsMatchSequential) {
  UnrelatedGenParams p;
  p.num_jobs = 14;
  p.num_machines = 4;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 8);
  ThreadPool pool(3);
  RoundingOptions seq;
  seq.seed = 33;
  seq.trials = 6;
  RoundingOptions par = seq;
  par.pool = &pool;
  const RoundingResult a = randomized_rounding(inst, seq);
  const RoundingResult b = randomized_rounding(inst, par);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

class RoundingRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingRatioTest, WithinLogFactorOfLpBound) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 4;
  p.eligibility = 0.9;
  const Instance inst = generate_unrelated(p, GetParam() + 100);
  RoundingOptions opt;
  opt.seed = GetParam();
  opt.trials = 3;
  const RoundingResult r = randomized_rounding(inst, opt);
  EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
  // Theorem 3.3: makespan = O(T (log n + log m)). The constant is modest in
  // practice; a generous factor documents the guarantee without flakiness.
  const double n = static_cast<double>(inst.num_jobs());
  const double m = static_cast<double>(inst.num_machines());
  const double bound = 2.0 * (std::log2(n) + std::log2(m) + 2.0) * r.lp_T;
  EXPECT_LE(r.makespan, bound) << "seed " << GetParam();
  EXPECT_GE(r.makespan + 1e-9, r.lp_lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingRatioTest,
                         ::testing::Range<std::uint64_t>(0, 15));

class RoundingVsExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingVsExactTest, NearOptimalOnSmallInstances) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, GetParam() + 300);
  const ExactResult exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven_optimal);
  RoundingOptions opt;
  opt.seed = GetParam();
  opt.trials = 5;
  const RoundingResult r = randomized_rounding(inst, opt);
  // Empirically the rounding is a small constant factor from optimal at this
  // scale; 3x is a loose, stable envelope (the proven bound is logarithmic).
  EXPECT_LE(r.makespan, 3.0 * exact.makespan + 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingVsExactTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace setsched
