// Cross-module integration suite: every algorithm is run against common
// instances and checked for mutual consistency — valid schedules, correct
// relative ordering against the exact optimum, and lower bounds that really
// bound everything from below.

#include <gtest/gtest.h>

#include "colgen/config_lp.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "core/io.h"
#include "exact/branch_bound.h"
#include "improve/local_search.h"
#include "restricted/approx.h"
#include "uniform/lpt.h"
#include "uniform/ptas.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

namespace setsched {
namespace {

class UnrelatedPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnrelatedPipelineTest, AllAlgorithmsConsistent) {
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  p.eligibility = 0.9;
  const Instance inst = generate_unrelated(p, GetParam());

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);

  RoundingOptions ropt;
  ropt.seed = GetParam() + 1;
  ropt.trials = 2;
  const RoundingResult rounding = randomized_rounding(inst, ropt);
  const ScheduleResult greedy = greedy_min_load(inst);
  const ScheduleResult batch = greedy_class_batch(inst);

  // Everything is a valid schedule and no algorithm beats the optimum.
  for (const Schedule& s :
       {rounding.schedule, greedy.schedule, batch.schedule, opt.schedule}) {
    EXPECT_FALSE(schedule_error(inst, s).has_value());
    EXPECT_GE(makespan(inst, s) + 1e-9, opt.makespan);
  }

  // The LP lower bound bounds the optimum from below.
  EXPECT_LE(rounding.lp_lower_bound, opt.makespan + 1e-9);
  // ... as does the trivial bound.
  EXPECT_LE(unrelated_lower_bound(inst), opt.makespan + 1e-9);

  // Local search improves (or keeps) everything and stays valid.
  for (const Schedule& s : {rounding.schedule, greedy.schedule}) {
    const LocalSearchResult ls = local_search(inst, s);
    EXPECT_LE(ls.makespan, makespan(inst, s) + 1e-9);
    EXPECT_GE(ls.makespan + 1e-9, opt.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrelatedPipelineTest,
                         ::testing::Range<std::uint64_t>(0, 10));

class UniformPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformPipelineTest, UniformAlgorithmsConsistent) {
  UniformGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  const UniformInstance u = generate_uniform(p, GetParam());
  const Instance inst = u.to_unrelated();

  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);

  const ScheduleResult lpt = lpt_with_placeholders(u);
  PtasOptions popt;
  popt.epsilon = 0.5;
  const PtasResult ptas = ptas_uniform(u, popt);

  EXPECT_GE(lpt.makespan + 1e-9, opt.makespan);
  EXPECT_GE(ptas.makespan + 1e-9, opt.makespan);
  EXPECT_LE(ptas.makespan, lpt.makespan + 1e-9);  // PTAS starts from LPT
  EXPECT_LE(lpt.makespan, kLptSetupFactor * opt.makespan + 1e-9);
  if (!ptas.resource_limited && ptas.lower_bound > 0.0) {
    EXPECT_LE(ptas.lower_bound, opt.makespan * (1 + 1e-9));
  }

  // The uniform algorithms agree with the unrelated view of the instance.
  EXPECT_NEAR(makespan(u, lpt.schedule), makespan(inst, lpt.schedule), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformPipelineTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(IntegrationIo, InstanceSurvivesFileRoundTripThroughAlgorithms) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 5);
  std::stringstream ss;
  save_instance(ss, inst);
  const Instance back = load_instance(ss);
  // Identical instances yield identical deterministic algorithm output.
  const ScheduleResult a = greedy_min_load(inst);
  const ScheduleResult b = greedy_min_load(back);
  EXPECT_EQ(a.schedule, b.schedule);
  RoundingOptions ropt;
  ropt.seed = 7;
  EXPECT_DOUBLE_EQ(randomized_rounding(inst, ropt).makespan,
                   randomized_rounding(back, ropt).makespan);
}

TEST(IntegrationSpecialCases, TwoApproxNeverWorseThanThreeApproxBound) {
  // An instance that is BOTH restricted-class-uniform and class-uniform in
  // processing (one job size per class): both theorems apply; both must hold.
  RestrictedGenParams p;
  p.num_jobs = 20;
  p.num_machines = 5;
  p.num_classes = 4;
  p.min_eligible = 5;  // all machines eligible -> also class-uniform proc
  p.max_eligible = 5;
  Instance inst = generate_restricted_class_uniform(p, 3);
  // Make processing class-uniform: overwrite each job's size by its class's.
  const auto by_class = inst.jobs_by_class();
  for (ClassId k = 0; k < inst.num_classes(); ++k) {
    if (by_class[k].empty()) continue;
    const double size = inst.proc(0, by_class[k].front());
    for (const JobId j : by_class[k]) {
      for (MachineId i = 0; i < inst.num_machines(); ++i) {
        inst.set_proc(i, j, size);
      }
    }
  }
  ASSERT_TRUE(is_restricted_class_uniform(inst));
  ASSERT_TRUE(is_class_uniform_processing(inst));
  const ConstantApproxResult two = two_approx_restricted(inst, 0.02);
  const ConstantApproxResult three = three_approx_class_uniform(inst, 0.02);
  EXPECT_LE(two.makespan, 2.0 * two.lp_T + 1e-6);
  EXPECT_LE(three.makespan, 3.0 * three.lp_T + 1e-6);
}

TEST(IntegrationColgen, ConfigAndDirectAgreeOnFeasibilityWindow) {
  UnrelatedGenParams p;
  p.num_jobs = 12;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 9);
  const LpSearchResult direct = search_assignment_lp(inst, 0.05);
  // The config LP is a stronger relaxation solved on a conservative grid;
  // its feasible T cannot be much below the direct LP's window.
  const ConfigLpResult cfg = solve_config_lp(inst, direct.lower_bound * 0.8);
  EXPECT_NE(cfg.status, ConfigLpStatus::kFeasible);
}

}  // namespace
}  // namespace setsched
