#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/generators.h"
#include "exact/branch_bound.h"
#include "uniform/lpt.h"

namespace setsched {
namespace {

UniformInstance two_machine_instance() {
  UniformInstance u;
  u.job_size = {8, 6, 4, 2};
  u.job_class = {0, 0, 1, 1};
  u.setup_size = {1, 1};
  u.speed = {1, 1};
  return u;
}

TEST(LptUniform, ProducesCompleteValidSchedule) {
  const UniformInstance u = two_machine_instance();
  const ScheduleResult r = lpt_uniform(u);
  EXPECT_TRUE(r.schedule.complete());
  EXPECT_DOUBLE_EQ(r.makespan, makespan(u, r.schedule));
}

TEST(LptUniform, BalancesIdenticalMachines) {
  // Without setups LPT on {8,6,4,2} over 2 machines gives loads 10/10.
  UniformInstance u = two_machine_instance();
  u.setup_size = {0, 0};
  const ScheduleResult r = lpt_uniform(u);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(LptUniform, FasterMachineGetsMoreWork) {
  UniformInstance u;
  u.job_size = {10, 10, 10, 10};
  u.job_class = {0, 0, 0, 0};
  u.setup_size = {0};
  u.speed = {1, 3};
  const ScheduleResult r = lpt_uniform(u);
  // Optimal: 3 jobs on fast (30/3=10), 1 on slow (10). LPT achieves it.
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(LptPlaceholders, HandlesInstanceWithoutSmallJobs) {
  // All jobs >= setup size: behaves like plain LPT.
  UniformInstance u = two_machine_instance();  // sizes 8,6,4,2 >= setups 1,1
  const ScheduleResult placeholder = lpt_with_placeholders(u);
  const ScheduleResult plain = lpt_uniform(u);
  EXPECT_DOUBLE_EQ(placeholder.makespan, plain.makespan);
}

TEST(LptPlaceholders, MergesSmallJobs) {
  // 10 tiny jobs of one class with a big setup: placeholders force batching.
  UniformInstance u;
  u.job_size.assign(10, 1.0);
  u.job_class.assign(10, 0);
  u.setup_size = {10.0};
  u.speed = {1, 1};
  const ScheduleResult r = lpt_with_placeholders(u);
  EXPECT_TRUE(r.schedule.complete());
  // One placeholder of size 10 => all jobs on one machine: 10 + setup 10.
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
}

TEST(LptPlaceholders, SplitsWhenWorkExceedsSetup) {
  // 40 units of tiny work, setup 10: 4 placeholders spread over 2 machines.
  UniformInstance u;
  u.job_size.assign(40, 1.0);
  u.job_class.assign(40, 0);
  u.setup_size = {10.0};
  u.speed = {1, 1};
  const ScheduleResult r = lpt_with_placeholders(u);
  EXPECT_TRUE(r.schedule.complete());
  // Each machine: ~2 placeholders (20 work) + setup 10 = 30 (+1 overpack).
  EXPECT_LE(r.makespan, 31.0);
  EXPECT_GE(r.makespan, 30.0);
}

TEST(LptPlaceholders, ZeroSetupDegenerateCase) {
  UniformInstance u;
  u.job_size = {1, 1, 1, 1};
  u.job_class = {0, 0, 0, 0};
  u.setup_size = {0.0};
  u.speed = {1, 1};
  const ScheduleResult r = lpt_with_placeholders(u);
  EXPECT_TRUE(r.schedule.complete());
  EXPECT_FALSE(schedule_error(u.to_unrelated(), r.schedule).has_value());
}

TEST(LptPlaceholders, SingleMachine) {
  UniformInstance u;
  u.job_size = {3, 1, 2};
  u.job_class = {0, 1, 0};
  u.setup_size = {2, 2};
  u.speed = {4};
  const ScheduleResult r = lpt_with_placeholders(u);
  // Everything on the single machine: (3+1+2+2+2)/4 = 2.5
  EXPECT_DOUBLE_EQ(r.makespan, 2.5);
}

class LptRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LptRatioTest, WithinLemma21FactorOfOptimal) {
  UniformGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 3;
  p.min_job_size = 1;
  p.max_job_size = 40;
  p.min_setup = 1;
  p.max_setup = 30;
  p.profile = GetParam() % 2 == 0 ? SpeedProfile::kUniformRandom
                                  : SpeedProfile::kIdentical;
  const UniformInstance u = generate_uniform(p, GetParam());
  const ScheduleResult r = lpt_with_placeholders(u);
  const ExactResult opt = solve_exact(u);
  ASSERT_TRUE(opt.proven_optimal);
  EXPECT_FALSE(schedule_error(u.to_unrelated(), r.schedule).has_value());
  EXPECT_LE(r.makespan, kLptSetupFactor * opt.makespan + 1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LptRatioTest,
                         ::testing::Range<std::uint64_t>(0, 30));

class LptLowerBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LptLowerBoundTest, WithinFactorOfLowerBoundOnLargeInstances) {
  UniformGenParams p;
  p.num_jobs = 300;
  p.num_machines = 8;
  p.num_classes = 12;
  p.profile = SpeedProfile::kUniformRandom;
  const UniformInstance u = generate_uniform(p, GetParam() + 900);
  const ScheduleResult r = lpt_with_placeholders(u);
  const double lb = uniform_lower_bound(u);
  EXPECT_LE(r.makespan, kLptSetupFactor * lb * 1.0001) << "seed " << GetParam();
  EXPECT_GE(r.makespan + 1e-9, lb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LptLowerBoundTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(LptFactorConstants, MatchPaperValues) {
  EXPECT_NEAR(kLptUniformFactor, 1.577, 0.001);
  EXPECT_NEAR(kLptSetupFactor, 4.732, 0.001);
}

}  // namespace
}  // namespace setsched
