#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "core/bounds.h"
#include "core/instance.h"
#include "core/io.h"
#include "core/schedule.h"

namespace setsched {
namespace {

/// 2 machines, 3 jobs (classes 0,0,1), simple numbers used across tests.
Instance tiny_instance() {
  Instance inst(2, 2, {0, 0, 1});
  // proc: machine 0: 4, 2, 6 ; machine 1: 3, 5, 1
  inst.set_proc(0, 0, 4);
  inst.set_proc(0, 1, 2);
  inst.set_proc(0, 2, 6);
  inst.set_proc(1, 0, 3);
  inst.set_proc(1, 1, 5);
  inst.set_proc(1, 2, 1);
  // setups: machine 0: s0=1, s1=2 ; machine 1: s0=2, s1=3
  inst.set_setup(0, 0, 1);
  inst.set_setup(0, 1, 2);
  inst.set_setup(1, 0, 2);
  inst.set_setup(1, 1, 3);
  return inst;
}

TEST(Instance, Dimensions) {
  const Instance inst = tiny_instance();
  EXPECT_EQ(inst.num_jobs(), 3u);
  EXPECT_EQ(inst.num_machines(), 2u);
  EXPECT_EQ(inst.num_classes(), 2u);
  EXPECT_EQ(inst.job_class(2), 1u);
}

TEST(Instance, RejectsBadClassId) {
  EXPECT_THROW(Instance(2, 2, {0, 2}), CheckError);
}

TEST(Instance, ValidateRejectsNegativeTimes) {
  Instance inst = tiny_instance();
  inst.set_proc(0, 0, -1.0);
  EXPECT_THROW(inst.validate(), CheckError);
}

TEST(Instance, ValidateRejectsJobWithNoMachine) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, kInfinity);
  inst.set_proc(1, 0, kInfinity);
  EXPECT_THROW(inst.validate(), CheckError);
}

TEST(Instance, EligibilityUsesSetupToo) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, 1.0);
  inst.set_proc(1, 0, 1.0);
  inst.set_setup(0, 0, kInfinity);
  EXPECT_FALSE(inst.eligible(0, 0));
  EXPECT_TRUE(inst.eligible(1, 0));
}

TEST(Instance, JobsByClass) {
  const Instance inst = tiny_instance();
  const auto groups = inst.jobs_by_class();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<JobId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<JobId>{2}));
}

TEST(Schedule, LoadsIncludeOneSetupPerClass) {
  const Instance inst = tiny_instance();
  Schedule s{{0, 0, 1}};
  const auto loads = machine_loads(inst, s);
  // machine 0: jobs 0,1 (class 0): 4 + 2 + setup 1 = 7
  EXPECT_DOUBLE_EQ(loads[0], 7.0);
  // machine 1: job 2 (class 1): 1 + setup 3 = 4
  EXPECT_DOUBLE_EQ(loads[1], 4.0);
  EXPECT_DOUBLE_EQ(makespan(inst, s), 7.0);
}

TEST(Schedule, SetupPaidOncePerClassPerMachine) {
  Instance inst(1, 1, {0, 0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(0, 1, 1);
  inst.set_proc(0, 2, 1);
  inst.set_setup(0, 0, 10);
  const Schedule s{{0, 0, 0}};
  EXPECT_DOUBLE_EQ(makespan(inst, s), 13.0);  // 3 + one setup of 10
}

TEST(Schedule, SetupPaidPerMachine) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 1);
  inst.set_proc(0, 1, 1);
  inst.set_proc(1, 0, 1);
  inst.set_proc(1, 1, 1);
  inst.set_setup(0, 0, 10);
  inst.set_setup(1, 0, 10);
  const Schedule split{{0, 1}};
  const auto loads = machine_loads(inst, split);
  EXPECT_DOUBLE_EQ(loads[0], 11.0);
  EXPECT_DOUBLE_EQ(loads[1], 11.0);
  EXPECT_EQ(total_setups(inst, split), 2u);
}

TEST(Schedule, UnassignedJobsIgnoredInLoads) {
  const Instance inst = tiny_instance();
  Schedule s = Schedule::empty(3);
  s.assignment[0] = 0;
  const auto loads = machine_loads(inst, s);
  EXPECT_DOUBLE_EQ(loads[0], 5.0);  // 4 + setup 1
  EXPECT_DOUBLE_EQ(loads[1], 0.0);
  EXPECT_FALSE(s.complete());
}

TEST(Schedule, ErrorOnUnassigned) {
  const Instance inst = tiny_instance();
  const Schedule s = Schedule::empty(3);
  const auto err = schedule_error(inst, s);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unassigned"), std::string::npos);
}

TEST(Schedule, ErrorOnIneligible) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, kInfinity);
  inst.set_proc(1, 0, 1.0);
  const Schedule s{{0}};
  const auto err = schedule_error(inst, s);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("ineligible"), std::string::npos);
}

TEST(Schedule, ValidScheduleHasNoError) {
  const Instance inst = tiny_instance();
  const Schedule s{{1, 0, 1}};
  EXPECT_FALSE(schedule_error(inst, s).has_value());
}

TEST(Schedule, ClassesPerMachine) {
  const Instance inst = tiny_instance();
  const Schedule s{{0, 0, 0}};
  const auto cpm = classes_per_machine(inst, s);
  EXPECT_EQ(cpm[0], (std::vector<ClassId>{0, 1}));
  EXPECT_TRUE(cpm[1].empty());
}

TEST(UniformInstance, ToUnrelatedDividesBySpeed) {
  UniformInstance u;
  u.job_size = {6, 9};
  u.job_class = {0, 1};
  u.setup_size = {3, 6};
  u.speed = {1, 3};
  const Instance inst = u.to_unrelated();
  EXPECT_DOUBLE_EQ(inst.proc(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(inst.proc(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(inst.setup(1, 1), 2.0);
}

TEST(UniformInstance, LoadsMatchUnrelatedConversion) {
  UniformInstance u;
  u.job_size = {6, 9, 4};
  u.job_class = {0, 1, 0};
  u.setup_size = {3, 6};
  u.speed = {1, 2};
  const Schedule s{{0, 1, 1}};
  const auto direct = machine_loads(u, s);
  const auto converted = machine_loads(u.to_unrelated(), s);
  ASSERT_EQ(direct.size(), converted.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], converted[i], 1e-12);
  }
}

TEST(UniformInstance, ValidateRejectsZeroSpeed) {
  UniformInstance u;
  u.job_size = {1};
  u.job_class = {0};
  u.setup_size = {1};
  u.speed = {0.0};
  EXPECT_THROW(u.validate(), CheckError);
}

TEST(SpecialCases, DetectsRestrictedClassUniform) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 5);
  inst.set_proc(0, 1, 7);
  inst.set_proc(1, 0, kInfinity);
  inst.set_proc(1, 1, kInfinity);
  inst.set_setup(0, 0, 2);
  inst.set_setup(1, 0, kInfinity);
  EXPECT_TRUE(is_restricted_class_uniform(inst));
}

TEST(SpecialCases, RejectsMachineDependentTimes) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, 5);
  inst.set_proc(1, 0, 6);  // differs on eligible machines
  inst.set_setup(0, 0, 2);
  inst.set_setup(1, 0, 2);
  EXPECT_FALSE(is_restricted_class_uniform(inst));
}

TEST(SpecialCases, DetectsClassUniformProcessing) {
  Instance inst(2, 2, {0, 0, 1});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 3.0 + i);
    inst.set_proc(i, 1, 3.0 + i);  // same class -> same time per machine
    inst.set_proc(i, 2, 8.0 - i);
    inst.set_setup(i, 0, 1);
    inst.set_setup(i, 1, 1);
  }
  EXPECT_TRUE(is_class_uniform_processing(inst));
  inst.set_proc(0, 1, 99.0);
  EXPECT_FALSE(is_class_uniform_processing(inst));
}

TEST(Bounds, UniformLowerBound) {
  UniformInstance u;
  u.job_size = {6, 9};
  u.job_class = {0, 0};
  u.setup_size = {3};
  u.speed = {1, 2};
  // total work 6+9+3 = 18, total speed 3 -> 6 ; single job (9+3)/2 = 6
  EXPECT_DOUBLE_EQ(uniform_lower_bound(u), 6.0);
}

TEST(Bounds, UnrelatedBoundsBracket) {
  const Instance inst = tiny_instance();
  const double lo = unrelated_lower_bound(inst);
  const double hi = unrelated_upper_bound(inst);
  EXPECT_LE(lo, hi);
  EXPECT_GT(lo, 0.0);
  const Schedule best = best_machine_schedule(inst);
  EXPECT_FALSE(schedule_error(inst, best).has_value());
}

TEST(Io, UnrelatedRoundTrip) {
  const Instance inst = tiny_instance();
  std::stringstream ss;
  save_instance(ss, inst);
  const Instance back = load_instance(ss);
  EXPECT_EQ(inst, back);
}

TEST(Io, UnrelatedRoundTripWithInfinity) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, 1.5);
  inst.set_proc(1, 0, kInfinity);
  inst.set_setup(0, 0, 2.0);
  inst.set_setup(1, 0, kInfinity);
  std::stringstream ss;
  save_instance(ss, inst);
  const Instance back = load_instance(ss);
  EXPECT_EQ(inst, back);
}

TEST(Io, UniformRoundTrip) {
  UniformInstance u;
  u.job_size = {6, 9, 4};
  u.job_class = {0, 1, 0};
  u.setup_size = {3, 6};
  u.speed = {1, 2.5};
  std::stringstream ss;
  save_uniform(ss, u);
  const UniformInstance back = load_uniform(ss);
  EXPECT_EQ(u, back);
}

TEST(Io, RejectsWrongKind) {
  UniformInstance u;
  u.job_size = {1};
  u.job_class = {0};
  u.setup_size = {1};
  u.speed = {1};
  std::stringstream ss;
  save_uniform(ss, u);
  EXPECT_THROW((void)load_instance(ss), CheckError);
}

TEST(Io, DescribeMentionsDimensions) {
  const std::string text = describe(tiny_instance());
  EXPECT_NE(text.find("3 jobs"), std::string::npos);
  EXPECT_NE(text.find("2 machines"), std::string::npos);
}

}  // namespace
}  // namespace setsched
