#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace setsched {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(check(true, "ok")); }

TEST(Check, ThrowsWithMessageAndLocation) {
  try {
    check(false, "boom");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Prng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Prng, NextIntInclusiveRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Prng, NextRealRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_real(2.5, 9.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 9.5);
  }
}

TEST(Prng, BernoulliExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Prng, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Prng, RandomPermutationIsPermutation) {
  Xoshiro256 rng(23);
  const auto perm = random_permutation<std::uint32_t>(50, rng);
  std::set<std::uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(Prng, SplitProducesIndependentStream) {
  Xoshiro256 parent(31);
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent() == child();
  EXPECT_LT(same, 2);
}

TEST(Matrix, StoresValues) {
  Matrix<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, AtChecksBounds) {
  Matrix<int> m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), CheckError);
  EXPECT_THROW((void)m.at(0, 2), CheckError);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowPointerContiguous) {
  Matrix<int> m(3, 4);
  m(1, 0) = 10;
  m(1, 3) = 13;
  const int* row = m.row(1);
  EXPECT_EQ(row[0], 10);
  EXPECT_EQ(row[3], 13);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Empty input and out-of-range q (including NaN) are loud CheckErrors;
  // a single-element sample is that element for every valid q.
  EXPECT_THROW((void)percentile({}, 0.5), CheckError);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.0);
  EXPECT_THROW((void)percentile(one, -0.1), CheckError);
  EXPECT_THROW((void)percentile(one, 1.1), CheckError);
  EXPECT_THROW((void)percentile(one, std::numeric_limits<double>::quiet_NaN()),
               CheckError);
}

TEST(Stats, MeanAndMaxValue) {
  const std::vector<double> v{2.0, 8.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(max_value(v), 8.0);
  // Both are defined (0.0) on empty samples, so aggregators may call them on
  // failure-filtered buckets without guarding.
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(max_value({}), 0.0);
  const std::vector<double> one{-3.5};
  EXPECT_DOUBLE_EQ(mean(one), -3.5);
  EXPECT_DOUBLE_EQ(max_value(one), -3.5);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_DOUBLE_EQ(geometric_mean(with_zero), 0.0);
}

TEST(Stats, RunningStatsMatchesSummary) {
  Xoshiro256 rng(3);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.next_real(-5, 5);
  RunningStats rs;
  for (const double x : v) rs.add(x);
  const Summary s = summarize(v);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("task failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 50, [&](std::size_t) { sum++; });
  }
  EXPECT_EQ(sum.load(), 250);
}

TEST(ThreadPool, ParallelForDynamicCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for_dynamic(0, hits.size(),
                            [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForDynamicEmptyRangeAndException) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_dynamic(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_THROW(
      pool.parallel_for_dynamic(
          0, 10,
          [&](std::size_t i) {
            if (i == 3) throw std::runtime_error("task failed");
          }),
      std::runtime_error);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::size_t{1});
  t.row().add("b").add(2.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add("x").add(std::size_t{3});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,3\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().add("one");
  EXPECT_THROW(t.add("two"), CheckError);
}

}  // namespace
}  // namespace setsched
