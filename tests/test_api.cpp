// Suite for the unified Solver registry (src/api/): every registered solver
// is created through the registry, run end-to-end on small generated
// instances, and checked for schedule validity, makespan consistency and
// consistency with the lower bounds of core/bounds.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "api/registry.h"
#include "common/check.h"
#include "core/bounds.h"
#include "core/generators.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"
#include "unrelated/greedy.h"

namespace setsched {
namespace {

SolverContext fast_context() {
  SolverContext context;
  context.seed = 17;
  context.precision = 0.1;
  context.time_limit_s = 5.0;
  return context;
}

ProblemInput small_uniform() {
  UniformGenParams params;
  params.num_jobs = 14;
  params.num_machines = 3;
  params.num_classes = 3;
  return ProblemInput::from_uniform(generate_uniform(params, 5));
}

ProblemInput small_unrelated() {
  UnrelatedGenParams params;
  params.num_jobs = 12;
  params.num_machines = 3;
  params.num_classes = 3;
  params.eligibility = 0.9;
  return ProblemInput::from_unrelated(generate_unrelated(params, 5));
}

ProblemInput small_restricted() {
  RestrictedGenParams params;
  params.num_jobs = 12;
  params.num_machines = 4;
  params.num_classes = 4;
  return ProblemInput::from_unrelated(
      generate_restricted_class_uniform(params, 5));
}

ProblemInput small_class_uniform() {
  ClassUniformGenParams params;
  params.num_jobs = 12;
  params.num_machines = 4;
  params.num_classes = 4;
  return ProblemInput::from_unrelated(
      generate_class_uniform_processing(params, 5));
}

TEST(SolverRegistry, RegistersEveryBuiltinSolver) {
  const auto names = SolverRegistry::global().names();
  const char* expected[] = {
      "assignment-lp",  "best-machine", "branch-and-price",
      "classuniform-3approx", "colgen", "cover-greedy",
      "dive-then-prove", "exact",       "exact-dive",
      "greedy",         "greedy-classes", "local-search",
      "lpt",            "lpt-plain",    "ptas",
      "restricted-2approx", "rounding",
  };
  for (const char* name : expected) {
    EXPECT_TRUE(SolverRegistry::global().contains(name)) << name;
  }
  EXPECT_EQ(names.size(), std::size(expected));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, CreateYieldsSolverWithMatchingName) {
  for (const std::string& name : SolverRegistry::global().names()) {
    const auto solver = SolverRegistry::global().create(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
  }
}

TEST(SolverRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)SolverRegistry::global().create("no-such-solver"),
               CheckError);
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry registry;
  const auto factory = [] { return SolverRegistry::global().create("greedy"); };
  registry.add("x", factory);
  EXPECT_THROW(registry.add("x", factory), CheckError);
}

TEST(SolverRegistry, SupportsReflectsStructuralPreconditions) {
  const ProblemInput unrelated = small_unrelated();
  const ProblemInput uniform = small_uniform();
  const ProblemInput restricted = small_restricted();

  const auto ptas = SolverRegistry::global().create("ptas");
  EXPECT_TRUE(ptas->supports(uniform));
  EXPECT_FALSE(ptas->supports(unrelated));
  EXPECT_THROW((void)ptas->solve(unrelated, fast_context()), CheckError);

  const auto two_approx = SolverRegistry::global().create("restricted-2approx");
  EXPECT_TRUE(two_approx->supports(restricted));
  EXPECT_FALSE(two_approx->supports(unrelated));

  const auto greedy = SolverRegistry::global().create("greedy");
  EXPECT_TRUE(greedy->supports(uniform));
  EXPECT_TRUE(greedy->supports(unrelated));
}

/// Runs every supporting registered solver on `input` and checks the shared
/// contract: complete valid schedule, self-consistent makespan, and makespan
/// at or above the instance lower bound from core/bounds.h.
void run_all_solvers(const ProblemInput& input) {
  const double lower = unrelated_lower_bound(input.instance);
  ASSERT_GT(lower, 0.0);
  std::size_t ran = 0;
  for (const std::string& name : SolverRegistry::global().names()) {
    const auto solver = SolverRegistry::global().create(name);
    if (!solver->supports(input)) continue;
    SCOPED_TRACE(name);
    const ScheduleResult result = solver->solve(input, fast_context());
    EXPECT_EQ(schedule_error(input.instance, result.schedule), std::nullopt);
    EXPECT_NEAR(result.makespan, makespan(input.instance, result.schedule),
                1e-9 * std::max(1.0, result.makespan));
    EXPECT_GE(result.makespan, lower * (1.0 - 1e-12));
    ++ran;
  }
  EXPECT_GE(ran, 9u);  // everything except the structure-gated solvers
}

TEST(SolverEndToEnd, UniformInstance) { run_all_solvers(small_uniform()); }

TEST(SolverEndToEnd, UnrelatedInstance) { run_all_solvers(small_unrelated()); }

TEST(SolverEndToEnd, RestrictedInstance) { run_all_solvers(small_restricted()); }

TEST(SolverEndToEnd, ClassUniformInstance) {
  run_all_solvers(small_class_uniform());
}

TEST(SolverEndToEnd, UniformLowerBoundHoldsForUniformSolvers) {
  const ProblemInput input = small_uniform();
  const double lower = uniform_lower_bound(*input.uniform);
  for (const char* name : {"lpt", "lpt-plain", "ptas"}) {
    SCOPED_TRACE(name);
    const auto solver = SolverRegistry::global().create(name);
    const ScheduleResult result = solver->solve(input, fast_context());
    EXPECT_GE(result.makespan, lower * (1.0 - 1e-9));
  }
}

TEST(SolverEndToEnd, HeuristicsNeverBeatExact) {
  UnrelatedGenParams params;
  params.num_jobs = 8;
  params.num_machines = 3;
  params.num_classes = 2;
  const ProblemInput input =
      ProblemInput::from_unrelated(generate_unrelated(params, 11));

  ExactOptions exact_options;
  exact_options.time_limit_s = 10.0;
  const ExactResult optimum = solve_exact(input.instance, exact_options);
  ASSERT_TRUE(optimum.proven_optimal);

  for (const std::string& name : SolverRegistry::global().names()) {
    const auto solver = SolverRegistry::global().create(name);
    if (!solver->supports(input)) continue;
    SCOPED_TRACE(name);
    const ScheduleResult result = solver->solve(input, fast_context());
    EXPECT_GE(result.makespan, optimum.makespan * (1.0 - 1e-9));
  }
}

// Regression: the registry used to drop ExactResult.proven_optimal/nodes on
// the floor, so a budget-exhausted run was indistinguishable from ground
// truth downstream. The certificate must ride through SolverStats.
TEST(SolverEndToEnd, ExactRegistryEntrySurfacesCertificate) {
  const ProblemInput input = small_unrelated();

  const auto exact = SolverRegistry::global().create("exact");
  const ScheduleResult proven = exact->solve(input, fast_context());
  EXPECT_TRUE(proven.stats.proven_optimal);
  EXPECT_DOUBLE_EQ(proven.stats.gap, 0.0);
  EXPECT_GT(proven.stats.nodes, 0u);

  // A vanishing time budget must surface as an honest non-certificate (the
  // schedule is still valid), not masquerade as an optimum.
  SolverContext strangled = fast_context();
  strangled.time_limit_s = 0.0;
  const ScheduleResult aborted = exact->solve(input, strangled);
  EXPECT_FALSE(aborted.stats.proven_optimal);
  EXPECT_GT(aborted.stats.gap, 0.0);
  EXPECT_EQ(schedule_error(input.instance, aborted.schedule), std::nullopt);

  const auto dive = SolverRegistry::global().create("exact-dive");
  const ScheduleResult dived = dive->solve(input, fast_context());
  EXPECT_GE(dived.stats.gap, 0.0);
  EXPECT_GT(dived.stats.nodes, 0u);
  if (dived.stats.proven_optimal) {
    EXPECT_DOUBLE_EQ(dived.stats.gap, 0.0);
    EXPECT_NEAR(dived.makespan, proven.makespan, 1e-9);
  }
}

// Regression: randomized_rounding_config used to count its *outer*
// solve_config_lp() calls in lp_solves instead of accumulating the inner
// ConfigLpResult counters, so the colgen registry entry reported ~1 LP
// solve per run regardless of how many RMP rounds the column generation
// actually performed. The real effort must ride through SolverStats.
TEST(SolverEndToEnd, ColgenRegistryEntrySurfacesLpEffort) {
  const ProblemInput input = small_unrelated();
  const auto colgen = SolverRegistry::global().create("colgen");
  ASSERT_TRUE(colgen->supports(input));
  const ScheduleResult result = colgen->solve(input, fast_context());
  // The T-search runs several probes and each probe runs >= 1 RMP solve, so
  // the accumulated count must exceed the old "number of outer calls == a
  // handful, reported as 1 each" floor.
  EXPECT_GT(result.stats.lp_solves, 1u);
  EXPECT_GT(result.stats.lp_iterations, 0u);
}

// The branch-and-price registry entry carries the same certificate contract
// as "exact" plus the column-generation effort counters.
TEST(SolverEndToEnd, BranchAndPriceRegistryEntrySurfacesCgCounters) {
  const ProblemInput input = small_unrelated();
  const auto solver = SolverRegistry::global().create("branch-and-price");
  ASSERT_TRUE(solver->supports(input));
  const ScheduleResult result = solver->solve(input, fast_context());
  EXPECT_TRUE(result.stats.proven_optimal);
  EXPECT_DOUBLE_EQ(result.stats.gap, 0.0);
  EXPECT_GT(result.stats.nodes, 0u);
  // bound=auto always probes the config LP at the root, so pricing rounds
  // are nonzero even when it later demotes to the assignment bound.
  EXPECT_GT(result.stats.cg_pricing_rounds, 0u);
}

TEST(CoverGreedy, CoversEveryJobAndPaysSetupsOnce) {
  const ProblemInput input = small_unrelated();
  const ScheduleResult result = cover_greedy(input.instance);
  EXPECT_EQ(schedule_error(input.instance, result.schedule), std::nullopt);
  // Each machine pays each class at most once by construction; total setups
  // are therefore bounded by machines * classes.
  EXPECT_LE(total_setups(input.instance, result.schedule),
            input.instance.num_machines() * input.instance.num_classes());
}

}  // namespace
}  // namespace setsched
