#include <gtest/gtest.h>

#include "core/generators.h"
#include "exact/branch_bound.h"
#include "unrelated/assignment_lp.h"

namespace setsched {
namespace {

/// Verifies constraints (1), (2), (4), (5) of ILP-UM's relaxation directly
/// on the recovered fractional solution.
void expect_valid_fractional(const Instance& inst,
                             const FractionalAssignment& f, double T,
                             double tol = 1e-6) {
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    double total = 0.0;
    for (MachineId i = 0; i < inst.num_machines(); ++i) {
      const double x = f.x(i, j);
      EXPECT_GE(x, -tol);
      if (x > tol) {
        EXPECT_TRUE(inst.eligible(i, j));
        EXPECT_LE(inst.proc(i, j), T + tol);               // (5)
        EXPECT_LE(x, f.y(i, inst.job_class(j)) + tol);     // (4)
      }
      total += x;
    }
    EXPECT_NEAR(total, 1.0, tol) << "job " << j;           // (2)
  }
  for (MachineId i = 0; i < inst.num_machines(); ++i) {    // (1)
    double load = 0.0;
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      if (f.x(i, j) > 0.0) load += f.x(i, j) * inst.proc(i, j);
    }
    for (ClassId k = 0; k < inst.num_classes(); ++k) {
      if (f.y(i, k) > 0.0) load += f.y(i, k) * inst.setup(i, k);
    }
    EXPECT_LE(load, T + tol) << "machine " << i;
  }
}

TEST(AssignmentLp, FeasibleAtOptimalMakespan) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 42);
  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  const auto frac = solve_assignment_lp(inst, opt.makespan);
  ASSERT_TRUE(frac.has_value());
  expect_valid_fractional(inst, *frac, opt.makespan);
}

TEST(AssignmentLp, InfeasibleWellBelowOptimum) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 43);
  const double floor = assignment_lp_floor(inst);
  EXPECT_FALSE(solve_assignment_lp(inst, floor * 0.5).has_value());
}

TEST(AssignmentLp, InfeasibleWhenJobCannotFit) {
  Instance inst(2, 1, {0});
  inst.set_proc(0, 0, 10);
  inst.set_proc(1, 0, 12);
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  EXPECT_FALSE(solve_assignment_lp(inst, 9.0).has_value());  // (5) kills job 0
  EXPECT_TRUE(solve_assignment_lp(inst, 11.0).has_value());
}

TEST(AssignmentLp, FractionalSplitBeatsIntegralMakespan) {
  // One class, huge setup, two machines: the LP may split fractionally and
  // be feasible at T where any integral schedule is not.
  Instance inst(2, 1, {0, 0});
  for (MachineId i = 0; i < 2; ++i) {
    inst.set_proc(i, 0, 10);
    inst.set_proc(i, 1, 10);
    inst.set_setup(i, 0, 10);
  }
  // Integral optimum: both jobs on one machine = 30, or split = 20 each.
  const ExactResult opt = solve_exact(inst);
  EXPECT_DOUBLE_EQ(opt.makespan, 20.0);
  // Fractional: x = 1/2 everywhere, y = 1/2 each: load = 10 + 5 = 15.
  EXPECT_TRUE(solve_assignment_lp(inst, 15.0).has_value());
  EXPECT_FALSE(solve_assignment_lp(inst, 14.0).has_value());
}

TEST(AssignmentLp, FloorIsSane) {
  Instance inst(2, 1, {0, 0});
  inst.set_proc(0, 0, 4);
  inst.set_proc(1, 0, 6);
  inst.set_proc(0, 1, 8);
  inst.set_proc(1, 1, 2);
  inst.set_setup(0, 0, 1);
  inst.set_setup(1, 0, 1);
  // min procs: job0 -> 4, job1 -> 2; floor = max(4, (4+2)/2) = 4.
  EXPECT_DOUBLE_EQ(assignment_lp_floor(inst), 4.0);
}

class LpSearchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpSearchTest, WindowBracketsOptimum) {
  UnrelatedGenParams p;
  p.num_jobs = 9;
  p.num_machines = 3;
  p.num_classes = 3;
  p.eligibility = 0.8;
  const Instance inst = generate_unrelated(p, GetParam());
  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);

  const double prec = 0.03;
  const LpSearchResult r = search_assignment_lp(inst, prec);
  EXPECT_GE(r.feasible_T, r.lower_bound - 1e-9);
  EXPECT_LE(r.feasible_T, r.lower_bound * (1 + prec) + 1e-9);
  // The LP value is a lower bound on OPT, so:
  EXPECT_LE(r.lower_bound, opt.makespan + 1e-9) << "seed " << GetParam();
  EXPECT_LE(r.feasible_T, opt.makespan * (1 + prec) + 1e-9);
  expect_valid_fractional(inst, r.fractional, r.feasible_T);
  EXPECT_GE(r.lp_solves, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpSearchTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(AssignmentLp, StrengthenedStillFeasibleAtOptimum) {
  UnrelatedGenParams p;
  p.num_jobs = 8;
  p.num_machines = 3;
  p.num_classes = 3;
  const Instance inst = generate_unrelated(p, 7);
  const ExactResult opt = solve_exact(inst);
  ASSERT_TRUE(opt.proven_optimal);
  AssignmentLpOptions o;
  o.strengthen = true;
  const auto frac = solve_assignment_lp(inst, opt.makespan, o);
  ASSERT_TRUE(frac.has_value());
  expect_valid_fractional(inst, *frac, opt.makespan);
}

TEST(AssignmentLp, StrengthenedAtLeastAsTight) {
  // The strengthened relaxation is infeasible whenever the plain one is.
  UnrelatedGenParams p;
  p.num_jobs = 10;
  p.num_machines = 3;
  p.num_classes = 4;
  const Instance inst = generate_unrelated(p, 77);
  AssignmentLpOptions strong;
  strong.strengthen = true;
  for (const double t : {0.5, 0.8, 1.0, 1.3}) {
    const double T = assignment_lp_floor(inst) * t * 2.0;
    const bool plain = solve_assignment_lp(inst, T).has_value();
    const bool strengthened = solve_assignment_lp(inst, T, strong).has_value();
    if (strengthened) {
      EXPECT_TRUE(plain) << "T=" << T;
    }
  }
}

TEST(AssignmentLp, MinimizesTotalSetupMass) {
  // With a generous T, an (integral) solution with one machine doing all of
  // one class exists; the min-sum-y objective should not open setups it does
  // not need: total y should be close to the number of used classes.
  Instance inst(2, 2, {0, 0, 1, 1});
  for (MachineId i = 0; i < 2; ++i) {
    for (JobId j = 0; j < 4; ++j) inst.set_proc(i, j, 2);
    inst.set_setup(i, 0, 3);
    inst.set_setup(i, 1, 3);
  }
  const auto frac = solve_assignment_lp(inst, 100.0);
  ASSERT_TRUE(frac.has_value());
  double total_y = 0.0;
  for (MachineId i = 0; i < 2; ++i) {
    for (ClassId k = 0; k < 2; ++k) total_y += frac->y(i, k);
  }
  EXPECT_NEAR(total_y, 2.0, 1e-6);  // one setup per class in total
}

}  // namespace
}  // namespace setsched
