#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "common/check.h"
#include "expt/aggregate.h"
#include "expt/harness.h"
#include "expt/plan.h"
#include "expt/record_io.h"
#include "obs/phase.h"

namespace setsched::expt {
namespace {

// --- plan parsing ----------------------------------------------------------

TEST(ExptPlan, ParsesKeyValueFile) {
  std::istringstream is(
      "# a tiny sweep\n"
      "presets = uniform-small, unrelated-small\n"
      "solvers = greedy, lpt   # trailing comment\n"
      "seeds = 2..4\n"
      "epsilon = 0.25\n"
      "precision = 0.1\n"
      "time_limit_s = 2.5\n"
      "cell_timeout_s = 1.5\n"
      "inject = eta-flip,ftran-nan@0.01\n"
      "lp_audit_interval = 16\n"
      "lp = tableau\n"
      "threads = 3\n"
      "timing = off\n");
  const ExperimentPlan plan = parse_plan(is);
  EXPECT_EQ(plan.presets,
            (std::vector<std::string>{"uniform-small", "unrelated-small"}));
  EXPECT_EQ(plan.solvers, (std::vector<std::string>{"greedy", "lpt"}));
  EXPECT_EQ(plan.seed_begin, 2u);
  EXPECT_EQ(plan.seed_end, 4u);
  EXPECT_DOUBLE_EQ(plan.epsilon, 0.25);
  EXPECT_DOUBLE_EQ(plan.precision, 0.1);
  EXPECT_DOUBLE_EQ(plan.time_limit_s, 2.5);
  EXPECT_DOUBLE_EQ(plan.cell_timeout_s, 1.5);
  EXPECT_EQ(plan.inject, "eta-flip,ftran-nan@0.01");
  EXPECT_EQ(plan.lp_audit_interval, 16u);
  EXPECT_EQ(plan.lp_algorithm, lp::SimplexAlgorithm::kTableau);
  EXPECT_EQ(plan.threads, 3u);
  EXPECT_FALSE(plan.record_timing);
  EXPECT_EQ(plan.num_seeds(), 3u);
  EXPECT_EQ(plan.num_cells(), 2u * 3u * 2u);
}

TEST(ExptPlan, SolversAllExpandsToRegistry) {
  std::istringstream is(
      "presets = uniform-small\n"
      "solvers = all\n");
  const ExperimentPlan plan = parse_plan(is);
  EXPECT_EQ(plan.solvers, SolverRegistry::global().names());
}

TEST(ExptPlan, SeedRangeForms) {
  std::uint64_t begin = 0, end = 0;
  parse_seed_range("5", &begin, &end);
  EXPECT_EQ(begin, 1u);
  EXPECT_EQ(end, 5u);
  parse_seed_range(" 7 .. 9 ", &begin, &end);
  EXPECT_EQ(begin, 7u);
  EXPECT_EQ(end, 9u);
  EXPECT_THROW(parse_seed_range("9..7", &begin, &end), CheckError);
  EXPECT_THROW(parse_seed_range("0", &begin, &end), CheckError);
  EXPECT_THROW(parse_seed_range("abc", &begin, &end), CheckError);
  EXPECT_THROW(parse_seed_range("", &begin, &end), CheckError);
}

TEST(ExptPlan, RejectsMalformedFiles) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return parse_plan(is);
  };
  EXPECT_THROW(parse("presets = uniform-small\nwat = 1\n"), CheckError);
  EXPECT_THROW(parse("presets uniform-small\n"), CheckError);
  EXPECT_THROW(parse("presets = no-such-preset\nsolvers = greedy\n"),
               CheckError);
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = no-such-solver\n"),
               CheckError);
  EXPECT_THROW(parse("presets = uniform-small\n"), CheckError);  // no solvers
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = greedy\n"
                     "timing = sometimes\n"),
               CheckError);
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = greedy\n"
                     "epsilon = -1\n"),
               CheckError);
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = greedy\n"
                     "lp = dense\n"),
               CheckError);
  // A malformed fault-injection spec must fail at plan time, not mid-sweep.
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = greedy\n"
                     "inject = warp-core-breach@0.01\n"),
               CheckError);
  EXPECT_THROW(parse("presets = uniform-small\nsolvers = greedy\n"
                     "inject = all@2.0\n"),
               CheckError);
}

TEST(ExptPlan, LpAlgorithmNamesRoundTrip) {
  for (const auto algorithm :
       {lp::SimplexAlgorithm::kAuto, lp::SimplexAlgorithm::kTableau,
        lp::SimplexAlgorithm::kRevised}) {
    EXPECT_EQ(lp_algorithm_from_name(lp_algorithm_name(algorithm)), algorithm);
  }
  EXPECT_THROW((void)lp_algorithm_from_name("simplex"), CheckError);
}

TEST(ExptPlan, CellKeyOrderIsPresetSeedSolver) {
  ExperimentPlan plan;
  plan.presets = {"uniform-small", "unrelated-small"};
  plan.solvers = {"greedy", "lpt", "best-machine"};
  plan.seed_begin = 3;
  plan.seed_end = 4;
  ASSERT_EQ(plan.num_cells(), 12u);
  std::size_t cell = 0;
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::uint64_t s = 3; s <= 4; ++s) {
      for (std::size_t v = 0; v < 3; ++v, ++cell) {
        const CellKey key = cell_key(plan, cell);
        EXPECT_EQ(key.preset, p);
        EXPECT_EQ(key.seed, s);
        EXPECT_EQ(key.solver, v);
        EXPECT_EQ(key.point, p * 2 + (s - 3));
      }
    }
  }
}

TEST(ExptPlan, CellSeedDependsOnEveryComponent) {
  const std::uint64_t base = cell_seed("uniform-small", 1, "greedy");
  EXPECT_EQ(base, cell_seed("uniform-small", 1, "greedy"));  // deterministic
  EXPECT_NE(base, cell_seed("unrelated-small", 1, "greedy"));
  EXPECT_NE(base, cell_seed("uniform-small", 2, "greedy"));
  EXPECT_NE(base, cell_seed("uniform-small", 1, "lpt"));
}

// --- record IO -------------------------------------------------------------

RunRecord sample_record() {
  RunRecord r;
  r.solver = "greedy";
  r.preset = "uniform-small";
  r.seed = 7;
  r.cell_seed = 123456789012345ULL;
  r.num_jobs = 20;
  r.num_machines = 4;
  r.num_classes = 4;
  r.status = RunStatus::kOk;
  r.makespan = 58.32713820362053;
  r.lower_bound = 21.702411671642682;
  r.ratio = r.makespan / r.lower_bound;
  r.setups = 9;
  r.time_ms = 0.125;
  r.phase_ms[obs::Phase::kLpSolve] = 0.0625;
  r.phase_ms[obs::Phase::kLpPricing] = 0.03125;
  r.phase_ms[obs::Phase::kProve] = 0.015625;
  r.lp_solves = 7;
  r.lp_iterations = 431;
  r.lp_dual_solves = 4;
  r.fixed_vars = 11;
  r.lp_audits_suspect = 3;
  r.lp_recoveries = 2;
  r.lp_oracle_fallbacks = 1;
  r.nodes = 1234;
  r.lp_bounds_used = 5;
  r.proven_optimal = true;
  r.gap = 0.0;
  r.epsilon = 0.5;
  r.precision = 0.05;
  r.time_limit_s = 10.0;
  return r;
}

TEST(ExptRecordIo, JsonlRoundTripIsExact) {
  std::vector<RunRecord> records{sample_record(), sample_record()};
  records[1].status = RunStatus::kError;
  records[1].makespan = 0.0;
  records[1].ratio = 0.0;
  records[1].error = "quote \" backslash \\ newline \n tab \t ctrl \x01 end";

  std::stringstream stream;
  write_jsonl(stream, records);
  const std::vector<RunRecord> back = read_jsonl(stream);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], records[0]);
  EXPECT_EQ(back[1], records[1]);
}

// Lines written before the observability PR carry no phase_ms key; they must
// parse with an empty breakdown (phase_ms is the one optional key).
TEST(ExptRecordIo, ReadAcceptsLegacyLinesWithoutPhaseMs) {
  std::stringstream stream;
  write_jsonl(stream, sample_record());
  std::string line = stream.str();
  const std::size_t at = line.find(",\"phase_ms\":{");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = line.find('}', at);
  ASSERT_NE(end, std::string::npos);
  line.erase(at, end + 1 - at);
  EXPECT_EQ(line.find("phase_ms"), std::string::npos);

  std::istringstream legacy(line);
  const std::vector<RunRecord> back = read_jsonl(legacy);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].phase_ms.empty());
  RunRecord expected = sample_record();
  expected.phase_ms = obs::PhaseTimes{};
  EXPECT_EQ(back[0], expected);
}

// Lines written before the numerical-safety-net PR carry none of the LP
// guard counters; they must parse with zeros (the counters are optional on
// read, like phase_ms).
TEST(ExptRecordIo, ReadAcceptsLegacyLinesWithoutGuardCounters) {
  std::stringstream stream;
  write_jsonl(stream, sample_record());
  std::string line = stream.str();
  for (const std::string key :
       {"lp_audits_suspect", "lp_recoveries", "lp_oracle_fallbacks"}) {
    const std::size_t at = line.find(",\"" + key + "\":");
    ASSERT_NE(at, std::string::npos) << key;
    const std::size_t end = line.find_first_of(",}", at + key.size() + 4);
    ASSERT_NE(end, std::string::npos) << key;
    line.erase(at, end - at);
    EXPECT_EQ(line.find(key), std::string::npos) << key;
  }

  std::istringstream legacy(line);
  const std::vector<RunRecord> back = read_jsonl(legacy);
  ASSERT_EQ(back.size(), 1u);
  RunRecord expected = sample_record();
  expected.lp_audits_suspect = 0;
  expected.lp_recoveries = 0;
  expected.lp_oracle_fallbacks = 0;
  EXPECT_EQ(back[0], expected);
}

TEST(ExptRecordIo, TimeoutStatusRoundTrips) {
  EXPECT_EQ(run_status_name(RunStatus::kTimeout), "timeout");
  EXPECT_EQ(run_status_from_name("timeout"), RunStatus::kTimeout);
  RunRecord r = sample_record();
  r.status = RunStatus::kTimeout;
  r.proven_optimal = false;
  std::stringstream stream;
  write_jsonl(stream, r);
  const std::vector<RunRecord> back = read_jsonl(stream);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], r);
}

TEST(ExptRecordIo, ReadAcceptsBlankLinesAndAnyKeyOrder) {
  std::stringstream stream;
  write_jsonl(stream, sample_record());
  std::string line = stream.str();
  // Move the trailing "error" pair to the front: key order must not matter.
  line = "{\"error\":\"\"," + line.substr(1);
  line.erase(line.rfind(",\"error\":\"\""), 11);
  std::istringstream shuffled("\n" + line + "\n\n");
  const std::vector<RunRecord> back = read_jsonl(shuffled);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], sample_record());
}

TEST(ExptRecordIo, ReadRejectsMalformedLines) {
  const auto read = [](const std::string& text) {
    std::istringstream is(text);
    return read_jsonl(is);
  };
  std::stringstream good;
  write_jsonl(good, sample_record());
  const std::string line = good.str();

  EXPECT_THROW(read("{\"solver\":\"x\"}"), CheckError);  // missing keys
  EXPECT_THROW(read("not json"), CheckError);
  EXPECT_THROW(read(line.substr(0, line.size() - 3)), CheckError);  // truncated
  std::string unknown = line;
  unknown.insert(1, "\"bogus\":1,");
  EXPECT_THROW(read(unknown), CheckError);
  std::string bad_status = line;
  const std::size_t at = bad_status.find("\"ok\"");
  ASSERT_NE(at, std::string::npos);
  bad_status.replace(at, 4, "\"??\"");
  EXPECT_THROW(read(bad_status), CheckError);
}

TEST(ExptRecordIo, CsvHeaderAndQuoting) {
  RunRecord r = sample_record();
  r.status = RunStatus::kInvalid;
  r.error = "bad, \"quoted\" value";
  std::ostringstream os;
  write_csv(os, std::vector<RunRecord>{r});
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, out.find('\n')),
            "solver,preset,seed,cell_seed,n,m,classes,status,makespan,"
            "lower_bound,ratio,setups,time_ms,phase_ms,lp_solves,"
            "lp_iterations,lp_dual_solves,fixed_vars,lp_audits_suspect,"
            "lp_recoveries,lp_oracle_fallbacks,cg_columns,cg_pricing_rounds,"
            "cg_fallbacks,nodes,lp_bounds_used,"
            "proven_optimal,gap,epsilon,precision,time_limit_s,error");
  EXPECT_NE(out.find("\"bad, \"\"quoted\"\" value\""), std::string::npos);
  // Compact semicolon-separated breakdown, never CSV-quoted.
  EXPECT_NE(out.find("lp_solve:0.0625;lp_pricing:0.03125;prove:0.015625"),
            std::string::npos);
}

// --- harness ---------------------------------------------------------------

ExperimentPlan small_plan(std::size_t threads) {
  ExperimentPlan plan;
  plan.presets = {"uniform-small", "unrelated-small"};
  plan.solvers = {"greedy", "lpt", "local-search"};
  plan.seed_begin = 1;
  plan.seed_end = 2;
  plan.threads = threads;
  plan.record_timing = false;  // the one thread-count-dependent field
  return plan;
}

TEST(ExptHarness, SortedJsonlIsByteIdenticalAcrossThreadCounts) {
  const std::vector<RunRecord> sequential = run_experiment(small_plan(1));
  const std::vector<RunRecord> sharded = run_experiment(small_plan(4));
  EXPECT_EQ(sequential, sharded);

  const auto to_sorted_jsonl = [](const std::vector<RunRecord>& records) {
    std::stringstream stream;
    write_jsonl(stream, records);
    std::vector<std::string> lines;
    for (std::string line; std::getline(stream, line);) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) out += line + "\n";
    return out;
  };
  EXPECT_EQ(to_sorted_jsonl(sequential), to_sorted_jsonl(sharded));
}

TEST(ExptHarness, RecordsCarryCellKeysStatusesAndBounds) {
  const ExperimentPlan plan = small_plan(2);
  const std::vector<RunRecord> records = run_experiment(plan);
  ASSERT_EQ(records.size(), plan.num_cells());
  for (std::size_t c = 0; c < records.size(); ++c) {
    const CellKey key = cell_key(plan, c);
    const RunRecord& r = records[c];
    EXPECT_EQ(r.preset, plan.presets[key.preset]);
    EXPECT_EQ(r.solver, plan.solvers[key.solver]);
    EXPECT_EQ(r.seed, key.seed);
    EXPECT_EQ(r.cell_seed, cell_seed(r.preset, r.seed, r.solver));
    EXPECT_GT(r.num_jobs, 0u);
    EXPECT_GT(r.num_machines, 0u);
    EXPECT_GT(r.lower_bound, 0.0);
    EXPECT_DOUBLE_EQ(r.time_ms, 0.0);
    if (r.solver == "lpt") {
      // The uniform-only solver must be skipped on the unrelated preset.
      EXPECT_EQ(r.status, r.preset == "uniform-small" ? RunStatus::kOk
                                                      : RunStatus::kSkipped);
    } else {
      EXPECT_EQ(r.status, RunStatus::kOk);
    }
    if (r.status == RunStatus::kOk) {
      // The lower bound is genuine, so validated makespans sit above it.
      EXPECT_GE(r.ratio, 1.0 - 1e-9);
      EXPECT_NEAR(r.ratio, r.makespan / r.lower_bound, 1e-12);
      // LP-free solvers report zero solver-level LP effort and issue no
      // optimality certificate.
      EXPECT_EQ(r.lp_solves, 0u);
      EXPECT_EQ(r.lp_iterations, 0u);
      EXPECT_EQ(r.nodes, 0u);
      EXPECT_EQ(r.lp_bounds_used, 0u);
      EXPECT_FALSE(r.proven_optimal);
      EXPECT_DOUBLE_EQ(r.gap, -1.0);
    } else {
      EXPECT_DOUBLE_EQ(r.makespan, 0.0);
      EXPECT_TRUE(r.error.empty());
    }
  }
}

// The mid-size ground-truth scenario: an exact-included sweep on the
// unrelated-midsize preset must report a per-run gap for the search solvers
// and may never mislabel a budget-exhausted run as proven-optimal.
// The per-cell watchdog: a deadline far below the solve time must surface as
// kTimeout (a budget verdict — the schedule itself was still validated), and
// a generous one must leave the sweep untouched.
TEST(ExptHarness, CellTimeoutClassifiesSlowCells) {
  ExperimentPlan plan;
  plan.presets = {"unrelated-midsize"};
  plan.solvers = {"exact"};
  plan.seed_begin = 1;
  plan.seed_end = 1;
  plan.time_limit_s = 1.0;
  plan.cell_timeout_s = 1e-4;  // hopeless: the root LP alone takes longer
  plan.threads = 1;
  plan.record_timing = false;
  const std::vector<RunRecord> timed_out = run_experiment(plan);
  ASSERT_EQ(timed_out.size(), 1u);
  EXPECT_EQ(timed_out[0].status, RunStatus::kTimeout) << timed_out[0].error;

  plan.presets = {"uniform-small"};
  plan.solvers = {"greedy"};
  plan.cell_timeout_s = 3600.0;
  const std::vector<RunRecord> relaxed = run_experiment(plan);
  ASSERT_EQ(relaxed.size(), 1u);
  EXPECT_EQ(relaxed[0].status, RunStatus::kOk) << relaxed[0].error;
}

TEST(ExptHarness, MidsizeExactSweepCertificatesAreCoherent) {
  ExperimentPlan plan;
  plan.presets = {"unrelated-midsize"};
  plan.solvers = {"exact", "exact-dive", "greedy"};
  plan.seed_begin = 1;
  plan.seed_end = 2;
  plan.time_limit_s = 1.0;  // hopeless for proving n=40: must abort honestly
  plan.threads = 1;
  plan.record_timing = false;
  const std::vector<RunRecord> records = run_experiment(plan);
  ASSERT_EQ(records.size(), plan.num_cells());
  for (const RunRecord& r : records) {
    ASSERT_EQ(r.status, RunStatus::kOk) << r.solver << ": " << r.error;
    if (r.solver == "greedy") {
      EXPECT_FALSE(r.proven_optimal);
      EXPECT_DOUBLE_EQ(r.gap, -1.0);
      continue;
    }
    // Search solvers always carry a certificate...
    EXPECT_GE(r.gap, 0.0) << r.solver;
    EXPECT_GT(r.nodes, 0u) << r.solver;
    // ...and a proven claim coincides with a closed gap: a budget abort
    // must surface as proven_optimal == false with gap > 0.
    if (r.proven_optimal) {
      EXPECT_DOUBLE_EQ(r.gap, 0.0) << r.solver;
    } else {
      EXPECT_GT(r.gap, 0.0) << r.solver;
    }
  }
}

// Phase-ledger attribution across cells sharing a thread (the regression the
// thread-local snapshot delta protects against): an accumulator only grows
// over a thread's lifetime, so a delta bug would make later cells on the same
// thread report phase totals covering earlier cells too. Solver-tier phases
// are disjoint and lie strictly inside the timed solve, so each record must
// satisfy phase_total <= its own time_ms (plus clock-granularity slack).
// threads=1 exercises the inline path (every cell reuses the calling
// thread's accumulator); threads=2 exercises pool-worker reuse.
TEST(ExptHarness, PhaseDeltasStayWithinOwnCellTime) {
  for (const std::size_t threads : {1u, 2u}) {
    ExperimentPlan plan;
    plan.presets = {"unrelated-small"};
    plan.solvers = {"exact-dive"};
    plan.seed_begin = 1;
    plan.seed_end = 4;
    plan.time_limit_s = 0.5;
    plan.threads = threads;
    plan.record_timing = true;
    const std::vector<RunRecord> records = run_experiment(plan);
    ASSERT_EQ(records.size(), 4u);
    for (const RunRecord& r : records) {
      ASSERT_EQ(r.status, RunStatus::kOk) << r.error;
      const double solver_tier = r.phase_ms[obs::Phase::kRootBound] +
                                 r.phase_ms[obs::Phase::kDive] +
                                 r.phase_ms[obs::Phase::kProve];
      EXPECT_LE(solver_tier, r.time_ms * 1.05 + 5.0)
          << "threads=" << threads << " seed=" << r.seed
          << ": phase total exceeds the cell's own wall time";
    }
  }
}

// --- aggregation -----------------------------------------------------------

RunRecord bucket_record(const std::string& solver, const std::string& preset,
                        RunStatus status, double ratio, double time_ms,
                        std::size_t lp_solves = 0,
                        std::size_t lp_iterations = 0,
                        bool proven_optimal = false, double gap = -1.0) {
  RunRecord r;
  r.solver = solver;
  r.preset = preset;
  r.status = status;
  r.ratio = ratio;
  r.time_ms = time_ms;
  r.lp_solves = lp_solves;
  r.lp_iterations = lp_iterations;
  r.proven_optimal = proven_optimal;
  r.gap = gap;
  return r;
}

RunRecord with_phases(RunRecord r, double lp_solve_ms, double pricing_ms) {
  r.phase_ms[obs::Phase::kLpSolve] = lp_solve_ms;
  r.phase_ms[obs::Phase::kLpPricing] = pricing_ms;
  return r;
}

TEST(ExptAggregate, MatchesHandComputedFixture) {
  const std::vector<RunRecord> records{
      // zeta/p1: ratios {1.0, 1.5, 2.0}, times {10, 20, 30}, lp solves
      // {8, 6, 10} and iterations {400, 200, 600}, 1 skip, 1 error.
      // Certificates: one proven optimum (gap 0), one budget-exhausted run
      // (gap 0.25), one heuristic cell (no certificate, gap -1).
      with_phases(bucket_record("zeta", "p1", RunStatus::kOk, 1.5, 20.0, 8,
                                400, true, 0.0),
                  10.0, 4.0),
      with_phases(bucket_record("zeta", "p1", RunStatus::kOk, 1.0, 10.0, 6,
                                200, false, 0.25),
                  2.0, 2.0),
      with_phases(bucket_record("zeta", "p1", RunStatus::kOk, 2.0, 30.0, 10,
                                600),
                  15.0, 6.0),
      bucket_record("zeta", "p1", RunStatus::kSkipped, 0.0, 0.0),
      bucket_record("zeta", "p1", RunStatus::kError, 0.0, 0.0),
      // A timed-out cell: counted apart from failed, quality ignored.
      bucket_record("zeta", "p1", RunStatus::kTimeout, 99.0, 9999.0),
      // alpha/p2: every cell failed -> zeroed statistics, not UB or a throw.
      bucket_record("alpha", "p2", RunStatus::kInvalid, 0.0, 0.0),
      // alpha/p1: single ok cell -> every statistic equals that cell.
      bucket_record("alpha", "p1", RunStatus::kOk, 1.25, 5.0),
  };
  const std::vector<AggregateSummary> summaries = aggregate(records);
  ASSERT_EQ(summaries.size(), 3u);

  // Sorted by (solver, preset): alpha/p1, alpha/p2, zeta/p1.
  EXPECT_EQ(summaries[0].solver, "alpha");
  EXPECT_EQ(summaries[0].preset, "p1");
  EXPECT_EQ(summaries[0].cells, 1u);
  EXPECT_EQ(summaries[0].ok, 1u);
  EXPECT_DOUBLE_EQ(summaries[0].ratio_mean, 1.25);
  EXPECT_DOUBLE_EQ(summaries[0].ratio_max, 1.25);
  EXPECT_DOUBLE_EQ(summaries[0].time_p50_ms, 5.0);
  EXPECT_DOUBLE_EQ(summaries[0].time_p95_ms, 5.0);

  EXPECT_EQ(summaries[1].solver, "alpha");
  EXPECT_EQ(summaries[1].preset, "p2");
  EXPECT_EQ(summaries[1].cells, 1u);
  EXPECT_EQ(summaries[1].ok, 0u);
  EXPECT_EQ(summaries[1].failed, 1u);
  EXPECT_DOUBLE_EQ(summaries[1].ratio_mean, 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].ratio_max, 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].time_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].time_p95_ms, 0.0);

  EXPECT_EQ(summaries[2].solver, "zeta");
  EXPECT_EQ(summaries[2].cells, 6u);
  EXPECT_EQ(summaries[2].ok, 3u);
  EXPECT_EQ(summaries[2].skipped, 1u);
  EXPECT_EQ(summaries[2].failed, 1u);
  EXPECT_EQ(summaries[2].timeout, 1u);
  // The timed-out cell's ratio (99) and time (9999) stay out of the stats.
  EXPECT_DOUBLE_EQ(summaries[2].ratio_mean, 1.5);
  EXPECT_DOUBLE_EQ(summaries[2].ratio_max, 2.0);
  EXPECT_DOUBLE_EQ(summaries[2].time_p50_ms, 20.0);
  // percentile([10,20,30], 0.95): position 1.9 -> 20 * 0.1 + 30 * 0.9 = 29.
  EXPECT_NEAR(summaries[2].time_p95_ms, 29.0, 1e-12);
  EXPECT_DOUBLE_EQ(summaries[2].lp_solves_mean, 8.0);
  EXPECT_DOUBLE_EQ(summaries[2].lp_iterations_mean, 400.0);
  EXPECT_DOUBLE_EQ(summaries[0].lp_solves_mean, 0.0);
  // Certificates: proven counts solver-certified optima only; gap_mean
  // averages the certified cells ({0.0, 0.25}) and ignores the -1 sentinel.
  EXPECT_EQ(summaries[2].proven, 1u);
  EXPECT_EQ(summaries[2].certified, 2u);
  EXPECT_DOUBLE_EQ(summaries[2].gap_mean, 0.125);
  EXPECT_EQ(summaries[0].proven, 0u);
  EXPECT_EQ(summaries[0].certified, 0u);
  EXPECT_DOUBLE_EQ(summaries[0].gap_mean, 0.0);
  // Phase shares: lp% over zeta/p1 is mean{10/20, 2/10, 15/30} = 40%,
  // pricing% is mean{4/20, 2/10, 6/30} = 20%. alpha/p1 carries no phase
  // accounting -> 0.
  EXPECT_DOUBLE_EQ(summaries[2].lp_pct_mean, 40.0);
  EXPECT_DOUBLE_EQ(summaries[2].pricing_pct_mean, 20.0);
  EXPECT_DOUBLE_EQ(summaries[0].lp_pct_mean, 0.0);
}

TEST(ExptAggregate, GuardCounterMeansAverageOkCells) {
  RunRecord a = bucket_record("s", "p", RunStatus::kOk, 1.0, 1.0);
  a.lp_audits_suspect = 2;
  a.lp_recoveries = 2;
  a.lp_oracle_fallbacks = 0;
  RunRecord b = bucket_record("s", "p", RunStatus::kOk, 1.0, 1.0);
  b.lp_audits_suspect = 4;
  b.lp_recoveries = 3;
  b.lp_oracle_fallbacks = 1;
  // Failed cells contribute nothing, however large their counters.
  RunRecord c = bucket_record("s", "p", RunStatus::kError, 0.0, 0.0);
  c.lp_audits_suspect = 100;
  const std::vector<AggregateSummary> summaries =
      aggregate(std::vector<RunRecord>{a, b, c});
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(summaries[0].lp_audits_suspect_mean, 3.0);
  EXPECT_DOUBLE_EQ(summaries[0].lp_recoveries_mean, 2.5);
  EXPECT_DOUBLE_EQ(summaries[0].lp_oracle_fallbacks_mean, 0.5);
}

TEST(ExptAggregate, SummaryTableHasOneRowPerBucket) {
  const std::vector<RunRecord> records{
      bucket_record("a", "p", RunStatus::kOk, 1.0, 1.0),
      bucket_record("b", "p", RunStatus::kOk, 1.0, 1.0),
  };
  const Table table = summary_table(aggregate(records));
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(ExptAggregate, BenchJsonContainsPlanCountsAndSummaries) {
  ExperimentPlan plan;
  plan.presets = {"uniform-small"};
  plan.solvers = {"greedy", "lpt"};
  plan.seed_begin = 1;
  plan.seed_end = 3;
  const std::vector<RunRecord> records{
      bucket_record("greedy", "uniform-small", RunStatus::kOk, 1.5, 2.0),
      bucket_record("lpt", "uniform-small", RunStatus::kSkipped, 0.0, 0.0),
  };
  std::ostringstream os;
  write_bench_json(os, plan, aggregate(records));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"bench\": \"expt\""), std::string::npos);
  EXPECT_NE(out.find("\"presets\": [\"uniform-small\"]"), std::string::npos);
  EXPECT_NE(out.find("\"solvers\": [\"greedy\",\"lpt\"]"), std::string::npos);
  EXPECT_NE(out.find("\"cells\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"ok\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"skipped\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"ratio_mean\": 1.5"), std::string::npos);
  EXPECT_NE(out.find("\"lp\": \"auto\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_solves_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_iterations_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"proven\""), std::string::npos);
  EXPECT_NE(out.find("\"certified\""), std::string::npos);
  EXPECT_NE(out.find("\"gap_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_pct_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"pricing_pct_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"timeout\""), std::string::npos);
  EXPECT_NE(out.find("\"cell_timeout_s\""), std::string::npos);
  EXPECT_NE(out.find("\"inject\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_audit_interval\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_audits_suspect_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_recoveries_mean\""), std::string::npos);
  EXPECT_NE(out.find("\"lp_oracle_fallbacks_mean\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

}  // namespace
}  // namespace setsched::expt
