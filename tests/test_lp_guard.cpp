// Suite for the numerical safety net (lp/guard.h + lp/fault.h): residual
// audits classify hand-corrupted solutions, the fault-injection plan parses
// and round-trips, and — the core contract — every injected fault either
// leaves the answer bit-compatible with the fault-free reference or walks
// the recovery escalation ladder until it does.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "core/generators.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"
#include "lp/fault.h"
#include "lp/guard.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace setsched::lp {
namespace {

// --- fault plan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesAllWithRate) {
  const FaultPlan plan = FaultPlan::parse("all@0.5", 42);
  EXPECT_TRUE(plan.any());
  EXPECT_DOUBLE_EQ(plan.rate, 0.5);
  EXPECT_EQ(plan.seed, 42u);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_TRUE(plan.is_armed(static_cast<FaultKind>(k))) << k;
  }
}

TEST(FaultPlan, ParsesKindListAndRoundTripsSpec) {
  const FaultPlan plan = FaultPlan::parse("eta-flip,ftran-nan@0.01", 7);
  EXPECT_TRUE(plan.is_armed(FaultKind::kEtaFlip));
  EXPECT_TRUE(plan.is_armed(FaultKind::kFtranNan));
  EXPECT_FALSE(plan.is_armed(FaultKind::kFactorPerturb));
  EXPECT_FALSE(plan.is_armed(FaultKind::kSkipRefactor));
  EXPECT_FALSE(plan.is_armed(FaultKind::kStaleDevex));

  // spec() is the canonical round-trip: re-parsing reproduces the plan.
  const FaultPlan again = FaultPlan::parse(plan.spec(), 7);
  EXPECT_DOUBLE_EQ(again.rate, plan.rate);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_EQ(again.armed[k], plan.armed[k]) << k;
  }
}

TEST(FaultPlan, DefaultRateAppliesWithoutSuffix) {
  const FaultPlan plan = FaultPlan::parse("stale-devex", 1);
  EXPECT_TRUE(plan.is_armed(FaultKind::kStaleDevex));
  EXPECT_GT(plan.rate, 0.0);
  EXPECT_LE(plan.rate, 1.0);
}

TEST(FaultPlan, RejectsUnknownKindsAndBadRates) {
  EXPECT_THROW((void)FaultPlan::parse("warp-core-breach@0.1", 1), CheckError);
  EXPECT_THROW((void)FaultPlan::parse("all@0", 1), CheckError);
  EXPECT_THROW((void)FaultPlan::parse("all@1.5", 1), CheckError);
  EXPECT_THROW((void)FaultPlan::parse("all@-0.1", 1), CheckError);
}

TEST(FaultPlan, ZeroRateDisarms) {
  FaultPlan plan;
  plan.arm(FaultKind::kEtaFlip);
  plan.rate = 0.0;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.is_armed(FaultKind::kEtaFlip));
  FaultInjector injector(&plan);
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjector, FiresDeterministicallyPerSeed) {
  FaultPlan plan = FaultPlan::parse("all@0.5", 99);
  const auto draw = [&plan] {
    FaultInjector injector(&plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.fire(FaultKind::kEtaFlip));
    }
    return fired;
  };
  EXPECT_EQ(draw(), draw());  // same plan -> same stream
  FaultPlan other = plan;
  other.seed = 100;
  FaultInjector injector(&other);
  std::vector<bool> fired;
  for (int i = 0; i < 64; ++i) {
    fired.push_back(injector.fire(FaultKind::kEtaFlip));
  }
  EXPECT_NE(fired, draw());  // different seed -> different stream
}

// --- residual audits on hand-built solutions -------------------------------

/// min x + 2y  s.t. x + y = 3, y >= 1  ->  x=2, y=1, obj=4.
Model reference_model() {
  Model m(Objective::kMinimize);
  const auto x = m.add_variable(0, kInfinity, 1);
  const auto y = m.add_variable(0, kInfinity, 2);
  m.add_constraint({{x, 1}, {y, 1}}, Sense::kEqual, 3);
  m.add_constraint({{y, 1}}, Sense::kGreaterEqual, 1);
  return m;
}

TEST(Guard, CleanSolveAuditsClean) {
  const Model m = reference_model();
  const SimplexOptions options;
  for (const auto algorithm :
       {SimplexAlgorithm::kTableau, SimplexAlgorithm::kRevised}) {
    SimplexOptions opt = options;
    opt.algorithm = algorithm;
    const Solution sol = solve(m, opt);
    ASSERT_TRUE(sol.optimal());
    const AuditReport report = audit_solution(m, sol, opt);
    EXPECT_EQ(report.verdict, AuditVerdict::kClean)
        << (report.complaint != nullptr ? report.complaint : "(none)");
  }
}

TEST(Guard, GradedPrimalCorruptionEscalatesTheVerdict) {
  const Model m = reference_model();
  const SimplexOptions options;
  Solution sol = solve(m, options);
  ASSERT_TRUE(sol.optimal());

  // A violation just past audit_slack (1e-6): suspect, not failed.
  Solution tampered = sol;
  tampered.x[0] += 1e-3;
  AuditReport report = audit_solution(m, tampered, options);
  EXPECT_EQ(report.verdict, AuditVerdict::kSuspect);
  EXPECT_NE(report.complaint, nullptr);

  // A violation 1e6x past the slack: failed outright.
  tampered = sol;
  tampered.x[0] += 10.0;
  report = audit_solution(m, tampered, options);
  EXPECT_EQ(report.verdict, AuditVerdict::kFailed);

  // NaN anywhere is an automatic fail.
  tampered = sol;
  tampered.x[0] = std::numeric_limits<double>::quiet_NaN();
  report = audit_solution(m, tampered, options);
  EXPECT_EQ(report.verdict, AuditVerdict::kFailed);
}

TEST(Guard, ObjectiveDisagreementIsContested) {
  const Model m = reference_model();
  const SimplexOptions options;
  Solution sol = solve(m, options);
  ASSERT_TRUE(sol.optimal());
  sol.objective += 1.0;  // primal/dual objective identity breaks
  const AuditReport report = audit_solution(m, sol, options);
  EXPECT_NE(report.verdict, AuditVerdict::kClean);
}

TEST(Guard, IterationLimitIsSkippedNotContested) {
  const Model m = reference_model();
  Solution sol;
  sol.status = SolveStatus::kIterationLimit;
  const AuditReport report = audit_solution(m, sol, SimplexOptions{});
  EXPECT_EQ(report.verdict, AuditVerdict::kSkipped);
}

TEST(Guard, UnboundedClaimIsAlwaysSuspect) {
  const Model m = reference_model();
  Solution sol;
  sol.status = SolveStatus::kUnbounded;
  const AuditReport report = audit_solution(m, sol, SimplexOptions{});
  EXPECT_EQ(report.verdict, AuditVerdict::kSuspect);
}

TEST(Guard, InfeasibilityClaimFromFaultedSolveIsSuspect) {
  // Sign-consistent duals are weak evidence; when a fault actually fired in
  // the solve, the claim must walk the ladder rather than prune a search.
  const Model m = reference_model();
  Solution sol;
  sol.status = SolveStatus::kInfeasible;
  sol.duals = {0.0, 0.0};  // perfectly sign-consistent
  sol.faults_injected = 1;
  const AuditReport report = audit_solution(m, sol, SimplexOptions{});
  EXPECT_EQ(report.verdict, AuditVerdict::kSuspect);
}

// --- the recovery ladder under injection -----------------------------------

/// Random feasible bounded LP in the style of test_lp.cpp: box variables,
/// nonnegative <= rows, origin feasible. Large enough that the revised
/// solver pivots a few times (injection needs opportunities to fire).
Model random_lp(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t nvars = 5 + rng.next_below(3);
  const std::size_t ncons = 5 + rng.next_below(3);
  Model m(rng.next_bernoulli(0.5) ? Objective::kMaximize
                                  : Objective::kMinimize);
  for (std::size_t j = 0; j < nvars; ++j) {
    m.add_variable(0, rng.next_real(0.5, 4.0), rng.next_real(-3, 3));
  }
  for (std::size_t r = 0; r < ncons; ++r) {
    std::vector<Entry> row;
    for (std::size_t j = 0; j < nvars; ++j) {
      row.push_back({j, rng.next_real(0.1, 2.0)});
    }
    m.add_constraint(std::move(row), Sense::kLessEqual,
                     rng.next_real(0.5, 5.0));
  }
  return m;
}

/// Differential per fault kind: a guarded injected solve must reproduce the
/// un-injected tableau oracle whenever it claims optimality, and across the
/// seed sweep the ladder must both see faults and recover from them.
class FaultDifferentialTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultDifferentialTest, GuardedInjectedSolveMatchesOracle) {
  const FaultKind kind = static_cast<FaultKind>(GetParam());
  std::size_t total_injected = 0;
  std::size_t total_recovered = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Model m = random_lp(seed);
    const Solution reference = solve_tableau(m, SimplexOptions{});
    ASSERT_TRUE(reference.optimal()) << "seed " << seed;

    FaultPlan plan;
    plan.arm(kind);
    plan.rate = 0.25;
    plan.seed = seed * 7919;
    SimplexOptions opt;
    opt.guard = true;
    opt.fault_plan = &plan;
    // Give the rarer fault sites opportunities on these small LPs: Devex
    // updates only exist under Devex pricing, and periodic refactorization
    // triggers only fire when the interval is shorter than the pivot count.
    if (kind == FaultKind::kStaleDevex) opt.pricing = SimplexPricing::kDevex;
    if (kind == FaultKind::kSkipRefactor) opt.refactor_interval = 2;
    const Solution sol = solve(m, opt);

    total_injected += sol.faults_injected;
    total_recovered += sol.recoveries + sol.oracle_fallbacks;
    ASSERT_TRUE(sol.optimal())
        << "seed " << seed << " kind " << fault_kind_name(kind);
    EXPECT_FALSE(sol.audit_contested());
    EXPECT_NEAR(sol.objective, reference.objective, 1e-5)
        << "seed " << seed << " kind " << fault_kind_name(kind);
    EXPECT_LE(m.max_violation(sol.x), 1e-6);
  }
  // The sweep is meaningless if nothing ever fired; and every fault the
  // audit catches must be cleared by the ladder (checked per-solve above).
  EXPECT_GT(total_injected, 0u) << fault_kind_name(kind);
  (void)total_recovered;  // informational; some kinds self-heal benignly
}

INSTANTIATE_TEST_SUITE_P(Kinds, FaultDifferentialTest,
                         ::testing::Range<std::size_t>(0, kFaultKindCount));

TEST(Guard, LadderRecoversAndCountsUnderHeavyInjection) {
  // Heavy NaN injection: essentially every audit is contested, so the sweep
  // must show recoveries (rung 1/2) actually happening.
  std::size_t recovered = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Model m = random_lp(seed);
    const Solution reference = solve_tableau(m, SimplexOptions{});
    FaultPlan plan = FaultPlan::parse("ftran-nan@0.5", seed);
    SimplexOptions opt;
    opt.guard = true;
    opt.fault_plan = &plan;
    const Solution sol = solve(m, opt);
    ASSERT_TRUE(sol.optimal()) << "seed " << seed;
    EXPECT_FALSE(sol.audit_contested());
    EXPECT_NEAR(sol.objective, reference.objective, 1e-5) << "seed " << seed;
    if (sol.recoveries + sol.oracle_fallbacks > 0) {
      EXPECT_GE(sol.audits_suspect, 1u);
      ++recovered;
    }
  }
  EXPECT_GT(recovered, 0u);
}

TEST(Guard, GuardOffIsStatusQuo) {
  // guard=false must leave the verdict kSkipped and never touch the ladder
  // counters — the zero-overhead contract of the default path.
  const Model m = random_lp(3);
  const Solution sol = solve(m, SimplexOptions{});
  EXPECT_EQ(sol.audit_verdict, AuditVerdict::kSkipped);
  EXPECT_EQ(sol.audits_suspect, 0u);
  EXPECT_EQ(sol.recoveries, 0u);
  EXPECT_EQ(sol.oracle_fallbacks, 0u);
  EXPECT_EQ(sol.faults_injected, 0u);
}

// --- end-to-end: exact search under injection ------------------------------

/// Reference: plain exhaustive enumeration, no pruning (test_exact.cpp).
double enumerate_opt(const Instance& inst) {
  const std::size_t n = inst.num_jobs();
  const std::size_t mm = inst.num_machines();
  Schedule s = Schedule::empty(n);
  double best = kInfinity;
  const auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n) {
      if (!schedule_error(inst, s).has_value()) {
        best = std::min(best, makespan(inst, s));
      }
      return;
    }
    for (MachineId i = 0; i < mm; ++i) {
      if (!inst.eligible(i, depth)) continue;
      s.assignment[depth] = i;
      self(self, depth + 1);
      s.assignment[depth] = kUnassigned;
    }
  };
  recurse(recurse, 0);
  return best;
}

// The tentpole acceptance check: branch-and-bound with LP bounds, audited
// duals, and live fault injection must still reproduce brute force exactly —
// a corrupted bound may cost time (ladder solves) but never optimality, and
// `proven` may only be claimed with gap == 0.
TEST(Guard, ExactSearchUnderInjectionMatchesEnumeration) {
  std::size_t total_guard_activity = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    UnrelatedGenParams p;
    p.num_jobs = 7;
    p.num_machines = 3;
    p.num_classes = 3;
    p.eligibility = 0.8;
    const Instance inst = generate_unrelated(p, seed);
    const double reference = enumerate_opt(inst);

    const FaultPlan plan = FaultPlan::parse("all@0.02", seed * 31);
    ExactOptions opt;
    opt.use_lp_bounds = true;
    opt.fault_plan = &plan;
    const ExactResult r = solve_exact(inst, opt);

    EXPECT_TRUE(r.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(r.makespan, reference, 1e-9) << "seed " << seed;
    EXPECT_FALSE(schedule_error(inst, r.schedule).has_value());
    if (r.proven_optimal) {
      EXPECT_DOUBLE_EQ(r.gap, 0.0);
    }
    total_guard_activity +=
        r.lp_audits_suspect + r.lp_recoveries + r.lp_oracle_fallbacks;
  }
  // With every kind armed across 10 seeds, the safety net must have had
  // something to do — otherwise this test exercises nothing.
  EXPECT_GT(total_guard_activity, 0u);
}

}  // namespace
}  // namespace setsched::lp
