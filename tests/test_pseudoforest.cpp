#include <gtest/gtest.h>

#include "common/matrix.h"
#include "restricted/pseudoforest.h"

namespace setsched {
namespace {

/// Verifies the two Lemma 3.8 properties plus bookkeeping consistency.
void expect_lemma38(const Matrix<double>& xbar, const EdgeSelection& sel,
                    double eps = 1e-7) {
  const std::size_t m = xbar.rows();
  const std::size_t kc = xbar.cols();

  // (1) each machine keeps at most one E-tilde edge.
  std::vector<int> machine_count(m, 0);
  for (ClassId k = 0; k < kc; ++k) {
    for (const MachineId i : sel.plus_machines[k]) {
      ++machine_count[i];
      EXPECT_GT(xbar(i, k), eps) << "E-tilde edge without share";
    }
  }
  for (MachineId i = 0; i < m; ++i) EXPECT_LE(machine_count[i], 1);

  // (2) per class: at most one positive share outside E-tilde.
  for (ClassId k = 0; k < kc; ++k) {
    std::size_t positives = 0;
    for (MachineId i = 0; i < m; ++i) positives += xbar(i, k) > eps;
    if (positives < 2) {
      EXPECT_TRUE(sel.plus_machines[k].empty());
      EXPECT_FALSE(sel.minus_machine[k].has_value());
      continue;
    }
    std::size_t lost = 0;
    for (MachineId i = 0; i < m; ++i) {
      if (xbar(i, k) <= eps) continue;
      const bool kept =
          std::find(sel.plus_machines[k].begin(), sel.plus_machines[k].end(),
                    i) != sel.plus_machines[k].end();
      if (!kept) {
        ++lost;
        ASSERT_TRUE(sel.minus_machine[k].has_value());
        EXPECT_EQ(*sel.minus_machine[k], i);
      }
    }
    EXPECT_LE(lost, 1u) << "class " << k;
    EXPECT_EQ(lost == 1, sel.minus_machine[k].has_value());
    EXPECT_GE(sel.plus_machines[k].size(), 1u) << "fractional class needs i+";
  }
}

TEST(Pseudoforest, SingleFractionalPairIsIntegralPerClass) {
  // One class split over two machines: path k - {i0, i1}.
  Matrix<double> xbar(2, 1, 0.0);
  xbar(0, 0) = 0.5;
  xbar(1, 0) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  // Tree rooted at the class: both machines are children -> both kept.
  EXPECT_EQ(sel.plus_machines[0].size(), 2u);
  EXPECT_FALSE(sel.minus_machine[0].has_value());
}

TEST(Pseudoforest, IntegralClassesSkipped) {
  Matrix<double> xbar(3, 2, 0.0);
  xbar(1, 0) = 1.0;  // class 0 integral on machine 1
  xbar(0, 1) = 0.3;  // class 1 fractional over machines 0 and 2
  xbar(2, 1) = 0.7;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  EXPECT_TRUE(sel.plus_machines[0].empty());
  EXPECT_EQ(sel.plus_machines[1].size(), 2u);
}

TEST(Pseudoforest, PathOfTwoClassesSharingAMachine) {
  // k0 on {i0, i1}, k1 on {i1, i2}: path; machine i1 can keep only one edge.
  Matrix<double> xbar(3, 2, 0.0);
  xbar(0, 0) = 0.4;
  xbar(1, 0) = 0.6;
  xbar(1, 1) = 0.5;
  xbar(2, 1) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  const std::size_t total_kept =
      sel.plus_machines[0].size() + sel.plus_machines[1].size();
  // 4 fractional edges, machine i1 keeps one of its two: 3 kept, 1 lost.
  EXPECT_EQ(total_kept, 3u);
  const bool k0_lost = sel.minus_machine[0].has_value();
  const bool k1_lost = sel.minus_machine[1].has_value();
  EXPECT_TRUE(k0_lost != k1_lost);  // exactly one class loses the shared edge
}

TEST(Pseudoforest, FourCycle) {
  // k0 on {i0, i1}, k1 on {i0, i1}: the 4-cycle k0-i0-k1-i1-k0.
  Matrix<double> xbar(2, 2, 0.0);
  xbar(0, 0) = 0.5;
  xbar(1, 0) = 0.5;
  xbar(0, 1) = 0.5;
  xbar(1, 1) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  // Cycle removal drops one edge per class; rooting keeps the rest.
  EXPECT_TRUE(sel.minus_machine[0].has_value());
  EXPECT_TRUE(sel.minus_machine[1].has_value());
  EXPECT_EQ(sel.plus_machines[0].size(), 1u);
  EXPECT_EQ(sel.plus_machines[1].size(), 1u);
  // The two classes keep different machines.
  EXPECT_NE(sel.plus_machines[0][0], sel.plus_machines[1][0]);
}

TEST(Pseudoforest, CycleWithHangingTree) {
  // 4-cycle (k0, k1 on i0, i1); k1 also fractional on i2 and i3 (hanging
  // machines), and k2 hangs off i2 with a private machine i4:
  // 8 nodes, 8 edges, exactly one cycle.
  Matrix<double> xbar(5, 3, 0.0);
  xbar(0, 0) = 0.5;
  xbar(1, 0) = 0.5;
  xbar(0, 1) = 0.25;
  xbar(1, 1) = 0.25;
  xbar(2, 1) = 0.25;
  xbar(3, 1) = 0.25;
  xbar(2, 2) = 0.5;
  xbar(4, 2) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  // The cycle classes k0 and k1 each lose exactly one cycle edge; the
  // hanging class k2 loses at most its parent edge toward the cycle.
  EXPECT_TRUE(sel.minus_machine[0].has_value());
  EXPECT_TRUE(sel.minus_machine[1].has_value());
}

TEST(Pseudoforest, MultipleComponents) {
  // Two independent fractional classes on disjoint machine pairs.
  Matrix<double> xbar(4, 2, 0.0);
  xbar(0, 0) = 0.5;
  xbar(1, 0) = 0.5;
  xbar(2, 1) = 0.5;
  xbar(3, 1) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  EXPECT_EQ(sel.plus_machines[0].size(), 2u);
  EXPECT_EQ(sel.plus_machines[1].size(), 2u);
}

TEST(Pseudoforest, StarOfClassesAroundOneMachine) {
  // Three classes all sharing machine i0 (plus private machines): tree.
  Matrix<double> xbar(4, 3, 0.0);
  for (ClassId k = 0; k < 3; ++k) {
    xbar(0, k) = 0.3;
    xbar(k + 1, k) = 0.7;
  }
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  // Machine 0 keeps exactly one of its three edges; two classes lose one.
  std::size_t losses = 0;
  for (ClassId k = 0; k < 3; ++k) losses += sel.minus_machine[k].has_value();
  EXPECT_EQ(losses, 2u);
}

TEST(Pseudoforest, RejectsNonPseudoforest) {
  // 3 classes fully spread over 2 machines: K3,2-ish support has more edges
  // than nodes in one component (6 edges, 5 nodes) -> not a pseudoforest.
  Matrix<double> xbar(2, 3, 0.0);
  for (ClassId k = 0; k < 3; ++k) {
    xbar(0, k) = 0.5;
    xbar(1, k) = 0.5;
  }
  EXPECT_THROW((void)select_pseudoforest_edges(xbar), CheckError);
}

TEST(Pseudoforest, AllIntegralNoEdges) {
  Matrix<double> xbar(3, 3, 0.0);
  xbar(0, 0) = 1.0;
  xbar(1, 1) = 1.0;
  xbar(1, 2) = 1.0;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  for (ClassId k = 0; k < 3; ++k) {
    EXPECT_TRUE(sel.plus_machines[k].empty());
    EXPECT_FALSE(sel.minus_machine[k].has_value());
  }
}

TEST(Pseudoforest, LongEvenCycle) {
  // 6-cycle: k0 on {i0,i1}, k1 on {i1,i2}, k2 on {i2,i0}.
  Matrix<double> xbar(3, 3, 0.0);
  xbar(0, 0) = 0.5;
  xbar(1, 0) = 0.5;
  xbar(1, 1) = 0.5;
  xbar(2, 1) = 0.5;
  xbar(2, 2) = 0.5;
  xbar(0, 2) = 0.5;
  const EdgeSelection sel = select_pseudoforest_edges(xbar);
  expect_lemma38(xbar, sel);
  for (ClassId k = 0; k < 3; ++k) {
    EXPECT_EQ(sel.plus_machines[k].size(), 1u);
    EXPECT_TRUE(sel.minus_machine[k].has_value());
  }
}

}  // namespace
}  // namespace setsched
