// ThreadPool edge cases, written to be interesting under TSan (the
// SETSCHED_SANITIZE=thread CI job runs this suite instrumented): concurrent
// first use of the lazily constructed default pool, exception capture while
// the remaining workers drain a dynamic range, destruction while another
// thread's fork-join still has tasks queued, and interleaved fork-joins from
// concurrent callers sharing one queue.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace setsched {
namespace {

// Declared first in the file so it runs before any other test of this binary
// touches default_pool(): the racing threads below are the pool's very first
// users, pinning that C++ static-local initialization serializes them.
TEST(ThreadPool, ConcurrentDefaultPoolFirstUse) {
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> racers;
  racers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    racers.emplace_back([&total] {
      default_pool().parallel_for_dynamic(0, 64, [&total](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& r : racers) r.join();
  EXPECT_EQ(total.load(), kThreads * 64);
}

TEST(ThreadPool, ExceptionRethrownAndRangeDrained) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  const auto run = [&] {
    pool.parallel_for_dynamic(0, 100, [&completed](std::size_t i) {
      if (i == 3) throw std::runtime_error("cell 3 failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The throwing worker stops pulling indices, but the fork-join contract
  // says the remaining workers drain the range before the rethrow.
  EXPECT_EQ(completed.load(), 99u);
}

TEST(ThreadPool, ParallelForExceptionRethrown) {
  ThreadPool pool(3);
  const auto run = [&] {
    pool.parallel_for(0, 64, [](std::size_t i) {
      if (i == 17) throw std::invalid_argument("chunk member threw");
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
}

TEST(ThreadPool, OnlyFirstExceptionPropagates) {
  ThreadPool pool(4);
  // Every index throws; exactly one exception must come back (the fork-join
  // keeps the first and swallows the rest) and it must be one of ours.
  try {
    pool.parallel_for_dynamic(0, 32, [](std::size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected parallel_for_dynamic to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, DestructionDrainsQueuedTasks) {
  // The destructor races a fork-join started by another thread: with 16
  // unit tasks on 2 workers, tasks are still QUEUED when the destructor
  // flips stopping_. Workers must drain them (the exit condition is
  // stopping_ && tasks_.empty()), so the caller's parallel_for completes
  // normally and no iteration is dropped.
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> first_task_running{false};
  std::optional<ThreadPool> pool;
  pool.emplace(2);
  std::thread caller([&] {
    pool->parallel_for_dynamic(0, 16, [&](std::size_t) {
      first_task_running.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  });
  while (!first_task_running.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  pool.reset();  // destructor joins workers; queued tasks must run first
  caller.join();
  EXPECT_EQ(executed.load(), 16u);
}

TEST(ThreadPool, ConcurrentCallersShareOneQueue) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kRange = 50;
  std::atomic<std::size_t> counts[kCallers];
  for (auto& c : counts) c.store(0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &counts, t] {
      pool.parallel_for_dynamic(0, kRange, [&counts, t](std::size_t) {
        counts[t].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& c : callers) c.join();
  for (std::size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(counts[t].load(), kRange) << "caller " << t;
  }
}

TEST(ThreadPool, RepeatedConstructDestroyStress) {
  // Pool lifetime churn: every cycle hands the workers real work, then
  // destroys the pool immediately after the join. TSan checks the
  // construct/notify/join handoffs for races.
  for (int cycle = 0; cycle < 10; ++cycle) {
    ThreadPool pool(3);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, 32, [&sum](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 32u * 31u / 2u);
  }
  // And destruction of a pool that never received work (workers parked on
  // the condition variable the whole time).
  for (int cycle = 0; cycle < 10; ++cycle) {
    ThreadPool idle(2);
  }
}

}  // namespace
}  // namespace setsched
