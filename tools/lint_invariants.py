#!/usr/bin/env python3
"""Repo-specific invariant lint for setsched (runs as ctest `test_lint`).

Four rules, each protecting an invariant the compiler cannot see:

  float-eq     No floating-point ==/!= against a nonzero decimal literal in
               src/lp or src/exact. Exact-zero tests (`x == 0.0`) are sparse-
               kernel idiom and stay legal, as do variable-to-variable
               comparisons on input data (undetectable by a lexical lint and
               intentionally exact in this codebase). Nonzero literal
               comparisons are the footgun: they encode a tolerance of zero.
               Suppress per line: `// lint: allow-float-eq (reason)`.

  tolerance    No magic tolerance literals (scientific notation with a
               negative exponent, e.g. 1e-9) in src/lp or src/exact outside
               the named-tolerance definition sites (lp::SimplexOptions,
               exact/tolerances.h). Everything else must spell a named
               constant so tolerances stay auditable in one place.
               Suppress per line: `// lint: allow-tolerance (reason)`,
               or whole file: `// lint: allow-tolerance-file (reason)`.

  counters     Every std::size_t counter in SolverStats (src/core/result.h)
               must be plumbed through the record pipeline: src/expt/record.h,
               src/expt/record_io.cpp, and docs/BENCH_SCHEMA.md. A counter
               that stops here is silently dropped from every artifact.

  raw-mutex    No naked std::mutex / lock / condition_variable types outside
               src/common/annotations.h. Concurrency in src/ goes through the
               annotated Mutex/MutexLock/CondVar wrappers so Clang's thread
               safety analysis sees every lock site.
               Suppress per line: `// lint: allow-raw-mutex (reason)`.

Every suppression requires a non-empty reason in parentheses; a bare
`lint: allow-*` marker is itself a violation. Exit status 0 iff clean.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

TOLERANCE_SCOPE = ("src/lp", "src/exact")
FLOAT_EQ_SCOPE = ("src/lp", "src/exact")
MUTEX_SCOPE = ("src",)
MUTEX_EXEMPT = {"src/common/annotations.h"}

COUNTER_SOURCE = "src/core/result.h"
COUNTER_SINKS = ("src/expt/record.h", "src/expt/record_io.cpp",
                 "docs/BENCH_SCHEMA.md")

SUPPRESS_RE = re.compile(
    r"lint:\s*allow-(?P<rule>tolerance-file|tolerance|float-eq|raw-mutex)"
    # The reason may wrap to the next comment line, so accept end-of-line in
    # place of the closing parenthesis.
    r"(?:\s*\((?P<reason>[^)]*)(?:\)|$))?")

# A float literal: has a '.' or an exponent (bare integers never match).
FLOAT_LIT = r"[0-9]+\.[0-9]*(?:[eE][-+]?[0-9]+)?|\.[0-9]+(?:[eE][-+]?[0-9]+)?|[0-9]+[eE][-+]?[0-9]+"
FLOAT_EQ_RE = re.compile(
    r"(?:(?<![=!<>+\-*/])(?:==|!=)\s*(?P<rhs>{lit})\b)|"
    r"(?:\b(?P<lhs>{lit})\s*(?:==|!=)(?![=]))".format(lit=FLOAT_LIT))
TOLERANCE_RE = re.compile(r"\b[0-9]+(?:\.[0-9]*)?[eE]-[0-9]+\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd::(?:scoped_lock|lock_guard|unique_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b")
COUNTER_RE = re.compile(r"^\s*std::size_t\s+(\w+)\s*=")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[str] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str, msg: str):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{line_no}: [{rule}] {msg}")

    def scan_file(self, path: pathlib.Path):
        rel = path.relative_to(self.root).as_posix()
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()

        # Suppressions are read from the raw text (they live in comments).
        line_allows: dict[int, set[str]] = {}
        file_allows: set[str] = set()
        for idx, line in enumerate(raw_lines, start=1):
            for m in SUPPRESS_RE.finditer(line):
                rule = m.group("rule")
                reason = (m.group("reason") or "").strip()
                if not reason:
                    self.report(path, idx, "suppression",
                                f"allow-{rule} marker without a reason; "
                                "write `lint: allow-" + rule + " (why)`")
                    continue
                if rule == "tolerance-file":
                    file_allows.add("tolerance")
                else:
                    line_allows.setdefault(idx, set()).add(rule)

        code_lines = strip_comments_and_strings(raw).splitlines()

        in_tol_scope = rel.startswith(TOLERANCE_SCOPE)
        in_eq_scope = rel.startswith(FLOAT_EQ_SCOPE)
        in_mutex_scope = (rel.startswith(MUTEX_SCOPE)
                          and rel not in MUTEX_EXEMPT)

        for idx, line in enumerate(code_lines, start=1):
            allows = line_allows.get(idx, set())
            if in_eq_scope and "float-eq" not in allows:
                for m in FLOAT_EQ_RE.finditer(line):
                    lit = m.group("rhs") or m.group("lhs")
                    if float(lit) == 0.0:
                        continue  # exact-zero sparsity checks are idiom
                    self.report(
                        path, idx, "float-eq",
                        f"floating-point equality against nonzero literal "
                        f"{lit}; compare with a named tolerance instead")
            if (in_tol_scope and "tolerance" not in file_allows
                    and "tolerance" not in allows):
                for m in TOLERANCE_RE.finditer(line):
                    self.report(
                        path, idx, "tolerance",
                        f"magic tolerance literal {m.group(0)}; hoist it into "
                        "lp::SimplexOptions or exact/tolerances.h (or "
                        "annotate `lint: allow-tolerance (reason)`)")
            if in_mutex_scope and "raw-mutex" not in allows:
                m = RAW_MUTEX_RE.search(line)
                if m:
                    self.report(
                        path, idx, "raw-mutex",
                        f"naked {m.group(0)} outside common/annotations.h; "
                        "use the annotated Mutex/MutexLock/CondVar wrappers")

    def check_counters(self):
        source = self.root / COUNTER_SOURCE
        counters = []
        for idx, line in enumerate(source.read_text().splitlines(), start=1):
            m = COUNTER_RE.match(line)
            if m:
                counters.append((m.group(1), idx))
        if not counters:
            self.report(source, 1, "counters",
                        "found no std::size_t counters in SolverStats; "
                        "the lint's parser is out of date")
            return
        sink_texts = {}
        for sink in COUNTER_SINKS:
            sink_path = self.root / sink
            if not sink_path.exists():
                self.report(source, 1, "counters",
                            f"record-pipeline file {sink} is missing")
                return
            sink_texts[sink] = sink_path.read_text()
        for name, line_no in counters:
            for sink, text in sink_texts.items():
                if not re.search(rf"\b{re.escape(name)}\b", text):
                    self.report(
                        source, line_no, "counters",
                        f"SolverStats counter '{name}' is not plumbed "
                        f"through {sink}; every counter must reach the "
                        "record pipeline and its schema docs")

    def run(self) -> int:
        files = sorted((self.root / "src").rglob("*.h"))
        files += sorted((self.root / "src").rglob("*.cpp"))
        for path in files:
            self.scan_file(path)
        self.check_counters()
        if self.violations:
            for v in self.violations:
                print(v)
            print(f"\nlint_invariants: {len(self.violations)} violation(s)")
            return 1
        print(f"lint_invariants: OK ({len(files)} files scanned)")
        return 0


def self_test() -> int:
    """Seed a fake tree with one violation per rule and assert each fires.

    Guards against the lint rotting into a tautology: a regex edit that stops
    a rule from matching anything would otherwise keep `test_lint` green.
    """
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src/lp").mkdir(parents=True)
        (root / "src/core").mkdir(parents=True)
        (root / "src/expt").mkdir(parents=True)
        (root / "docs").mkdir(parents=True)
        (root / "src/lp/bad.cpp").write_text(
            "void f(double x) {\n"
            "  if (x == 1.5) {}\n"                      # float-eq fires
            "  if (x == 0.0) {}\n"                      # zero: stays legal
            "  double tol = 1e-9;\n"                    # tolerance fires
            "  double named = 1e-7;  // lint: allow-tolerance (self-test)\n"
            "  double bare = 1e-8;   // lint: allow-tolerance\n"  # no reason
            "  std::mutex m;\n"                         # raw-mutex fires
            "}\n")
        (root / "src/core/result.h").write_text(
            "struct SolverStats {\n  std::size_t ghost_counter = 0;\n};\n")
        (root / "src/expt/record.h").write_text("// no counters\n")
        (root / "src/expt/record_io.cpp").write_text("// no counters\n")
        (root / "docs/BENCH_SCHEMA.md").write_text("no counters\n")

        linter = Linter(root)
        for path in sorted((root / "src").rglob("*.cpp")):
            linter.scan_file(path)
        for path in sorted((root / "src").rglob("*.h")):
            linter.scan_file(path)
        linter.check_counters()

        text = "\n".join(linter.violations)
        expectations = {
            "float-eq": "1.5",
            "tolerance": "1e-9",
            "suppression": "without a reason",
            "raw-mutex": "std::mutex",
            "counters": "ghost_counter",
        }
        failed = False
        for rule, needle in expectations.items():
            hits = [v for v in linter.violations
                    if f"[{rule}]" in v and needle in v]
            if not hits:
                print(f"self-test FAILED: rule '{rule}' did not fire "
                      f"(expected a violation mentioning '{needle}')")
                failed = True
        for legal in ("0.0", "1e-7"):
            if any(legal in v and "[float-eq]" in v or
                   ("[tolerance]" in v and f" {legal};" in v)
                   for v in linter.violations):
                print(f"self-test FAILED: legal pattern '{legal}' flagged")
                failed = True
        if failed:
            print(text)
            return 1
    print("lint_invariants: self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a seeded fake tree "
                             "before scanning the real one")
    args = parser.parse_args()
    if args.self_test:
        status = self_test()
        if status != 0:
            return status
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
