#!/usr/bin/env python3
"""Analyze / validate setsched Chrome trace-event JSON (see docs/OBSERVABILITY.md).

Default mode prints per-category and per-name span totals, the search-tree
prune-reason histogram, the node depth profile, and incumbent/refix event
summaries.

--validate exits non-zero unless the trace is structurally sound:
  * well-formed object-form trace JSON with a traceEvents array
  * setschedDropped == 0 (no buffer overflow truncated the event stream)
  * spans nest properly per track (no partial overlap)
  * for every solver span ("solve" category, >= 20 ms) that has "exact"
    children, the disjoint solver-phase children sum to 90..102% of the
    parent's duration (the <= 5% unaccounted-time acceptance bar, with
    slack for timer quantization on the high side)
  * with --jsonl=FILE: "node" instants reconcile EXACTLY with the summed
    `nodes` column of the run records

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys
from collections import Counter, defaultdict

SOLVER_SPAN_MIN_MS = 20.0
PHASE_SUM_LO = 0.90
PHASE_SUM_HI = 1.02


def load_trace(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not object-form trace JSON (missing traceEvents)")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError("traceEvents is not an array")
    return doc


def split_events(doc):
    """Returns (track_names, spans, instants); spans/instants sorted by ts."""
    track_names = {}
    spans, instants = [], []
    for e in doc["traceEvents"]:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                track_names[e.get("tid")] = e.get("args", {}).get("name", "")
        elif ph == "X":
            spans.append(e)
        elif ph == "i":
            instants.append(e)
    spans.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    instants.sort(key=lambda e: e["ts"])
    return track_names, spans, instants


def check_nesting(spans):
    """Per-track stack check: every pair of spans is disjoint or nested."""
    errors = []
    stacks = defaultdict(list)  # tid -> [(end_ts, name)]
    for e in spans:
        tid, ts, end = e.get("tid"), e["ts"], e["ts"] + e.get("dur", 0.0)
        stack = stacks[tid]
        while stack and stack[-1][0] <= ts:
            stack.pop()
        if stack and end > stack[-1][0] + 1e-6:
            errors.append(
                "track %s: span '%s' [%f, %f] partially overlaps '%s' "
                "(ends %f)" % (tid, e.get("name"), ts, end, stack[-1][1],
                               stack[-1][0]))
        stack.append((end, e.get("name")))
    return errors


def solver_phase_coverage(spans):
    """For each long-enough 'solve' span: fraction covered by its top-level
    'exact' children. Returns [(name, dur_ms, fraction)]."""
    by_track = defaultdict(list)
    for e in spans:
        by_track[e.get("tid")].append(e)
    out = []
    for track_spans in by_track.values():
        solves = [e for e in track_spans if e.get("cat") == "solve"]
        exacts = [e for e in track_spans if e.get("cat") == "exact"]
        for parent in solves:
            p_ts, p_end = parent["ts"], parent["ts"] + parent.get("dur", 0.0)
            inside = [e for e in exacts
                      if e["ts"] >= p_ts and e["ts"] + e.get("dur", 0.0) <= p_end]
            # Keep only top-level children (not nested in another child).
            top = []
            for e in inside:
                e_ts, e_end = e["ts"], e["ts"] + e.get("dur", 0.0)
                if not any(o is not e and o["ts"] <= e_ts
                           and e_end <= o["ts"] + o.get("dur", 0.0)
                           for o in inside):
                    top.append(e)
            if not top:
                continue
            dur_ms = parent.get("dur", 0.0) / 1000.0
            covered = sum(e.get("dur", 0.0) for e in top) / 1000.0
            frac = covered / dur_ms if dur_ms > 0 else 0.0
            out.append((parent.get("name", "?"), dur_ms, frac))
    return out


def jsonl_nodes_total(path):
    total, rows = 0, 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            total += int(rec.get("nodes", 0))
            rows += 1
    return total, rows


def report(doc, track_names, spans, instants):
    print("tracks: %d" % len(track_names))
    for tid in sorted(track_names):
        n = sum(1 for e in spans if e.get("tid") == tid)
        print("  tid %-4s %-12s %6d spans" % (tid, track_names[tid], n))
    print("events: %d spans, %d instants, dropped=%d"
          % (len(spans), len(instants), doc.get("setschedDropped", 0)))

    by_cat = Counter()
    by_name = Counter()
    for e in spans:
        ms = e.get("dur", 0.0) / 1000.0
        by_cat[e.get("cat", "?")] += ms
        by_name[(e.get("cat", "?"), e.get("name", "?"))] += ms
    print("\nspan time by category (ms, summed over spans; tiers nest):")
    for cat, ms in by_cat.most_common():
        print("  %-10s %10.3f" % (cat, ms))
    print("span time by name:")
    for (cat, name), ms in by_name.most_common():
        print("  %-10s %-22s %10.3f" % (cat, name, ms))

    nodes = [e for e in instants if e.get("name") == "node"]
    reasons = Counter(e.get("args", {}).get("reason", "?") for e in nodes)
    print("\nsearch-tree nodes: %d" % len(nodes))
    for reason, n in reasons.most_common():
        print("  %-14s %8d" % (reason, n))

    depths = Counter(int(e.get("args", {}).get("depth", -1)) for e in nodes)
    if depths:
        print("depth profile:")
        for depth in sorted(depths):
            print("  depth %-4d %8d" % (depth, depths[depth]))

    incumbents = [e for e in instants if e.get("name") == "incumbent"]
    refixes = [e for e in instants if e.get("name") == "refix"]
    if incumbents:
        best = min(e.get("args", {}).get("makespan", float("inf"))
                   for e in incumbents)
        print("incumbent updates: %d (best makespan %g)"
              % (len(incumbents), best))
    if refixes:
        fixed = sum(int(e.get("args", {}).get("fixed", 0)) for e in refixes)
        print("refix events: %d (%d variables fixed)" % (len(refixes), fixed))


def validate(doc, spans, instants, jsonl_path):
    errors = []
    dropped = doc.get("setschedDropped", -1)
    if dropped != 0:
        errors.append("setschedDropped=%s (events were lost; counts cannot "
                      "be reconciled)" % dropped)

    errors.extend(check_nesting(spans))

    for name, dur_ms, frac in solver_phase_coverage(spans):
        if dur_ms < SOLVER_SPAN_MIN_MS:
            continue
        if not (PHASE_SUM_LO <= frac <= PHASE_SUM_HI):
            errors.append(
                "solver span '%s' (%.1f ms): exact-phase children cover "
                "%.1f%% of wall time, outside [%d%%, %d%%]"
                % (name, dur_ms, 100.0 * frac, 100 * PHASE_SUM_LO,
                   100 * PHASE_SUM_HI))

    if jsonl_path:
        traced_nodes = sum(1 for e in instants if e.get("name") == "node")
        jsonl_nodes, rows = jsonl_nodes_total(jsonl_path)
        if traced_nodes != jsonl_nodes:
            errors.append(
                "node reconciliation failed: %d 'node' instants in the "
                "trace vs %d nodes summed over %d JSONL rows"
                % (traced_nodes, jsonl_nodes, rows))
        else:
            print("node reconciliation: %d == %d over %d rows"
                  % (traced_nodes, jsonl_nodes, rows))
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON written by --trace=FILE")
    ap.add_argument("--validate", action="store_true",
                    help="structural validation; non-zero exit on failure")
    ap.add_argument("--jsonl", default="",
                    help="run records to reconcile node counts against")
    args = ap.parse_args()

    try:
        doc = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("FAIL: %s: %s" % (args.trace, exc), file=sys.stderr)
        return 1

    track_names, spans, instants = split_events(doc)

    if args.validate:
        errors = validate(doc, spans, instants, args.jsonl)
        if errors:
            for err in errors:
                print("FAIL: %s" % err, file=sys.stderr)
            return 1
        print("OK: %d spans, %d instants, %d tracks validated"
              % (len(spans), len(instants), len(track_names)))
        return 0

    report(doc, track_names, spans, instants)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `analyze_trace.py trace.json | head`
        sys.exit(0)
