// Programmatic use of the batch experiment harness (src/expt/): build an
// ExperimentPlan in code, run the sharded sweep, then slice the structured
// RunRecords three ways — raw JSONL, a per-(solver, preset) aggregate table,
// and a custom query the CLI does not offer (worst cell per solver). The
// programmatic counterpart of `setsched_expt` / `setsched_cli --batch`.
//
//   ./examples/example_expt_sweep

#include <iostream>
#include <map>
#include <sstream>

#include "expt/aggregate.h"
#include "expt/harness.h"
#include "expt/plan.h"
#include "expt/record_io.h"

using namespace setsched;
using namespace setsched::expt;

int main() {
  ExperimentPlan plan;
  plan.presets = {"uniform-small", "unrelated-small"};
  plan.solvers = {"greedy", "greedy-classes", "local-search", "lpt"};
  plan.seed_begin = 1;
  plan.seed_end = 5;
  plan.threads = 2;  // private two-worker pool; 0 would share default_pool()

  const std::vector<RunRecord> records = run_experiment(plan);
  std::cout << "ran " << records.size() << " cells ("
            << plan.presets.size() << " presets x " << plan.num_seeds()
            << " seeds x " << plan.solvers.size() << " solvers)\n\n";

  // 1. Records stream as JSONL to any std::ostream (here: the first two).
  std::ostringstream jsonl;
  write_jsonl(jsonl, std::span(records).first(2));
  std::cout << "first two records as JSONL:\n" << jsonl.str() << '\n';

  // 2. The same rollup the CLIs print.
  const std::vector<AggregateSummary> summaries = aggregate(records);
  summary_table(summaries).print(std::cout);

  // 3. Custom analysis over the raw records: each solver's worst cell.
  std::map<std::string, const RunRecord*> worst;
  for (const RunRecord& record : records) {
    if (record.status != RunStatus::kOk) continue;
    const RunRecord*& slot = worst[record.solver];
    if (slot == nullptr || record.ratio > slot->ratio) slot = &record;
  }
  std::cout << "\nworst cell per solver:\n";
  for (const auto& [solver, record] : worst) {
    std::cout << "  " << solver << ": ratio " << record->ratio << " on "
              << record->preset << " seed " << record->seed << '\n';
  }
  return 0;
}
