// Tour of the unified Solver API (src/api/): discover solvers through the
// registry, run every one that applies to an instance family, and compare
// them — the programmatic counterpart of `setsched_cli --all`.
//
//   ./examples/example_registry_tour

#include <iostream>

#include "api/presets.h"
#include "api/registry.h"
#include "common/table.h"
#include "core/bounds.h"
#include "core/schedule.h"

using namespace setsched;

int main() {
  std::cout << "Registered solvers:";
  for (const std::string& name : SolverRegistry::global().names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\nPresets:";
  for (const std::string& name : preset_names()) std::cout << ' ' << name;
  std::cout << "\n\n";

  SolverContext context;
  context.seed = 42;

  for (const char* preset : {"uniform-small", "restricted"}) {
    const ProblemInput input = generate_preset(preset, 42);
    const double lower = unrelated_lower_bound(input.instance);
    std::cout << "== preset " << preset << " (lower bound " << lower << ") ==\n";

    Table table({"solver", "makespan", "ratio_lb", "setups"});
    for (const std::string& name : SolverRegistry::global().names()) {
      const auto solver = SolverRegistry::global().create(name);
      if (!solver->supports(input)) continue;
      const ScheduleResult result = solver->solve(input, context);
      table.row()
          .add(name)
          .add(result.makespan)
          .add(result.makespan / lower)
          .add(total_setups(input.instance, result.schedule));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
