// Quickstart: build a small instance with setup classes by hand, run the
// main algorithms, and inspect the schedules.
//
//   ./examples/quickstart

#include <iostream>

#include "api/registry.h"
#include "core/instance.h"
#include "core/io.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  // 3 machines, 6 jobs in 2 setup classes. Class 0 is cheap to set up,
  // class 1 expensive — batching class 1 matters.
  Instance inst(3, 2, {0, 0, 0, 1, 1, 1});
  const double proc[3][6] = {
      {4, 5, 3, 6, 7, 5},
      {5, 4, 4, 5, 6, 6},
      {6, 6, 5, 4, 5, 4},
  };
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 6; ++j) inst.set_proc(i, j, proc[i][j]);
    inst.set_setup(i, 0, 1);
    inst.set_setup(i, 1, 8);
  }
  std::cout << describe(inst);

  const auto report = [&](const char* name, const Schedule& s) {
    std::cout << name << ": makespan " << makespan(inst, s) << ", setups "
              << total_setups(inst, s) << ", assignment [";
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      std::cout << (j ? " " : "") << s.assignment[j];
    }
    std::cout << "]\n";
  };

  // Greedy baselines.
  report("greedy min-load   ", greedy_min_load(inst).schedule);
  report("greedy class-batch", greedy_class_batch(inst).schedule);

  // Theorem 3.3: LP relaxation + randomized rounding.
  RoundingOptions ropt;
  ropt.seed = 42;
  ropt.trials = 3;
  const RoundingResult rounded = randomized_rounding(inst, ropt);
  report("randomized rounding", rounded.schedule);
  std::cout << "  LP window: feasible at T=" << rounded.lp_T
            << ", OPT >= " << rounded.lp_lower_bound << "\n";

  // Ground truth (exact branch and bound; fine at this size).
  const ExactResult exact = solve_exact(inst);
  report("exact optimum      ", exact.schedule);

  // The same algorithms are also reachable by name through the unified
  // Solver registry (what setsched_cli drives); see examples/registry_tour.
  const ProblemInput input = ProblemInput::from_unrelated(inst);
  const auto solver = SolverRegistry::global().create("local-search");
  report("registry local-search", solver->solve(input, SolverContext{}).schedule);
  return 0;
}
