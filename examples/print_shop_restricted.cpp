// Print-shop scenario (restricted assignment with class-uniform
// restrictions, Theorem 3.10): each job family (paper stock) can only run on
// the presses that stock it, all jobs of a family share that machine set,
// and loading stock takes a family-dependent setup. Compares the 2-approx
// pseudoforest rounding against greedy and the LP lower bound.
//
//   ./examples/print_shop_restricted

#include <iostream>

#include "core/generators.h"
#include "restricted/approx.h"
#include "unrelated/greedy.h"

using namespace setsched;

int main() {
  RestrictedGenParams params;
  params.num_jobs = 60;      // print jobs
  params.num_machines = 8;   // presses
  params.num_classes = 10;   // paper stocks
  params.min_eligible = 2;   // each stock loaded on 2-4 presses
  params.max_eligible = 4;
  params.min_job_size = 5;
  params.max_job_size = 40;
  params.min_setup = 10;     // stock change
  params.max_setup = 25;

  const Instance shop = generate_restricted_class_uniform(params, 99);
  std::cout << "Print shop: " << shop.num_jobs() << " jobs, "
            << shop.num_machines() << " presses, " << shop.num_classes()
            << " stocks (class-uniform restricted assignment: "
            << std::boolalpha << is_restricted_class_uniform(shop) << ")\n\n";

  const ScheduleResult spread = greedy_min_load(shop);
  const ScheduleResult batch = greedy_class_batch(shop);
  const ConstantApproxResult two = two_approx_restricted(shop, 0.02);

  std::cout << "greedy min-load:        " << spread.makespan << "\n";
  std::cout << "greedy stock-batch:     " << batch.makespan << "\n";
  std::cout << "Theorem 3.10 2-approx:  " << two.makespan << "\n";
  std::cout << "  LP-certified window: OPT in [" << two.lp_lower_bound << ", "
            << two.makespan << "], guarantee " << two.makespan / two.lp_T
            << " <= 2 of the LP guess T = " << two.lp_T << "\n";
  std::cout << "  measured vs LP lower bound: "
            << two.makespan / two.lp_lower_bound << "x\n";
  return 0;
}
