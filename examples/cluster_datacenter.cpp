// Heterogeneous cluster scenario (unrelated machines): tasks grouped by the
// container image they need (setup class = image pull onto the node). Run
// times differ arbitrarily across nodes (CPU generations, accelerators).
// Compares greedy baselines, Theorem 3.3 randomized rounding (direct LP and
// configuration-LP column generation), and a local-search post-pass.
//
//   ./examples/cluster_datacenter

#include <iostream>

#include "colgen/config_lp.h"
#include "core/generators.h"
#include "improve/local_search.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

using namespace setsched;

int main() {
  PlantedGenParams params;
  params.num_jobs = 60;      // tasks
  params.num_machines = 6;   // nodes
  params.num_classes = 12;   // container images
  params.target_load = 120.0;
  params.offplan_factor = 4.0;  // off-node runtimes up to 4x slower
  params.setup_fraction = 0.25;

  const PlantedUnrelated planted = generate_planted_unrelated(params, 7);
  const Instance& cluster = planted.instance;
  std::cout << "Cluster: " << cluster.num_jobs() << " tasks, "
            << cluster.num_machines() << " nodes, " << cluster.num_classes()
            << " images. A planted schedule achieves "
            << planted.planted_makespan << ".\n\n";

  const auto line = [&](const char* name, double ms) {
    std::cout << name << ms << "  (" << ms / planted.planted_makespan
              << "x planted)\n";
  };

  const ScheduleResult spread = greedy_min_load(cluster);
  line("greedy min-load:          ", spread.makespan);
  const ScheduleResult batch = greedy_class_batch(cluster);
  line("greedy image-batch:       ", batch.makespan);

  RoundingOptions ropt;
  ropt.seed = 123;
  ropt.trials = 4;
  ThreadPool pool;
  ropt.pool = &pool;
  const RoundingResult direct = randomized_rounding(cluster, ropt);
  line("rounding (direct LP):     ", direct.makespan);
  std::cout << "    LP window [" << direct.lp_lower_bound << ", "
            << direct.lp_T << "], " << direct.fallback_jobs
            << " fallback placements\n";

  ConfigLpOptions copt;
  copt.pool = &pool;
  const RoundingResult viaconfig = randomized_rounding_config(cluster, ropt, copt);
  line("rounding (config LP):     ", viaconfig.makespan);

  const LocalSearchResult polished =
      local_search(cluster, direct.schedule);
  line("rounding + local search:  ", polished.makespan);
  std::cout << "    " << polished.moves_applied << " improving moves in "
            << polished.sweeps << " sweeps\n";
  return 0;
}
