// Factory changeover scenario (uniformly related machines): an injection
// molding shop with presses of different throughput. Orders are grouped by
// mold (setup class); switching molds costs a class-dependent changeover.
// Compares plain LPT, the Lemma 2.1 setup-aware LPT, and the Section 2.1
// PTAS.
//
//   ./examples/factory_changeover

#include <iostream>

#include "core/bounds.h"
#include "core/generators.h"
#include "uniform/lpt.h"
#include "uniform/ptas.h"

using namespace setsched;

int main() {
  UniformGenParams params;
  params.num_jobs = 48;        // orders
  params.num_machines = 5;     // presses
  params.num_classes = 6;      // molds
  params.min_job_size = 5;     // minutes of molding at unit speed
  params.max_job_size = 90;
  params.min_setup = 20;       // mold changeovers are expensive
  params.max_setup = 60;
  params.profile = SpeedProfile::kUniformRandom;
  params.max_speed_ratio = 3.0;  // newest press is 3x the oldest

  const UniformInstance shop = generate_uniform(params, 2024);
  const double lb = uniform_lower_bound(shop);
  std::cout << "Molding shop: " << shop.num_jobs() << " orders, "
            << shop.num_machines() << " presses, " << shop.num_classes()
            << " molds. Lower bound on the makespan: " << lb << "\n\n";

  const ScheduleResult plain = lpt_uniform(shop);
  std::cout << "plain LPT (ignores changeovers):    " << plain.makespan
            << "  (" << plain.makespan / lb << "x LB)\n";

  const ScheduleResult merged = lpt_with_placeholders(shop);
  std::cout << "Lemma 2.1 LPT (changeover-aware):   " << merged.makespan
            << "  (" << merged.makespan / lb << "x LB, proven <= 4.74 OPT)\n";

  PtasOptions popt;
  popt.epsilon = 0.5;
  const PtasResult ptas = ptas_uniform(shop, popt);
  std::cout << "Section 2.1 PTAS (eps = 1/2):       " << ptas.makespan
            << "  (" << ptas.makespan / lb << "x LB";
  if (ptas.lower_bound > 0) {
    std::cout << ", certified OPT > " << ptas.lower_bound;
  }
  std::cout << ")\n";
  if (ptas.resource_limited) {
    std::cout << "  note: a DP probe hit its state budget; result falls back"
                 " to the best completed probe\n";
  }
  return 0;
}
