#pragma once

#include <optional>
#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace setsched {

/// Result of the Ẽ edge-selection of Sec. 3.3.1 applied to an extreme
/// solution of LP-RelaxedRA. For every class k with at least two positive
/// (hence fractional) shares:
///   * plus_machines[k]  — machines whose Ẽ edge points to k (every machine
///     appears under at most one class, Lemma 3.8 (1));
///   * minus_machine[k]  — the at most one machine with a positive share
///     whose edge was dropped (Lemma 3.8 (2)), if any.
/// Classes with a single positive share (integral assignment) have empty
/// plus_machines and no minus_machine; read the assignment off xbar.
struct EdgeSelection {
  std::vector<std::vector<MachineId>> plus_machines;
  std::vector<std::optional<MachineId>> minus_machine;
  /// True where xbar(i,k) is (numerically) positive; mirrors the input.
  Matrix<char> positive;
};

/// Decomposes the bipartite support graph of `xbar` (machines x classes,
/// edges where 0 < xbar < 1) into pseudotrees, removes alternate edges along
/// each component's unique cycle (starting from a class node), roots every
/// remaining tree at a class node, and drops the edges leaving machine
/// nodes. Throws CheckError if the support is not a pseudoforest (which
/// cannot happen for a basic solution).
[[nodiscard]] EdgeSelection select_pseudoforest_edges(const Matrix<double>& xbar,
                                                      double eps = 1e-7);

}  // namespace setsched
