#include "restricted/pseudoforest.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace setsched {

namespace {

/// Node numbering: machines are [0, m), classes are [m, m + K).
struct Graph {
  std::size_t m = 0;
  std::size_t kc = 0;
  // adjacency as (neighbor, edge_id); edges are (machine, class) pairs.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;
  std::vector<std::pair<MachineId, ClassId>> edges;
  std::vector<char> edge_removed;

  [[nodiscard]] bool is_class(std::size_t node) const { return node >= m; }
  [[nodiscard]] std::size_t class_node(ClassId k) const { return m + k; }
};

/// Finds the unique cycle (as an edge sequence) of one component, if any,
/// by peeling degree-<=1 nodes. `component` lists the component's nodes.
std::vector<std::size_t> find_cycle_edges(const Graph& g,
                                          const std::vector<std::size_t>& component) {
  std::vector<std::size_t> degree(g.adj.size(), 0);
  std::deque<std::size_t> leaves;
  for (const std::size_t v : component) {
    degree[v] = g.adj[v].size();
    if (degree[v] <= 1) leaves.push_back(v);
  }
  std::vector<char> peeled(g.adj.size(), 0);
  while (!leaves.empty()) {
    const std::size_t v = leaves.front();
    leaves.pop_front();
    if (peeled[v]) continue;
    peeled[v] = 1;
    for (const auto& [w, e] : g.adj[v]) {
      if (peeled[w]) continue;
      if (--degree[w] <= 1) leaves.push_back(w);
    }
  }
  // Remaining nodes (degree 2 inside the unpeeled core) form the cycle.
  std::vector<std::size_t> core;
  for (const std::size_t v : component) {
    if (!peeled[v]) core.push_back(v);
  }
  if (core.empty()) return {};  // tree component

  // Walk the cycle collecting edges in order.
  std::vector<std::size_t> cycle_edges;
  const std::size_t start = core.front();
  std::size_t prev = SIZE_MAX;
  std::size_t cur = start;
  do {
    bool advanced = false;
    for (const auto& [w, e] : g.adj[cur]) {
      if (peeled[w] || w == prev) continue;
      cycle_edges.push_back(e);
      prev = cur;
      cur = w;
      advanced = true;
      break;
    }
    check(advanced, "pseudoforest cycle walk failed");
  } while (cur != start);
  return cycle_edges;
}

}  // namespace

EdgeSelection select_pseudoforest_edges(const Matrix<double>& xbar, double eps) {
  const std::size_t m = xbar.rows();
  const std::size_t kc = xbar.cols();

  EdgeSelection out;
  out.plus_machines.assign(kc, {});
  out.minus_machine.assign(kc, std::nullopt);
  out.positive = Matrix<char>(m, kc, 0);

  Graph g;
  g.m = m;
  g.kc = kc;
  g.adj.assign(m + kc, {});

  // A class with exactly one positive share is integral; only classes with
  // >= 2 positive shares enter the graph (all their edges are fractional).
  for (ClassId k = 0; k < kc; ++k) {
    std::vector<MachineId> holders;
    for (MachineId i = 0; i < m; ++i) {
      if (xbar(i, k) > eps) {
        out.positive(i, k) = 1;
        holders.push_back(i);
      }
    }
    if (holders.size() < 2) continue;
    for (const MachineId i : holders) {
      const std::size_t e = g.edges.size();
      g.edges.emplace_back(i, k);
      g.adj[i].push_back({g.class_node(k), e});
      g.adj[g.class_node(k)].push_back({static_cast<std::size_t>(i), e});
    }
  }
  g.edge_removed.assign(g.edges.size(), 0);

  // Component decomposition.
  std::vector<int> component_of(m + kc, -1);
  std::vector<std::vector<std::size_t>> components;
  for (std::size_t v = 0; v < m + kc; ++v) {
    if (component_of[v] != -1 || g.adj[v].empty()) continue;
    const int c = static_cast<int>(components.size());
    components.emplace_back();
    std::deque<std::size_t> queue{v};
    component_of[v] = c;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      components[c].push_back(u);
      for (const auto& [w, e] : g.adj[u]) {
        if (component_of[w] == -1) {
          component_of[w] = c;
          queue.push_back(w);
        }
      }
    }
  }

  for (const auto& component : components) {
    std::size_t edge_count = 0;
    for (const std::size_t v : component) edge_count += g.adj[v].size();
    edge_count /= 2;
    check(edge_count <= component.size(),
          "support graph is not a pseudoforest (non-basic solution?)");

    // Remove alternate cycle edges, starting with an edge leaving a class.
    std::vector<std::size_t> cycle = find_cycle_edges(g, component);
    std::vector<std::size_t> cycle_class_nodes;
    if (!cycle.empty()) {
      for (const std::size_t e : cycle) {
        cycle_class_nodes.push_back(g.class_node(g.edges[e].second));
      }
      // Rotate so the walk starts at a class node: the shared node of
      // consecutive edges alternates class/machine; ensure edge 0 leaves a
      // class node, i.e. the node common to cycle.back() and cycle[0]...
      // Simpler: the walk above started at core.front(); find its type.
      // Edges alternate (class,machine) endpoints; if the first edge's walk
      // origin was a machine, start removal at index 1 instead.
      // We recover the orientation from the first two edges.
      const auto& e0 = g.edges[cycle[0]];
      const auto& e1 = g.edges[cycle[1]];
      // Shared endpoint of e0 and e1 is the *second* node of the walk.
      const bool share_machine = e0.first == e1.first;
      // Walk origin is e0's other endpoint.
      const bool origin_is_class = share_machine;  // other endpoint = class
      const std::size_t offset = origin_is_class ? 0 : 1;
      for (std::size_t t = offset; t < cycle.size(); t += 2) {
        g.edge_removed[cycle[t]] = 1;
      }
      // A cycle class that lost its edge records the machine as i^-.
      for (std::size_t t = offset; t < cycle.size(); t += 2) {
        const auto [i, k] = g.edges[cycle[t]];
        check(!out.minus_machine[k].has_value(),
              "class lost two edges in cycle removal");
        out.minus_machine[k] = i;
      }
    }

    // Root every tree of the remaining forest at a class node and keep only
    // the machine -> parent-class edges. Cycle classes MUST be the roots of
    // their trees: they already lost one (cycle) edge, and a root loses no
    // parent edge, which is what keeps Lemma 3.8 (2) intact. After cycle
    // removal every tree of this component contains exactly one cycle class,
    // so seeding from them first covers all trees; plain tree components are
    // seeded from an arbitrary class node.
    std::vector<std::size_t> root_order = cycle_class_nodes;
    for (const std::size_t v : component) {
      if (g.is_class(v)) root_order.push_back(v);
    }
    std::vector<char> visited(m + kc, 0);
    for (const std::size_t root : root_order) {
      if (visited[root]) continue;
      // Only start from nodes that still have live edges and are not yet
      // claimed by another tree of this component.
      std::deque<std::size_t> queue{root};
      visited[root] = 1;
      while (!queue.empty()) {
        const std::size_t u = queue.front();
        queue.pop_front();
        for (const auto& [w, e] : g.adj[u]) {
          if (g.edge_removed[e] || visited[w]) continue;
          visited[w] = 1;
          const auto [i, k] = g.edges[e];
          if (g.is_class(u)) {
            // class -> machine edge: machine keeps it (Ẽ).
            out.plus_machines[k].push_back(i);
          } else {
            // machine -> class edge: dropped; records i^- for the class.
            check(!out.minus_machine[k].has_value(),
                  "class lost two edges during rooting");
            out.minus_machine[k] = i;
          }
          queue.push_back(w);
        }
      }
    }
    // Every node with live edges must have been visited (trees all contain a
    // class node, which seeded them).
    for (const std::size_t v : component) {
      bool live = false;
      for (const auto& [w, e] : g.adj[v]) live |= !g.edge_removed[e];
      check(!live || visited[v], "forest rooting left a node unvisited");
    }
  }

  // Lemma 3.8 (1): each machine appears in at most one plus list.
  std::vector<char> machine_used(m, 0);
  for (ClassId k = 0; k < kc; ++k) {
    for (const MachineId i : out.plus_machines[k]) {
      check(!machine_used[i], "machine kept two E-tilde edges");
      machine_used[i] = 1;
    }
  }
  return out;
}

}  // namespace setsched
