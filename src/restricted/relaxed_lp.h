#pragma once

#include <optional>

#include "common/matrix.h"
#include "core/instance.h"
#include "lp/simplex.h"

namespace setsched {

/// Fractional class-to-machine distribution from LP-RelaxedRA
/// (Eq. 11-14 / 16 of the paper). xbar(i,k) is the fraction of class k's
/// workload processed on machine i:
///   (11) Σ_k xbar_ik (p̄_ik + α_ik s_ik) <= T   per machine,
///   (12) Σ_i xbar_ik  = 1                      per class with jobs,
///   (13) xbar >= 0,
///   (14/16) xbar_ik = 0 when s_ik + max_{j∈k} p_ij > T.
/// The exclusion rule implements Eq. (16) and, specialized to restricted
/// assignment with class-uniform restrictions (machine-independent p_j),
/// the Eq. (9)-derived filter the Thm 3.10 filling argument relies on.
struct RelaxedLp {
  Matrix<double> xbar;        ///< m x K; basic (extreme-point) solution
  Matrix<double> class_work;  ///< p̄_ik; +inf when machine i ineligible for k
  double T = 0.0;
};

/// Solves LP-RelaxedRA for makespan guess T through the shared lp::solve
/// entry point (the sparse revised simplex by default; pass options to pin
/// the tableau oracle). The returned solution is basic, i.e. an extreme
/// point — required by the pseudoforest rounding, and guaranteed by both
/// implementations. Returns std::nullopt iff infeasible. Classes without
/// jobs get an all-zero xbar row. When `iterations` is non-null the solve's
/// simplex iteration count is ADDED to it (also for infeasible probes,
/// which still cost pivots — the T-search reports the sum).
[[nodiscard]] std::optional<RelaxedLp> solve_relaxed_lp(
    const Instance& instance, double T, const lp::SimplexOptions& options = {},
    std::size_t* iterations = nullptr);

/// Largest trivially LP-infeasible T:
///   max( max_k min_i (s_ik + max_{j∈k} p_ij) ,
///        Σ_k min_i (p̄_ik + s_ik) / m ).
[[nodiscard]] double relaxed_lp_floor(const Instance& instance);

}  // namespace setsched
