#include "restricted/relaxed_lp.h"

#include <algorithm>

#include "common/check.h"
#include "lp/simplex.h"

namespace setsched {

namespace {

/// p̄_ik and the per-(i,k) admissibility under guess T.
struct ClassData {
  Matrix<double> work;     // p̄_ik (inf when ineligible)
  Matrix<double> max_job;  // max_{j∈k} p_ij (inf when ineligible)
};

ClassData compute_class_data(const Instance& instance) {
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();
  ClassData out{Matrix<double>(m, kc, 0.0), Matrix<double>(m, kc, 0.0)};
  const auto by_class = instance.jobs_by_class();
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      if (instance.setup(i, k) >= kInfinity) {
        out.work(i, k) = kInfinity;
        out.max_job(i, k) = kInfinity;
        continue;
      }
      double total = 0.0;
      double biggest = 0.0;
      for (const JobId j : by_class[k]) {
        const double p = instance.proc(i, j);
        if (p >= kInfinity) {
          total = kInfinity;
          biggest = kInfinity;
          break;
        }
        total += p;
        biggest = std::max(biggest, p);
      }
      out.work(i, k) = total;
      out.max_job(i, k) = biggest;
    }
  }
  return out;
}

}  // namespace

std::optional<RelaxedLp> solve_relaxed_lp(const Instance& instance, double T,
                                          const lp::SimplexOptions& options,
                                          std::size_t* iterations) {
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();
  const auto by_class = instance.jobs_by_class();
  const ClassData data = compute_class_data(instance);

  lp::Model model(lp::Objective::kMinimize);
  Matrix<std::size_t> var(m, kc, SIZE_MAX);
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      if (by_class[k].empty()) continue;
      const double s = instance.setup(i, k);
      if (s >= kInfinity || data.work(i, k) >= kInfinity) continue;
      if (s + data.max_job(i, k) > T) continue;  // (14)/(16)
      var(i, k) = model.add_variable(0.0, 1.0, 0.0);
    }
  }

  // (12): classes fully distributed.
  for (ClassId k = 0; k < kc; ++k) {
    if (by_class[k].empty()) continue;
    std::vector<lp::Entry> row;
    for (MachineId i = 0; i < m; ++i) {
      if (var(i, k) != SIZE_MAX) row.push_back({var(i, k), 1.0});
    }
    if (row.empty()) return std::nullopt;  // class fits nowhere under T
    model.add_constraint(std::move(row), lp::Sense::kEqual, 1.0);
  }

  // (11): machine packing with setup inflation α_ik = max(1, p̄/(T - s)).
  for (MachineId i = 0; i < m; ++i) {
    std::vector<lp::Entry> row;
    for (ClassId k = 0; k < kc; ++k) {
      if (var(i, k) == SIZE_MAX) continue;
      const double s = instance.setup(i, k);
      const double work = data.work(i, k);
      double alpha = 1.0;
      if (work > 0.0) {
        // work > 0 implies max_job > 0, and the (16) filter then guarantees
        // s < T, so the α denominator is positive.
        check(T - s > 0.0, "admissible pair with T <= s");
        alpha = std::max(1.0, work / (T - s));
      }
      row.push_back({var(i, k), work + alpha * s});
    }
    if (!row.empty()) {
      model.add_constraint(std::move(row), lp::Sense::kLessEqual, T);
    }
  }

  const lp::Solution sol = lp::solve(model, options);
  if (iterations != nullptr) *iterations += sol.iterations;
  if (sol.status == lp::SolveStatus::kInfeasible) return std::nullopt;
  check(sol.optimal(), "LP-RelaxedRA solve failed");

  RelaxedLp out{Matrix<double>(m, kc, 0.0), data.work, T};
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      if (var(i, k) != SIZE_MAX) {
        out.xbar(i, k) = std::clamp(sol.x[var(i, k)], 0.0, 1.0);
      }
    }
  }
  return out;
}

double relaxed_lp_floor(const Instance& instance) {
  const std::size_t m = instance.num_machines();
  const auto by_class = instance.jobs_by_class();
  const ClassData data = compute_class_data(instance);

  double floor1 = 0.0;
  double sum_min = 0.0;
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (by_class[k].empty()) continue;
    double best_fit = kInfinity;    // min_i (s + max job)
    double best_total = kInfinity;  // min_i (s + p̄)
    for (MachineId i = 0; i < m; ++i) {
      const double s = instance.setup(i, k);
      if (s >= kInfinity || data.work(i, k) >= kInfinity) continue;
      best_fit = std::min(best_fit, s + data.max_job(i, k));
      best_total = std::min(best_total, s + data.work(i, k));
    }
    check(best_fit < kInfinity, "class has no eligible machine");
    floor1 = std::max(floor1, best_fit);
    sum_min += best_total;
  }
  return std::max(floor1, sum_min / static_cast<double>(m));
}

}  // namespace setsched
