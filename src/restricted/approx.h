#pragma once

#include "core/instance.h"
#include "core/result.h"
#include "restricted/relaxed_lp.h"

namespace setsched {

struct ConstantApproxResult {
  Schedule schedule;
  double makespan = 0.0;
  /// LP-feasible makespan guess the rounding worked against.
  double lp_T = 0.0;
  /// Proven lower bound on OPT (largest T where LP-RelaxedRA was infeasible,
  /// or the trivial floor).
  double lp_lower_bound = 0.0;
  std::size_t lp_solves = 0;
  /// Simplex iterations summed over every probe of the T-search (including
  /// infeasible probes, which still cost pivots).
  std::size_t lp_iterations = 0;
};

/// Theorem 3.10: 2-approximation for restricted assignment with
/// class-uniform restrictions. Requires is_restricted_class_uniform(instance)
/// (checked). Binary-searches the smallest LP-RelaxedRA-feasible T, then
/// rounds the extreme solution via the pseudoforest construction: the lost
/// edge's workload moves to a chosen Ẽ machine i+_k, per-class reserved slots
/// are filled greedily with i+_k last. Guarantees makespan <= 2 lp_T.
[[nodiscard]] ConstantApproxResult two_approx_restricted(
    const Instance& instance, double precision = 0.02,
    const lp::SimplexOptions& simplex = {});

/// Theorem 3.11: 3-approximation for unrelated machines with class-uniform
/// processing times. Requires is_class_uniform_processing(instance)
/// (checked). Same LP and pseudoforest; classes whose lost share exceeds 1/2
/// move entirely to i^-_k, otherwise the kept shares are doubled.
/// Guarantees makespan <= 3 lp_T.
[[nodiscard]] ConstantApproxResult three_approx_class_uniform(
    const Instance& instance, double precision = 0.02,
    const lp::SimplexOptions& simplex = {});

}  // namespace setsched
