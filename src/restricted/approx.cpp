#include "restricted/approx.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.h"
#include "core/bounds.h"
#include "restricted/pseudoforest.h"

namespace setsched {

namespace {

constexpr double kShareEps = 1e-7;

struct LpWindow {
  RelaxedLp lp;
  double lower_bound = 0.0;
  std::size_t solves = 0;
  std::size_t iterations = 0;
};

/// Geometric binary search for (nearly) the smallest LP-RelaxedRA-feasible T.
/// Any feasible integral schedule is LP-feasible at its makespan (Lemma 3.7,
/// which for both special cases also covers the (16) exclusions), so the
/// trivial best-machine schedule provides the initial feasible T.
LpWindow search_relaxed_lp(const Instance& instance, double precision,
                           const lp::SimplexOptions& simplex) {
  check(precision > 0.0, "precision must be positive");
  double lo = relaxed_lp_floor(instance);
  double hi = std::max(lo, unrelated_upper_bound(instance));

  LpWindow out;
  ++out.solves;
  if (auto at_lo = solve_relaxed_lp(instance, lo, simplex, &out.iterations)) {
    out.lp = std::move(*at_lo);
    out.lower_bound = lo;
    return out;
  }
  ++out.solves;
  auto best = solve_relaxed_lp(instance, hi, simplex, &out.iterations);
  check(best.has_value(), "LP-RelaxedRA infeasible at a feasible makespan");
  while (hi / lo > 1.0 + precision) {
    const double mid = std::sqrt(lo * hi);
    ++out.solves;
    if (auto sol = solve_relaxed_lp(instance, mid, simplex, &out.iterations)) {
      hi = mid;
      best = std::move(sol);
    } else {
      lo = mid;
    }
  }
  out.lp = std::move(*best);
  out.lower_bound = lo;
  return out;
}

/// Greedily fills each class's jobs into the reserved slots xbar * p̄:
/// machines in M(k) are processed with `last_machine[k]` (if any, else the
/// last positive machine) deferred to the end; a machine admits jobs while
/// its used time is below its reserved slot (over-packing by at most one
/// job), and the final machine takes everything left.
Schedule fill_slots(const Instance& instance, const Matrix<double>& work,
                    const Matrix<double>& xbar,
                    const std::vector<std::optional<MachineId>>& last_machine) {
  const std::size_t m = instance.num_machines();
  const auto by_class = instance.jobs_by_class();
  Schedule schedule = Schedule::empty(instance.num_jobs());

  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    const auto& jobs = by_class[k];
    if (jobs.empty()) continue;

    std::vector<MachineId> holders;
    for (MachineId i = 0; i < m; ++i) {
      if (xbar(i, k) > kShareEps) holders.push_back(i);
    }
    check(!holders.empty(), "class has no workload share");

    // Move the designated last machine to the back.
    if (last_machine[k].has_value()) {
      const auto it = std::find(holders.begin(), holders.end(), *last_machine[k]);
      check(it != holders.end(), "designated last machine has no share");
      holders.erase(it);
      holders.push_back(*last_machine[k]);
    }

    std::size_t pos = 0;
    for (std::size_t t = 0; t + 1 < holders.size() && pos < jobs.size(); ++t) {
      const MachineId i = holders[t];
      const double slot = xbar(i, k) * work(i, k);
      double used = 0.0;
      while (pos < jobs.size() && used < slot - 1e-12) {
        const JobId j = jobs[pos++];
        schedule.assignment[j] = i;
        used += instance.proc(i, j);
      }
    }
    const MachineId last = holders.back();
    while (pos < jobs.size()) {
      schedule.assignment[jobs[pos++]] = last;
    }
  }
  return schedule;
}

}  // namespace

ConstantApproxResult two_approx_restricted(const Instance& instance,
                                           double precision,
                                           const lp::SimplexOptions& simplex) {
  instance.validate();
  check(is_restricted_class_uniform(instance),
        "two_approx_restricted requires class-uniform restrictions");

  LpWindow window = search_relaxed_lp(instance, precision, simplex);
  Matrix<double>& xbar = window.lp.xbar;

  const EdgeSelection sel = select_pseudoforest_edges(xbar, kShareEps);

  // i+_k per fractional class; move the lost edge's workload onto it.
  std::vector<std::optional<MachineId>> last(instance.num_classes());
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (sel.plus_machines[k].empty()) continue;  // integral class
    const MachineId i_plus = sel.plus_machines[k].front();
    last[k] = i_plus;
    if (sel.minus_machine[k].has_value()) {
      const MachineId i_minus = *sel.minus_machine[k];
      xbar(i_plus, k) += xbar(i_minus, k);
      xbar(i_minus, k) = 0.0;
    }
  }

  Schedule schedule = fill_slots(instance, window.lp.class_work, xbar, last);
  check(!schedule_error(instance, schedule).has_value(),
        "2-approx produced an invalid schedule");

  ConstantApproxResult out;
  out.makespan = makespan(instance, schedule);
  out.schedule = std::move(schedule);
  out.lp_T = window.lp.T;
  out.lp_lower_bound = window.lower_bound;
  out.lp_solves = window.solves;
  out.lp_iterations = window.iterations;
  check(out.makespan <= 2.0 * out.lp_T + 1e-6,
        "2-approx exceeded its proven bound");
  return out;
}

ConstantApproxResult three_approx_class_uniform(const Instance& instance,
                                                double precision,
                                                const lp::SimplexOptions& simplex) {
  instance.validate();
  check(is_class_uniform_processing(instance),
        "three_approx_class_uniform requires class-uniform processing times");

  LpWindow window = search_relaxed_lp(instance, precision, simplex);
  Matrix<double>& xbar = window.lp.xbar;

  const EdgeSelection sel = select_pseudoforest_edges(xbar, kShareEps);

  std::vector<std::optional<MachineId>> last(instance.num_classes());
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (sel.plus_machines[k].empty()) continue;  // integral class
    last[k] = sel.plus_machines[k].front();
    if (!sel.minus_machine[k].has_value()) continue;
    const MachineId i_minus = *sel.minus_machine[k];
    if (xbar(i_minus, k) > 0.5) {
      // Process the entire class on i^-.
      for (MachineId i = 0; i < instance.num_machines(); ++i) {
        xbar(i, k) = 0.0;
      }
      xbar(i_minus, k) = 1.0;
      last[k] = i_minus;
    } else {
      // Drop the lost share and double the kept ones.
      xbar(i_minus, k) = 0.0;
      for (const MachineId i : sel.plus_machines[k]) {
        xbar(i, k) = std::min(1.0, 2.0 * xbar(i, k));
      }
    }
  }

  Schedule schedule = fill_slots(instance, window.lp.class_work, xbar, last);
  check(!schedule_error(instance, schedule).has_value(),
        "3-approx produced an invalid schedule");

  ConstantApproxResult out;
  out.makespan = makespan(instance, schedule);
  out.schedule = std::move(schedule);
  out.lp_T = window.lp.T;
  out.lp_lower_bound = window.lower_bound;
  out.lp_solves = window.solves;
  out.lp_iterations = window.iterations;
  check(out.makespan <= 3.0 * out.lp_T + 1e-6,
        "3-approx exceeded its proven bound");
  return out;
}

}  // namespace setsched
