#pragma once

#include <cstdint>

#include "common/thread_pool.h"
#include "core/instance.h"
#include "core/result.h"
#include "unrelated/assignment_lp.h"

namespace setsched {

struct RoundingOptions {
  /// Number of sampling rounds = ceil(c * log2 n) (paper: c log n).
  double c = 3.0;
  std::uint64_t seed = 1;
  /// Independent repetitions of the whole rounding; the best schedule wins.
  /// The paper uses a single run; more runs only sharpen the whp bound.
  std::size_t trials = 1;
  /// Binary-search precision for the makespan guess T.
  double search_precision = 0.05;
  AssignmentLpOptions lp = {};
  /// Optional pool for running trials in parallel (nullptr = sequential).
  ThreadPool* pool = nullptr;
};

struct RoundingResult {
  Schedule schedule;
  double makespan = 0.0;
  /// LP-feasible makespan guess the rounding worked against.
  double lp_T = 0.0;
  /// Proven lower bound on OPT (largest T where the LP was infeasible,
  /// or the trivial floor). makespan / lp_lower_bound bounds the true ratio.
  double lp_lower_bound = 0.0;
  /// Jobs that stayed unassigned after all rounds and were placed by the
  /// argmin-p fallback (step 3 of the algorithm), summed over trials.
  std::size_t fallback_jobs = 0;
  std::size_t rounds = 0;
  std::size_t lp_solves = 0;
  /// T-search probes the dual simplex re-optimized (0 on the colgen path,
  /// whose RMP grows columns instead of mutating bounds).
  std::size_t lp_dual_solves = 0;
  /// Total simplex iterations across every LP solve of the T-search (direct
  /// path) or every RMP solve of every config-LP probe (colgen path).
  std::size_t lp_iterations = 0;
  /// LP guard counters of the T-search chain (0 unless
  /// AssignmentLpOptions::audit_interval enables the residual audits; the
  /// colgen path does not report them).
  std::size_t lp_audits_suspect = 0;
  std::size_t lp_recoveries = 0;
  std::size_t lp_oracle_fallbacks = 0;
};

/// One pass of the Sec. 3.1 sampling given a fractional solution:
/// performs `rounds` rounds of (y, then x | y) Bernoulli sampling, keeps each
/// job's first sampled machine, and places leftovers on argmin_i p_ij.
/// Exposed separately for tests and ablations.
[[nodiscard]] Schedule round_fractional(const Instance& instance,
                                        const FractionalAssignment& fractional,
                                        std::size_t rounds, std::uint64_t seed,
                                        std::size_t* fallback_jobs = nullptr);

/// Full Theorem 3.3 algorithm: dual-approximation binary search for the
/// smallest LP-feasible T, then randomized rounding of the fractional
/// solution. Expected makespan O(T (log n + log m)).
[[nodiscard]] RoundingResult randomized_rounding(const Instance& instance,
                                                 const RoundingOptions& options = {});

/// Deterministic sibling of the Theorem 3.3 rounding: binary-searches the
/// smallest LP-feasible T, then assigns each job to the machine carrying its
/// largest fraction x_ij. No approximation guarantee (mass can concentrate),
/// but a useful derandomized baseline against the sampling rounding.
[[nodiscard]] ScheduleResult argmax_rounding(
    const Instance& instance, double search_precision = 0.05,
    const AssignmentLpOptions& options = {});

}  // namespace setsched
