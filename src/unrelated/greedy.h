#pragma once

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

/// List-scheduling baseline: jobs sorted by non-increasing cheapest
/// processing time; each job goes to the machine minimizing the resulting
/// load (processing + setup if its class is new there). No guarantee on
/// unrelated machines; standard practical baseline for E3/E4.
[[nodiscard]] ScheduleResult greedy_min_load(const Instance& instance);

/// Class-batched baseline: whole classes (sorted by non-increasing total
/// cheapest work) are placed on the machine minimizing the resulting load.
/// Never splits a class, so it pays exactly one setup per non-empty class.
[[nodiscard]] ScheduleResult greedy_class_batch(const Instance& instance);

}  // namespace setsched
