#pragma once

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

/// List-scheduling baseline: jobs sorted by non-increasing cheapest
/// processing time; each job goes to the machine minimizing the resulting
/// load (processing + setup if its class is new there). No guarantee on
/// unrelated machines; standard practical baseline for E3/E4.
[[nodiscard]] ScheduleResult greedy_min_load(const Instance& instance);

/// Class-batched baseline: whole classes (sorted by non-increasing total
/// cheapest work) are placed on the machine minimizing the resulting load.
/// Never splits a class, so it pays exactly one setup per non-empty class.
[[nodiscard]] ScheduleResult greedy_class_batch(const Instance& instance);

/// Set-cover-flavoured density greedy: repeatedly assign, among all
/// (machine, class) pairs, the batch of still-unassigned eligible jobs that
/// maximizes jobs-covered per unit of added load (processing + setup if the
/// class is new on that machine). Degenerates to the classic greedy SetCover
/// on the Theorem 3.5 reduction instances (p in {0, inf}, unit setups).
[[nodiscard]] ScheduleResult cover_greedy(const Instance& instance);

}  // namespace setsched
