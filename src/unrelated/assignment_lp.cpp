#include "unrelated/assignment_lp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/bounds.h"

namespace setsched {

namespace {

constexpr std::size_t kNoVar = SIZE_MAX;

}  // namespace

std::optional<FractionalAssignment> solve_assignment_lp(
    const Instance& instance, double T, const AssignmentLpOptions& options) {
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();

  lp::Model model(lp::Objective::kMinimize);

  // x variables for pairs allowed by (5) (and (9) when strengthening).
  Matrix<std::size_t> xv(m, n, kNoVar);
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (!instance.eligible(i, j)) continue;
      if (instance.proc(i, j) > T) continue;
      if (options.strengthen &&
          instance.proc(i, j) + instance.setup_for_job(i, j) > T) {
        continue;
      }
      xv(i, j) = model.add_variable(0.0, 1.0, 0.0);
    }
  }
  // y variables; objective = minimize total fractional setups.
  Matrix<std::size_t> yv(m, kc, kNoVar);
  const auto by_class = instance.jobs_by_class();
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      if (instance.setup(i, k) >= kInfinity) continue;
      if (options.strengthen && instance.setup(i, k) > T) continue;  // (10)
      yv(i, k) = model.add_variable(0.0, 1.0, 1.0);
    }
  }

  // (2): every job fully assigned.
  for (JobId j = 0; j < n; ++j) {
    std::vector<lp::Entry> row;
    for (MachineId i = 0; i < m; ++i) {
      if (xv(i, j) != kNoVar) row.push_back({xv(i, j), 1.0});
    }
    if (row.empty()) return std::nullopt;  // job cannot run anywhere under T
    model.add_constraint(std::move(row), lp::Sense::kEqual, 1.0);
  }

  // (1): machine load.
  for (MachineId i = 0; i < m; ++i) {
    std::vector<lp::Entry> row;
    for (JobId j = 0; j < n; ++j) {
      if (xv(i, j) != kNoVar) row.push_back({xv(i, j), instance.proc(i, j)});
    }
    for (ClassId k = 0; k < kc; ++k) {
      if (yv(i, k) != kNoVar) row.push_back({yv(i, k), instance.setup(i, k)});
    }
    if (!row.empty()) {
      model.add_constraint(std::move(row), lp::Sense::kLessEqual, T);
    }
  }

  // (4): setup dominates assignment, per eligible (i, j).
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (xv(i, j) == kNoVar) continue;
      const ClassId k = instance.job_class(j);
      if (yv(i, k) == kNoVar) return std::nullopt;  // x allowed but y not
      model.add_constraint({{yv(i, k), 1.0}, {xv(i, j), -1.0}},
                           lp::Sense::kGreaterEqual, 0.0);
    }
  }

  // (8): class-level packing rows (strengthening only).
  if (options.strengthen) {
    for (MachineId i = 0; i < m; ++i) {
      for (ClassId k = 0; k < kc; ++k) {
        if (yv(i, k) == kNoVar) continue;
        std::vector<lp::Entry> row;
        for (const JobId j : by_class[k]) {
          if (xv(i, j) != kNoVar) row.push_back({xv(i, j), instance.proc(i, j)});
        }
        if (row.empty()) continue;
        row.push_back({yv(i, k), instance.setup(i, k) - T});
        model.add_constraint(std::move(row), lp::Sense::kLessEqual, 0.0);
      }
    }
  }

  const lp::Solution sol = lp::solve(model, options.simplex);
  if (sol.status == lp::SolveStatus::kInfeasible) return std::nullopt;
  check(sol.optimal(), "assignment LP solve failed (not optimal/infeasible)");

  FractionalAssignment frac{Matrix<double>(m, n, 0.0), Matrix<double>(m, kc, 0.0)};
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (xv(i, j) != kNoVar) {
        frac.x(i, j) = std::clamp(sol.x[xv(i, j)], 0.0, 1.0);
      }
    }
    for (ClassId k = 0; k < kc; ++k) {
      if (yv(i, k) != kNoVar) {
        frac.y(i, k) = std::clamp(sol.x[yv(i, k)], 0.0, 1.0);
      }
    }
  }
  // Guard (4) against roundoff so rounding probabilities stay in [0, 1].
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      const ClassId k = instance.job_class(j);
      frac.y(i, k) = std::max(frac.y(i, k), frac.x(i, j));
    }
  }
  return frac;
}

double assignment_lp_floor(const Instance& instance) {
  double floor1 = 0.0;
  double sum_min = 0.0;
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    double mn = kInfinity;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (instance.eligible(i, j)) mn = std::min(mn, instance.proc(i, j));
    }
    check(mn < kInfinity, "job has no eligible machine");
    floor1 = std::max(floor1, mn);
    sum_min += mn;
  }
  const double floor2 = sum_min / static_cast<double>(instance.num_machines());
  return std::max(floor1, floor2);
}

LpSearchResult search_assignment_lp(const Instance& instance, double precision,
                                    const AssignmentLpOptions& options) {
  check(precision > 0.0, "precision must be positive");
  LpSearchResult out;

  // Seed the left endpoint with the setup-aware combinatorial bound from
  // core/bounds as well: it dominates the setup-blind LP floor whenever
  // setups matter, shrinking the [lo, hi] window and so the number of
  // simplex solves the geometric search needs (the unrelated-medium hot
  // path). Both seeds are lower bounds on OPT, so `lo` stays one.
  double lo = std::max(assignment_lp_floor(instance),
                       unrelated_lower_bound(instance));
  double hi = unrelated_upper_bound(instance);
  check(hi >= lo * 0.999999, "upper bound below LP floor");
  lo = std::min(lo, hi);

  // The floor value itself might be feasible; test it first so `lo` keeps the
  // invariant "infeasible or equal to the final feasible T".
  ++out.lp_solves;
  if (auto at_lo = solve_assignment_lp(instance, lo, options)) {
    out.feasible_T = lo;
    out.lower_bound = lo;
    out.fractional = std::move(*at_lo);
    return out;
  }

  auto best = solve_assignment_lp(instance, hi, options);
  ++out.lp_solves;
  check(best.has_value(), "LP infeasible at a feasible schedule's makespan");
  while (hi / lo > 1.0 + precision) {
    const double mid = std::sqrt(lo * hi);
    ++out.lp_solves;
    if (auto sol = solve_assignment_lp(instance, mid, options)) {
      hi = mid;
      best = std::move(sol);
    } else {
      lo = mid;
    }
  }
  out.feasible_T = hi;
  out.lower_bound = lo;
  out.fractional = std::move(*best);
  return out;
}

}  // namespace setsched
