#include "unrelated/assignment_lp.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/bounds.h"

namespace setsched {

namespace {

constexpr std::size_t kNoVar = SIZE_MAX;

}  // namespace

ParametricAssignmentLp::ParametricAssignmentLp(
    const Instance& instance, double T_build,
    const AssignmentLpOptions& options)
    : instance_(&instance),
      options_(options),
      T_build_(T_build),
      model_(lp::Objective::kMinimize),
      xv_(instance.num_machines(), instance.num_jobs(), kNoVar),
      yv_(instance.num_machines(), instance.num_classes(), kNoVar),
      packing_row_(instance.num_machines(), instance.num_classes(), kNoVar),
      pinned_(instance.num_jobs(), kUnassigned),
      fixed_zero_(instance.num_machines(), instance.num_jobs(), 0),
      root_fixed_(instance.num_machines(), instance.num_jobs(), 0) {
  check(!(options.makespan_objective && options.strengthen),
        "makespan objective is incompatible with strengthening (the packing "
        "coefficients contain T)");
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();
  const double T = T_build;
  const bool min_T = options.makespan_objective;

  // x variables for pairs allowed by (5) (and (9) when strengthening) at the
  // loosest guess T_build; tighter probes shrink the set via upper bounds.
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (!instance.eligible(i, j)) continue;
      if (instance.proc(i, j) > T) continue;
      if (options.strengthen &&
          instance.proc(i, j) + instance.setup_for_job(i, j) > T) {
        continue;
      }
      xv_(i, j) = model_.add_variable(0.0, 1.0, 0.0);
    }
  }
  // y variables; objective = minimize total fractional setups (or nothing in
  // makespan mode, where the explicit T_var column is the whole objective).
  const auto by_class = instance.jobs_by_class();
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      if (instance.setup(i, k) >= kInfinity) continue;
      if (options.strengthen && instance.setup(i, k) > T) continue;  // (10)
      yv_(i, k) = model_.add_variable(0.0, 1.0, min_T ? 0.0 : 1.0);
    }
  }
  if (min_T) tvar_ = model_.add_variable(0.0, kInfinity, 1.0);

  // (2): every job fully assigned.
  for (JobId j = 0; j < n; ++j) {
    std::vector<lp::Entry> row;
    for (MachineId i = 0; i < m; ++i) {
      if (xv_(i, j) != kNoVar) row.push_back({xv_(i, j), 1.0});
    }
    if (row.empty()) {  // job cannot run anywhere under T_build
      structurally_infeasible_ = true;
      return;
    }
    model_.add_constraint(std::move(row), lp::Sense::kEqual, 1.0);
  }

  // (1): machine load, rhs = T (re-parameterized per probe). In makespan
  // mode the load is charged against the T_var column instead: load_i -
  // T_var <= 0, rhs fixed at 0, min T_var the objective.
  load_row_.assign(m, kNoVar);
  for (MachineId i = 0; i < m; ++i) {
    std::vector<lp::Entry> row;
    for (JobId j = 0; j < n; ++j) {
      if (xv_(i, j) != kNoVar) row.push_back({xv_(i, j), instance.proc(i, j)});
    }
    for (ClassId k = 0; k < kc; ++k) {
      if (yv_(i, k) != kNoVar) row.push_back({yv_(i, k), instance.setup(i, k)});
    }
    if (!row.empty()) {
      if (min_T) row.push_back({tvar_, -1.0});
      load_row_[i] = model_.add_constraint(std::move(row),
                                           lp::Sense::kLessEqual,
                                           min_T ? 0.0 : T);
    }
  }

  // (4): setup dominates assignment, per eligible (i, j).
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (xv_(i, j) == kNoVar) continue;
      const ClassId k = instance.job_class(j);
      if (yv_(i, k) == kNoVar) {  // x allowed but y not (unreachable for
        structurally_infeasible_ = true;  // validated instances)
        return;
      }
      model_.add_constraint({{yv_(i, k), 1.0}, {xv_(i, j), -1.0}},
                            lp::Sense::kGreaterEqual, 0.0);
    }
  }

  // (8): class-level packing rows (strengthening only); the y coefficient
  // s_ik - T is re-parameterized per probe.
  if (options.strengthen) {
    for (MachineId i = 0; i < m; ++i) {
      for (ClassId k = 0; k < kc; ++k) {
        if (yv_(i, k) == kNoVar) continue;
        std::vector<lp::Entry> row;
        for (const JobId j : by_class[k]) {
          if (xv_(i, j) != kNoVar) {
            row.push_back({xv_(i, j), instance.proc(i, j)});
          }
        }
        if (row.empty()) continue;
        row.push_back({yv_(i, k), instance.setup(i, k) - T});
        packing_row_(i, k) =
            model_.add_constraint(std::move(row), lp::Sense::kLessEqual, 0.0);
      }
    }
  }
}

void ParametricAssignmentLp::reparameterize(double T) {
  const Instance& inst = *instance_;
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  const std::size_t kc = inst.num_classes();
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      const std::size_t v = xv_(i, j);
      if (v == kNoVar) continue;
      if (pinned_[j] != kUnassigned) {
        // Pinned jobs override the T filters: x is fixed to the pin. A pin
        // whose processing time exceeds T still reads as "does not fit
        // under T": in setup-mass mode the load row's forced activity
        // exceeds its rhs (infeasible), in makespan mode T_var absorbs the
        // load and min_makespan() returns a value > T that feasible()
        // rejects against its threshold.
        model_.set_bounds(v, pinned_[j] == i ? 1.0 : 0.0,
                          pinned_[j] == i ? 1.0 : 0.0);
        continue;
      }
      const bool allowed =
          fixed_zero_(i, j) == 0 && inst.proc(i, j) <= T &&
          (!options_.strengthen ||
           inst.proc(i, j) + inst.setup_for_job(i, j) <= T);
      model_.set_bounds(v, 0.0, allowed ? 1.0 : 0.0);
    }
    for (ClassId k = 0; k < kc; ++k) {
      const std::size_t v = yv_(i, k);
      if (v == kNoVar) continue;
      const bool allowed = !options_.strengthen || inst.setup(i, k) <= T;
      model_.set_bounds(v, 0.0, allowed ? 1.0 : 0.0);
      if (packing_row_(i, k) != kNoVar) {
        model_.update_entry(packing_row_(i, k), v, inst.setup(i, k) - T);
      }
    }
    // Makespan mode keeps the load rhs at 0 (T lives in the T_var column).
    if (!options_.makespan_objective && load_row_[i] != kNoVar) {
      model_.set_rhs(load_row_[i], T);
    }
  }
}

void ParametricAssignmentLp::pin_job(JobId j, MachineId i) {
  unpin_job(j);
  pinned_[j] = i;
  if (!structurally_infeasible_ && xv_(i, j) == kNoVar) ++impossible_pins_;
}

void ParametricAssignmentLp::unpin_job(JobId j) {
  const MachineId i = pinned_[j];
  if (i == kUnassigned) return;
  pinned_[j] = kUnassigned;
  if (!structurally_infeasible_ && xv_(i, j) == kNoVar) --impossible_pins_;
}

lp::Solution ParametricAssignmentLp::run_solve(double T) {
  ++lp_solves_;
  last_iterations_ = 0;
  last_via_dual_ = false;
  // Infeasibility by structure (a pin onto a variable absent from the model)
  // is exact combinatorial knowledge, not simplex output — trusted without
  // an audit, so the verdict resets to the "unaudited" state.
  last_verdict_ = lp::AuditVerdict::kSkipped;
  lp::Solution sol;
  sol.status = lp::SolveStatus::kInfeasible;
  if (structurally_infeasible_ || impossible_pins_ > 0) return sol;
  check(T <= T_build_ * (1.0 + 1e-9) + 1e-12,
        "parametric assignment LP probed above its build guess");
  reparameterize(T);

  lp::SimplexOptions simplex = options_.simplex;
  if (options_.audit_interval > 0 &&
      (lp_solves_ - 1) % options_.audit_interval == 0) {
    simplex.guard = true;
  }
  if (!basis_.empty()) simplex.warm_start = &basis_;
  sol = lp::solve(model_, simplex);
  iterations_ += sol.iterations;
  last_iterations_ = sol.iterations;
  last_via_dual_ = sol.via_dual;
  last_verdict_ = sol.audit_verdict;
  audits_suspect_ += sol.audits_suspect;
  recoveries_ += sol.recoveries;
  oracle_fallbacks_ += sol.oracle_fallbacks;
  if (sol.via_dual) ++dual_solves_;
  // Optimal bases always join the warm-start chain. An infeasible probe's
  // basis joins only when the dual simplex produced it: a dual-terminal
  // basis is still dual-feasible and re-optimizes the next probe in a few
  // pivots, whereas a primal phase-1 end basis is a degenerate artifact
  // (pinned against the violated rows) that measurably poisons the chain.
  if (!sol.basis.empty() && (sol.optimal() || sol.via_dual)) {
    basis_ = sol.basis;
  }
  return sol;
}

std::optional<double> ParametricAssignmentLp::min_makespan(double T_filter) {
  check(options_.makespan_objective,
        "min_makespan needs AssignmentLpOptions::makespan_objective");
  lp::Solution sol = run_solve(T_filter);
  if (sol.status == lp::SolveStatus::kInfeasible) return std::nullopt;
  check(sol.optimal(), "makespan LP solve failed (not optimal/infeasible)");
  const double value = sol.objective;
  last_solution_ = std::move(sol);
  return value;
}

void ParametricAssignmentLp::compute_reduced_costs() {
  // Reduced costs d_j = c_j - y^T A_j in one sweep over the rows (the model
  // is a minimization, so a nonbasic-at-lower column satisfies d_j >= 0 and
  // the sensitivity bound obj(x_j >= t) >= value + d_j * t). The scratch
  // buffer is a member: this runs on every LP-probed branch-and-bound node.
  std::vector<double>& reduced = reduced_scratch_;
  reduced.assign(model_.num_variables(), 0.0);
  for (std::size_t v = 0; v < model_.num_variables(); ++v) {
    reduced[v] = model_.objective(v);
  }
  for (std::size_t r = 0; r < model_.num_constraints(); ++r) {
    const double y = last_solution_.duals[r];
    if (y == 0.0) continue;
    for (const lp::Entry& e : model_.row(r)) reduced[e.col] -= y * e.value;
  }
}

std::size_t ParametricAssignmentLp::fix_dominated(
    double cutoff, std::vector<std::pair<JobId, MachineId>>* out) {
  check(options_.makespan_objective,
        "fix_dominated needs AssignmentLpOptions::makespan_objective");
  if (!last_solution_.optimal()) return 0;
  // Reduced-cost fixing acts only on audited (or unaudited-but-trusted)
  // duals: a contested solve's sensitivity bounds could exclude pairs the
  // true relaxation allows, which would silently cut off optimal schedules.
  if (last_solution_.audit_contested()) return 0;
  const double value = last_solution_.objective;
  const double margin = 1e-7 * std::max(1.0, std::abs(cutoff));
  if (value >= cutoff) return 0;  // the whole node prunes anyway

  compute_reduced_costs();
  const std::vector<double>& reduced = reduced_scratch_;
  const Instance& inst = *instance_;
  std::size_t fixed = 0;
  for (MachineId i = 0; i < inst.num_machines(); ++i) {
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      const std::size_t v = xv_(i, j);
      if (v == kNoVar || fixed_zero_(i, j) != 0) continue;
      if (pinned_[j] != kUnassigned) continue;
      // Only nonbasic-at-lower columns carry the sensitivity bound; a basic
      // or at-upper column has d <= 0 and never passes the threshold, but
      // exclude columns sitting away from 0 explicitly for clarity.
      if (last_solution_.x[v] > 1e-9) continue;
      if (value + reduced[v] >= cutoff + margin) {
        ++fixed_zero_(i, j);
        out->push_back({j, i});
        ++fixed;
      }
    }
  }
  return fixed;
}

void ParametricAssignmentLp::unfix(
    std::vector<std::pair<JobId, MachineId>>* out, std::size_t from) {
  while (out->size() > from) {
    const auto [j, i] = out->back();
    out->pop_back();
    --fixed_zero_(i, j);
  }
}

bool ParametricAssignmentLp::save_root_snapshot() {
  check(options_.makespan_objective,
        "save_root_snapshot needs AssignmentLpOptions::makespan_objective");
  for (const MachineId pin : pinned_) {
    check(pin == kUnassigned, "root snapshot taken with pins set");
  }
  if (!last_solution_.optimal()) return false;
  // A contested root solve must not become the permanent fixing certificate
  // for the entire search (refix_root re-applies it at every incumbent
  // improvement with no further audit).
  if (last_solution_.audit_contested()) return false;
  compute_reduced_costs();
  const double value = last_solution_.objective;
  root_bound_.assign(model_.num_variables(), -kInfinity);
  for (std::size_t v = 0; v < model_.num_variables(); ++v) {
    if (last_solution_.x[v] > 1e-9) continue;  // no bound off the lower bound
    root_bound_[v] = value + reduced_scratch_[v];
  }
  return true;
}

std::size_t ParametricAssignmentLp::refix_root(double cutoff) {
  if (root_bound_.empty()) return 0;
  const double margin = 1e-7 * std::max(1.0, std::abs(cutoff));
  const Instance& inst = *instance_;
  std::size_t fixed = 0;
  for (MachineId i = 0; i < inst.num_machines(); ++i) {
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      const std::size_t v = xv_(i, j);
      if (v == kNoVar || root_fixed_(i, j) != 0) continue;
      if (root_bound_[v] >= cutoff + margin) {
        // Permanent: stacks on top of any live subtree fix (the count keeps
        // the pair fixed when that scope unwinds) and is never undone. Jobs
        // currently pinned onto the pair are fixed too — the root bound is a
        // pin-free fact, so the surrounding subtree just prunes.
        root_fixed_(i, j) = 1;
        ++fixed_zero_(i, j);
        ++fixed;
      }
    }
  }
  return fixed;
}

bool ParametricAssignmentLp::feasible(double T) {
  if (options_.makespan_objective) {
    // The makespan-mode LP is feasible for (almost) every T — T_var absorbs
    // any load — so feasibility at T means "the minimum fractional makespan
    // fits under T".
    const std::optional<double> value = min_makespan(T);
    return value.has_value() && *value <= T * (1.0 + 1e-9) + 1e-9;
  }
  const lp::Solution sol = run_solve(T);
  if (sol.status == lp::SolveStatus::kInfeasible) return false;
  check(sol.optimal(), "assignment LP probe failed (not optimal/infeasible)");
  return true;
}

std::optional<FractionalAssignment> ParametricAssignmentLp::solve(double T) {
  const lp::Solution sol = run_solve(T);
  if (sol.status == lp::SolveStatus::kInfeasible) return std::nullopt;
  check(sol.optimal(), "assignment LP solve failed (not optimal/infeasible)");

  const Instance& inst = *instance_;
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  const std::size_t kc = inst.num_classes();
  FractionalAssignment frac{Matrix<double>(m, n, 0.0),
                            Matrix<double>(m, kc, 0.0)};
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      if (xv_(i, j) != kNoVar) {
        frac.x(i, j) = std::clamp(sol.x[xv_(i, j)], 0.0, 1.0);
      }
    }
    for (ClassId k = 0; k < kc; ++k) {
      if (yv_(i, k) != kNoVar) {
        frac.y(i, k) = std::clamp(sol.x[yv_(i, k)], 0.0, 1.0);
      }
    }
  }
  // Guard (4) against roundoff so rounding probabilities stay in [0, 1].
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) {
      const ClassId k = inst.job_class(j);
      frac.y(i, k) = std::max(frac.y(i, k), frac.x(i, j));
    }
  }
  return frac;
}

std::optional<FractionalAssignment> solve_assignment_lp(
    const Instance& instance, double T, const AssignmentLpOptions& options) {
  ParametricAssignmentLp lp(instance, T, options);
  return lp.solve(T);
}

double assignment_lp_floor(const Instance& instance) {
  double floor1 = 0.0;
  double sum_min = 0.0;
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    double mn = kInfinity;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (instance.eligible(i, j)) mn = std::min(mn, instance.proc(i, j));
    }
    check(mn < kInfinity, "job has no eligible machine");
    floor1 = std::max(floor1, mn);
    sum_min += mn;
  }
  const double floor2 = sum_min / static_cast<double>(instance.num_machines());
  return std::max(floor1, floor2);
}

LpSearchResult search_assignment_lp(const Instance& instance, double precision,
                                    const AssignmentLpOptions& options) {
  check(precision > 0.0, "precision must be positive");
  LpSearchResult out;

  // Seed the left endpoint with the setup-aware combinatorial bound from
  // core/bounds as well: it dominates the setup-blind LP floor whenever
  // setups matter, shrinking the [lo, hi] window and so the number of
  // simplex solves the geometric search needs. Both seeds are lower bounds
  // on OPT, so `lo` stays one.
  double lo = std::max(assignment_lp_floor(instance),
                       unrelated_lower_bound(instance));
  double hi = unrelated_upper_bound(instance);
  check(hi >= lo * 0.999999, "upper bound below LP floor");
  lo = std::min(lo, hi);

  // One model for the whole search, built at the loosest guess. The hi
  // solve runs first: it must happen anyway whenever lo is infeasible (the
  // common case), it seeds the warm-start chain for every later probe, and
  // its solution is reused as `best` at window exit without a re-solve.
  ParametricAssignmentLp lp(instance, hi, options);
  auto best = lp.solve(hi);
  check(best.has_value(), "LP infeasible at a feasible schedule's makespan");

  const auto finish = [&](double feasible_T, double lower_bound,
                          FractionalAssignment fractional) {
    out.feasible_T = feasible_T;
    out.lower_bound = lower_bound;
    out.fractional = std::move(fractional);
    out.lp_solves = lp.lp_solves();
    out.lp_dual_solves = lp.dual_solves();
    out.simplex_iterations = lp.simplex_iterations();
    out.lp_audits_suspect = lp.audits_suspect();
    out.lp_recoveries = lp.recoveries();
    out.lp_oracle_fallbacks = lp.oracle_fallbacks();
    return std::move(out);
  };

  // The floor value itself might be feasible; test it before bisecting so
  // `lo` keeps the invariant "infeasible or equal to the final feasible T".
  if (lo < hi) {
    if (auto at_lo = lp.solve(lo)) {
      return finish(lo, lo, std::move(*at_lo));
    }
  }
  while (hi / lo > 1.0 + precision) {
    const double mid = std::sqrt(lo * hi);
    if (auto sol = lp.solve(mid)) {
      hi = mid;
      best = std::move(sol);
    } else {
      lo = mid;
    }
  }
  return finish(hi, lo, std::move(*best));
}

}  // namespace setsched
