#include "unrelated/greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace setsched {

ScheduleResult greedy_min_load(const Instance& instance) {
  instance.validate();
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();

  std::vector<double> cheapest(n, kInfinity);
  for (JobId j = 0; j < n; ++j) {
    for (MachineId i = 0; i < m; ++i) {
      if (instance.eligible(i, j)) {
        cheapest[j] = std::min(cheapest[j], instance.proc(i, j));
      }
    }
  }
  std::vector<JobId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](JobId a, JobId b) { return cheapest[a] > cheapest[b]; });

  std::vector<double> load(m, 0.0);
  std::vector<char> has_class(m * kc, 0);
  Schedule schedule = Schedule::empty(n);
  for (const JobId j : order) {
    const ClassId k = instance.job_class(j);
    MachineId best = kUnassigned;
    double best_load = kInfinity;
    for (MachineId i = 0; i < m; ++i) {
      if (!instance.eligible(i, j)) continue;
      const double setup = has_class[i * kc + k] ? 0.0 : instance.setup(i, k);
      const double new_load = load[i] + instance.proc(i, j) + setup;
      if (new_load < best_load) {
        best_load = new_load;
        best = i;
      }
    }
    check(best != kUnassigned, "job has no eligible machine");
    schedule.assignment[j] = best;
    load[best] = best_load;
    has_class[best * kc + k] = 1;
  }
  return {schedule, makespan(instance, schedule), {}};
}

ScheduleResult greedy_class_batch(const Instance& instance) {
  instance.validate();
  const std::size_t m = instance.num_machines();
  const auto by_class = instance.jobs_by_class();

  // Order classes by total cheapest work, heaviest first.
  std::vector<double> weight(instance.num_classes(), 0.0);
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    for (const JobId j : by_class[k]) {
      double mn = kInfinity;
      for (MachineId i = 0; i < m; ++i) {
        if (instance.eligible(i, j)) mn = std::min(mn, instance.proc(i, j));
      }
      weight[k] += mn;
    }
  }
  std::vector<ClassId> order(instance.num_classes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](ClassId a, ClassId b) { return weight[a] > weight[b]; });

  std::vector<double> load(m, 0.0);
  Schedule schedule = Schedule::empty(instance.num_jobs());
  for (const ClassId k : order) {
    if (by_class[k].empty()) continue;
    MachineId best = kUnassigned;
    double best_load = kInfinity;
    for (MachineId i = 0; i < m; ++i) {
      if (instance.setup(i, k) >= kInfinity) continue;
      double new_load = load[i] + instance.setup(i, k);
      bool ok = true;
      for (const JobId j : by_class[k]) {
        if (!instance.eligible(i, j)) {
          ok = false;
          break;
        }
        new_load += instance.proc(i, j);
      }
      if (ok && new_load < best_load) {
        best_load = new_load;
        best = i;
      }
    }
    // A class may not fit on any single machine (eligibility); fall back to
    // per-job min-load placement for its jobs.
    if (best == kUnassigned) {
      for (const JobId j : by_class[k]) {
        MachineId arg = kUnassigned;
        double arg_load = kInfinity;
        for (MachineId i = 0; i < m; ++i) {
          if (!instance.eligible(i, j)) continue;
          const double cand = load[i] + instance.proc(i, j) + instance.setup(i, k);
          if (cand < arg_load) {
            arg_load = cand;
            arg = i;
          }
        }
        check(arg != kUnassigned, "job has no eligible machine");
        schedule.assignment[j] = arg;
        load[arg] = arg_load;
      }
      continue;
    }
    for (const JobId j : by_class[k]) schedule.assignment[j] = best;
    load[best] = best_load;
  }
  return {schedule, makespan(instance, schedule), {}};
}

ScheduleResult cover_greedy(const Instance& instance) {
  instance.validate();
  const std::size_t m = instance.num_machines();
  const std::size_t n = instance.num_jobs();
  const std::size_t kc = instance.num_classes();

  Schedule schedule = Schedule::empty(n);
  const auto by_class = instance.jobs_by_class();
  std::vector<char> has_class(m * kc, 0);
  std::size_t unassigned = n;

  while (unassigned > 0) {
    double best_density = -1.0;
    MachineId best_machine = kUnassigned;
    ClassId best_class = 0;
    std::vector<JobId> best_batch;

    std::vector<JobId> batch;
    for (MachineId i = 0; i < m; ++i) {
      for (ClassId k = 0; k < kc; ++k) {
        batch.clear();
        double cost = has_class[i * kc + k] ? 0.0 : instance.setup(i, k);
        if (cost >= kInfinity) continue;
        for (const JobId j : by_class[k]) {
          if (schedule.assignment[j] != kUnassigned) continue;
          if (!instance.eligible(i, j)) continue;
          batch.push_back(j);
          cost += instance.proc(i, j);
        }
        if (batch.empty()) continue;
        const double density = cost > 0.0
                                   ? static_cast<double>(batch.size()) / cost
                                   : std::numeric_limits<double>::max();
        if (density > best_density) {
          best_density = density;
          best_machine = i;
          best_class = k;
          best_batch = batch;
        }
      }
    }

    check(best_machine != kUnassigned,
          "cover_greedy: some job has no eligible machine");
    for (const JobId j : best_batch) {
      schedule.assignment[j] = best_machine;
    }
    has_class[best_machine * kc + best_class] = 1;
    unassigned -= best_batch.size();
  }

  return {schedule, makespan(instance, schedule), {}};
}

}  // namespace setsched
