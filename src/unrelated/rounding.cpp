#include "unrelated/rounding.h"

#include <algorithm>
#include <cmath>

#include "common/annotations.h"
#include "common/check.h"
#include "common/prng.h"

namespace setsched {

Schedule round_fractional(const Instance& instance,
                          const FractionalAssignment& fractional,
                          std::size_t rounds, std::uint64_t seed,
                          std::size_t* fallback_jobs) {
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();
  const auto by_class = instance.jobs_by_class();

  Xoshiro256 rng(seed);
  Schedule schedule = Schedule::empty(n);
  std::size_t assigned = 0;

  for (std::size_t h = 0; h < rounds && assigned < n; ++h) {
    for (MachineId i = 0; i < m; ++i) {
      for (ClassId k = 0; k < kc; ++k) {
        const double yik = fractional.y(i, k);
        if (yik <= 0.0) continue;
        // Step 1: open the setup with probability y*_ik...
        if (!rng.next_bernoulli(yik)) continue;
        // ...then assign each job of the class with probability x*/y*.
        for (const JobId j : by_class[k]) {
          const double xij = fractional.x(i, j);
          if (xij <= 0.0) continue;
          if (!rng.next_bernoulli(xij / yik)) continue;
          // Step 4 (dedup): keep the first machine that sampled this job.
          if (schedule.assignment[j] == kUnassigned) {
            schedule.assignment[j] = i;
            ++assigned;
          }
        }
      }
    }
  }

  // Step 3: fallback for jobs never sampled.
  std::size_t fallback = 0;
  for (JobId j = 0; j < n; ++j) {
    if (schedule.assignment[j] != kUnassigned) continue;
    ++fallback;
    double best = kInfinity;
    MachineId arg = kUnassigned;
    for (MachineId i = 0; i < m; ++i) {
      if (!instance.eligible(i, j)) continue;
      if (instance.proc(i, j) < best) {
        best = instance.proc(i, j);
        arg = i;
      }
    }
    check(arg != kUnassigned, "job has no eligible machine");
    schedule.assignment[j] = arg;
  }
  if (fallback_jobs != nullptr) *fallback_jobs = fallback;
  return schedule;
}

RoundingResult randomized_rounding(const Instance& instance,
                                   const RoundingOptions& options) {
  instance.validate();
  check(options.trials >= 1, "need at least one trial");
  const std::size_t n = instance.num_jobs();

  const LpSearchResult lp =
      search_assignment_lp(instance, options.search_precision, options.lp);

  const std::size_t rounds = static_cast<std::size_t>(std::max(
      1.0, std::ceil(options.c * std::log2(static_cast<double>(std::max<std::size_t>(n, 2))))));

  RoundingResult out;
  out.lp_T = lp.feasible_T;
  out.lp_lower_bound = lp.lower_bound;
  out.rounds = rounds;
  out.lp_solves = lp.lp_solves;
  out.lp_dual_solves = lp.lp_dual_solves;
  out.lp_iterations = lp.simplex_iterations;
  out.lp_audits_suspect = lp.lp_audits_suspect;
  out.lp_recoveries = lp.lp_recoveries;
  out.lp_oracle_fallbacks = lp.lp_oracle_fallbacks;

  Xoshiro256 seeder(options.seed);
  std::vector<std::uint64_t> trial_seeds(options.trials);
  for (auto& s : trial_seeds) s = seeder();

  /// Cross-trial reduction state; trials run concurrently on options.pool,
  /// so everything below is guarded (and the guard is compiler-checked).
  struct BestState {
    Mutex m;
    double best_makespan GUARDED_BY(m) = kInfinity;
    Schedule best_schedule GUARDED_BY(m);
    std::size_t total_fallback GUARDED_BY(m) = 0;
  } best;
  {
    const MutexLock lock(best.m);
    best.best_schedule = Schedule::empty(n);
  }

  const auto run_trial = [&](std::size_t t) {
    std::size_t fallback = 0;
    Schedule s =
        round_fractional(instance, lp.fractional, rounds, trial_seeds[t], &fallback);
    const double ms = makespan(instance, s);
    const MutexLock lock(best.m);
    best.total_fallback += fallback;
    if (ms < best.best_makespan) {
      best.best_makespan = ms;
      best.best_schedule = std::move(s);
    }
  };

  if (options.pool != nullptr && options.trials > 1) {
    options.pool->parallel_for(0, options.trials, run_trial);
  } else {
    for (std::size_t t = 0; t < options.trials; ++t) run_trial(t);
  }

  // The fork-join above has completed; the lock makes that visible to the
  // analysis (and costs nothing contended).
  const MutexLock lock(best.m);
  out.schedule = std::move(best.best_schedule);
  out.makespan = best.best_makespan;
  out.fallback_jobs = best.total_fallback;
  return out;
}

ScheduleResult argmax_rounding(const Instance& instance,
                               double search_precision,
                               const AssignmentLpOptions& options) {
  const LpSearchResult lp =
      search_assignment_lp(instance, search_precision, options);
  Schedule schedule = Schedule::empty(instance.num_jobs());
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    double best_x = -1.0;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (!instance.eligible(i, j)) continue;
      if (lp.fractional.x(i, j) > best_x) {
        best_x = lp.fractional.x(i, j);
        schedule.assignment[j] = i;
      }
    }
  }
  SolverStats stats;
  stats.lp_solves = lp.lp_solves;
  stats.lp_iterations = lp.simplex_iterations;
  stats.lp_dual_solves = lp.lp_dual_solves;
  stats.lp_audits_suspect = lp.lp_audits_suspect;
  stats.lp_recoveries = lp.lp_recoveries;
  stats.lp_oracle_fallbacks = lp.lp_oracle_fallbacks;
  return {schedule, makespan(instance, schedule), stats};
}

}  // namespace setsched
