#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "core/instance.h"
#include "lp/simplex.h"

namespace setsched {

/// Fractional solution of the assignment LP (the linear relaxation of
/// ILP-UM, Sec. 3): x(i,j) = fraction of job j on machine i, y(i,k) =
/// fractional setup of class k on machine i. Satisfies
///   (1)  Σ_j x_ij p_ij + Σ_k y_ik s_ik <= T          per machine,
///   (2)  Σ_i x_ij  = 1                               per job,
///   (4)  y_i,k(j) >= x_ij                            per (i, j),
///   (5)  x_ij = 0 when p_ij > T or j ineligible on i.
struct FractionalAssignment {
  Matrix<double> x;  ///< m x n
  Matrix<double> y;  ///< m x K
};

struct AssignmentLpOptions {
  /// Also add the valid inequalities (8)-(10) from Sec. 3.3.1 (class-level
  /// packing rows and the p_ij + s_ik <= T / s_ik <= T filters). They hold
  /// for every instance and strengthen the relaxation; the paper's plain
  /// ILP-UM omits them, so the default is off.
  bool strengthen = false;
  /// Replace the setup-mass objective with an explicit makespan variable:
  /// minimize T_var subject to load_i - T_var <= 0 per machine, with the
  /// T-dependent eligibility filters still applied as variable bounds. The
  /// LP optimum is then the fractional makespan itself — a certified lower
  /// bound the exact branch-and-bound prunes and reduced-cost-fixes against
  /// (min_makespan() / fix_dominated()). Every cost is >= 0, so any basis is
  /// dual-feasible and the dual simplex solves these end to end.
  /// Incompatible with `strengthen` (the packing coefficients contain T).
  bool makespan_objective = false;
  /// Residual-audit cadence of the numerical safety net (lp/guard.h): every
  /// `audit_interval`-th solve of the warm-probe chain runs under the
  /// lp::solve guard — post-solve residual audit plus the recovery
  /// escalation ladder on suspicion. 1 audits every solve (what the exact
  /// bounder uses: its prune/fix decisions must never rest on an unaudited
  /// solve), N > 1 samples the chain, 0 disables the guard entirely (the
  /// zero-overhead default for the approximation pipelines, which only
  /// consume feasibility windows and tolerate a bad probe).
  std::size_t audit_interval = 0;
  lp::SimplexOptions simplex = {};
};

/// The relaxation of ILP-UM built ONCE at its loosest makespan guess and
/// re-parameterized in place for every subsequent probe: the T-dependent
/// eligibility filters (5)/(9)/(10) become variable upper bounds (0 when a
/// pair is filtered at the probe's T), T itself appears only in the machine
/// load rhs (1) and the strengthened packing coefficients (8). Because the
/// column layout never changes, each solve warm-starts the revised simplex
/// from the previous probe's basis — this is what turns the geometric
/// T-search from a chain of cold phase-1 solves into a chain of short
/// re-optimizations.
class ParametricAssignmentLp {
 public:
  /// Builds the relaxation at guess `T_build`. Probes must satisfy
  /// T <= T_build (the variable set is the one admissible at T_build).
  ParametricAssignmentLp(const Instance& instance, double T_build,
                         const AssignmentLpOptions& options = {});

  /// Re-parameterizes the model to T and solves, warm-starting from the
  /// basis of the previous call (feasible or not). Returns std::nullopt iff
  /// the LP is infeasible at T.
  [[nodiscard]] std::optional<FractionalAssignment> solve(double T);

  /// Feasibility-only probe at T (no solution extraction): true iff a
  /// fractional assignment of makespan <= T exists that respects the pins
  /// below. This is the branch-and-bound node relaxation of src/exact: one
  /// model re-parameterized down the search tree, every probe warm-started
  /// from the previous basis.
  [[nodiscard]] bool feasible(double T);

  /// Pins job j to machine i for subsequent solves: x_ij is fixed to 1 and
  /// x_i'j to 0 for every other machine. Pinning a pair whose variable was
  /// filtered at T_build makes every later probe infeasible (the pinned pair
  /// cannot meet any T <= T_build). Pins survive re-parameterization.
  void pin_job(JobId j, MachineId i);

  /// Removes the pin on job j (no-op when j is not pinned).
  void unpin_job(JobId j);

  // --- makespan-objective mode (options.makespan_objective) ---------------

  /// Minimum fractional makespan of the completions respecting the current
  /// pins and fixes, with the eligibility filters applied at T_filter.
  /// std::nullopt iff no completion exists at all (impossible pins). Valid
  /// for bounding integral completions of makespan <= T_filter.
  [[nodiscard]] std::optional<double> min_makespan(double T_filter);

  /// Reduced-cost fixing against the last min_makespan() solve: every free
  /// pair (j, i) whose LP reduced cost certifies that any completion placing
  /// j on i has makespan >= cutoff is fixed to x_ij = 0 (appended to *out
  /// for later unfixing). Returns the number of pairs fixed. Sound because
  /// the bounded-simplex sensitivity bound obj(x_ij = 1) >= value + d_ij
  /// holds for nonbasic-at-lower columns.
  std::size_t fix_dominated(double cutoff,
                            std::vector<std::pair<JobId, MachineId>>* out);

  /// Clears fixes out[from..] and shrinks *out back to `from` (the undo of
  /// the fix_dominated calls made since *out had size `from`).
  void unfix(std::vector<std::pair<JobId, MachineId>>* out, std::size_t from);

  /// Snapshots the last min_makespan() solve — objective value plus the
  /// per-variable sensitivity bound `value + reduced_cost` of every
  /// nonbasic-at-lower column — as the ROOT relaxation. Must be called with
  /// no pins set (the bound is a fact about the unpinned LP, valid at every
  /// later, tighter cutoff). Returns false and stores nothing when the last
  /// solve was not optimal.
  bool save_root_snapshot();

  /// Incremental root fixing: re-applies the saved root snapshot at a
  /// (tighter) cutoff, fixing every pair whose root sensitivity bound
  /// certifies that any completion using it has makespan >= cutoff. Root
  /// fixes are PERMANENT — they carry no undo entry and stack with
  /// subtree-scoped fix_dominated() fixes, so a pair fixed by both stays
  /// fixed when the subtree scope unwinds. Each pair is root-fixed at most
  /// once. Returns the number of pairs newly fixed (0 without a snapshot).
  std::size_t refix_root(double cutoff);

  /// True iff the pair is currently reduced-cost-fixed to 0.
  [[nodiscard]] bool pair_fixed(JobId j, MachineId i) const {
    return fixed_zero_(i, j) != 0;
  }

  /// Number of solve() calls so far.
  [[nodiscard]] std::size_t lp_solves() const noexcept { return lp_solves_; }
  /// Solves the dual simplex performed (warm dual re-optimizations).
  [[nodiscard]] std::size_t dual_solves() const noexcept {
    return dual_solves_;
  }
  /// Total simplex iterations across all solves.
  [[nodiscard]] std::size_t simplex_iterations() const noexcept {
    return iterations_;
  }
  /// Simplex iterations of the most recent solve.
  [[nodiscard]] std::size_t last_iterations() const noexcept {
    return last_iterations_;
  }
  /// True iff the most recent solve went through the dual simplex.
  [[nodiscard]] bool last_via_dual() const noexcept { return last_via_dual_; }
  /// Audit verdict of the most recent solve (kSkipped when the guard did not
  /// run — an unaudited solve is trusted, preserving pre-guard behavior;
  /// only kSuspect/kFailed mark the answer as unusable).
  [[nodiscard]] lp::AuditVerdict last_verdict() const noexcept {
    return last_verdict_;
  }
  /// Guarded solves whose post-solve audit was contested (summed over the
  /// chain; each solve's internal ladder can contest more than once).
  [[nodiscard]] std::size_t audits_suspect() const noexcept {
    return audits_suspect_;
  }
  /// Contested solves the ladder recovered via a warm/cold re-solve.
  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }
  /// Contested solves escalated to the dense tableau oracle.
  [[nodiscard]] std::size_t oracle_fallbacks() const noexcept {
    return oracle_fallbacks_;
  }

 private:
  void reparameterize(double T);
  /// Fills reduced_scratch_ with the reduced costs of last_solution_.
  void compute_reduced_costs();
  /// Shared solve path: re-parameterizes, runs the simplex, maintains the
  /// warm-start chain. Returns the solution (status kInfeasible on infeasible
  /// probes and on pins whose variable does not exist in the model).
  [[nodiscard]] lp::Solution run_solve(double T);

  const Instance* instance_;
  AssignmentLpOptions options_;
  double T_build_;
  /// True when the model could not be built at T_build (a job fits nowhere);
  /// every probe at T <= T_build is then infeasible a fortiori.
  bool structurally_infeasible_ = false;
  lp::Model model_;
  Matrix<std::size_t> xv_;              ///< m x n variable ids (SIZE_MAX = none)
  Matrix<std::size_t> yv_;              ///< m x K variable ids
  std::size_t tvar_ = SIZE_MAX;         ///< makespan column (makespan mode)
  std::vector<std::size_t> load_row_;   ///< per machine (SIZE_MAX = none)
  Matrix<std::size_t> packing_row_;     ///< m x K strengthened rows (8)
  std::vector<MachineId> pinned_;       ///< per job; kUnassigned = free
  /// m x n reduced-cost fix COUNTS (0 = free): a pair can be held at zero by
  /// a subtree-scoped fix_dominated() fix and a permanent refix_root() fix
  /// at once; unfixing the subtree scope must not free a root-fixed pair.
  Matrix<char> fixed_zero_;
  /// m x n pairs already fixed by refix_root() (each at most once, ever).
  Matrix<char> root_fixed_;
  /// Root snapshot for refix_root(): per-variable sensitivity bound
  /// `root value + reduced cost` (-inf for basic/at-upper columns, which
  /// carry no bound). Empty until save_root_snapshot().
  std::vector<double> root_bound_;
  /// Pins pointing at variables absent from the model (filtered at T_build):
  /// every probe is infeasible while > 0.
  std::size_t impossible_pins_ = 0;
  lp::Basis basis_;                     ///< warm-start chain across probes
  /// Last optimal solution (makespan mode only; fix_dominated reads its
  /// duals and objective).
  lp::Solution last_solution_;
  /// Reduced-cost scratch for fix_dominated (hot on B&B node probes).
  std::vector<double> reduced_scratch_;
  std::size_t lp_solves_ = 0;
  std::size_t dual_solves_ = 0;
  std::size_t iterations_ = 0;
  std::size_t last_iterations_ = 0;
  bool last_via_dual_ = false;
  lp::AuditVerdict last_verdict_ = lp::AuditVerdict::kSkipped;
  std::size_t audits_suspect_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t oracle_fallbacks_ = 0;
};

/// Solves the relaxation of ILP-UM for makespan guess T. Among feasible
/// solutions, one minimizing Σ y_ik is returned (y as tight as possible
/// against constraint (4), which only helps the rounding probabilities).
/// Returns std::nullopt iff the LP is infeasible, i.e. no schedule of
/// makespan <= T exists even fractionally.
[[nodiscard]] std::optional<FractionalAssignment> solve_assignment_lp(
    const Instance& instance, double T, const AssignmentLpOptions& options = {});

/// Largest T that is trivially LP-infeasible:
/// max( max_j min_i p_ij , (Σ_j min_i p_ij) / m ). LP(T) feasible => T >= this.
[[nodiscard]] double assignment_lp_floor(const Instance& instance);

/// Finds (by geometric binary search) a window [lo, hi] with hi/lo <= 1+prec
/// where LP(hi) is feasible and lo is LP-infeasible or a combinatorial bound
/// (the search starts from max(assignment_lp_floor, unrelated_lower_bound));
/// returns the fractional solution at hi. `lo` is a valid lower bound on OPT
/// (though the plain LP relaxation may already be feasible below the
/// setup-aware combinatorial seed). The model is built once at the initial
/// `hi` and every probe warm-starts from the previous basis; the `hi` solve
/// runs first so it seeds the chain and doubles as the returned solution
/// when no tighter probe succeeds.
struct LpSearchResult {
  double feasible_T = 0.0;    ///< hi: LP feasible here (solution below)
  double lower_bound = 0.0;   ///< lo: OPT is >= this
  FractionalAssignment fractional;
  std::size_t lp_solves = 0;
  /// Probes re-optimized by the dual simplex (warm basis turned
  /// primal-infeasible by the T mutation but stayed dual-feasible).
  std::size_t lp_dual_solves = 0;
  std::size_t simplex_iterations = 0;  ///< summed over all probes
  /// LP guard counters (0 unless AssignmentLpOptions::audit_interval > 0).
  std::size_t lp_audits_suspect = 0;
  std::size_t lp_recoveries = 0;
  std::size_t lp_oracle_fallbacks = 0;
};
[[nodiscard]] LpSearchResult search_assignment_lp(
    const Instance& instance, double precision = 0.05,
    const AssignmentLpOptions& options = {});

}  // namespace setsched
