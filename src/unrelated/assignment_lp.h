#pragma once

#include <optional>

#include "common/matrix.h"
#include "core/instance.h"
#include "lp/simplex.h"

namespace setsched {

/// Fractional solution of the assignment LP (the linear relaxation of
/// ILP-UM, Sec. 3): x(i,j) = fraction of job j on machine i, y(i,k) =
/// fractional setup of class k on machine i. Satisfies
///   (1)  Σ_j x_ij p_ij + Σ_k y_ik s_ik <= T          per machine,
///   (2)  Σ_i x_ij  = 1                               per job,
///   (4)  y_i,k(j) >= x_ij                            per (i, j),
///   (5)  x_ij = 0 when p_ij > T or j ineligible on i.
struct FractionalAssignment {
  Matrix<double> x;  ///< m x n
  Matrix<double> y;  ///< m x K
};

struct AssignmentLpOptions {
  /// Also add the valid inequalities (8)-(10) from Sec. 3.3.1 (class-level
  /// packing rows and the p_ij + s_ik <= T / s_ik <= T filters). They hold
  /// for every instance and strengthen the relaxation; the paper's plain
  /// ILP-UM omits them, so the default is off.
  bool strengthen = false;
  lp::SimplexOptions simplex = {};
};

/// Solves the relaxation of ILP-UM for makespan guess T. Among feasible
/// solutions, one minimizing Σ y_ik is returned (y as tight as possible
/// against constraint (4), which only helps the rounding probabilities).
/// Returns std::nullopt iff the LP is infeasible, i.e. no schedule of
/// makespan <= T exists even fractionally.
[[nodiscard]] std::optional<FractionalAssignment> solve_assignment_lp(
    const Instance& instance, double T, const AssignmentLpOptions& options = {});

/// Largest T that is trivially LP-infeasible:
/// max( max_j min_i p_ij , (Σ_j min_i p_ij) / m ). LP(T) feasible => T >= this.
[[nodiscard]] double assignment_lp_floor(const Instance& instance);

/// Finds (by geometric binary search) a window [lo, hi] with hi/lo <= 1+prec
/// where LP(hi) is feasible and lo is LP-infeasible or a combinatorial bound
/// (the search starts from max(assignment_lp_floor, unrelated_lower_bound));
/// returns the fractional solution at hi. `lo` is a valid lower bound on OPT
/// (though the plain LP relaxation may already be feasible below the
/// setup-aware combinatorial seed).
struct LpSearchResult {
  double feasible_T = 0.0;    ///< hi: LP feasible here (solution below)
  double lower_bound = 0.0;   ///< lo: OPT is >= this
  FractionalAssignment fractional;
  std::size_t lp_solves = 0;
};
[[nodiscard]] LpSearchResult search_assignment_lp(
    const Instance& instance, double precision = 0.05,
    const AssignmentLpOptions& options = {});

}  // namespace setsched
