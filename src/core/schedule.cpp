#include "core/schedule.h"

#include <algorithm>

#include "common/check.h"

namespace setsched {

namespace {

/// Shared load computation: `proc_time(i, j)` and `setup_time(i, k)` abstract
/// over the unrelated matrix and the uniform size/speed forms.
template <typename ProcFn, typename SetupFn>
std::vector<double> loads_impl(std::size_t num_machines, std::size_t num_classes,
                               const Schedule& schedule,
                               std::span<const ClassId> job_class,
                               ProcFn proc_time, SetupFn setup_time) {
  std::vector<double> load(num_machines, 0.0);
  // Bitset of (machine, class) pairs that already paid their setup.
  std::vector<char> has_class(num_machines * num_classes, 0);
  for (JobId j = 0; j < schedule.assignment.size(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kUnassigned) continue;
    check(i < num_machines, "schedule references machine out of range");
    load[i] += proc_time(i, j);
    const ClassId k = job_class[j];
    char& flag = has_class[i * num_classes + k];
    if (!flag) {
      flag = 1;
      load[i] += setup_time(i, k);
    }
  }
  return load;
}

}  // namespace

std::vector<double> machine_loads(const Instance& instance,
                                  const Schedule& schedule) {
  check(schedule.num_jobs() == instance.num_jobs(),
        "schedule size does not match instance");
  return loads_impl(
      instance.num_machines(), instance.num_classes(), schedule,
      instance.job_classes(),
      [&](MachineId i, JobId j) { return instance.proc(i, j); },
      [&](MachineId i, ClassId k) { return instance.setup(i, k); });
}

std::vector<double> machine_loads(const UniformInstance& instance,
                                  const Schedule& schedule) {
  check(schedule.num_jobs() == instance.num_jobs(),
        "schedule size does not match instance");
  return loads_impl(
      instance.num_machines(), instance.num_classes(), schedule,
      instance.job_class,
      [&](MachineId i, JobId j) {
        return instance.job_size[j] / instance.speed[i];
      },
      [&](MachineId i, ClassId k) {
        return instance.setup_size[k] / instance.speed[i];
      });
}

double makespan(const Instance& instance, const Schedule& schedule) {
  const auto loads = machine_loads(instance, schedule);
  return *std::max_element(loads.begin(), loads.end());
}

double makespan(const UniformInstance& instance, const Schedule& schedule) {
  const auto loads = machine_loads(instance, schedule);
  return *std::max_element(loads.begin(), loads.end());
}

std::optional<std::string> schedule_error(const Instance& instance,
                                          const Schedule& schedule) {
  if (schedule.num_jobs() != instance.num_jobs()) {
    return "schedule has " + std::to_string(schedule.num_jobs()) +
           " jobs, instance has " + std::to_string(instance.num_jobs());
  }
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kUnassigned) {
      return "job " + std::to_string(j) + " is unassigned";
    }
    if (i >= instance.num_machines()) {
      return "job " + std::to_string(j) + " assigned to invalid machine " +
             std::to_string(i);
    }
    if (!instance.eligible(i, j)) {
      return "job " + std::to_string(j) + " assigned to ineligible machine " +
             std::to_string(i);
    }
  }
  return std::nullopt;
}

std::vector<std::vector<ClassId>> classes_per_machine(const Instance& instance,
                                                      const Schedule& schedule) {
  check(schedule.num_jobs() == instance.num_jobs(),
        "schedule size does not match instance");
  std::vector<char> present(instance.num_machines() * instance.num_classes(), 0);
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    const MachineId i = schedule.assignment[j];
    if (i == kUnassigned) continue;
    present[i * instance.num_classes() + instance.job_class(j)] = 1;
  }
  std::vector<std::vector<ClassId>> out(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    for (ClassId k = 0; k < instance.num_classes(); ++k) {
      if (present[i * instance.num_classes() + k]) out[i].push_back(k);
    }
  }
  return out;
}

std::size_t total_setups(const Instance& instance, const Schedule& schedule) {
  const auto per_machine = classes_per_machine(instance, schedule);
  std::size_t total = 0;
  for (const auto& classes : per_machine) total += classes.size();
  return total;
}

}  // namespace setsched
