#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace setsched {

/// A (complete or partial) non-preemptive schedule: job -> machine.
/// The batch model means order within a machine is irrelevant; a machine
/// processes each class it received as one contiguous batch after one setup.
struct Schedule {
  std::vector<MachineId> assignment;  ///< size n; kUnassigned allowed

  /// All-unassigned schedule for n jobs.
  static Schedule empty(std::size_t num_jobs) {
    return Schedule{std::vector<MachineId>(num_jobs, kUnassigned)};
  }

  [[nodiscard]] std::size_t num_jobs() const noexcept {
    return assignment.size();
  }
  [[nodiscard]] bool complete() const noexcept {
    for (const MachineId i : assignment) {
      if (i == kUnassigned) return false;
    }
    return true;
  }

  [[nodiscard]] bool operator==(const Schedule&) const = default;
};

/// Load of every machine: processing plus one setup per distinct class
/// present. Unassigned jobs contribute nothing.
[[nodiscard]] std::vector<double> machine_loads(const Instance& instance,
                                                const Schedule& schedule);
[[nodiscard]] std::vector<double> machine_loads(const UniformInstance& instance,
                                                const Schedule& schedule);

/// Maximum machine load (0 for the all-unassigned schedule).
[[nodiscard]] double makespan(const Instance& instance, const Schedule& schedule);
[[nodiscard]] double makespan(const UniformInstance& instance,
                              const Schedule& schedule);

/// Returns std::nullopt if `schedule` is a complete feasible schedule of
/// `instance` (every job assigned to an eligible machine); otherwise a
/// human-readable description of the first violation found.
[[nodiscard]] std::optional<std::string> schedule_error(
    const Instance& instance, const Schedule& schedule);

/// Classes with at least one job on machine i, i.e. the setups machine i pays.
[[nodiscard]] std::vector<std::vector<ClassId>> classes_per_machine(
    const Instance& instance, const Schedule& schedule);

/// Total number of setups paid across all machines.
[[nodiscard]] std::size_t total_setups(const Instance& instance,
                                       const Schedule& schedule);

}  // namespace setsched
