#include "core/bounds.h"

#include <algorithm>

#include "common/check.h"

namespace setsched {

double uniform_lower_bound(const UniformInstance& instance) {
  instance.validate();
  const double vmax = *std::max_element(instance.speed.begin(), instance.speed.end());
  double total_speed = 0.0;
  for (const double v : instance.speed) total_speed += v;

  std::vector<char> class_used(instance.num_classes(), 0);
  double total_work = 0.0;
  double max_single = 0.0;
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    total_work += instance.job_size[j];
    class_used[instance.job_class[j]] = 1;
    max_single = std::max(
        max_single,
        (instance.job_size[j] + instance.setup_size[instance.job_class[j]]) / vmax);
  }
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (class_used[k]) total_work += instance.setup_size[k];
  }
  return std::max(total_work / total_speed, max_single);
}

double unrelated_lower_bound(const Instance& instance) {
  double bound = 0.0;
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    double best = kInfinity;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (!instance.eligible(i, j)) continue;
      best = std::min(best, instance.proc(i, j) + instance.setup_for_job(i, j));
    }
    check(best < kInfinity, "job has no eligible machine");
    bound = std::max(bound, best);
  }
  return bound;
}

Schedule best_machine_schedule(const Instance& instance) {
  Schedule schedule = Schedule::empty(instance.num_jobs());
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    double best = kInfinity;
    MachineId arg = kUnassigned;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (!instance.eligible(i, j)) continue;
      const double cost = instance.proc(i, j) + instance.setup_for_job(i, j);
      if (cost < best) {
        best = cost;
        arg = i;
      }
    }
    check(arg != kUnassigned, "job has no eligible machine");
    schedule.assignment[j] = arg;
  }
  return schedule;
}

double unrelated_upper_bound(const Instance& instance) {
  return makespan(instance, best_machine_schedule(instance));
}

}  // namespace setsched
