#pragma once

#include <cstdint>
#include <limits>

namespace setsched {

using JobId = std::uint32_t;
using MachineId = std::uint32_t;
using ClassId = std::uint32_t;

/// Ineligible processing/setup entries are modeled as +infinity (matching the
/// paper's p_ij = ∞ convention for restricted assignment).
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Sentinel for a job not (yet) assigned to any machine.
inline constexpr MachineId kUnassigned = std::numeric_limits<MachineId>::max();

}  // namespace setsched
