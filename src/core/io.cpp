#include "core/io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "common/check.h"
#include "common/format.h"

namespace setsched {

namespace {

void write_value(std::ostream& os, double v) {
  if (v >= kInfinity) {
    os << "inf";  // read_value() only knows this spelling, not to_chars' own
  } else {
    write_shortest_double(os, v);
  }
}

double read_value(std::istream& is) {
  std::string token;
  check(static_cast<bool>(is >> token), "unexpected end of instance stream");
  if (token == "inf") return kInfinity;
  // std::from_chars mirrors the std::to_chars writer: locale-independent,
  // so the round trip stays exact regardless of the host's LC_NUMERIC.
  double value = 0.0;
  const char* const begin = token.data();
  const char* const last = begin + token.size();
  const auto [end, ec] = std::from_chars(begin, last, value);
  check(ec == std::errc{} && end == last,
        "bad numeric token '" + token + "' in instance stream");
  return value;
}

void expect_header(std::istream& is, const std::string& kind) {
  std::string magic, k;
  int version = 0;
  check(static_cast<bool>(is >> magic >> k >> version), "missing header");
  check(magic == "setsched", "bad magic in instance stream");
  check(k == kind, "instance stream has kind '" + k + "', expected " + kind);
  check(version == 1, "unsupported instance format version");
}

}  // namespace

void save_instance(std::ostream& os, const Instance& instance) {
  os << "setsched unrelated 1\n";
  os << instance.num_machines() << ' ' << instance.num_jobs() << ' '
     << instance.num_classes() << '\n';
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    os << instance.job_class(j) << (j + 1 < instance.num_jobs() ? ' ' : '\n');
  }
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    for (JobId j = 0; j < instance.num_jobs(); ++j) {
      write_value(os, instance.proc(i, j));
      os << (j + 1 < instance.num_jobs() ? ' ' : '\n');
    }
  }
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    for (ClassId k = 0; k < instance.num_classes(); ++k) {
      write_value(os, instance.setup(i, k));
      os << (k + 1 < instance.num_classes() ? ' ' : '\n');
    }
  }
}

Instance load_instance(std::istream& is) {
  expect_header(is, "unrelated");
  std::size_t m = 0, n = 0, kc = 0;
  check(static_cast<bool>(is >> m >> n >> kc), "missing dimensions");
  std::vector<ClassId> job_class(n);
  for (auto& k : job_class) {
    check(static_cast<bool>(is >> k), "missing job class");
  }
  Instance inst(m, kc, std::move(job_class));
  for (MachineId i = 0; i < m; ++i) {
    for (JobId j = 0; j < n; ++j) inst.set_proc(i, j, read_value(is));
  }
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) inst.set_setup(i, k, read_value(is));
  }
  inst.validate();
  return inst;
}

void save_uniform(std::ostream& os, const UniformInstance& instance) {
  os << "setsched uniform 1\n";
  os << instance.num_machines() << ' ' << instance.num_jobs() << ' '
     << instance.num_classes() << '\n';
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    os << instance.job_class[j] << (j + 1 < instance.num_jobs() ? ' ' : '\n');
  }
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    write_value(os, instance.job_size[j]);
    os << (j + 1 < instance.num_jobs() ? ' ' : '\n');
  }
  for (std::size_t k = 0; k < instance.num_classes(); ++k) {
    write_value(os, instance.setup_size[k]);
    os << (k + 1 < instance.num_classes() ? ' ' : '\n');
  }
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    write_value(os, instance.speed[i]);
    os << (i + 1 < instance.num_machines() ? ' ' : '\n');
  }
}

UniformInstance load_uniform(std::istream& is) {
  expect_header(is, "uniform");
  std::size_t m = 0, n = 0, kc = 0;
  check(static_cast<bool>(is >> m >> n >> kc), "missing dimensions");
  UniformInstance inst;
  inst.job_class.resize(n);
  inst.job_size.resize(n);
  inst.setup_size.resize(kc);
  inst.speed.resize(m);
  for (auto& k : inst.job_class) {
    check(static_cast<bool>(is >> k), "missing job class");
  }
  for (auto& p : inst.job_size) p = read_value(is);
  for (auto& s : inst.setup_size) s = read_value(is);
  for (auto& v : inst.speed) v = read_value(is);
  inst.validate();
  return inst;
}

std::string describe(const Instance& instance) {
  std::ostringstream os;
  os << "Instance: " << instance.num_jobs() << " jobs, "
     << instance.num_machines() << " machines, " << instance.num_classes()
     << " classes\n";
  const auto groups = instance.jobs_by_class();
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    os << "  class " << k << ": " << groups[k].size() << " jobs, setups [";
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      if (i) os << ' ';
      write_value(os, instance.setup(i, k));
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace setsched
