#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace setsched {

/// An instance of scheduling with setup times in the most general
/// (unrelated machines) form:
///   * n jobs, each belonging to exactly one of K setup classes,
///   * m machines,
///   * processing times p_ij  (m x n),  +inf meaning "not eligible",
///   * setup times      s_ik  (m x K),  +inf meaning "not eligible".
///
/// The machine pays s_ik once iff it processes at least one job of class k;
/// the load of machine i under assignment σ is
///   Σ_{j: σ(j)=i} p_ij + Σ_{k: some job of class k on i} s_ik.
///
/// Identical / uniformly related / restricted assignment instances are
/// special cases; see UniformInstance and core/generators.h for builders.
class Instance {
 public:
  /// Creates an instance with all processing and setup times zero.
  /// job_class[j] must be < num_classes for every job j.
  Instance(std::size_t num_machines, std::size_t num_classes,
           std::vector<ClassId> job_class);

  [[nodiscard]] std::size_t num_jobs() const noexcept { return job_class_.size(); }
  [[nodiscard]] std::size_t num_machines() const noexcept { return proc_.rows(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return setup_.cols(); }

  [[nodiscard]] double proc(MachineId i, JobId j) const noexcept {
    return proc_(i, j);
  }
  [[nodiscard]] double setup(MachineId i, ClassId k) const noexcept {
    return setup_(i, k);
  }
  void set_proc(MachineId i, JobId j, double value) { proc_.at(i, j) = value; }
  void set_setup(MachineId i, ClassId k, double value) { setup_.at(i, k) = value; }

  [[nodiscard]] ClassId job_class(JobId j) const noexcept { return job_class_[j]; }
  [[nodiscard]] std::span<const ClassId> job_classes() const noexcept {
    return job_class_;
  }

  /// Setup time machine i pays if it processes job j (= setup for j's class).
  [[nodiscard]] double setup_for_job(MachineId i, JobId j) const noexcept {
    return setup_(i, job_class_[j]);
  }

  /// Job j may run on machine i (both its processing and setup are finite).
  [[nodiscard]] bool eligible(MachineId i, JobId j) const noexcept {
    return proc_(i, j) < kInfinity && setup_for_job(i, j) < kInfinity;
  }

  /// Job lists grouped by class (computed on demand).
  [[nodiscard]] std::vector<std::vector<JobId>> jobs_by_class() const;

  /// Throws CheckError if the instance is structurally malformed
  /// (negative times, class ids out of range, or a job with no eligible
  /// machine).
  void validate() const;

  [[nodiscard]] bool operator==(const Instance&) const = default;

 private:
  std::vector<ClassId> job_class_;
  Matrix<double> proc_;   // m x n
  Matrix<double> setup_;  // m x K
};

/// Uniformly related machines: job sizes p_j, setup sizes s_k, and machine
/// speeds v_i, with p_ij = p_j / v_i and s_ik = s_k / v_i.
struct UniformInstance {
  std::vector<double> job_size;    ///< p_j, size n
  std::vector<ClassId> job_class;  ///< k_j, size n
  std::vector<double> setup_size;  ///< s_k, size K
  std::vector<double> speed;       ///< v_i, size m

  [[nodiscard]] std::size_t num_jobs() const noexcept { return job_size.size(); }
  [[nodiscard]] std::size_t num_machines() const noexcept { return speed.size(); }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return setup_size.size();
  }

  /// Materializes the unrelated-machines matrix form.
  [[nodiscard]] Instance to_unrelated() const;

  /// Job lists grouped by class.
  [[nodiscard]] std::vector<std::vector<JobId>> jobs_by_class() const;

  /// Throws CheckError if malformed (sizes mismatch, non-positive speeds,
  /// negative sizes, class ids out of range).
  void validate() const;

  [[nodiscard]] bool operator==(const UniformInstance&) const = default;
};

/// True iff all jobs of every class have identical rows in the processing
/// matrix restricted to {p, ∞} with a class-wise common finite value and a
/// class-wise common eligible machine set, and s_ik ∈ {s_k, ∞} on that set —
/// i.e. the "restricted assignment with class-uniform restrictions" case of
/// Theorem 3.10.
[[nodiscard]] bool is_restricted_class_uniform(const Instance& instance);

/// True iff for every machine i all jobs of a class k share one processing
/// time p_ik (the "class-uniform processing times" case of Theorem 3.11).
[[nodiscard]] bool is_class_uniform_processing(const Instance& instance);

}  // namespace setsched
