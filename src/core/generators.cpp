#include "core/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/prng.h"

namespace setsched {

namespace {

double draw(Xoshiro256& rng, double lo, double hi, bool integral) {
  double v = rng.next_real(lo, hi);
  if (integral) v = std::max(1.0, std::round(v));
  return v;
}

std::vector<double> make_speeds(const UniformGenParams& params,
                                Xoshiro256& rng) {
  const std::size_t m = params.num_machines;
  std::vector<double> speed(m, 1.0);
  switch (params.profile) {
    case SpeedProfile::kIdentical:
      break;
    case SpeedProfile::kUniformRandom:
      for (auto& v : speed) v = rng.next_real(1.0, params.max_speed_ratio);
      break;
    case SpeedProfile::kGeometric: {
      if (m > 1) {
        const double r =
            std::pow(params.max_speed_ratio, 1.0 / static_cast<double>(m - 1));
        double v = 1.0;
        for (std::size_t i = 0; i < m; ++i, v *= r) speed[i] = v;
      }
      break;
    }
    case SpeedProfile::kTwoTier:
      for (std::size_t i = m / 2; i < m; ++i) speed[i] = params.max_speed_ratio;
      break;
  }
  return speed;
}

}  // namespace

UniformInstance generate_uniform(const UniformGenParams& params,
                                 std::uint64_t seed) {
  check(params.num_jobs > 0 && params.num_machines > 0 && params.num_classes > 0,
        "generator requires positive dimensions");
  Xoshiro256 rng(seed);
  UniformInstance inst;
  inst.speed = make_speeds(params, rng);
  inst.setup_size.resize(params.num_classes);
  for (auto& s : inst.setup_size) {
    s = draw(rng, params.min_setup, params.max_setup, params.integral);
  }
  inst.job_size.resize(params.num_jobs);
  inst.job_class.resize(params.num_jobs);
  for (JobId j = 0; j < params.num_jobs; ++j) {
    inst.job_size[j] =
        draw(rng, params.min_job_size, params.max_job_size, params.integral);
    inst.job_class[j] =
        static_cast<ClassId>(rng.next_below(params.num_classes));
  }
  inst.validate();
  return inst;
}

Instance generate_unrelated(const UnrelatedGenParams& params,
                            std::uint64_t seed) {
  check(params.num_jobs > 0 && params.num_machines > 0 && params.num_classes > 0,
        "generator requires positive dimensions");
  check(params.eligibility > 0.0 && params.eligibility <= 1.0,
        "eligibility must be in (0,1]");
  Xoshiro256 rng(seed);

  std::vector<ClassId> job_class(params.num_jobs);
  for (auto& k : job_class) {
    k = static_cast<ClassId>(rng.next_below(params.num_classes));
  }
  Instance inst(params.num_machines, params.num_classes, std::move(job_class));

  std::vector<double> base(params.num_jobs);
  std::vector<double> factor(params.num_machines, 1.0);
  if (params.correlated) {
    for (auto& b : base) b = rng.next_real(params.min_proc, params.max_proc);
    for (auto& f : factor) f = rng.next_real(0.5, 2.0);
  }

  for (JobId j = 0; j < params.num_jobs; ++j) {
    // Guarantee eligibility on one uniformly chosen machine.
    const auto forced =
        static_cast<MachineId>(rng.next_below(params.num_machines));
    for (MachineId i = 0; i < params.num_machines; ++i) {
      const bool keep = i == forced || rng.next_bernoulli(params.eligibility);
      if (!keep) {
        inst.set_proc(i, j, kInfinity);
        continue;
      }
      double p;
      if (params.correlated) {
        p = base[j] * factor[i] * rng.next_real(0.8, 1.25);
        p = std::clamp(p, params.min_proc, params.max_proc * 4.0);
        if (params.integral) p = std::max(1.0, std::round(p));
      } else {
        p = draw(rng, params.min_proc, params.max_proc, params.integral);
      }
      inst.set_proc(i, j, p);
    }
  }
  for (MachineId i = 0; i < params.num_machines; ++i) {
    for (ClassId k = 0; k < params.num_classes; ++k) {
      inst.set_setup(i, k,
                     draw(rng, params.min_setup, params.max_setup,
                          params.integral));
    }
  }
  inst.validate();
  return inst;
}

PlantedUnrelated generate_planted_unrelated(const PlantedGenParams& params,
                                            std::uint64_t seed) {
  check(params.num_jobs >= params.num_machines,
        "planted generator needs num_jobs >= num_machines");
  check(params.num_classes >= 1, "need at least one class");
  check(params.offplan_factor >= 1.0, "offplan_factor must be >= 1");
  Xoshiro256 rng(seed);

  const std::size_t n = params.num_jobs;
  const std::size_t m = params.num_machines;
  const std::size_t kc = params.num_classes;

  // Classes are clustered: class k's home machine is k % m. A job on home
  // machine i draws its class among classes homed at i, so the planted
  // schedule pays few setups per machine.
  std::vector<std::vector<ClassId>> classes_of_machine(m);
  for (ClassId k = 0; k < kc; ++k) {
    classes_of_machine[k % m].push_back(k);
  }
  // Machines with no homed class (m > K) borrow class 0.
  for (auto& list : classes_of_machine) {
    if (list.empty()) list.push_back(0);
  }

  std::vector<ClassId> job_class(n);
  Schedule planted = Schedule::empty(n);
  for (JobId j = 0; j < n; ++j) {
    const auto home = static_cast<MachineId>(j % m);
    planted.assignment[j] = home;
    const auto& options = classes_of_machine[home];
    job_class[j] = options[rng.next_below(options.size())];
  }

  Instance inst(m, kc, job_class);

  // Per-machine processing budget: split target_load across its jobs.
  const double jobs_per_machine = static_cast<double>(n) / static_cast<double>(m);
  const double mean_size = params.target_load / jobs_per_machine;
  for (JobId j = 0; j < n; ++j) {
    const MachineId home = planted.assignment[j];
    double p = rng.next_real(0.5 * mean_size, 1.5 * mean_size);
    if (params.integral) p = std::max(1.0, std::round(p));
    inst.set_proc(home, j, p);
    for (MachineId i = 0; i < m; ++i) {
      if (i == home) continue;
      double q = p * rng.next_real(1.0, params.offplan_factor);
      if (params.integral) q = std::max(1.0, std::round(q));
      inst.set_proc(i, j, q);
    }
  }
  const double max_setup =
      std::max(1.0, params.setup_fraction * params.target_load);
  for (MachineId i = 0; i < m; ++i) {
    for (ClassId k = 0; k < kc; ++k) {
      double s = rng.next_real(1.0, max_setup);
      if (params.integral) s = std::max(1.0, std::round(s));
      inst.set_setup(i, k, s);
    }
  }
  inst.validate();

  PlantedUnrelated out{std::move(inst), std::move(planted), 0.0};
  out.planted_makespan = makespan(out.instance, out.planted);
  return out;
}

Instance generate_restricted_class_uniform(const RestrictedGenParams& params,
                                           std::uint64_t seed) {
  check(params.num_jobs > 0 && params.num_machines > 0 && params.num_classes > 0,
        "generator requires positive dimensions");
  Xoshiro256 rng(seed);
  const std::size_t m = params.num_machines;
  const std::size_t max_elig =
      params.max_eligible == 0 ? m : std::min(params.max_eligible, m);
  const std::size_t min_elig = std::min(std::max<std::size_t>(1, params.min_eligible), max_elig);

  std::vector<ClassId> job_class(params.num_jobs);
  for (auto& k : job_class) {
    k = static_cast<ClassId>(rng.next_below(params.num_classes));
  }
  Instance inst(m, params.num_classes, std::move(job_class));

  // Per class: eligible machine set M_k and machine-independent setup s_k.
  std::vector<std::vector<char>> eligible(params.num_classes,
                                          std::vector<char>(m, 0));
  for (ClassId k = 0; k < params.num_classes; ++k) {
    const std::size_t count =
        static_cast<std::size_t>(rng.next_int(
            static_cast<std::int64_t>(min_elig), static_cast<std::int64_t>(max_elig)));
    auto perm = random_permutation<MachineId>(m, rng);
    for (std::size_t t = 0; t < count; ++t) eligible[k][perm[t]] = 1;
    const double s = draw(rng, params.min_setup, params.max_setup, params.integral);
    for (MachineId i = 0; i < m; ++i) {
      inst.set_setup(i, k, eligible[k][i] ? s : kInfinity);
    }
  }
  for (JobId j = 0; j < params.num_jobs; ++j) {
    const ClassId k = inst.job_class(j);
    const double p =
        draw(rng, params.min_job_size, params.max_job_size, params.integral);
    for (MachineId i = 0; i < m; ++i) {
      inst.set_proc(i, j, eligible[k][i] ? p : kInfinity);
    }
  }
  inst.validate();
  return inst;
}

Instance generate_class_uniform_processing(const ClassUniformGenParams& params,
                                           std::uint64_t seed) {
  check(params.num_jobs > 0 && params.num_machines > 0 && params.num_classes > 0,
        "generator requires positive dimensions");
  Xoshiro256 rng(seed);
  std::vector<ClassId> job_class(params.num_jobs);
  for (auto& k : job_class) {
    k = static_cast<ClassId>(rng.next_below(params.num_classes));
  }
  Instance inst(params.num_machines, params.num_classes, std::move(job_class));

  Matrix<double> class_proc(params.num_machines, params.num_classes);
  for (MachineId i = 0; i < params.num_machines; ++i) {
    for (ClassId k = 0; k < params.num_classes; ++k) {
      class_proc(i, k) = draw(rng, params.min_proc, params.max_proc, params.integral);
      inst.set_setup(i, k,
                     draw(rng, params.min_setup, params.max_setup,
                          params.integral));
    }
  }
  for (JobId j = 0; j < params.num_jobs; ++j) {
    for (MachineId i = 0; i < params.num_machines; ++i) {
      inst.set_proc(i, j, class_proc(i, inst.job_class(j)));
    }
  }
  inst.validate();
  return inst;
}

}  // namespace setsched
