#pragma once

#include <cstddef>

#include "core/schedule.h"
#include "obs/phase.h"

namespace setsched {

/// Solver-level effort counters and certificates, reported alongside a
/// schedule so perf work can compare algorithms by what they did (LP solves,
/// simplex iterations, search nodes) and quality tables can distinguish
/// proven optima from budget-exhausted incumbents. Effort fields are zero
/// for solvers without the corresponding machinery.
struct SolverStats {
  std::size_t lp_solves = 0;
  std::size_t lp_iterations = 0;
  /// LP solves the dual simplex re-optimized (warm bases turned
  /// primal-infeasible by a re-parameterization, or explicit kDual runs);
  /// the complement of lp_solves went through the primal path.
  std::size_t lp_dual_solves = 0;
  /// Search-tree nodes expanded (exact branch-and-bound / dive solvers).
  std::size_t nodes = 0;
  /// LP relaxation probes spent on search-tree bounding.
  std::size_t lp_bounds_used = 0;
  /// Job-machine variables excluded by reduced-cost fixing at search nodes
  /// (exact solvers with LP bounds; 0 elsewhere).
  std::size_t fixed_vars = 0;
  /// LP guard (lp/guard.h): post-solve residual audits that contested a
  /// solve (verdict suspect or failed). 0 when the guard is off.
  std::size_t lp_audits_suspect = 0;
  /// LP guard: contested solves recovered by the escalation ladder's
  /// refactorize-warm / cold re-solve rungs.
  std::size_t lp_recoveries = 0;
  /// LP guard: contested solves escalated all the way to the dense tableau
  /// oracle (the ladder's last rung).
  std::size_t lp_oracle_fallbacks = 0;
  /// Branch-and-price (exact/config_bound.h; 0 for every other solver):
  /// configuration columns priced into the restricted master across the
  /// whole search.
  std::size_t cg_columns = 0;
  /// Branch-and-price: pricing rounds across all configuration-LP probes
  /// (each runs one RMP solve plus one all-machines knapsack pass).
  std::size_t cg_pricing_rounds = 0;
  /// Branch-and-price: config-LP probes demoted to the assignment bound —
  /// contested RMP solves, pricing stalls, and kAuto's permanent demotion.
  std::size_t cg_fallbacks = 0;
  /// True only when the solver certified its schedule optimal. A search
  /// solver that ran out of budget MUST leave this false — consumers treat
  /// proven results as ground truth.
  bool proven_optimal = false;
  /// Certified relative optimality gap, >= 0 (0 iff proven_optimal).
  /// Negative means the solver issues no certificate (heuristics).
  double gap = -1.0;
  /// Per-phase wall-time breakdown (src/obs phase accounting), captured at
  /// the measurement boundary (harness / CLI) as the thread-local delta
  /// around solve(). All zeros when phase timing is off.
  obs::PhaseTimes phase_ms;

  [[nodiscard]] bool operator==(const SolverStats&) const = default;
};

/// Common return type of scheduling algorithms: a complete schedule plus its
/// (already evaluated) makespan.
struct ScheduleResult {
  Schedule schedule;
  double makespan = 0.0;
  SolverStats stats;
};

}  // namespace setsched
