#pragma once

#include <cstddef>

#include "core/schedule.h"

namespace setsched {

/// Solver-level effort counters, reported alongside a schedule so perf work
/// can compare algorithms by what they did (LP solves, simplex iterations),
/// not just by wall clock. Zero for solvers without an LP substrate.
struct SolverStats {
  std::size_t lp_solves = 0;
  std::size_t lp_iterations = 0;

  [[nodiscard]] bool operator==(const SolverStats&) const = default;
};

/// Common return type of scheduling algorithms: a complete schedule plus its
/// (already evaluated) makespan.
struct ScheduleResult {
  Schedule schedule;
  double makespan = 0.0;
  SolverStats stats;
};

}  // namespace setsched
