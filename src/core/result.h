#pragma once

#include "core/schedule.h"

namespace setsched {

/// Common return type of scheduling algorithms: a complete schedule plus its
/// (already evaluated) makespan.
struct ScheduleResult {
  Schedule schedule;
  double makespan = 0.0;
};

}  // namespace setsched
