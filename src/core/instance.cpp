#include "core/instance.h"

#include <cmath>

#include "common/check.h"

namespace setsched {

Instance::Instance(std::size_t num_machines, std::size_t num_classes,
                   std::vector<ClassId> job_class)
    : job_class_(std::move(job_class)),
      proc_(num_machines, job_class_.size(), 0.0),
      setup_(num_machines, num_classes, 0.0) {
  check(num_machines > 0, "Instance requires at least one machine");
  check(num_classes > 0, "Instance requires at least one class");
  for (const ClassId k : job_class_) {
    check(k < num_classes, "job class id out of range");
  }
}

std::vector<std::vector<JobId>> Instance::jobs_by_class() const {
  std::vector<std::vector<JobId>> groups(num_classes());
  for (JobId j = 0; j < num_jobs(); ++j) {
    groups[job_class_[j]].push_back(j);
  }
  return groups;
}

void Instance::validate() const {
  for (MachineId i = 0; i < num_machines(); ++i) {
    for (JobId j = 0; j < num_jobs(); ++j) {
      const double p = proc_(i, j);
      check(p >= 0.0 && !std::isnan(p), "processing time must be >= 0");
    }
    for (ClassId k = 0; k < num_classes(); ++k) {
      const double s = setup_(i, k);
      check(s >= 0.0 && !std::isnan(s), "setup time must be >= 0");
    }
  }
  for (JobId j = 0; j < num_jobs(); ++j) {
    bool any = false;
    for (MachineId i = 0; i < num_machines() && !any; ++i) any = eligible(i, j);
    check(any, "job has no eligible machine");
  }
}

Instance UniformInstance::to_unrelated() const {
  validate();
  Instance out(num_machines(), num_classes(), job_class);
  for (MachineId i = 0; i < num_machines(); ++i) {
    for (JobId j = 0; j < num_jobs(); ++j) {
      out.set_proc(i, j, job_size[j] / speed[i]);
    }
    for (ClassId k = 0; k < num_classes(); ++k) {
      out.set_setup(i, k, setup_size[k] / speed[i]);
    }
  }
  return out;
}

std::vector<std::vector<JobId>> UniformInstance::jobs_by_class() const {
  std::vector<std::vector<JobId>> groups(num_classes());
  for (JobId j = 0; j < num_jobs(); ++j) {
    groups[job_class[j]].push_back(j);
  }
  return groups;
}

void UniformInstance::validate() const {
  check(!speed.empty(), "UniformInstance requires at least one machine");
  check(!setup_size.empty(), "UniformInstance requires at least one class");
  check(job_size.size() == job_class.size(),
        "job_size / job_class size mismatch");
  for (const double v : speed) {
    check(v > 0.0 && v < kInfinity, "machine speed must be positive finite");
  }
  for (const double p : job_size) {
    check(p >= 0.0 && p < kInfinity, "job size must be >= 0 finite");
  }
  for (const double s : setup_size) {
    check(s >= 0.0 && s < kInfinity, "setup size must be >= 0 finite");
  }
  for (const ClassId k : job_class) {
    check(k < setup_size.size(), "job class id out of range");
  }
}

bool is_restricted_class_uniform(const Instance& instance) {
  const auto groups = instance.jobs_by_class();
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    const auto& jobs = groups[k];
    if (jobs.empty()) continue;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      const bool machine_eligible = instance.setup(i, k) < kInfinity &&
                                    instance.proc(i, jobs.front()) < kInfinity;
      const double p0 = instance.proc(i, jobs.front());
      for (const JobId j : jobs) {
        const double p = instance.proc(i, j);
        if (machine_eligible) {
          if (!(p < kInfinity)) return false;
        } else {
          if (p < kInfinity && instance.setup(i, k) < kInfinity) return false;
        }
      }
      // Restricted assignment additionally demands machine-independent
      // processing times on eligible machines; verified across machines below
      // via the first job only (per-job check would be identical rows).
      (void)p0;
    }
    // All eligible machines must agree on each job's processing time.
    for (const JobId j : jobs) {
      double common = -1.0;
      for (MachineId i = 0; i < instance.num_machines(); ++i) {
        const double p = instance.proc(i, j);
        if (p < kInfinity && instance.setup(i, k) < kInfinity) {
          if (common < 0.0) {
            common = p;
          } else if (p != common) {
            return false;
          }
        }
      }
    }
    // And on the setup time.
    double common_setup = -1.0;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      const double s = instance.setup(i, k);
      if (s < kInfinity) {
        if (common_setup < 0.0) {
          common_setup = s;
        } else if (s != common_setup) {
          return false;
        }
      }
    }
  }
  return true;
}

bool is_class_uniform_processing(const Instance& instance) {
  const auto groups = instance.jobs_by_class();
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    const auto& jobs = groups[k];
    if (jobs.empty()) continue;
    for (MachineId i = 0; i < instance.num_machines(); ++i) {
      const double p0 = instance.proc(i, jobs.front());
      for (const JobId j : jobs) {
        if (instance.proc(i, j) != p0) return false;
      }
    }
  }
  return true;
}

}  // namespace setsched
