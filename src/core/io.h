#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.h"

namespace setsched {

/// Plain-text serialization. Format (whitespace separated, "inf" allowed):
///
///   setsched unrelated 1
///   <m> <n> <K>
///   <job_class: n ids>
///   <proc: m rows of n values>
///   <setup: m rows of K values>
///
///   setsched uniform 1
///   <m> <n> <K>
///   <job_class: n ids>
///   <job_size: n values>
///   <setup_size: K values>
///   <speed: m values>
void save_instance(std::ostream& os, const Instance& instance);
[[nodiscard]] Instance load_instance(std::istream& is);

void save_uniform(std::ostream& os, const UniformInstance& instance);
[[nodiscard]] UniformInstance load_uniform(std::istream& is);

/// Compact human-readable rendering (intended for small instances/examples).
[[nodiscard]] std::string describe(const Instance& instance);

}  // namespace setsched
