#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"

namespace setsched {

/// Machine speed profiles for uniformly related instances.
enum class SpeedProfile {
  kIdentical,      ///< all speeds 1
  kUniformRandom,  ///< v_i uniform in [1, max_speed_ratio]
  kGeometric,      ///< v_i = r^i with r chosen to span max_speed_ratio
  kTwoTier,        ///< half slow (1), half fast (max_speed_ratio)
};

struct UniformGenParams {
  std::size_t num_jobs = 20;
  std::size_t num_machines = 4;
  std::size_t num_classes = 4;
  double min_job_size = 1.0;
  double max_job_size = 100.0;
  double min_setup = 1.0;
  double max_setup = 50.0;
  SpeedProfile profile = SpeedProfile::kUniformRandom;
  double max_speed_ratio = 8.0;
  bool integral = true;  ///< round sizes to integers (paper: p, s ∈ N)
};

/// Random uniformly-related instance; classes assigned uniformly to jobs.
[[nodiscard]] UniformInstance generate_uniform(const UniformGenParams& params,
                                               std::uint64_t seed);

struct UnrelatedGenParams {
  std::size_t num_jobs = 20;
  std::size_t num_machines = 4;
  std::size_t num_classes = 4;
  double min_proc = 1.0;
  double max_proc = 100.0;
  double min_setup = 1.0;
  double max_setup = 50.0;
  /// Probability that a (machine, job) pair is eligible; each job is
  /// guaranteed at least one eligible machine.
  double eligibility = 1.0;
  /// If true, p_ij = base_j * factor_i * noise (machine-correlated times);
  /// otherwise fully independent uniform entries.
  bool correlated = false;
  bool integral = true;
};

/// Random unrelated instance.
[[nodiscard]] Instance generate_unrelated(const UnrelatedGenParams& params,
                                          std::uint64_t seed);

struct PlantedGenParams {
  std::size_t num_jobs = 40;
  std::size_t num_machines = 4;
  std::size_t num_classes = 8;
  /// Approximate per-machine processing load of the planted schedule.
  double target_load = 100.0;
  /// Off-plan processing times are the planted job size scaled by a factor
  /// uniform in [1, offplan_factor] on other machines.
  double offplan_factor = 3.0;
  /// Setup sizes drawn from [1, setup_fraction * target_load].
  double setup_fraction = 0.3;
  bool integral = true;
};

/// An instance together with the schedule it was planted around.
/// planted_makespan is an upper bound on OPT (the planted schedule is
/// feasible), so measured_ratio >= alg_makespan / planted_makespan.
struct PlantedUnrelated {
  Instance instance;
  Schedule planted;
  double planted_makespan = 0.0;
};

/// Builds an instance by first fixing a schedule (jobs and classes clustered
/// onto home machines) and then pricing off-plan entries higher. Gives large
/// instances with a known-good makespan to normalize against.
[[nodiscard]] PlantedUnrelated generate_planted_unrelated(
    const PlantedGenParams& params, std::uint64_t seed);

struct RestrictedGenParams {
  std::size_t num_jobs = 24;
  std::size_t num_machines = 6;
  std::size_t num_classes = 6;
  double min_job_size = 1.0;
  double max_job_size = 50.0;
  double min_setup = 1.0;
  double max_setup = 30.0;
  std::size_t min_eligible = 1;  ///< minimum |M_k|
  std::size_t max_eligible = 0;  ///< maximum |M_k|; 0 means all machines
  bool integral = true;
};

/// Restricted assignment with class-uniform restrictions (Theorem 3.10):
/// every class k has one eligible machine set M_k shared by its jobs,
/// machine-independent job sizes and setup size.
[[nodiscard]] Instance generate_restricted_class_uniform(
    const RestrictedGenParams& params, std::uint64_t seed);

struct ClassUniformGenParams {
  std::size_t num_jobs = 24;
  std::size_t num_machines = 6;
  std::size_t num_classes = 6;
  double min_proc = 1.0;
  double max_proc = 50.0;
  double min_setup = 1.0;
  double max_setup = 30.0;
  bool integral = true;
};

/// Unrelated machines with class-uniform processing times (Theorem 3.11):
/// p_ij depends only on (i, class of j); setups fully machine-dependent.
[[nodiscard]] Instance generate_class_uniform_processing(
    const ClassUniformGenParams& params, std::uint64_t seed);

}  // namespace setsched
