#pragma once

#include "core/instance.h"
#include "core/schedule.h"

namespace setsched {

/// Lower bound on the optimal makespan for uniformly related machines:
///   max( (Σ_j p_j + Σ_{k : J_k ≠ ∅} s_k) / Σ_i v_i ,
///        max_j (p_j + s_{k_j}) / v_max ).
/// Every non-empty class pays at least one setup somewhere; every job pays
/// its own setup at least once on some machine.
[[nodiscard]] double uniform_lower_bound(const UniformInstance& instance);

/// Lower bound on the optimal makespan for unrelated machines:
///   max_j min_{i eligible} (p_ij + s_i,k_j).
[[nodiscard]] double unrelated_lower_bound(const Instance& instance);

/// The "best machine per job" schedule (argmin p_ij + s_i,k_j); always
/// feasible, so its makespan is an upper bound on OPT. Used to bootstrap
/// binary searches.
[[nodiscard]] Schedule best_machine_schedule(const Instance& instance);

/// Convenience: makespan of best_machine_schedule.
[[nodiscard]] double unrelated_upper_bound(const Instance& instance);

}  // namespace setsched
