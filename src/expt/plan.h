#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lp/simplex.h"

namespace setsched::expt {

/// Declarative description of a sweep: the cross product
///   presets × [seed_begin, seed_end] × solvers
/// plus the solver-context knobs shared by every cell. Cells are indexed in
/// that nesting order (preset outermost, solver innermost), which fixes the
/// output order of the harness independently of thread count.
struct ExperimentPlan {
  std::vector<std::string> presets;
  std::vector<std::string> solvers;
  std::uint64_t seed_begin = 1;
  std::uint64_t seed_end = 1;  ///< inclusive

  // Context knobs echoed into every RunRecord (defaults mirror SolverContext).
  double epsilon = 0.5;
  double precision = 0.05;
  double time_limit_s = 10.0;
  /// Simplex implementation the LP-based solvers run (plan key `lp`,
  /// auto/tableau/revised/dual). `tableau` reproduces pre-warm-start
  /// behavior for before/after sweeps.
  lp::SimplexAlgorithm lp_algorithm = lp::SimplexAlgorithm::kAuto;
  /// Primal pricing rule of the revised solver (plan key `lp_pricing`,
  /// candidate/devex).
  lp::SimplexPricing lp_pricing = lp::SimplexPricing::kCandidate;

  /// 0 = shared default_pool(), 1 = sequential, N = private pool of N.
  std::size_t threads = 0;
  /// Off zeroes time_ms in every record, making JSONL output byte-identical
  /// across runs and thread counts.
  bool record_timing = true;
  /// Per-cell hard wall-clock watchdog in seconds (plan key `cell_timeout_s`,
  /// CLI --cell-timeout; 0 = off). Threaded to the solvers as an absolute
  /// deadline (SolverContext::deadline) so search loops abort cooperatively;
  /// a cell whose wall time still exceeds the slot is recorded as
  /// RunStatus::kTimeout and excluded from quality aggregates.
  double cell_timeout_s = 0.0;
  /// Deterministic LP fault-injection spec (plan key `inject`, CLI --inject):
  /// `kind[,kind...]@rate` or `all@rate` with the kinds of lp/fault.h, e.g.
  /// "eta-flip,ftran-nan@0.01". Empty = no injection. Each cell derives its
  /// own injection stream from its cell_seed, so sweeps are reproducible
  /// cell-by-cell regardless of scheduling.
  std::string inject;
  /// Residual-audit cadence for the approximation pipelines' LP chains (plan
  /// key `lp_audit_interval`; 0 = off). Exact bound probes audit always.
  std::size_t lp_audit_interval = 0;

  [[nodiscard]] std::size_t num_seeds() const noexcept {
    return static_cast<std::size_t>(seed_end - seed_begin + 1);
  }
  [[nodiscard]] std::size_t num_points() const noexcept {
    return presets.size() * num_seeds();
  }
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return num_points() * solvers.size();
  }

  /// Throws CheckError unless: presets and solvers are non-empty, every
  /// preset/solver name is known (preset_names() / SolverRegistry), the seed
  /// range is non-empty, and the knobs are positive.
  void validate() const;
};

/// (preset, seed, solver) key of one cell; `point` indexes the instance grid
/// (preset × seed), which the harness materializes once per point.
struct CellKey {
  std::size_t preset = 0;  ///< index into plan.presets
  std::uint64_t seed = 0;
  std::size_t solver = 0;  ///< index into plan.solvers
  std::size_t point = 0;
};

/// Maps a flat cell index (row-major preset, seed, solver) to its key.
[[nodiscard]] CellKey cell_key(const ExperimentPlan& plan, std::size_t cell);

/// Derives the per-cell solver seed by chained SplitMix64 over FNV-1a hashes
/// of the names and the instance seed. Depends only on the cell key (never on
/// execution order or thread count) and decorrelates neighbouring cells, so
/// randomized solvers see independent streams per (preset, seed, solver).
[[nodiscard]] std::uint64_t cell_seed(std::string_view preset,
                                      std::uint64_t seed,
                                      std::string_view solver);

/// Parses a plan file: `key = value` lines, '#' comments, commas separating
/// list items. Keys: presets, solvers ("all" expands to the full registry),
/// seeds (`N` means 1..N, `A..B` is inclusive), epsilon, precision,
/// time_limit_s, cell_timeout_s, lp (auto/tableau/revised/dual), lp_pricing
/// (candidate/devex), threads, timing (on/off), inject (fault spec),
/// lp_audit_interval.
/// Throws CheckError on unknown keys or malformed values; the result is
/// validate()d.
[[nodiscard]] ExperimentPlan parse_plan(std::istream& is);
[[nodiscard]] ExperimentPlan load_plan(const std::string& path);

/// Parses the `seeds` syntax above into [begin, end]; throws on empty ranges.
void parse_seed_range(std::string_view text, std::uint64_t* begin,
                      std::uint64_t* end);

/// Splits a comma-separated list, trimming whitespace, dropping empty items.
[[nodiscard]] std::vector<std::string> split_list(std::string_view text);

/// "auto" / "tableau" / "revised" / "dual" <-> lp::SimplexAlgorithm; the
/// parser throws CheckError on anything else.
[[nodiscard]] std::string_view lp_algorithm_name(lp::SimplexAlgorithm algorithm);
[[nodiscard]] lp::SimplexAlgorithm lp_algorithm_from_name(
    std::string_view name);

/// "candidate" / "devex" <-> lp::SimplexPricing; the parser throws
/// CheckError on anything else.
[[nodiscard]] std::string_view lp_pricing_name(lp::SimplexPricing pricing);
[[nodiscard]] lp::SimplexPricing lp_pricing_from_name(std::string_view name);

/// Strict whole-token decimal uint64 parse (no sign, no whitespace, no
/// trailing junk — std::stoull would wrap "-1" to 2^64-1); throws CheckError
/// naming `what`. Shared by the plan parser and the CLI flag parsers.
[[nodiscard]] std::uint64_t parse_u64(std::string_view token,
                                      const std::string& what);

}  // namespace setsched::expt
