#include "expt/plan.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>

#include "api/presets.h"
#include "api/registry.h"
#include "common/check.h"
#include "common/prng.h"
#include "lp/fault.h"

namespace setsched::expt {

namespace {

/// FNV-1a 64-bit: a fixed, platform-independent string hash (std::hash makes
/// no cross-implementation guarantee, and cell seeds must be stable).
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_positive_double(std::string_view token, const std::string& what) {
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  check(ec == std::errc{} && end == token.data() + token.size() && value > 0.0,
        "bad " + what + " '" + std::string(token) + "' (want a positive number)");
  return value;
}

}  // namespace

std::uint64_t parse_u64(std::string_view token, const std::string& what) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  check(ec == std::errc{} && end == token.data() + token.size(),
        "bad " + what + " '" + std::string(token) + "'");
  return value;
}

void ExperimentPlan::validate() const {
  check(!presets.empty(), "experiment plan has no presets");
  check(!solvers.empty(), "experiment plan has no solvers");
  check(seed_end >= seed_begin, "experiment plan has an empty seed range");
  const std::vector<std::string> known_presets = preset_names();
  for (const std::string& preset : presets) {
    check(std::find(known_presets.begin(), known_presets.end(), preset) !=
              known_presets.end(),
          "unknown preset '" + preset + "' in experiment plan");
  }
  const SolverRegistry& registry = SolverRegistry::global();
  for (const std::string& solver : solvers) {
    check(registry.contains(solver),
          "unknown solver '" + solver + "' in experiment plan");
  }
  check(epsilon > 0.0, "experiment plan epsilon must be positive");
  check(precision > 0.0, "experiment plan precision must be positive");
  check(time_limit_s > 0.0, "experiment plan time_limit_s must be positive");
  check(cell_timeout_s >= 0.0,
        "experiment plan cell_timeout_s must be non-negative");
  // Surface a malformed injection spec at plan time, not mid-sweep (the
  // per-cell seed is substituted later; 1 is just a validity probe).
  if (!inject.empty()) (void)lp::FaultPlan::parse(inject, 1);
}

CellKey cell_key(const ExperimentPlan& plan, std::size_t cell) {
  const std::size_t per_point = plan.solvers.size();
  const std::size_t per_preset = plan.num_seeds() * per_point;
  CellKey key;
  key.preset = cell / per_preset;
  const std::size_t rest = cell % per_preset;
  key.seed = plan.seed_begin + rest / per_point;
  key.solver = rest % per_point;
  key.point = key.preset * plan.num_seeds() +
              static_cast<std::size_t>(key.seed - plan.seed_begin);
  return key;
}

std::uint64_t cell_seed(std::string_view preset, std::uint64_t seed,
                        std::string_view solver) {
  SplitMix64 a(fnv1a(preset));
  SplitMix64 b(a() ^ seed);
  SplitMix64 c(b() ^ fnv1a(solver));
  return c();
}

std::string_view lp_algorithm_name(lp::SimplexAlgorithm algorithm) {
  switch (algorithm) {
    case lp::SimplexAlgorithm::kAuto: return "auto";
    case lp::SimplexAlgorithm::kTableau: return "tableau";
    case lp::SimplexAlgorithm::kRevised: return "revised";
    case lp::SimplexAlgorithm::kDual: return "dual";
  }
  throw CheckError("unknown SimplexAlgorithm value");
}

lp::SimplexAlgorithm lp_algorithm_from_name(std::string_view name) {
  if (name == "auto") return lp::SimplexAlgorithm::kAuto;
  if (name == "tableau") return lp::SimplexAlgorithm::kTableau;
  if (name == "revised") return lp::SimplexAlgorithm::kRevised;
  if (name == "dual") return lp::SimplexAlgorithm::kDual;
  throw CheckError("unknown lp algorithm '" + std::string(name) +
                   "' (want auto, tableau, revised, or dual)");
}

std::string_view lp_pricing_name(lp::SimplexPricing pricing) {
  switch (pricing) {
    case lp::SimplexPricing::kCandidate: return "candidate";
    case lp::SimplexPricing::kDevex: return "devex";
  }
  throw CheckError("unknown SimplexPricing value");
}

lp::SimplexPricing lp_pricing_from_name(std::string_view name) {
  if (name == "candidate") return lp::SimplexPricing::kCandidate;
  if (name == "devex") return lp::SimplexPricing::kDevex;
  throw CheckError("unknown lp pricing '" + std::string(name) +
                   "' (want candidate or devex)");
}

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? text : text.substr(0, comma));
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return items;
}

void parse_seed_range(std::string_view text, std::uint64_t* begin,
                      std::uint64_t* end) {
  text = trim(text);
  check(!text.empty(), "empty seed range");
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    const std::uint64_t count = parse_u64(text, "seed count");
    check(count >= 1, "seed count must be at least 1");
    *begin = 1;
    *end = count;
    return;
  }
  *begin = parse_u64(trim(text.substr(0, dots)), "seed range start");
  *end = parse_u64(trim(text.substr(dots + 2)), "seed range end");
  check(*end >= *begin, "seed range '" + std::string(text) + "' is empty");
}

ExperimentPlan parse_plan(std::istream& is) {
  ExperimentPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view view = line;
    if (const std::size_t hash = view.find('#');
        hash != std::string_view::npos) {
      view = view.substr(0, hash);
    }
    view = trim(view);
    if (view.empty()) continue;
    const std::size_t eq = view.find('=');
    check(eq != std::string_view::npos,
          "plan line " + std::to_string(line_no) + " is not 'key = value': '" +
              std::string(view) + "'");
    const std::string_view key = trim(view.substr(0, eq));
    const std::string_view value = trim(view.substr(eq + 1));
    if (key == "presets") {
      plan.presets = split_list(value);
    } else if (key == "solvers") {
      plan.solvers = value == "all" ? SolverRegistry::global().names()
                                    : split_list(value);
    } else if (key == "seeds") {
      parse_seed_range(value, &plan.seed_begin, &plan.seed_end);
    } else if (key == "epsilon") {
      plan.epsilon = parse_positive_double(value, "epsilon");
    } else if (key == "precision") {
      plan.precision = parse_positive_double(value, "precision");
    } else if (key == "time_limit_s") {
      plan.time_limit_s = parse_positive_double(value, "time_limit_s");
    } else if (key == "cell_timeout_s") {
      plan.cell_timeout_s = parse_positive_double(value, "cell_timeout_s");
    } else if (key == "inject") {
      plan.inject = std::string(value);
    } else if (key == "lp_audit_interval") {
      plan.lp_audit_interval =
          static_cast<std::size_t>(parse_u64(value, "lp_audit_interval"));
    } else if (key == "lp") {
      plan.lp_algorithm = lp_algorithm_from_name(value);
    } else if (key == "lp_pricing") {
      plan.lp_pricing = lp_pricing_from_name(value);
    } else if (key == "threads") {
      plan.threads = static_cast<std::size_t>(parse_u64(value, "threads"));
    } else if (key == "timing") {
      check(value == "on" || value == "off",
            "plan timing must be 'on' or 'off', got '" + std::string(value) +
                "'");
      plan.record_timing = value == "on";
    } else {
      check(false, "unknown plan key '" + std::string(key) + "' on line " +
                       std::to_string(line_no));
    }
  }
  plan.validate();
  return plan;
}

ExperimentPlan load_plan(const std::string& path) {
  std::ifstream file(path);
  check(file.good(), "cannot open plan file '" + path + "'");
  return parse_plan(file);
}

}  // namespace setsched::expt
