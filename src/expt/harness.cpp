#include "expt/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "api/presets.h"
#include "api/registry.h"
#include "common/annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/bounds.h"
#include "core/schedule.h"
#include "lp/fault.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched::expt {

namespace {

/// One (preset, seed) point of the instance grid: the generated input plus
/// its lower bound, computed once and shared by all solver cells of the row.
struct GridPoint {
  ProblemInput input;
  double lower_bound = 0.0;
};

RunRecord run_cell(const ExperimentPlan& plan, const CellKey& key,
                   const GridPoint& point) {
  const std::string& solver_name = plan.solvers[key.solver];
  const std::string& preset_name = plan.presets[key.preset];

  RunRecord record;
  record.solver = solver_name;
  record.preset = preset_name;
  record.seed = key.seed;
  record.cell_seed = cell_seed(preset_name, key.seed, solver_name);
  record.num_jobs = point.input.instance.num_jobs();
  record.num_machines = point.input.instance.num_machines();
  record.num_classes = point.input.instance.num_classes();
  record.lower_bound = point.lower_bound;
  record.epsilon = plan.epsilon;
  record.precision = plan.precision;
  record.time_limit_s = plan.time_limit_s;

  SolverContext context;
  context.seed = record.cell_seed;
  context.epsilon = plan.epsilon;
  context.precision = plan.precision;
  context.time_limit_s = plan.time_limit_s;
  context.lp_algorithm = plan.lp_algorithm;
  context.lp_pricing = plan.lp_pricing;
  context.lp_audit_interval = plan.lp_audit_interval;
  // Each cell gets its own injection stream keyed on cell_seed, so a sweep
  // corrupts the same solves no matter how cells are scheduled.
  if (!plan.inject.empty()) {
    context.fault_plan = lp::FaultPlan::parse(plan.inject, record.cell_seed);
  }
  if (plan.cell_timeout_s > 0.0) {
    context.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(plan.cell_timeout_s));
  }
  // Cells are the unit of parallelism; solvers must not nest into the pool
  // that is running them (same rule as setsched_cli --all).
  context.pool = nullptr;

  try {
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(solver_name);
    if (!solver->supports(point.input)) {
      record.status = RunStatus::kSkipped;
      return record;
    }
    // One solve span per cell, named by the solver. Constructed only when a
    // trace is live so the name-interning mutex is never touched otherwise.
    std::optional<obs::TraceSpan> span;
    if (obs::trace_enabled()) {
      span.emplace(obs::intern(solver_name), "solve");
      span->set_arg("preset", obs::intern(preset_name));
      span->set_arg("seed", static_cast<double>(key.seed));
    }
    // Phase accounting is thread-local and cells run solvers single-threaded
    // (context.pool == nullptr above), so the delta across solve() is the
    // cell's complete breakdown.
    const obs::PhaseTimes phases_before = obs::phase_snapshot();
    Timer timer;
    const ScheduleResult result = solver->solve(point.input, context);
    if (plan.record_timing) {
      record.time_ms = timer.elapsed_ms();
      record.phase_ms = obs::phase_snapshot() - phases_before;
    }
    if (const auto error =
            schedule_error(point.input.instance, result.schedule)) {
      record.status = RunStatus::kInvalid;
      record.error = "invalid schedule: " + *error;
      return record;
    }
    const double evaluated = makespan(point.input.instance, result.schedule);
    if (std::abs(evaluated - result.makespan) >
        1e-9 * std::max(1.0, evaluated)) {
      record.status = RunStatus::kInvalid;
      record.error = "reported makespan disagrees with schedule";
      return record;
    }
    record.status = RunStatus::kOk;
    record.makespan = result.makespan;
    record.ratio =
        point.lower_bound > 0.0 ? result.makespan / point.lower_bound : 1.0;
    record.setups = total_setups(point.input.instance, result.schedule);
    record.lp_solves = result.stats.lp_solves;
    record.lp_iterations = result.stats.lp_iterations;
    record.lp_dual_solves = result.stats.lp_dual_solves;
    record.fixed_vars = result.stats.fixed_vars;
    record.lp_audits_suspect = result.stats.lp_audits_suspect;
    record.lp_recoveries = result.stats.lp_recoveries;
    record.lp_oracle_fallbacks = result.stats.lp_oracle_fallbacks;
    record.cg_columns = result.stats.cg_columns;
    record.cg_pricing_rounds = result.stats.cg_pricing_rounds;
    record.cg_fallbacks = result.stats.cg_fallbacks;
    record.nodes = result.stats.nodes;
    record.lp_bounds_used = result.stats.lp_bounds_used;
    record.proven_optimal = result.stats.proven_optimal;
    record.gap = result.stats.gap;
    // Watchdog verdict comes last: the schedule above was still validated
    // (a timed-out cell is a budget statement, not a correctness one), but
    // the row must not enter quality aggregates as kOk.
    if (plan.cell_timeout_s > 0.0 &&
        timer.elapsed_seconds() > plan.cell_timeout_s) {
      record.status = RunStatus::kTimeout;
    }
  } catch (const std::exception& e) {
    record.status = RunStatus::kError;
    record.error = e.what();
  }
  return record;
}

}  // namespace

std::vector<RunRecord> run_experiment(const ExperimentPlan& plan,
                                      const ProgressFn& progress) {
  plan.validate();

  // Phase timers ride the timing flag: --no-timing sweeps keep the LP hot
  // loop free of clock reads (and their JSONL byte-identical with a
  // SETSCHED_DISABLE_OBS build, which CI asserts).
  obs::set_timing_enabled(plan.record_timing);

  // Private pool when the plan pins a thread count; the shared default pool
  // otherwise. threads == 1 bypasses pools entirely (exercised by the
  // determinism tests as the sequential reference).
  std::optional<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (plan.threads == 0) {
    pool = &default_pool();
  } else if (plan.threads > 1) {
    pool = &own_pool.emplace(plan.threads);
  }
  const auto for_each = [pool](std::size_t count, auto&& body) {
    if (pool == nullptr) {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } else {
      pool->parallel_for_dynamic(0, count, body);
    }
  };

  // Phase 1: materialize the instance grid, one point per (preset, seed).
  // Generation keys on (preset, seed) only, so the grid is identical no
  // matter how the points are scheduled.
  const std::size_t num_seeds = plan.num_seeds();
  std::vector<std::optional<GridPoint>> points(plan.num_points());
  for_each(points.size(), [&](std::size_t p) {
    const std::string& preset = plan.presets[p / num_seeds];
    const std::uint64_t seed = plan.seed_begin + p % num_seeds;
    GridPoint point{generate_preset(preset, seed), 0.0};
    // Best core/bounds lower bound available for the form: the aggregate
    // load/speed bound dominates the per-job bound on uniform instances.
    point.lower_bound = unrelated_lower_bound(point.input.instance);
    if (point.input.uniform.has_value()) {
      point.lower_bound = std::max(point.lower_bound,
                                   uniform_lower_bound(*point.input.uniform));
    }
    points[p].emplace(std::move(point));
  });

  // Phase 2: run the cells, one stolen at a time, each into its own slot
  // (slot-exclusive writes; the records vector itself needs no guard). The
  // completed-cell tally feeding the progress hook is the one piece of
  // genuinely shared aggregation state, so it is mutex-guarded and
  // compiler-checked (common/annotations.h).
  struct ProgressState {
    Mutex m;
    std::size_t done GUARDED_BY(m) = 0;
  } tally;
  std::vector<RunRecord> records(plan.num_cells());
  for_each(records.size(), [&](std::size_t c) {
    const CellKey key = cell_key(plan, c);
    records[c] = run_cell(plan, key, *points[key.point]);
    if (progress) {
      const MutexLock lock(tally.m);
      progress(++tally.done, records.size());
    }
  });
  return records;
}

}  // namespace setsched::expt
