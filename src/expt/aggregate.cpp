#include "expt/aggregate.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "common/format.h"
#include "common/stats.h"
#include "obs/phase.h"

namespace setsched::expt {

namespace {

struct Bucket {
  std::size_t cells = 0;
  std::size_t ok = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;
  std::size_t timeout = 0;
  std::vector<double> ratios;         // ok cells only
  std::vector<double> times_ms;       // ok cells only
  std::vector<double> lp_solves;       // ok cells only
  std::vector<double> lp_iterations;   // ok cells only
  std::vector<double> lp_dual_solves;  // ok cells only
  std::vector<double> fixed_vars;      // ok cells only
  std::vector<double> lp_pct;          // ok cells with time_ms > 0
  std::vector<double> pricing_pct;     // ok cells with time_ms > 0
  std::size_t proven = 0;             // ok cells certified optimal
  std::vector<double> gaps;           // ok cells with a certificate
  std::vector<double> audits_suspect;    // ok cells only
  std::vector<double> recoveries;        // ok cells only
  std::vector<double> oracle_fallbacks;  // ok cells only
  std::vector<double> cg_columns;         // ok cells only
  std::vector<double> cg_pricing_rounds;  // ok cells only
  std::vector<double> cg_fallbacks;       // ok cells only
};

void write_double(std::ostream& os, double v) {
  write_finite_double(os, v, "bench json summary");
}

void write_string_list(std::ostream& os, std::span<const std::string> items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << items[i] << '"';
  }
  os << ']';
}

}  // namespace

std::vector<AggregateSummary> aggregate(std::span<const RunRecord> records) {
  std::map<std::pair<std::string, std::string>, Bucket> buckets;
  for (const RunRecord& r : records) {
    Bucket& bucket = buckets[{r.solver, r.preset}];
    ++bucket.cells;
    switch (r.status) {
      case RunStatus::kOk:
        ++bucket.ok;
        bucket.ratios.push_back(r.ratio);
        bucket.times_ms.push_back(r.time_ms);
        bucket.lp_solves.push_back(static_cast<double>(r.lp_solves));
        bucket.lp_iterations.push_back(static_cast<double>(r.lp_iterations));
        bucket.lp_dual_solves.push_back(
            static_cast<double>(r.lp_dual_solves));
        bucket.fixed_vars.push_back(static_cast<double>(r.fixed_vars));
        bucket.audits_suspect.push_back(
            static_cast<double>(r.lp_audits_suspect));
        bucket.recoveries.push_back(static_cast<double>(r.lp_recoveries));
        bucket.oracle_fallbacks.push_back(
            static_cast<double>(r.lp_oracle_fallbacks));
        bucket.cg_columns.push_back(static_cast<double>(r.cg_columns));
        bucket.cg_pricing_rounds.push_back(
            static_cast<double>(r.cg_pricing_rounds));
        bucket.cg_fallbacks.push_back(static_cast<double>(r.cg_fallbacks));
        if (r.time_ms > 0.0) {
          bucket.lp_pct.push_back(100.0 * r.phase_ms.lp_ms() / r.time_ms);
          bucket.pricing_pct.push_back(
              100.0 * r.phase_ms[obs::Phase::kLpPricing] / r.time_ms);
        }
        if (r.proven_optimal) ++bucket.proven;
        if (r.gap >= 0.0) bucket.gaps.push_back(r.gap);
        break;
      case RunStatus::kSkipped:
        ++bucket.skipped;
        break;
      case RunStatus::kInvalid:
      case RunStatus::kError:
        ++bucket.failed;
        break;
      case RunStatus::kTimeout:
        // Budget exhaustion, not a defect: counted apart from failed so a
        // watchdog sweep is distinguishable from a broken solver, and its
        // (unfinished) quality numbers stay out of the ok statistics.
        ++bucket.timeout;
        break;
    }
  }

  std::vector<AggregateSummary> summaries;
  summaries.reserve(buckets.size());
  for (auto& [key, bucket] : buckets) {
    AggregateSummary s;
    s.solver = key.first;
    s.preset = key.second;
    s.cells = bucket.cells;
    s.ok = bucket.ok;
    s.skipped = bucket.skipped;
    s.failed = bucket.failed;
    s.timeout = bucket.timeout;
    // mean/max_value are defined (0.0) on the empty all-failed bucket;
    // percentile throws on empty, so it stays behind the ok-count guard.
    s.ratio_mean = mean(bucket.ratios);
    s.ratio_max = max_value(bucket.ratios);
    if (!bucket.times_ms.empty()) {
      s.time_p50_ms = percentile(bucket.times_ms, 0.5);
      s.time_p95_ms = percentile(bucket.times_ms, 0.95);
    }
    s.lp_solves_mean = mean(bucket.lp_solves);
    s.lp_iterations_mean = mean(bucket.lp_iterations);
    s.lp_dual_solves_mean = mean(bucket.lp_dual_solves);
    s.fixed_vars_mean = mean(bucket.fixed_vars);
    s.lp_pct_mean = mean(bucket.lp_pct);
    s.pricing_pct_mean = mean(bucket.pricing_pct);
    s.proven = bucket.proven;
    s.certified = bucket.gaps.size();
    s.gap_mean = mean(bucket.gaps);
    s.lp_audits_suspect_mean = mean(bucket.audits_suspect);
    s.lp_recoveries_mean = mean(bucket.recoveries);
    s.lp_oracle_fallbacks_mean = mean(bucket.oracle_fallbacks);
    s.cg_columns_mean = mean(bucket.cg_columns);
    s.cg_pricing_rounds_mean = mean(bucket.cg_pricing_rounds);
    s.cg_fallbacks_mean = mean(bucket.cg_fallbacks);
    summaries.push_back(std::move(s));
  }
  return summaries;  // std::map iterates keys in (solver, preset) order
}

Table summary_table(std::span<const AggregateSummary> summaries) {
  Table table({"solver", "preset", "cells", "ok", "skipped", "failed",
               "timeout", "proven", "gap_mean", "ratio_mean", "ratio_max",
               "time_p50_ms", "time_p95_ms", "lp_solves", "lp_iters",
               "lp_dual", "fixed", "suspect", "recov", "oracle", "cg_cols",
               "cg_rounds", "cg_fb", "lp%", "pricing%"});
  for (const AggregateSummary& s : summaries) {
    table.row()
        .add(s.solver)
        .add(s.preset)
        .add(s.cells)
        .add(s.ok)
        .add(s.skipped)
        .add(s.failed)
        .add(s.timeout)
        .add(s.proven)
        .add(s.gap_mean, 4)
        .add(s.ratio_mean)
        .add(s.ratio_max)
        .add(s.time_p50_ms, 2)
        .add(s.time_p95_ms, 2)
        .add(s.lp_solves_mean, 1)
        .add(s.lp_iterations_mean, 1)
        .add(s.lp_dual_solves_mean, 1)
        .add(s.fixed_vars_mean, 1)
        .add(s.lp_audits_suspect_mean, 1)
        .add(s.lp_recoveries_mean, 1)
        .add(s.lp_oracle_fallbacks_mean, 1)
        .add(s.cg_columns_mean, 1)
        .add(s.cg_pricing_rounds_mean, 1)
        .add(s.cg_fallbacks_mean, 1)
        .add(s.lp_pct_mean, 1)
        .add(s.pricing_pct_mean, 1);
  }
  return table;
}

void write_bench_json(std::ostream& os, const ExperimentPlan& plan,
                      std::span<const AggregateSummary> summaries) {
  std::size_t cells = 0, ok = 0, skipped = 0, failed = 0, timeout = 0;
  for (const AggregateSummary& s : summaries) {
    cells += s.cells;
    ok += s.ok;
    skipped += s.skipped;
    failed += s.failed;
    timeout += s.timeout;
  }

  os << "{\n  \"bench\": \"expt\",\n  \"schema_version\": 1,\n  \"plan\": {\n"
     << "    \"presets\": ";
  write_string_list(os, plan.presets);
  os << ",\n    \"solvers\": ";
  write_string_list(os, plan.solvers);
  os << ",\n    \"seed_begin\": " << plan.seed_begin
     << ",\n    \"seed_end\": " << plan.seed_end << ",\n    \"epsilon\": ";
  write_double(os, plan.epsilon);
  os << ",\n    \"precision\": ";
  write_double(os, plan.precision);
  os << ",\n    \"time_limit_s\": ";
  write_double(os, plan.time_limit_s);
  os << ",\n    \"cell_timeout_s\": ";
  write_double(os, plan.cell_timeout_s);
  os << ",\n    \"inject\": \"" << plan.inject << '"';
  os << ",\n    \"lp_audit_interval\": " << plan.lp_audit_interval;
  os << ",\n    \"lp\": \"" << lp_algorithm_name(plan.lp_algorithm) << '"';
  os << ",\n    \"lp_pricing\": \"" << lp_pricing_name(plan.lp_pricing)
     << '"';
  os << "\n  },\n  \"cells\": " << cells << ",\n  \"ok\": " << ok
     << ",\n  \"skipped\": " << skipped << ",\n  \"failed\": " << failed
     << ",\n  \"timeout\": " << timeout << ",\n  \"summaries\": [";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const AggregateSummary& s = summaries[i];
    os << (i > 0 ? "," : "") << "\n    {\"solver\": \"" << s.solver
       << "\", \"preset\": \"" << s.preset << "\", \"cells\": " << s.cells
       << ", \"ok\": " << s.ok << ", \"skipped\": " << s.skipped
       << ", \"failed\": " << s.failed << ", \"timeout\": " << s.timeout
       << ", \"proven\": " << s.proven
       << ", \"certified\": " << s.certified << ", \"gap_mean\": ";
    write_double(os, s.gap_mean);
    os << ", \"ratio_mean\": ";
    write_double(os, s.ratio_mean);
    os << ", \"ratio_max\": ";
    write_double(os, s.ratio_max);
    os << ", \"time_p50_ms\": ";
    write_double(os, s.time_p50_ms);
    os << ", \"time_p95_ms\": ";
    write_double(os, s.time_p95_ms);
    os << ", \"lp_solves_mean\": ";
    write_double(os, s.lp_solves_mean);
    os << ", \"lp_iterations_mean\": ";
    write_double(os, s.lp_iterations_mean);
    os << ", \"lp_dual_solves_mean\": ";
    write_double(os, s.lp_dual_solves_mean);
    os << ", \"fixed_vars_mean\": ";
    write_double(os, s.fixed_vars_mean);
    os << ", \"lp_audits_suspect_mean\": ";
    write_double(os, s.lp_audits_suspect_mean);
    os << ", \"lp_recoveries_mean\": ";
    write_double(os, s.lp_recoveries_mean);
    os << ", \"lp_oracle_fallbacks_mean\": ";
    write_double(os, s.lp_oracle_fallbacks_mean);
    os << ", \"cg_columns_mean\": ";
    write_double(os, s.cg_columns_mean);
    os << ", \"cg_pricing_rounds_mean\": ";
    write_double(os, s.cg_pricing_rounds_mean);
    os << ", \"cg_fallbacks_mean\": ";
    write_double(os, s.cg_fallbacks_mean);
    os << ", \"lp_pct_mean\": ";
    write_double(os, s.lp_pct_mean);
    os << ", \"pricing_pct_mean\": ";
    write_double(os, s.pricing_pct_mean);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace setsched::expt
