#include "expt/record_io.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/format.h"
#include "obs/phase.h"

namespace setsched::expt {

namespace {

// --- writing ---------------------------------------------------------------

void write_double(std::ostream& os, double v) {
  write_finite_double(os, v, "record_io RunRecord");
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Nested phase_ms object: non-zero phases only, in enum order, so records
/// from solvers without phase accounting stay compact ("phase_ms":{}).
void write_phase_object(std::ostream& os, const obs::PhaseTimes& phases) {
  os << '{';
  bool first = true;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const double v = phases.ms[i];
    if (v == 0.0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << obs::phase_name(static_cast<obs::Phase>(i)) << "\":";
    write_double(os, v);
  }
  os << '}';
}

// --- reading ---------------------------------------------------------------

/// Cursor over one JSONL line. Only the flat {"key": string-or-number, ...}
/// shape emitted by write_jsonl() is accepted; anything else is a loud
/// CheckError naming the offending line.
struct LineParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw CheckError("record_io: " + why + " in JSONL line '" +
                     std::string(text) + "'");
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto [end, ec] = std::from_chars(
              text.data() + pos, text.data() + pos + 4, code, 16);
          if (ec != std::errc{} || end != text.data() + pos + 4) {
            fail("bad \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          pos += 4;
          break;
        }
        default: fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }
  /// A bare numeric token, terminated by ',' or '}'.
  std::string_view parse_number_token() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ' ' && text[pos] != '\t') {
      ++pos;
    }
    if (pos == start) fail("empty value");
    return text.substr(start, pos - start);
  }
};

double to_double(std::string_view token, const LineParser& p) {
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    p.fail("bad number '" + std::string(token) + "'");
  }
  return value;
}

template <typename Int>
Int to_integer(std::string_view token, const LineParser& p) {
  Int value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    p.fail("bad integer '" + std::string(token) + "'");
  }
  return value;
}

bool to_bool(std::string_view token, const LineParser& p) {
  if (token == "true") return true;
  if (token == "false") return false;
  p.fail("bad boolean '" + std::string(token) + "'");
}

RunRecord parse_record_line(std::string_view line) {
  LineParser p{line};
  RunRecord r;
  // Bitmask of the keys, in write_jsonl() order. Bits 0-24 are the required
  // keys; bit 25 (phase_ms), bits 26-28 (the LP guard counters), and bits
  // 29-31 (the branch-and-price counters) are OPTIONAL on read — lines
  // written before the observability / safety-net / branch-and-price PRs
  // parse with an empty breakdown and zero counters — and their bits only
  // guard against duplicates.
  unsigned seen = 0;
  const auto mark = [&](unsigned bit) {
    if (seen & (1u << bit)) p.fail("duplicate key");
    seen |= 1u << bit;
  };

  p.expect('{');
  bool first = true;
  while (p.peek() != '}') {
    if (!first) p.expect(',');
    first = false;
    const std::string key = p.parse_string();
    p.expect(':');
    if (key == "solver") {
      mark(0), r.solver = p.parse_string();
    } else if (key == "preset") {
      mark(1), r.preset = p.parse_string();
    } else if (key == "seed") {
      mark(2), r.seed = to_integer<std::uint64_t>(p.parse_number_token(), p);
    } else if (key == "cell_seed") {
      mark(3), r.cell_seed = to_integer<std::uint64_t>(p.parse_number_token(), p);
    } else if (key == "n") {
      mark(4), r.num_jobs = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "m") {
      mark(5), r.num_machines = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "classes") {
      mark(6), r.num_classes = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "status") {
      mark(7), r.status = run_status_from_name(p.parse_string());
    } else if (key == "makespan") {
      mark(8), r.makespan = to_double(p.parse_number_token(), p);
    } else if (key == "lower_bound") {
      mark(9), r.lower_bound = to_double(p.parse_number_token(), p);
    } else if (key == "ratio") {
      mark(10), r.ratio = to_double(p.parse_number_token(), p);
    } else if (key == "setups") {
      mark(11), r.setups = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "time_ms") {
      mark(12), r.time_ms = to_double(p.parse_number_token(), p);
    } else if (key == "phase_ms") {
      mark(25);
      p.expect('{');
      if (p.peek() != '}') {
        while (true) {
          const std::string name = p.parse_string();
          p.expect(':');
          obs::Phase phase;
          if (!obs::phase_from_name(name, &phase)) {
            p.fail("unknown phase '" + name + "'");
          }
          r.phase_ms[phase] = to_double(p.parse_number_token(), p);
          if (p.peek() != ',') break;
          p.expect(',');
        }
      }
      p.expect('}');
    } else if (key == "lp_solves") {
      mark(13), r.lp_solves = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_iterations") {
      mark(14),
          r.lp_iterations = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_dual_solves") {
      mark(15),
          r.lp_dual_solves = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "fixed_vars") {
      mark(16),
          r.fixed_vars = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_audits_suspect") {
      mark(26), r.lp_audits_suspect =
                    to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_recoveries") {
      mark(27),
          r.lp_recoveries = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_oracle_fallbacks") {
      mark(28), r.lp_oracle_fallbacks =
                    to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "cg_columns") {
      mark(29),
          r.cg_columns = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "cg_pricing_rounds") {
      mark(30), r.cg_pricing_rounds =
                    to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "cg_fallbacks") {
      mark(31),
          r.cg_fallbacks = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "nodes") {
      mark(17), r.nodes = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "lp_bounds_used") {
      mark(18),
          r.lp_bounds_used = to_integer<std::size_t>(p.parse_number_token(), p);
    } else if (key == "proven_optimal") {
      mark(19), r.proven_optimal = to_bool(p.parse_number_token(), p);
    } else if (key == "gap") {
      mark(20), r.gap = to_double(p.parse_number_token(), p);
    } else if (key == "epsilon") {
      mark(21), r.epsilon = to_double(p.parse_number_token(), p);
    } else if (key == "precision") {
      mark(22), r.precision = to_double(p.parse_number_token(), p);
    } else if (key == "time_limit_s") {
      mark(23), r.time_limit_s = to_double(p.parse_number_token(), p);
    } else if (key == "error") {
      mark(24), r.error = p.parse_string();
    } else {
      p.fail("unknown key '" + key + "'");
    }
  }
  p.expect('}');
  if (!p.at_end()) p.fail("trailing content");
  if ((seen & ((1u << 25) - 1)) != (1u << 25) - 1) p.fail("missing keys");
  return r;
}

// --- CSV -------------------------------------------------------------------

void write_csv_field(std::ostream& os, std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string_view run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kSkipped: return "skipped";
    case RunStatus::kInvalid: return "invalid";
    case RunStatus::kError: return "error";
    case RunStatus::kTimeout: return "timeout";
  }
  throw CheckError("unknown RunStatus value");
}

RunStatus run_status_from_name(std::string_view name) {
  if (name == "ok") return RunStatus::kOk;
  if (name == "skipped") return RunStatus::kSkipped;
  if (name == "invalid") return RunStatus::kInvalid;
  if (name == "error") return RunStatus::kError;
  if (name == "timeout") return RunStatus::kTimeout;
  throw CheckError("unknown run status '" + std::string(name) + "'");
}

void write_jsonl(std::ostream& os, const RunRecord& r) {
  os << "{\"solver\":";
  write_json_string(os, r.solver);
  os << ",\"preset\":";
  write_json_string(os, r.preset);
  os << ",\"seed\":" << r.seed;
  os << ",\"cell_seed\":" << r.cell_seed;
  os << ",\"n\":" << r.num_jobs;
  os << ",\"m\":" << r.num_machines;
  os << ",\"classes\":" << r.num_classes;
  os << ",\"status\":";
  write_json_string(os, run_status_name(r.status));
  os << ",\"makespan\":";
  write_double(os, r.makespan);
  os << ",\"lower_bound\":";
  write_double(os, r.lower_bound);
  os << ",\"ratio\":";
  write_double(os, r.ratio);
  os << ",\"setups\":" << r.setups;
  os << ",\"time_ms\":";
  write_double(os, r.time_ms);
  os << ",\"phase_ms\":";
  write_phase_object(os, r.phase_ms);
  os << ",\"lp_solves\":" << r.lp_solves;
  os << ",\"lp_iterations\":" << r.lp_iterations;
  os << ",\"lp_dual_solves\":" << r.lp_dual_solves;
  os << ",\"fixed_vars\":" << r.fixed_vars;
  os << ",\"lp_audits_suspect\":" << r.lp_audits_suspect;
  os << ",\"lp_recoveries\":" << r.lp_recoveries;
  os << ",\"lp_oracle_fallbacks\":" << r.lp_oracle_fallbacks;
  os << ",\"cg_columns\":" << r.cg_columns;
  os << ",\"cg_pricing_rounds\":" << r.cg_pricing_rounds;
  os << ",\"cg_fallbacks\":" << r.cg_fallbacks;
  os << ",\"nodes\":" << r.nodes;
  os << ",\"lp_bounds_used\":" << r.lp_bounds_used;
  os << ",\"proven_optimal\":" << (r.proven_optimal ? "true" : "false");
  os << ",\"gap\":";
  write_double(os, r.gap);
  os << ",\"epsilon\":";
  write_double(os, r.epsilon);
  os << ",\"precision\":";
  write_double(os, r.precision);
  os << ",\"time_limit_s\":";
  write_double(os, r.time_limit_s);
  os << ",\"error\":";
  write_json_string(os, r.error);
  os << "}\n";
}

void write_jsonl(std::ostream& os, std::span<const RunRecord> records) {
  for (const RunRecord& r : records) write_jsonl(os, r);
}

std::vector<RunRecord> read_jsonl(std::istream& is) {
  std::vector<RunRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view view = line;
    while (!view.empty() && (view.back() == '\r' || view.back() == ' ')) {
      view.remove_suffix(1);
    }
    if (view.empty()) continue;
    records.push_back(parse_record_line(view));
  }
  return records;
}

void write_csv(std::ostream& os, std::span<const RunRecord> records) {
  os << "solver,preset,seed,cell_seed,n,m,classes,status,makespan,"
        "lower_bound,ratio,setups,time_ms,phase_ms,lp_solves,lp_iterations,"
        "lp_dual_solves,fixed_vars,lp_audits_suspect,lp_recoveries,"
        "lp_oracle_fallbacks,cg_columns,cg_pricing_rounds,cg_fallbacks,nodes,"
        "lp_bounds_used,proven_optimal,gap,epsilon,precision,time_limit_s,"
        "error\n";
  for (const RunRecord& r : records) {
    write_csv_field(os, r.solver);
    os << ',';
    write_csv_field(os, r.preset);
    os << ',' << r.seed << ',' << r.cell_seed << ',' << r.num_jobs << ','
       << r.num_machines << ',' << r.num_classes << ','
       << run_status_name(r.status) << ',';
    write_double(os, r.makespan);
    os << ',';
    write_double(os, r.lower_bound);
    os << ',';
    write_double(os, r.ratio);
    os << ',' << r.setups << ',';
    write_double(os, r.time_ms);
    os << ',';
    // Compact semicolon-separated breakdown ("lp_solve:1.5;dive:3") — no
    // commas, so the field never needs CSV quoting.
    {
      std::ostringstream phases;
      bool first = true;
      for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
        const double v = r.phase_ms.ms[i];
        if (v == 0.0) continue;
        if (!first) phases << ';';
        first = false;
        phases << obs::phase_name(static_cast<obs::Phase>(i)) << ':';
        write_double(phases, v);
      }
      write_csv_field(os, phases.str());
    }
    os << ',' << r.lp_solves << ',' << r.lp_iterations << ','
       << r.lp_dual_solves << ',' << r.fixed_vars << ','
       << r.lp_audits_suspect << ',' << r.lp_recoveries << ','
       << r.lp_oracle_fallbacks << ',' << r.cg_columns << ','
       << r.cg_pricing_rounds << ',' << r.cg_fallbacks << ',' << r.nodes
       << ',' << r.lp_bounds_used << ','
       << (r.proven_optimal ? "true" : "false") << ',';
    write_double(os, r.gap);
    os << ',';
    write_double(os, r.epsilon);
    os << ',';
    write_double(os, r.precision);
    os << ',';
    write_double(os, r.time_limit_s);
    os << ',';
    write_csv_field(os, r.error);
    os << '\n';
  }
}

}  // namespace setsched::expt
