#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "expt/plan.h"
#include "expt/record.h"

namespace setsched::expt {

/// Optional live-progress hook for run_experiment: called after every
/// completed cell with (cells_done, cells_total). Calls are serialized under
/// the harness's aggregation mutex — the callback itself needs no locking —
/// but they arrive from whichever pool worker finished the cell, in
/// completion (not cell_key) order.
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

/// Executes every (preset, seed, solver) cell of the plan and returns one
/// RunRecord per cell, in cell_key() order.
///
/// Determinism contract: records depend only on the plan, never on thread
/// count or scheduling order. Instances are generated from (preset, seed)
/// alone — every solver of a cell row sees the same instance — and solver
/// seeds come from cell_seed(). Cells are sharded across the pool with
/// work-stealing granularity of one cell (ThreadPool::parallel_for_dynamic),
/// each writing its own slot of the result vector; the only
/// thread-count-dependent field is time_ms, which plan.record_timing = false
/// zeroes for byte-identical output.
///
/// A solver that throws or returns an invalid schedule is recorded
/// (kError / kInvalid) rather than aborting the sweep; plan validation
/// errors still throw CheckError.
[[nodiscard]] std::vector<RunRecord> run_experiment(
    const ExperimentPlan& plan, const ProgressFn& progress = {});

}  // namespace setsched::expt
