#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/table.h"
#include "expt/plan.h"
#include "expt/record.h"

namespace setsched::expt {

/// Per-(solver, preset) rollup of a sweep. Quality statistics (ratio) and
/// runtime percentiles are computed over the ok cells only; empty buckets
/// (every cell skipped or failed) report zeros.
struct AggregateSummary {
  std::string solver;
  std::string preset;
  std::size_t cells = 0;
  std::size_t ok = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;   ///< kInvalid + kError
  std::size_t timeout = 0;  ///< kTimeout — budget exhausted, not a failure
  double ratio_mean = 0.0;
  double ratio_max = 0.0;
  double time_p50_ms = 0.0;
  double time_p95_ms = 0.0;
  /// Mean solver-level LP effort over the ok cells (0 for LP-free solvers),
  /// so perf PRs can compare simplex work, not just wall clock.
  double lp_solves_mean = 0.0;
  double lp_iterations_mean = 0.0;
  /// Mean dual-simplex re-optimizations and reduced-cost-fixed variables
  /// over the ok cells (the PR 5 LP-substrate effort counters).
  double lp_dual_solves_mean = 0.0;
  double fixed_vars_mean = 0.0;
  /// Mean percent of a cell's wall clock spent in the LP substrate
  /// (phase_ms["lp_solve"] / time_ms) resp. LP pricing passes, over the ok
  /// cells with timing on (time_ms > 0). 0 when timing was off.
  double lp_pct_mean = 0.0;
  double pricing_pct_mean = 0.0;
  /// Ok cells whose schedule the solver certified optimal. Quality tables
  /// may only cite a bucket as ground truth when proven == ok.
  std::size_t proven = 0;
  /// Ok cells carrying a certificate (gap >= 0, exact/dive solvers).
  std::size_t certified = 0;
  /// Mean certified gap over those cells (0 when none are certified).
  double gap_mean = 0.0;
  /// Mean LP guard activity over the ok cells (lp/guard.h counters): audits
  /// contested, recoveries by warm/cold re-solve, and tableau-oracle
  /// escalations. All 0 when the guard is off (the default outside the
  /// exact bounder) or nothing was contested.
  double lp_audits_suspect_mean = 0.0;
  double lp_recoveries_mean = 0.0;
  double lp_oracle_fallbacks_mean = 0.0;
  /// Mean branch-and-price effort over the ok cells (exact/config_bound.h
  /// counters): configuration columns priced, pricing rounds, and probes
  /// demoted to the assignment bound. All 0 outside BoundMode kConfig/kAuto.
  double cg_columns_mean = 0.0;
  double cg_pricing_rounds_mean = 0.0;
  double cg_fallbacks_mean = 0.0;

  [[nodiscard]] bool operator==(const AggregateSummary&) const = default;
};

/// Groups records by (solver, preset) and summarizes each bucket; the result
/// is sorted by (solver, preset).
[[nodiscard]] std::vector<AggregateSummary> aggregate(
    std::span<const RunRecord> records);

/// Renders summaries as a common/table comparison table.
[[nodiscard]] Table summary_table(std::span<const AggregateSummary> summaries);

/// Machine-readable sweep report (the BENCH_expt.json trajectory artifact):
/// the plan, sweep-wide counts, and the per-bucket summaries.
void write_bench_json(std::ostream& os, const ExperimentPlan& plan,
                      std::span<const AggregateSummary> summaries);

}  // namespace setsched::expt
