#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "expt/record.h"

namespace setsched::expt {

/// One JSON object per line, fixed key order, shortest-round-trip doubles
/// (same std::to_chars discipline as core/io.cpp), so equal record sequences
/// serialize to byte-identical streams regardless of platform locale.
void write_jsonl(std::ostream& os, const RunRecord& record);
void write_jsonl(std::ostream& os, std::span<const RunRecord> records);

/// Parses a stream of write_jsonl() lines back into records (key order does
/// not matter; unknown keys are rejected). Blank lines are skipped. Throws
/// CheckError on malformed input, so round trips are exact or loud.
[[nodiscard]] std::vector<RunRecord> read_jsonl(std::istream& is);

/// RFC-4180-style CSV: header row plus one row per record, quoting fields
/// that contain commas, quotes or newlines.
void write_csv(std::ostream& os, std::span<const RunRecord> records);

}  // namespace setsched::expt
