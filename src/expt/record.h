#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/phase.h"

namespace setsched::expt {

/// Outcome of one (instance, solver) cell of a sweep.
enum class RunStatus {
  kOk,       ///< schedule returned, validated, makespan confirmed
  kSkipped,  ///< solver precondition not met for this instance
  kInvalid,  ///< solver returned an infeasible schedule or a wrong makespan
  kError,    ///< solver threw; `error` holds the message
  /// The cell's hard wall-clock deadline (ExperimentPlan::cell_timeout_s)
  /// passed before the solver returned a certified result. The schedule (if
  /// any) was still validated — a timed-out cell is a budget statement, not
  /// a correctness one — but its quality must not enter aggregates.
  kTimeout,
};

[[nodiscard]] std::string_view run_status_name(RunStatus status);

/// Parses a run_status_name() string; throws CheckError on unknown names.
[[nodiscard]] RunStatus run_status_from_name(std::string_view name);

/// One structured result row of an experiment sweep: the cell key
/// (solver, preset, seed), the instance shape, the measured outcome, and an
/// echo of the solver-context knobs so a record is self-describing. Streamed
/// as JSONL/CSV by record_io.h and consumed by aggregate.h. The 32-key
/// field-by-field schema is documented in docs/BENCH_SCHEMA.md.
struct RunRecord {
  std::string solver;
  std::string preset;
  std::uint64_t seed = 0;       ///< instance seed (member of the preset family)
  std::uint64_t cell_seed = 0;  ///< derived solver seed, see cell_seed()

  std::size_t num_jobs = 0;
  std::size_t num_machines = 0;
  std::size_t num_classes = 0;

  RunStatus status = RunStatus::kOk;
  double makespan = 0.0;
  double lower_bound = 0.0;  ///< best core/bounds bound for the instance form
  double ratio = 0.0;        ///< makespan / lower_bound (1.0 when bound is 0)
  std::size_t setups = 0;    ///< total setups paid across machines
  double time_ms = 0.0;      ///< wall time of solve(); 0 when timing is off
  /// Per-phase breakdown of time_ms (src/obs accounting); all zeros when
  /// timing is off. The ONE optional JSONL key: lines written before the
  /// observability PR parse with an empty breakdown.
  obs::PhaseTimes phase_ms;

  // Solver-level effort counters (SolverStats echo; 0 for LP-free solvers),
  // so perf PRs can report simplex work, not just wall clock.
  std::size_t lp_solves = 0;
  std::size_t lp_iterations = 0;
  /// LP solves the dual simplex re-optimized (warm probes after an
  /// rhs/bound mutation; explicit kDual runs). 0 for primal-only solves.
  std::size_t lp_dual_solves = 0;
  /// Job-machine variables excluded by reduced-cost fixing at search nodes
  /// (exact solvers with LP bounds; 0 elsewhere).
  std::size_t fixed_vars = 0;
  // LP guard counters (SolverStats echo; lp/guard.h). OPTIONAL on JSONL
  // read, like phase_ms: lines written before the numerical-safety-net PR
  // parse with zeros.
  std::size_t lp_audits_suspect = 0;  ///< post-solve audits contested
  std::size_t lp_recoveries = 0;      ///< recovered by warm/cold re-solve
  std::size_t lp_oracle_fallbacks = 0;  ///< escalated to the tableau oracle
  // Branch-and-price counters (SolverStats echo; exact/config_bound.h).
  // OPTIONAL on JSONL read, like the guard counters: lines written before
  // the branch-and-price PR parse with zeros.
  std::size_t cg_columns = 0;         ///< configuration columns priced in
  std::size_t cg_pricing_rounds = 0;  ///< RMP solve + pricing passes
  std::size_t cg_fallbacks = 0;       ///< probes demoted to assignment bound

  // Search certificate (SolverStats echo). Every record carries these so
  // quality tables can separate proven optima from budget-exhausted
  // incumbents: proven_optimal is true only for solver-certified optima, and
  // gap is the certified relative gap (>= 0) or -1 when the solver issues no
  // certificate (heuristics).
  std::size_t nodes = 0;
  std::size_t lp_bounds_used = 0;
  bool proven_optimal = false;
  double gap = -1.0;

  // Context echo.
  double epsilon = 0.0;
  double precision = 0.0;
  double time_limit_s = 0.0;

  std::string error;  ///< non-empty iff status is kInvalid or kError

  [[nodiscard]] bool operator==(const RunRecord&) const = default;
};

}  // namespace setsched::expt
