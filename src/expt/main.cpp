// setsched_expt — batch experiment harness over the SolverRegistry.
//
// Runs the cross product presets × seeds × solvers as one sharded sweep,
// streams per-cell RunRecords as JSONL/CSV, and prints (and optionally
// exports as BENCH_expt.json) per-(solver, preset) aggregate summaries.
//
// Usage:
//   setsched_expt --plan=<file>
//   setsched_expt --presets=<a,b> (--solvers=<a,b> | --all-solvers)
//                 [--seeds=N | --seeds=A..B]
//
// Options: --epsilon=E --precision=P --time-limit=S --cell-timeout=S
//          --inject=SPEC --lp-audit-interval=N
//          --lp=auto|tableau|revised|dual --lp-pricing=candidate|devex
//          --threads=N --no-timing --jsonl=PATH --csv=PATH --bench-json=PATH
//          --trace=PATH --quiet --progress
//
// --trace records a span trace of the whole sweep (per-cell solve spans over
// named worker tracks, LP/search sub-spans, search-tree node instants) and
// writes Chrome trace-event JSON loadable in chrome://tracing or Perfetto.
// Flags override the corresponding plan-file keys.

#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/presets.h"
#include "api/registry.h"
#include "common/check.h"
#include "expt/aggregate.h"
#include "expt/harness.h"
#include "expt/plan.h"
#include "expt/record_io.h"
#include "obs/trace.h"

namespace setsched::expt {
namespace {

struct ExptOptions {
  std::string plan_path;
  bool all_solvers = false;
  bool quiet = false;
  bool progress = false;
  std::string jsonl_path;
  std::string csv_path;
  std::string bench_json_path;
  std::string trace_path;

  // Overrides applied on top of a plan file (only when given on the line).
  std::optional<std::string> presets, solvers, seeds, lp, lp_pricing, inject;
  std::optional<double> epsilon, precision, time_limit_s, cell_timeout_s;
  std::optional<std::size_t> threads, lp_audit_interval;
  std::optional<bool> record_timing;
};

void print_usage(std::ostream& os) {
  os << "usage: setsched_expt --plan=<file>\n"
     << "       setsched_expt --presets=<a,b> (--solvers=<a,b> | --all-solvers)\n"
     << "                     [--seeds=N | --seeds=A..B]\n"
     << "options: [--epsilon=E] [--precision=P] [--time-limit=S]\n"
     << "         [--cell-timeout=S]  (per-cell wall-clock watchdog; 0 = off)\n"
     << "         [--inject=SPEC]  (LP fault injection, e.g. all@0.01)\n"
     << "         [--lp-audit-interval=N]  (audit every Nth LP solve; 0 = off)\n"
     << "         [--lp=auto|tableau|revised|dual]\n"
     << "         [--lp-pricing=candidate|devex] [--threads=N] [--no-timing]\n"
     << "         [--quiet] [--jsonl=PATH] [--csv=PATH] [--bench-json=PATH]\n"
     << "         [--trace=PATH]  (Chrome trace-event JSON of the sweep)\n"
     << "         [--progress]  (live completed-cell counter on stderr)\n"
     << "presets:";
  for (const std::string& preset : preset_names()) os << ' ' << preset;
  os << "\nsolvers:";
  for (const std::string& solver : SolverRegistry::global().names()) {
    os << ' ' << solver;
  }
  os << '\n';
}

bool consume(const std::string& arg, const std::string& key,
             std::string* value) {
  if (arg.rfind(key + "=", 0) != 0) return false;
  *value = arg.substr(key.size() + 1);
  return true;
}

std::optional<ExptOptions> parse_args(int argc, char** argv) {
  ExptOptions options;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    std::string value;
    try {
      if (arg == "--all-solvers") {
        options.all_solvers = true;
      } else if (arg == "--no-timing") {
        options.record_timing = false;
      } else if (arg == "--quiet") {
        options.quiet = true;
      } else if (arg == "--progress") {
        options.progress = true;
      } else if (consume(arg, "--plan", &value)) {
        options.plan_path = value;
      } else if (consume(arg, "--presets", &value)) {
        options.presets = value;
      } else if (consume(arg, "--solvers", &value)) {
        options.solvers = value;
      } else if (consume(arg, "--seeds", &value)) {
        options.seeds = value;
      } else if (consume(arg, "--epsilon", &value)) {
        options.epsilon = std::stod(value);
      } else if (consume(arg, "--precision", &value)) {
        options.precision = std::stod(value);
      } else if (consume(arg, "--time-limit", &value)) {
        options.time_limit_s = std::stod(value);
      } else if (consume(arg, "--cell-timeout", &value)) {
        options.cell_timeout_s = std::stod(value);
      } else if (consume(arg, "--inject", &value)) {
        options.inject = value;
      } else if (consume(arg, "--lp-pricing", &value)) {
        options.lp_pricing = value;
      } else if (consume(arg, "--lp-audit-interval", &value)) {
        options.lp_audit_interval =
            static_cast<std::size_t>(parse_u64(value, "lp_audit_interval"));
      } else if (consume(arg, "--lp", &value)) {
        options.lp = value;
      } else if (consume(arg, "--threads", &value)) {
        options.threads = static_cast<std::size_t>(parse_u64(value, "threads"));
      } else if (consume(arg, "--jsonl", &value)) {
        options.jsonl_path = value;
      } else if (consume(arg, "--csv", &value)) {
        options.csv_path = value;
      } else if (consume(arg, "--bench-json", &value)) {
        options.bench_json_path = value;
      } else if (consume(arg, "--trace", &value)) {
        options.trace_path = value;
      } else {
        std::cerr << "setsched_expt: unknown argument '" << arg << "'\n";
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::cerr << "setsched_expt: bad numeric value in '" << arg << "'\n";
      return std::nullopt;
    }
  }
  return options;
}

ExperimentPlan build_plan(const ExptOptions& options) {
  ExperimentPlan plan;
  if (!options.plan_path.empty()) plan = load_plan(options.plan_path);
  if (options.presets) plan.presets = split_list(*options.presets);
  if (options.solvers) plan.solvers = split_list(*options.solvers);
  if (options.all_solvers) plan.solvers = SolverRegistry::global().names();
  if (options.seeds) {
    parse_seed_range(*options.seeds, &plan.seed_begin, &plan.seed_end);
  }
  if (options.epsilon) plan.epsilon = *options.epsilon;
  if (options.precision) plan.precision = *options.precision;
  if (options.time_limit_s) plan.time_limit_s = *options.time_limit_s;
  if (options.cell_timeout_s) plan.cell_timeout_s = *options.cell_timeout_s;
  if (options.inject) plan.inject = *options.inject;
  if (options.lp_audit_interval) {
    plan.lp_audit_interval = *options.lp_audit_interval;
  }
  if (options.lp) plan.lp_algorithm = lp_algorithm_from_name(*options.lp);
  if (options.lp_pricing) {
    plan.lp_pricing = lp_pricing_from_name(*options.lp_pricing);
  }
  if (options.threads) plan.threads = *options.threads;
  if (options.record_timing) plan.record_timing = *options.record_timing;
  plan.validate();
  return plan;
}

void write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& body) {
  std::ofstream file(path);
  check(file.good(), "cannot open " + what + " output file '" + path + "'");
  body(file);
  check(file.good(), "failed writing " + what + " to '" + path + "'");
}

int expt_main(int argc, char** argv) {
  const std::optional<ExptOptions> options = parse_args(argc, argv);
  if (!options) {
    print_usage(std::cerr);
    return 1;
  }
  if (options->plan_path.empty() && !options->presets) {
    std::cerr << "setsched_expt: pick --plan=<file> or --presets=<a,b>\n";
    print_usage(std::cerr);
    return 1;
  }
  try {
    const ExperimentPlan plan = build_plan(*options);
    if (!options->quiet) {
      std::cout << "sweep: " << plan.presets.size() << " presets x "
                << plan.num_seeds() << " seeds x " << plan.solvers.size()
                << " solvers = " << plan.num_cells() << " cells\n";
    }
    if (!options->trace_path.empty()) obs::start_trace();
    // Progress goes to stderr so piped/captured stdout stays parseable; the
    // harness serializes callback invocations (see expt/harness.h).
    ProgressFn progress;
    if (options->progress) {
      progress = [](std::size_t done, std::size_t total) {
        std::cerr << '\r' << "cells " << done << '/' << total
                  << (done == total ? "\n" : "") << std::flush;
      };
    }
    const std::vector<RunRecord> records = run_experiment(plan, progress);
    if (!options->trace_path.empty()) {
      obs::stop_trace();
      write_file(options->trace_path, "trace",
                 [](std::ostream& os) { obs::write_chrome_trace(os); });
    }
    const std::vector<AggregateSummary> summaries = aggregate(records);

    if (!options->jsonl_path.empty()) {
      write_file(options->jsonl_path, "JSONL",
                 [&](std::ostream& os) { write_jsonl(os, records); });
    }
    if (!options->csv_path.empty()) {
      write_file(options->csv_path, "CSV",
                 [&](std::ostream& os) { write_csv(os, records); });
    }
    if (!options->bench_json_path.empty()) {
      write_file(options->bench_json_path, "bench json", [&](std::ostream& os) {
        write_bench_json(os, plan, summaries);
      });
    }
    if (!options->quiet) {
      summary_table(summaries).print(std::cout);
    }

    bool any_failed = false;
    for (const RunRecord& record : records) {
      if (record.status == RunStatus::kInvalid ||
          record.status == RunStatus::kError) {
        any_failed = true;
        std::cerr << "setsched_expt: " << record.solver << " on "
                  << record.preset << " seed " << record.seed << ": "
                  << record.error << "\n";
      }
    }
    return any_failed ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "setsched_expt: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace setsched::expt

int main(int argc, char** argv) {
  return setsched::expt::expt_main(argc, argv);
}
