#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace setsched::obs {

/// One trace event. `name`, `category`, and the arg strings are stored as
/// pointers, not copies — pass string literals or obs::intern() results.
/// dur_us < 0 marks an instant event ("i" in Chrome trace terms); dur_us >=
/// 0 a complete span ("X").
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint32_t track = 0;  ///< per-thread track id, assigned at registration
  double ts_us = 0.0;       ///< microseconds since start_trace()
  double dur_us = -1.0;
  const char* arg_str_name = nullptr;
  const char* arg_str = nullptr;
  const char* arg_num_name = nullptr;
  double arg_num = 0.0;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<std::int64_t> g_trace_start_ns;
void append_event(const TraceEvent& event,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end);
}  // namespace internal

/// Runtime gate: one relaxed load + branch when tracing is off. With
/// SETSCHED_OBS_DISABLED the gate is compile-time false and every span /
/// instant emission folds away.
#ifdef SETSCHED_OBS_DISABLED
[[nodiscard]] inline constexpr bool trace_enabled() { return false; }
#else
[[nodiscard]] inline bool trace_enabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}
#endif

/// Starts a new trace: clears every registered per-thread buffer, resets the
/// epoch, and opens the gate. Events append lock-free into thread-local
/// buffers of `capacity_per_thread` events (drop-newest with a counter when
/// full). Call while no spans are in flight on other threads (the CLIs call
/// it before any solver work starts).
void start_trace(std::size_t capacity_per_thread = std::size_t{1} << 20);

/// Closes the gate. Spans already in flight finish without recording.
void stop_trace();

/// Names the calling thread's track in the emitted trace ("worker-3", ...).
/// Cheap and safe to call with tracing disabled or compiled out; ThreadPool
/// workers call it once at startup.
void set_thread_track_name(std::string name);

/// Interns a runtime string (solver/preset names) into storage that outlives
/// the trace, returning a stable pointer usable as a TraceEvent field.
[[nodiscard]] const char* intern(std::string_view s);

/// Appends an instant event (a point-in-time marker: search-tree node
/// terminations, incumbent updates, refix events). No-op when tracing is
/// off.
void emit_instant(const char* name, const char* category,
                  const char* arg_str_name = nullptr,
                  const char* arg_str = nullptr,
                  const char* arg_num_name = nullptr, double arg_num = 0.0);

/// RAII scoped span over steady_clock. Arms only if tracing is enabled at
/// construction; records a complete event on destruction (dropped if the
/// trace stopped in between). Args set via set_arg become the span's
/// Chrome-trace "args" object.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = nullptr) {
    if (trace_enabled()) {
      event_.name = name;
      event_.category = category;
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
  ~TraceSpan() {
    if (armed_) {
      internal::append_event(event_, start_,
                             std::chrono::steady_clock::now());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_arg(const char* arg_name, double value) {
    if (armed_) {
      event_.arg_num_name = arg_name;
      event_.arg_num = value;
    }
  }
  void set_arg(const char* arg_name, const char* value) {
    if (armed_) {
      event_.arg_str_name = arg_name;
      event_.arg_str = value;
    }
  }

 private:
  TraceEvent event_{};
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

struct TraceCounts {
  std::size_t events = 0;
  std::size_t dropped = 0;
};

/// Totals across every registered thread buffer.
[[nodiscard]] TraceCounts trace_counts();

/// All recorded events merged across threads and sorted by (ts_us, track).
/// Call while no thread is appending (after the parallel work joined).
[[nodiscard]] std::vector<TraceEvent> collect_trace_events();

/// One (track id, track name) pair per registered thread.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>> track_names();

/// Writes the merged trace as Chrome trace-event JSON (object form with a
/// "traceEvents" array plus thread_name metadata), loadable in
/// chrome://tracing and Perfetto. Adds "setschedDropped" so consumers can
/// detect buffer overflow before reconciling event counts.
void write_chrome_trace(std::ostream& os);

}  // namespace setsched::obs
