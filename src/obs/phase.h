#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace setsched::obs {

/// Wall-clock phases accumulated while a solver runs. The enum is the
/// serialization contract: names (phase_name) and order are stable, new
/// phases append before the end. Phases form three nesting tiers rather than
/// one flat partition — see docs/OBSERVABILITY.md:
///  * solver tier (disjoint): root_bound, dive, prove cover the exact
///    solvers' wall clock; colgen_pricing covers the colgen pricing rounds;
///  * LP tier: lp_solve is the total time inside a simplex solve (nested
///    under whatever solver phase triggered it), split into the lp_primal /
///    lp_dual loops;
///  * kernel tier (nested under the loops): lp_ftran, lp_btran, lp_factor,
///    lp_pricing.
/// dominance and refix are sub-phases of prove/dive.
enum class Phase : std::uint8_t {
  kLpSolve = 0,     ///< whole lp::solve_revised / solve_tableau call
  kLpPrimal,        ///< primal simplex loop (phases 1+2)
  kLpDual,          ///< dual simplex loop
  kLpFtran,         ///< FTRAN solves (B z = a)
  kLpBtran,         ///< BTRAN solves (B^T y = c_B)
  kLpFactor,        ///< LU (re)factorizations
  kLpPricing,       ///< primal pricing passes (candidate/Devex/full scans)
  kRootBound,       ///< exact: root LP bound + root reduced-cost fixing
  kDive,            ///< exact: beam-search descent
  kProve,           ///< exact: DFS branch-and-bound
  kDominance,       ///< exact: dominance memo lookups / beam dominance scans
  kRefix,           ///< exact: incremental root refixing on incumbent updates
  kColgenPricing,   ///< colgen: knapsack pricing rounds
};

inline constexpr std::size_t kPhaseCount = 13;

/// Stable serialization name ("lp_solve", "root_bound", ...).
[[nodiscard]] std::string_view phase_name(Phase phase);

/// Inverse of phase_name; returns false on unknown names.
[[nodiscard]] bool phase_from_name(std::string_view name, Phase* out);

/// Per-phase wall-time totals in milliseconds. A fixed array keyed by Phase
/// so equality, serialization order, and zero-initialization are all
/// trivial; rides SolverStats -> RunRecord -> JSONL/CSV/BENCH_expt.json.
struct PhaseTimes {
  std::array<double, kPhaseCount> ms{};

  [[nodiscard]] double& operator[](Phase phase) {
    return ms[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] double operator[](Phase phase) const {
    return ms[static_cast<std::size_t>(phase)];
  }
  /// True when every phase is exactly zero (untimed run / legacy record).
  [[nodiscard]] bool empty() const {
    for (const double v : ms) {
      if (v != 0.0) return false;
    }
    return true;
  }
  PhaseTimes& operator+=(const PhaseTimes& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) ms[i] += other.ms[i];
    return *this;
  }
  /// Total LP share of the run: the top-of-tier lp_solve phase.
  [[nodiscard]] double lp_ms() const { return (*this)[Phase::kLpSolve]; }

  [[nodiscard]] bool operator==(const PhaseTimes&) const = default;
};

/// Delta between two snapshots (a - b, per phase; used for the
/// before/after-solve capture in the harness and CLI).
[[nodiscard]] inline PhaseTimes operator-(const PhaseTimes& a,
                                          const PhaseTimes& b) {
  PhaseTimes out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) out.ms[i] = a.ms[i] - b.ms[i];
  return out;
}

namespace internal {
extern std::atomic<bool> g_timing_enabled;
[[nodiscard]] PhaseTimes& local_phase_times();
}  // namespace internal

/// Runtime gate for phase accounting. The disabled path of every PhaseTimer
/// is one relaxed atomic load and a branch. With SETSCHED_OBS_DISABLED the
/// gate is compile-time false and timers vanish entirely (the CI
/// zero-overhead guard builds this configuration).
#ifdef SETSCHED_OBS_DISABLED
[[nodiscard]] inline constexpr bool timing_enabled() { return false; }
#else
[[nodiscard]] inline bool timing_enabled() {
  return internal::g_timing_enabled.load(std::memory_order_relaxed);
}
#endif

void set_timing_enabled(bool enabled);

/// Copy of the calling thread's accumulated totals. Accumulation is
/// thread-local: a snapshot delta around solve() attributes exactly the work
/// this thread did (sweep cells and --all tasks run single-threaded, so the
/// attribution there is complete; work a solver hands to a ThreadPool lands
/// on the workers' accumulators instead).
[[nodiscard]] PhaseTimes phase_snapshot();

/// RAII accumulator: adds the scope's wall time to the thread's total for
/// `phase`. Nested timers of different phases each count their own span.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase) {
    if (timing_enabled()) {
      phase_ = phase;
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
  ~PhaseTimer() {
    if (armed_) {
      const auto end = std::chrono::steady_clock::now();
      internal::local_phase_times()[phase_] +=
          std::chrono::duration<double, std::milli>(end - start_).count();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase phase_{};
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace setsched::obs
