#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <memory>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "common/annotations.h"

namespace setsched::obs {

namespace {

/// Per-thread event buffer. Appends are lock-free (only the owning thread
/// writes); registration and flush take the registry mutex. Held by
/// shared_ptr from both the registry and the owning thread's thread_local,
/// so the events survive the thread exiting before the flush.
///
/// Deliberately NOT GUARDED_BY the registry mutex: `events`/`dropped` are
/// owner-thread-private while a trace runs and only read by the flush
/// functions after the parallel work joined (the start_trace contract). The
/// thread-safety analysis cannot express "exclusive until rendezvous"; the
/// TSan CI job checks the rendezvous discipline dynamically instead.
struct ThreadBuffer {
  std::vector<TraceEvent> events;  ///< capacity reserved up front, never grown
  std::size_t dropped = 0;
  /// Drop-newest threshold. Tracked separately from events.capacity():
  /// reserve() never shrinks, so a re-start_trace() with a smaller capacity
  /// must not inherit the old (larger) allocation as its limit.
  std::size_t capacity = 0;
  std::uint32_t track = 0;
  std::string track_name;
};

struct Registry {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers GUARDED_BY(mutex);
  std::size_t capacity GUARDED_BY(mutex) = std::size_t{1} << 20;
  std::uint32_t next_track GUARDED_BY(mutex) = 0;
  /// Interned strings: unordered_set never relocates its nodes, so c_str()
  /// pointers stay valid for the registry's (static) lifetime.
  std::unordered_set<std::string> interned GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* reg = new Registry();  // leaked: outlives exiting threads
  return *reg;
}

thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::string t_pending_track_name;

ThreadBuffer& local_buffer() {
  if (!t_buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    const MutexLock lock(reg.mutex);
    buffer->track = reg.next_track++;
    buffer->track_name =
        t_pending_track_name.empty() ? "main" : t_pending_track_name;
    buffer->capacity = reg.capacity;
    buffer->events.reserve(reg.capacity);
    reg.buffers.push_back(buffer);
    t_buffer = std::move(buffer);
  }
  return *t_buffer;
}

double relative_us(std::chrono::steady_clock::time_point t) {
  const std::int64_t start =
      internal::g_trace_start_ns.load(std::memory_order_relaxed);
  const std::int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t.time_since_epoch())
                              .count();
  return static_cast<double>(ns - start) * 1e-3;
}

void push(ThreadBuffer& buffer, const TraceEvent& event) {
  if (buffer.events.size() < buffer.capacity) {
    buffer.events.push_back(event);
  } else {
    ++buffer.dropped;
  }
}

// --- Chrome trace JSON -----------------------------------------------------

void write_json_number(std::ostream& os, double v) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  os.write(buffer, end - buffer);
  (void)ec;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::int64_t> g_trace_start_ns{0};

void append_event(const TraceEvent& event,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  // A span that outlived stop_trace() is dropped: the buffers may already be
  // flushed or reset for the next trace.
  if (!trace_enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  TraceEvent out = event;
  out.track = buffer.track;
  out.ts_us = relative_us(start);
  out.dur_us = std::max(0.0, relative_us(end) - out.ts_us);
  push(buffer, out);
}

}  // namespace internal

void start_trace(std::size_t capacity_per_thread) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  reg.capacity = std::max<std::size_t>(capacity_per_thread, 16);
  for (const auto& buffer : reg.buffers) {
    buffer->events.clear();
    buffer->capacity = reg.capacity;
    buffer->events.reserve(reg.capacity);
    buffer->dropped = 0;
  }
  internal::g_trace_start_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_release);
}

void stop_trace() {
  internal::g_trace_enabled.store(false, std::memory_order_release);
}

void set_thread_track_name(std::string name) {
  if (t_buffer) {
    const MutexLock lock(registry().mutex);
    t_buffer->track_name = std::move(name);
  } else {
    t_pending_track_name = std::move(name);
  }
}

const char* intern(std::string_view s) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  return reg.interned.emplace(s).first->c_str();
}

void emit_instant(const char* name, const char* category,
                  const char* arg_str_name, const char* arg_str,
                  const char* arg_num_name, double arg_num) {
  if (!trace_enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.track = buffer.track;
  event.ts_us = relative_us(std::chrono::steady_clock::now());
  event.dur_us = -1.0;
  event.arg_str_name = arg_str_name;
  event.arg_str = arg_str;
  event.arg_num_name = arg_num_name;
  event.arg_num = arg_num;
  push(buffer, event);
}

TraceCounts trace_counts() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  TraceCounts counts;
  for (const auto& buffer : reg.buffers) {
    counts.events += buffer->events.size();
    counts.dropped += buffer->dropped;
  }
  return counts;
}

std::vector<TraceEvent> collect_trace_events() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  std::vector<TraceEvent> events;
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->events.size();
  events.reserve(total);
  for (const auto& buffer : reg.buffers) {
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                               : a.track < b.track;
                   });
  return events;
}

std::vector<std::pair<std::uint32_t, std::string>> track_names() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  std::vector<std::pair<std::uint32_t, std::string>> names;
  names.reserve(reg.buffers.size());
  for (const auto& buffer : reg.buffers) {
    names.emplace_back(buffer->track, buffer->track_name);
  }
  return names;
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = collect_trace_events();
  const TraceCounts counts = trace_counts();

  os << "{\"displayTimeUnit\":\"ms\",\"setschedDropped\":" << counts.dropped
     << ",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names()) {
    os << (first ? "\n" : ",\n")
       << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << track
       << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    const bool instant = e.dur_us < 0.0;
    os << "{\"ph\":\"" << (instant ? 'i' : 'X') << "\",\"name\":";
    write_json_string(os, e.name == nullptr ? "" : e.name);
    if (e.category != nullptr) {
      os << ",\"cat\":";
      write_json_string(os, e.category);
    }
    os << ",\"pid\":1,\"tid\":" << e.track << ",\"ts\":";
    write_json_number(os, e.ts_us);
    if (instant) {
      os << ",\"s\":\"t\"";  // thread-scoped instant
    } else {
      os << ",\"dur\":";
      write_json_number(os, e.dur_us);
    }
    if (e.arg_str_name != nullptr || e.arg_num_name != nullptr) {
      os << ",\"args\":{";
      if (e.arg_str_name != nullptr) {
        write_json_string(os, e.arg_str_name);
        os << ':';
        write_json_string(os, e.arg_str == nullptr ? "" : e.arg_str);
      }
      if (e.arg_num_name != nullptr) {
        if (e.arg_str_name != nullptr) os << ',';
        write_json_string(os, e.arg_num_name);
        os << ':';
        write_json_number(os, e.arg_num);
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

}  // namespace setsched::obs
