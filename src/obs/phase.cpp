#include "obs/phase.h"

namespace setsched::obs {

namespace {

constexpr std::string_view kPhaseNames[kPhaseCount] = {
    "lp_solve",   "lp_primal", "lp_dual",        "lp_ftran", "lp_btran",
    "lp_factor",  "lp_pricing", "root_bound",    "dive",     "prove",
    "dominance",  "refix",      "colgen_pricing",
};

}  // namespace

std::string_view phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

bool phase_from_name(std::string_view name, Phase* out) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (kPhaseNames[i] == name) {
      *out = static_cast<Phase>(i);
      return true;
    }
  }
  return false;
}

namespace internal {

std::atomic<bool> g_timing_enabled{false};

PhaseTimes& local_phase_times() {
  thread_local PhaseTimes times;
  return times;
}

}  // namespace internal

void set_timing_enabled(bool enabled) {
  internal::g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

PhaseTimes phase_snapshot() { return internal::local_phase_times(); }

}  // namespace setsched::obs
