#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace setsched {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& value) {
  check(!rows_.empty(), "Table::add before Table::row");
  check(rows_.back().size() < header_.size(), "Table row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << std::setw(static_cast<int>(width[c])) << cell << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace setsched
