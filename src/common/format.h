#pragma once

#include <charconv>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>
#include <system_error>

#include "common/check.h"

namespace setsched {

/// Writes the shortest decimal form that parses back to exactly `v` via
/// std::to_chars: locale-independent and lossless, so serialized streams are
/// byte-stable across runs and platforms (operator<< truncates to 6 digits).
/// Shared by core/io and the expt record/bench writers; non-finite values
/// format as "inf"/"nan" per to_chars, so callers wanting to reject or remap
/// them must check first.
inline void write_shortest_double(std::ostream& os, double v) {
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  check(ec == std::errc{}, "failed to format double value");
  os.write(buffer, end - buffer);
}

/// write_shortest_double restricted to finite values: throws CheckError
/// (prefixed with `what`) otherwise. For formats with no non-finite spelling
/// (JSON writers).
inline void write_finite_double(std::ostream& os, double v,
                                std::string_view what) {
  check(std::isfinite(v), std::string(what) + ": non-finite value");
  write_shortest_double(os, v);
}

}  // namespace setsched
