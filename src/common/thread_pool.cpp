#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "obs/trace.h"

namespace setsched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  // Named track in --trace output; pools share the numbering scheme, the
  // trace distinguishes threads by track id.
  obs::set_thread_track_name("worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Fork-join rendezvous shared by the parallel_for variants: the caller
/// blocks on done_cv until every spawned task decremented `remaining`.
struct JoinState {
  Mutex m;
  CondVar done_cv;
  std::size_t remaining GUARDED_BY(m) = 0;
  std::exception_ptr first_error GUARDED_BY(m);

  explicit JoinState(std::size_t tasks) : remaining(tasks) {}

  /// Task epilogue: records the first error and signals the joiner when the
  /// last task finishes.
  void finish_task(std::exception_ptr error) {
    const MutexLock lock(m);
    if (error && !first_error) first_error = std::move(error);
    if (--remaining == 0) done_cv.notify_all();
  }

  /// Caller side: blocks until every task finished, then rethrows the first
  /// captured exception (if any).
  void join() {
    std::exception_ptr error;
    {
      MutexLock lock(m);
      while (remaining != 0) done_cv.wait(m);
      error = first_error;
    }
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::min<std::size_t>(total, std::max<std::size_t>(1, thread_count() * 4));
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  JoinState join(chunks);

  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    enqueue([lo, hi, &body, &join] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        error = std::current_exception();
      }
      join.finish_task(std::move(error));
    });
  }

  join.join();
}

void ThreadPool::parallel_for_dynamic(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = std::min(total, thread_count());
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  JoinState join(workers);

  for (std::size_t w = 0; w < workers; ++w) {
    enqueue([end, &next, &body, &join] {
      std::exception_ptr error;
      try {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < end; i = next.fetch_add(1, std::memory_order_relaxed)) {
          body(i);
        }
      } catch (...) {
        error = std::current_exception();
      }
      join.finish_task(std::move(error));
    });
  }

  join.join();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace setsched
