#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace setsched {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
};

/// Computes summary statistics; returns all-zero Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolation percentile, q in [0, 1]. Input need not be sorted.
/// Throws CheckError on an empty sample and on q outside [0, 1] (including
/// NaN); a single-element sample returns that element for every valid q.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Arithmetic mean; 0.0 for an empty sample. Well-defined on any input so
/// aggregators may call it on failure-filtered (possibly empty) buckets.
[[nodiscard]] double mean(std::span<const double> sample);

/// Maximum value; 0.0 for an empty sample (same contract as mean()).
[[nodiscard]] double max_value(std::span<const double> sample);

/// Geometric mean (requires strictly positive values; returns 0 otherwise).
[[nodiscard]] double geometric_mean(std::span<const double> sample);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace setsched
