#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace setsched {

/// Console table builder used by the benchmark harness to print the
/// paper-style result tables (and optionally CSV for post-processing).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; values are appended with add().
  Table& row();
  Table& add(const std::string& value);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders comma-separated values (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with examples).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace setsched
