#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace setsched {

/// Fixed-size worker pool with a fork-join parallel_for helper.
///
/// Design notes (per the HPC guides: explicit, structured parallelism):
///  * tasks are plain std::function<void()>; no futures on the hot path;
///  * parallel_for blocks until all chunks finish (structured fork-join),
///    so callers never observe concurrent mutation after it returns;
///  * exceptions thrown by tasks are captured and rethrown on join;
///  * all queue state is GUARDED_BY(mutex_) — Clang's thread-safety
///    analysis (and the TSan CI job) keep it that way.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. The first task exception (if any) is rethrown.
  /// Iterations are distributed in contiguous chunks.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but with dynamic scheduling at granularity one:
  /// workers pull the next index from a shared counter, so wildly uneven
  /// iteration costs (a 10 ms greedy cell next to a 16 s LP cell in a sweep)
  /// still balance. Same blocking fork-join and exception semantics; a
  /// throwing worker stops pulling further indices but the remaining workers
  /// drain the range.
  void parallel_for_dynamic(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& body);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);

  /// Workers are spawned in the constructor and joined in the destructor;
  /// the vector itself is never mutated in between, so it needs no guard.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ GUARDED_BY(mutex_) = false;
};

/// Library-wide default pool (lazily constructed, sized to the hardware).
/// First use races are benign: C++ static-local initialization is
/// serialized by the runtime (pinned by ThreadPoolTest.ConcurrentDefaultPool
/// under TSan).
ThreadPool& default_pool();

}  // namespace setsched
