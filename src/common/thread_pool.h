#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace setsched {

/// Fixed-size worker pool with a fork-join parallel_for helper.
///
/// Design notes (per the HPC guides: explicit, structured parallelism):
///  * tasks are plain std::function<void()>; no futures on the hot path;
///  * parallel_for blocks until all chunks finish (structured fork-join),
///    so callers never observe concurrent mutation after it returns;
///  * exceptions thrown by tasks are captured and rethrown on join.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Runs body(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. The first task exception (if any) is rethrown.
  /// Iterations are distributed in contiguous chunks.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but with dynamic scheduling at granularity one:
  /// workers pull the next index from a shared counter, so wildly uneven
  /// iteration costs (a 10 ms greedy cell next to a 16 s LP cell in a sweep)
  /// still balance. Same blocking fork-join and exception semantics; a
  /// throwing worker stops pulling further indices but the remaining workers
  /// drain the range.
  void parallel_for_dynamic(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& body);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Library-wide default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace setsched
