#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace setsched {

double percentile(std::span<const double> sample, double q) {
  check(!sample.empty(), "percentile of empty sample");
  // Written so NaN q (which fails every comparison) is rejected too.
  check(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  s.count = sample.size();
  RunningStats rs;
  for (double x : sample) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile(sample, 0.5);
  s.p90 = percentile(sample, 0.9);
  return s;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  RunningStats rs;
  for (const double x : sample) rs.add(x);
  return rs.mean();
}

double max_value(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  return *std::max_element(sample.begin(), sample.end());
}

double geometric_mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : sample) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace setsched
