#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace setsched {

/// Dense row-major matrix. Deliberately minimal: the library only needs
/// contiguous storage with checked 2-D indexing (processing-time and
/// setup-time tables, simplex tableaus).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    check(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    check(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (rows are contiguous).
  [[nodiscard]] T* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const T* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  [[nodiscard]] bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace setsched
