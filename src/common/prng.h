#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace setsched {

/// SplitMix64: used to seed Xoshiro and as a standalone mixing function.
/// Reference: Steele, Lea, Flood (2014); public-domain reference algorithm.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ PRNG (Blackman & Vigna). Deterministic, fast, and a valid
/// UniformRandomBitGenerator, so it plugs into <random> distributions.
///
/// All randomized algorithms in this library take explicit seeds and build
/// private generator instances; there is no global RNG state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's rejection-free-ish method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Debiased multiply-shift; bound == 0 is a caller bug but we avoid UB.
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [lo, hi).
  constexpr double next_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool next_bernoulli(double p) noexcept { return next_double() < p; }

  /// Derives an independent child generator (for parallel substreams).
  Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Xoshiro256& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

/// Random permutation of {0, ..., n-1}.
template <typename Index = std::size_t>
std::vector<Index> random_permutation(std::size_t n, Xoshiro256& rng) {
  std::vector<Index> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Index>(i);
  shuffle(perm, rng);
  return perm;
}

}  // namespace setsched
