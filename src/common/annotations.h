#pragma once

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety) plus the annotated
/// locking primitives every shared-state site in the repo must use —
/// tools/lint_invariants.py rejects naked std::mutex anywhere else, so the
/// analysis (and the locking discipline it encodes) cannot silently erode.
///
/// The macro set follows the abseil/LLVM convention: capabilities are
/// declared on the Mutex type, data members name their guard with
/// GUARDED_BY(mu), and functions declare the locks they take or need with
/// ACQUIRE/RELEASE/REQUIRES. Clang proves the discipline at compile time
/// (builds with -DSETSCHED_THREAD_SAFETY=ON promote violations to errors);
/// every other compiler sees empty macros and identical codegen. See
/// docs/STATIC_ANALYSIS.md for the guide.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SETSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SETSCHED_THREAD_ANNOTATION
#define SETSCHED_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define SETSCHED_CAPABILITY(name) SETSCHED_THREAD_ANNOTATION(capability(name))
/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SETSCHED_SCOPED_CAPABILITY SETSCHED_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the named mutex.
#define GUARDED_BY(x) SETSCHED_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member: the pointee (not the pointer) is protected by the mutex.
#define PT_GUARDED_BY(x) SETSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define REQUIRES(...) \
  SETSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) SETSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases a capability acquired earlier.
#define RELEASE(...) SETSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) SETSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; every use must carry an
/// inline justification (the lint counts naked uses as violations).
#define NO_THREAD_SAFETY_ANALYSIS \
  SETSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace setsched {

/// Annotated std::mutex wrapper. Exactly as cheap as the raw mutex, but the
/// capability declaration lets Clang check that every GUARDED_BY member is
/// only touched with the lock held.
class SETSCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over Mutex (the only blessed way to take one; the analysis
/// tracks the critical section as the MutexLock's scope).
class SETSCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. wait() declares
/// REQUIRES(mu): the caller must hold the lock, and (as with
/// std::condition_variable) holds it again when wait returns, so the
/// analysis sees one unbroken critical section around the caller's own
/// `while (!condition) cv.wait(mu);` loop — deliberately no predicate
/// overload, because the loop form keeps the guarded-member accesses in the
/// annotated caller instead of an unannotatable lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    // The underlying std::mutex is locked exactly when `mu` is held, so
    // adopting it here hands the same lock to std::condition_variable.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // `mu` stays held; MutexLock's destructor unlocks it
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace setsched
