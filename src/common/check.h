#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace setsched {

/// Thrown when a library precondition or internal invariant is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verifies a precondition / invariant; throws CheckError with location info.
///
/// This is the library's contract-checking primitive (per the C++ Core
/// Guidelines we prefer a function over a macro; the call site is recovered
/// via std::source_location).
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + std::string(message));
  }
}

}  // namespace setsched
