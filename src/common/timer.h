#pragma once

#include <chrono>

namespace setsched {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace setsched
