#include "api/presets.h"

#include <fstream>

#include "common/check.h"
#include "core/generators.h"
#include "core/io.h"

namespace setsched {

namespace {

struct Preset {
  const char* name;
  ProblemInput (*make)(std::uint64_t seed);
};

// Single source of truth for preset names and their generators; sorted by
// name (preset_names() relies on it).
constexpr Preset kPresets[] = {
    {"class-uniform",
     [](std::uint64_t seed) {
       return ProblemInput::from_unrelated(
           generate_class_uniform_processing({}, seed));
     }},
    {"planted",
     [](std::uint64_t seed) {
       return ProblemInput::from_unrelated(
           generate_planted_unrelated({}, seed).instance);
     }},
    {"restricted",
     [](std::uint64_t seed) {
       return ProblemInput::from_unrelated(
           generate_restricted_class_uniform({}, seed));
     }},
    {"uniform-large",
     [](std::uint64_t seed) {
       UniformGenParams params;
       params.num_jobs = 200;
       params.num_machines = 16;
       params.num_classes = 12;
       params.profile = SpeedProfile::kTwoTier;
       return ProblemInput::from_uniform(generate_uniform(params, seed));
     }},
    {"uniform-small",
     [](std::uint64_t seed) {
       return ProblemInput::from_uniform(generate_uniform({}, seed));
     }},
    {"unrelated-medium",
     [](std::uint64_t seed) {
       UnrelatedGenParams params;
       params.num_jobs = 120;
       params.num_machines = 10;
       params.num_classes = 10;
       params.eligibility = 0.8;
       params.correlated = true;
       return ProblemInput::from_unrelated(generate_unrelated(params, seed));
     }},
    {"unrelated-midsize",
     [](std::uint64_t seed) {
       // Mid-size ground-truth scenario: too big to prove (n ~ 40), the
       // right size for the exact dive mode's gap-certified incumbents.
       UnrelatedGenParams params;
       params.num_jobs = 40;
       params.num_machines = 6;
       params.num_classes = 8;
       params.eligibility = 0.85;
       params.correlated = true;
       return ProblemInput::from_unrelated(generate_unrelated(params, seed));
     }},
    {"unrelated-small",
     [](std::uint64_t seed) {
       return ProblemInput::from_unrelated(generate_unrelated({}, seed));
     }},
    {"unrelated-tiny",
     [](std::uint64_t seed) {
       // Brute-forceable scale (m^n enumerable in test time): the preset the
       // branch-and-price differential tests compare against exhaustive
       // enumeration and the config-vs-assignment root-bound dominance check.
       UnrelatedGenParams params;
       params.num_jobs = 10;
       params.num_machines = 3;
       params.num_classes = 3;
       return ProblemInput::from_unrelated(generate_unrelated(params, seed));
     }},
};

}  // namespace

ProblemInput generate_preset(const std::string& preset, std::uint64_t seed) {
  for (const Preset& entry : kPresets) {
    if (preset == entry.name) return entry.make(seed);
  }
  throw CheckError("unknown preset '" + preset + "'");
}

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kPresets));
  for (const Preset& entry : kPresets) names.emplace_back(entry.name);
  return names;
}

ProblemInput load_problem(const std::string& path) {
  std::ifstream file(path);
  check(file.good(), "cannot open instance file '" + path + "'");
  // Sniff the kind token of the "setsched <kind> <version>" header.
  std::string magic, kind;
  check(static_cast<bool>(file >> magic >> kind),
        "instance file '" + path + "' has no header");
  file.seekg(0);
  if (kind == "uniform") {
    return ProblemInput::from_uniform(load_uniform(file));
  }
  return ProblemInput::from_unrelated(load_instance(file));
}

}  // namespace setsched
