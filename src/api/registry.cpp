#include "api/registry.h"

#include <sstream>
#include <utility>

#include "colgen/config_lp.h"
#include "common/check.h"
#include "core/bounds.h"
#include "core/schedule.h"
#include "exact/branch_bound.h"
#include "improve/local_search.h"
#include "restricted/approx.h"
#include "uniform/lpt.h"
#include "uniform/ptas.h"
#include "unrelated/greedy.h"
#include "unrelated/rounding.h"

namespace setsched {

namespace {

using SupportsFn = bool (*)(const ProblemInput&);
using SolveFn = ScheduleResult (*)(const ProblemInput&, const SolverContext&);

/// Adapter turning a pair of free functions into a Solver. All built-in
/// algorithms are stateless, so this is the only implementation needed.
class FunctionSolver final : public Solver {
 public:
  FunctionSolver(std::string name, SupportsFn supports, SolveFn solve)
      : name_(std::move(name)), supports_(supports), solve_(solve) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] bool supports(const ProblemInput& input) const override {
    return supports_ == nullptr || supports_(input);
  }

  [[nodiscard]] ScheduleResult solve(const ProblemInput& input,
                                     const SolverContext& context) const override {
    check(supports(input), "solver '" + name_ +
                               "' does not support this instance "
                               "(structural precondition failed)");
    return solve_(input, context);
  }

 private:
  std::string name_;
  SupportsFn supports_;
  SolveFn solve_;
};

/// Re-evaluates the schedule on the matrix form so every solver's makespan
/// is computed by the same code path (makes results comparable and lets the
/// tests assert makespan consistency); LP-based solvers pass their effort
/// counters through.
ScheduleResult finish(const Instance& instance, Schedule schedule,
                      SolverStats stats = {}) {
  const double value = makespan(instance, schedule);
  return ScheduleResult{std::move(schedule), value, stats};
}

bool has_uniform(const ProblemInput& input) { return input.uniform.has_value(); }

bool is_restricted(const ProblemInput& input) {
  return is_restricted_class_uniform(input.instance);
}

bool is_class_uniform(const ProblemInput& input) {
  return is_class_uniform_processing(input.instance);
}

/// Surfaces the exact subsystem's result contract: a node/time-budget abort
/// is visible (proven_optimal false, positive gap) instead of masquerading
/// as ground truth, and the search effort counters ride along.
SolverStats exact_stats(const ExactResult& result) {
  SolverStats stats;
  stats.lp_solves = result.lp_bounds_used;
  stats.lp_iterations = result.lp_iterations;
  stats.lp_dual_solves = result.lp_dual_solves;
  stats.nodes = result.nodes;
  stats.lp_bounds_used = result.lp_bounds_used;
  stats.fixed_vars = result.fixed_vars;
  stats.lp_audits_suspect = result.lp_audits_suspect;
  stats.lp_recoveries = result.lp_recoveries;
  stats.lp_oracle_fallbacks = result.lp_oracle_fallbacks;
  stats.cg_columns = result.cg_columns;
  stats.cg_pricing_rounds = result.cg_pricing_rounds;
  stats.cg_fallbacks = result.cg_fallbacks;
  stats.proven_optimal = result.proven_optimal;
  stats.gap = result.gap;
  return stats;
}

SolverStats rounding_stats(const RoundingResult& result) {
  SolverStats stats;
  stats.lp_solves = result.lp_solves;
  stats.lp_iterations = result.lp_iterations;
  stats.lp_dual_solves = result.lp_dual_solves;
  stats.lp_audits_suspect = result.lp_audits_suspect;
  stats.lp_recoveries = result.lp_recoveries;
  stats.lp_oracle_fallbacks = result.lp_oracle_fallbacks;
  return stats;
}

/// Fault injection without the audit guard would just propagate corruption;
/// arming the plan therefore forces the warm-chain audit cadence to "every
/// solve" no matter what the caller configured.
std::size_t effective_audit_interval(const SolverContext& context) {
  return context.fault_plan.any() ? 1 : context.lp_audit_interval;
}

const lp::FaultPlan* armed_plan(const SolverContext& context) {
  return context.fault_plan.any() ? &context.fault_plan : nullptr;
}

RoundingOptions rounding_options(const SolverContext& context) {
  RoundingOptions options;
  options.seed = context.seed;
  options.search_precision = context.precision;
  options.lp.simplex.algorithm = context.lp_algorithm;
  options.lp.simplex.pricing = context.lp_pricing;
  options.lp.simplex.fault_plan = armed_plan(context);
  options.lp.audit_interval = effective_audit_interval(context);
  options.pool = context.pool;
  return options;
}

void register_builtin_solvers(SolverRegistry& registry) {
  const auto add = [&registry](std::string name, SupportsFn supports,
                               SolveFn solve) {
    registry.add(name, [name, supports, solve] {
      return std::make_unique<FunctionSolver>(name, supports, solve);
    });
  };

  // -- Baselines (any instance) --------------------------------------------
  add("best-machine", nullptr,
      [](const ProblemInput& input, const SolverContext&) {
        return finish(input.instance, best_machine_schedule(input.instance));
      });
  add("greedy", nullptr, [](const ProblemInput& input, const SolverContext&) {
    return finish(input.instance, greedy_min_load(input.instance).schedule);
  });
  add("greedy-classes", nullptr,
      [](const ProblemInput& input, const SolverContext&) {
        return finish(input.instance, greedy_class_batch(input.instance).schedule);
      });
  add("cover-greedy", nullptr,
      [](const ProblemInput& input, const SolverContext&) {
        return finish(input.instance, cover_greedy(input.instance).schedule);
      });

  // -- Uniformly related machines (Section 2) ------------------------------
  add("lpt", has_uniform, [](const ProblemInput& input, const SolverContext&) {
    return finish(input.instance, lpt_with_placeholders(*input.uniform).schedule);
  });
  add("lpt-plain", has_uniform,
      [](const ProblemInput& input, const SolverContext&) {
        return finish(input.instance, lpt_uniform(*input.uniform).schedule);
      });
  add("ptas", has_uniform,
      [](const ProblemInput& input, const SolverContext& context) {
        PtasOptions options;
        options.epsilon = context.epsilon;
        return finish(input.instance,
                      ptas_uniform(*input.uniform, options).schedule);
      });

  // -- Unrelated machines (Section 3.1) ------------------------------------
  add("assignment-lp", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        AssignmentLpOptions options;
        options.simplex.algorithm = context.lp_algorithm;
        options.simplex.pricing = context.lp_pricing;
        options.simplex.fault_plan = armed_plan(context);
        options.audit_interval = effective_audit_interval(context);
        ScheduleResult result =
            argmax_rounding(input.instance, context.precision, options);
        return finish(input.instance, std::move(result.schedule),
                      result.stats);
      });
  add("rounding", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        const RoundingResult result =
            randomized_rounding(input.instance, rounding_options(context));
        return finish(input.instance, result.schedule,
                      rounding_stats(result));
      });
  add("colgen", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        ConfigLpOptions config;
        config.pool = context.pool;
        config.simplex.algorithm = context.lp_algorithm;
        config.simplex.pricing = context.lp_pricing;
        config.simplex.fault_plan = armed_plan(context);
        config.simplex.guard = effective_audit_interval(context) > 0;
        const RoundingResult result = randomized_rounding_config(
            input.instance, rounding_options(context), config);
        return finish(input.instance, result.schedule,
                      rounding_stats(result));
      });

  // -- Special structures (Section 3.3) ------------------------------------
  add("restricted-2approx", is_restricted,
      [](const ProblemInput& input, const SolverContext& context) {
        lp::SimplexOptions simplex;
        simplex.algorithm = context.lp_algorithm;
        simplex.pricing = context.lp_pricing;
        simplex.fault_plan = armed_plan(context);
        simplex.guard = effective_audit_interval(context) > 0;
        const ConstantApproxResult result =
            two_approx_restricted(input.instance, context.precision, simplex);
        SolverStats stats;
        stats.lp_solves = result.lp_solves;
        stats.lp_iterations = result.lp_iterations;
        return finish(input.instance, result.schedule, stats);
      });
  add("classuniform-3approx", is_class_uniform,
      [](const ProblemInput& input, const SolverContext& context) {
        lp::SimplexOptions simplex;
        simplex.algorithm = context.lp_algorithm;
        simplex.pricing = context.lp_pricing;
        simplex.fault_plan = armed_plan(context);
        simplex.guard = effective_audit_interval(context) > 0;
        const ConstantApproxResult result = three_approx_class_uniform(
            input.instance, context.precision, simplex);
        SolverStats stats;
        stats.lp_solves = result.lp_solves;
        stats.lp_iterations = result.lp_iterations;
        return finish(input.instance, result.schedule, stats);
      });

  // -- Exact and improvement -----------------------------------------------
  add("exact", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        ExactOptions options;
        options.time_limit_s = context.time_limit_s;
        options.initial_upper_bound = unrelated_upper_bound(input.instance);
        options.lp_algorithm = context.lp_algorithm;
        options.lp_pricing = context.lp_pricing;
        options.fault_plan = armed_plan(context);
        options.deadline = context.deadline;
        const ExactResult result = solve_exact(input.instance, options);
        return finish(input.instance, result.schedule, exact_stats(result));
      });
  add("branch-and-price", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        ExactOptions options;
        // Configuration-LP bounds (exact/config_bound.h) on top of the
        // assignment probes, riding the dive-then-prove chain: the dive's
        // incumbent tightens the cutoff the config-LP root bisection works
        // against, and the fine-grid root pass pushes the certified bound
        // past what the assignment LP can see. kAuto demotes the per-node
        // pricing back to assignment-only when it is not earning its keep,
        // so the solver is never worse than `dive-then-prove` by more than
        // the root bisection's cost.
        options.mode = ExactMode::kDiveThenProve;
        options.bound = BoundMode::kAuto;
        options.time_limit_s = context.time_limit_s;
        options.initial_upper_bound = unrelated_upper_bound(input.instance);
        options.lp_algorithm = context.lp_algorithm;
        options.lp_pricing = context.lp_pricing;
        options.fault_plan = armed_plan(context);
        options.deadline = context.deadline;
        const ExactResult result = solve_exact(input.instance, options);
        return finish(input.instance, result.schedule, exact_stats(result));
      });
  add("exact-dive", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        ExactOptions options;
        options.mode = ExactMode::kDive;
        options.time_limit_s = context.time_limit_s;
        options.initial_upper_bound = unrelated_upper_bound(input.instance);
        options.lp_algorithm = context.lp_algorithm;
        options.lp_pricing = context.lp_pricing;
        options.fault_plan = armed_plan(context);
        options.deadline = context.deadline;
        const ExactResult result = solve_exact(input.instance, options);
        return finish(input.instance, result.schedule, exact_stats(result));
      });
  add("dive-then-prove", nullptr,
      [](const ProblemInput& input, const SolverContext& context) {
        ExactOptions options;
        options.mode = ExactMode::kDiveThenProve;
        options.time_limit_s = context.time_limit_s;
        options.initial_upper_bound = unrelated_upper_bound(input.instance);
        options.lp_algorithm = context.lp_algorithm;
        options.lp_pricing = context.lp_pricing;
        options.fault_plan = armed_plan(context);
        options.deadline = context.deadline;
        const ExactResult result = solve_exact(input.instance, options);
        return finish(input.instance, result.schedule, exact_stats(result));
      });
  add("local-search", nullptr,
      [](const ProblemInput& input, const SolverContext&) {
        const ScheduleResult start = greedy_min_load(input.instance);
        const LocalSearchResult improved =
            local_search(input.instance, start.schedule);
        return finish(input.instance, improved.schedule);
      });
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(std::string name, Factory factory) {
  check(!name.empty(), "solver name must be non-empty");
  check(static_cast<bool>(factory), "solver factory must be callable");
  const auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  check(inserted, "duplicate solver name '" + it->first + "'");
}

bool SolverRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Solver> SolverRegistry::create(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::ostringstream os;
    os << "unknown solver '" << name << "'; registered:";
    for (const auto& [known, factory] : factories_) os << ' ' << known;
    check(false, os.str());
  }
  return it->second();
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) result.push_back(name);
  return result;  // std::map iterates in sorted order
}

}  // namespace setsched
