#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/solver.h"

namespace setsched {

/// Name -> factory map over Solver implementations. The process-wide
/// global() registry comes pre-populated with every algorithm of the seed
/// library; PRs adding a new algorithm register it once here and it is
/// immediately reachable from the CLI, the tests and the benchmarks.
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// The process-wide registry, built (thread-safely, on first use) with all
  /// built-in solvers.
  [[nodiscard]] static SolverRegistry& global();

  /// Registers a factory; throws CheckError on a duplicate name.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Instantiates the named solver; throws CheckError on unknown names
  /// (the message lists all registered names).
  [[nodiscard]] std::unique_ptr<Solver> create(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace setsched
