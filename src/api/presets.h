#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/solver.h"

namespace setsched {

/// Named instance families shared by the CLI, tests and examples. Each
/// preset fixes the generator and its shape parameters; the seed picks the
/// member of the family. Throws CheckError for unknown names.
[[nodiscard]] ProblemInput generate_preset(const std::string& preset,
                                           std::uint64_t seed);

/// All preset names, sorted.
[[nodiscard]] std::vector<std::string> preset_names();

/// Loads an instance file in the core/io.h text format, dispatching on the
/// header kind ("uniform" files keep their structured form, so the uniform
/// solvers stay applicable).
[[nodiscard]] ProblemInput load_problem(const std::string& path);

}  // namespace setsched
