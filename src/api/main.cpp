// setsched_cli — unified driver over the SolverRegistry.
//
// Usage:
//   setsched_cli --list
//   setsched_cli --solver=<name> (--instance=<file> | --generate=<preset>)
//   setsched_cli --all           (--instance=<file> | --generate=<preset>)
//   setsched_cli --batch (--solver=<name> ... | --all) --generate=<presets>
//                [--seeds=N | --seeds=A..B] [--threads=N] [--jsonl=PATH]
//                [--no-timing]
//
// Options: --seed=N --epsilon=E --precision=P --time-limit=S
//          --inject=SPEC --lp-audit-interval=N
//          --lp=auto|tableau|revised|dual --lp-pricing=candidate|devex --csv
//          --trace=PATH (Chrome trace-event JSON of the run; both modes)
// Presets: uniform-small uniform-large unrelated-small unrelated-medium
//          unrelated-midsize restricted class-uniform planted
// (The README's flag table and docs/SOLVERS.md mirror this block; the
// docs-vs-registry ctest keeps the preset/solver listings honest.)

#include <cmath>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/presets.h"
#include "api/registry.h"
#include "common/check.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/bounds.h"
#include "core/schedule.h"
#include "expt/aggregate.h"
#include "expt/harness.h"
#include "expt/plan.h"
#include "expt/record_io.h"
#include "lp/fault.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched {
namespace {

struct CliOptions {
  std::vector<std::string> solvers;
  bool all = false;
  bool list = false;
  bool csv = false;
  std::string instance_path;
  std::string preset;
  std::uint64_t seed = 1;
  SolverContext context;
  /// LP fault-injection spec (lp::FaultPlan::parse syntax); seeded from
  /// --seed in single-run mode, per cell_seed in --batch mode. Empty = off.
  std::string inject;
  std::size_t lp_audit_interval = 0;
  // --batch sweep mode (delegates to the src/expt harness).
  bool batch = false;
  std::string seeds;  // "N" or "A..B"; empty means the single --seed
  std::size_t threads = 0;
  std::string jsonl_path;
  bool record_timing = true;
  std::string trace_path;  // valid in both single-run and --batch modes
};

void print_usage(std::ostream& os) {
  os << "usage: setsched_cli --list\n"
     << "       setsched_cli (--solver=<name> ... | --all)\n"
     << "                    (--instance=<file> | --generate=<preset>)\n"
     << "                    [--seed=N] [--epsilon=E] [--precision=P]\n"
     << "                    [--time-limit=S] [--lp=auto|tableau|revised|dual]\n"
     << "                    [--lp-pricing=candidate|devex] [--csv]\n"
     << "                    [--inject=SPEC] [--lp-audit-interval=N]\n"
     << "                    [--trace=PATH]\n"
     << "       setsched_cli --batch (--solver=<name> ... | --all)\n"
     << "                    --generate=<preset,...> [--seeds=N | --seeds=A..B]\n"
     << "                    [--threads=N] [--jsonl=PATH] [--no-timing]\n"
     << "                    [--trace=PATH]\n"
     << "presets:";
  for (const std::string& preset : preset_names()) os << ' ' << preset;
  os << '\n';
}

bool consume(const std::string& arg, const std::string& key, std::string* value) {
  if (arg.rfind(key + "=", 0) != 0) return false;
  *value = arg.substr(key.size() + 1);
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    std::string value;
    try {
      if (arg == "--list") {
        options.list = true;
      } else if (arg == "--all") {
        options.all = true;
      } else if (arg == "--csv") {
        options.csv = true;
      } else if (arg == "--batch") {
        options.batch = true;
      } else if (arg == "--no-timing") {
        options.record_timing = false;
      } else if (consume(arg, "--seeds", &value)) {
        options.seeds = value;
      } else if (consume(arg, "--threads", &value)) {
        options.threads =
            static_cast<std::size_t>(expt::parse_u64(value, "threads"));
      } else if (consume(arg, "--jsonl", &value)) {
        options.jsonl_path = value;
      } else if (consume(arg, "--trace", &value)) {
        options.trace_path = value;
      } else if (consume(arg, "--solver", &value)) {
        options.solvers.push_back(value);
      } else if (consume(arg, "--instance", &value)) {
        options.instance_path = value;
      } else if (consume(arg, "--generate", &value)) {
        options.preset = value;
      } else if (consume(arg, "--seed", &value)) {
        options.seed = std::stoull(value);
      } else if (consume(arg, "--epsilon", &value)) {
        options.context.epsilon = std::stod(value);
      } else if (consume(arg, "--precision", &value)) {
        options.context.precision = std::stod(value);
      } else if (consume(arg, "--time-limit", &value)) {
        options.context.time_limit_s = std::stod(value);
      } else if (consume(arg, "--inject", &value)) {
        options.inject = value;
      } else if (consume(arg, "--lp-pricing", &value)) {
        options.context.lp_pricing = expt::lp_pricing_from_name(value);
      } else if (consume(arg, "--lp-audit-interval", &value)) {
        options.lp_audit_interval =
            static_cast<std::size_t>(expt::parse_u64(value, "lp_audit_interval"));
      } else if (consume(arg, "--lp", &value)) {
        options.context.lp_algorithm = expt::lp_algorithm_from_name(value);
      } else {
        std::cerr << "setsched_cli: unknown argument '" << arg << "'\n";
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::cerr << "setsched_cli: bad numeric value in '" << arg << "'\n";
      return std::nullopt;
    }
  }
  options.context.seed = options.seed;
  return options;
}

struct RunOutcome {
  std::string solver;
  bool supported = true;
  bool valid = false;
  double makespan = 0.0;
  double ratio = 0.0;
  std::size_t setups = 0;
  double time_ms = 0.0;
  SolverStats stats;
  std::string error;
};

/// Certificate column: "yes" for a proven optimum, the certified gap for a
/// budget-exhausted exact/dive run, "-" for heuristics. Makes a node/time
/// budget abort visible instead of masquerading as ground truth.
std::string describe_certificate(const SolverStats& stats) {
  if (stats.proven_optimal) return "yes";
  if (stats.gap >= 0.0) {
    std::ostringstream os;
    os << "gap " << format_double(stats.gap);
    return os.str();
  }
  return "-";
}

RunOutcome run_solver(const std::string& name, const ProblemInput& input,
                      const SolverContext& context, double lower_bound) {
  RunOutcome outcome;
  outcome.solver = name;
  try {
    const std::unique_ptr<Solver> solver = SolverRegistry::global().create(name);
    if (!solver->supports(input)) {
      outcome.supported = false;
      outcome.error = "precondition not met";
      return outcome;
    }
    std::optional<obs::TraceSpan> span;
    if (obs::trace_enabled()) {
      span.emplace(obs::intern(name), "solve");
    }
    const obs::PhaseTimes phases_before = obs::phase_snapshot();
    Timer timer;
    const ScheduleResult result = solver->solve(input, context);
    outcome.time_ms = timer.elapsed_ms();
    const obs::PhaseTimes phase_delta = obs::phase_snapshot() - phases_before;
    if (const auto error = schedule_error(input.instance, result.schedule)) {
      outcome.error = "invalid schedule: " + *error;
      return outcome;
    }
    const double evaluated = makespan(input.instance, result.schedule);
    if (std::abs(evaluated - result.makespan) >
        1e-9 * std::max(1.0, evaluated)) {
      outcome.error = "reported makespan disagrees with schedule";
      return outcome;
    }
    outcome.valid = true;
    outcome.makespan = result.makespan;
    outcome.ratio = lower_bound > 0.0 ? result.makespan / lower_bound : 1.0;
    outcome.setups = total_setups(input.instance, result.schedule);
    outcome.stats = result.stats;
    // Phase accounting is captured here at the measurement boundary, not by
    // the solver (which reports algorithmic counters only).
    outcome.stats.phase_ms = phase_delta;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

int list_solvers(bool csv) {
  Table table({"solver"});
  for (const std::string& name : SolverRegistry::global().names()) {
    table.row().add(name);
  }
  csv ? table.print_csv(std::cout) : table.print(std::cout);
  return 0;
}

int run(const CliOptions& options) {
  // Single-run mode always reports time_ms, so always fill its breakdown.
  obs::set_timing_enabled(true);
  const ProblemInput input = options.instance_path.empty()
                                 ? generate_preset(options.preset, options.seed)
                                 : load_problem(options.instance_path);
  const double lower_bound = unrelated_lower_bound(input.instance);

  std::vector<std::string> names = options.solvers;
  if (options.all) names = SolverRegistry::global().names();

  std::vector<RunOutcome> outcomes(names.size());
  SolverContext context = options.context;
  context.lp_audit_interval = options.lp_audit_interval;
  if (!options.inject.empty()) {
    context.fault_plan = lp::FaultPlan::parse(options.inject, options.seed);
  }
  if (options.all && names.size() > 1) {
    // One solver per pool task; solvers must not nest into the same pool.
    context.pool = nullptr;
    ThreadPool& pool = default_pool();
    pool.parallel_for(0, names.size(), [&](std::size_t s) {
      outcomes[s] = run_solver(names[s], input, context, lower_bound);
    });
  } else {
    context.pool = &default_pool();
    for (std::size_t s = 0; s < names.size(); ++s) {
      outcomes[s] = run_solver(names[s], input, context, lower_bound);
    }
  }

  std::ostringstream describe_source;
  if (!options.instance_path.empty()) {
    describe_source << "instance " << options.instance_path;
  } else {
    describe_source << "preset " << options.preset << " (seed " << options.seed
                    << ")";
  }
  if (!options.csv) {
    std::cout << describe_source.str() << ": " << input.instance.num_jobs()
              << " jobs, " << input.instance.num_machines() << " machines, "
              << input.instance.num_classes() << " classes, lower bound "
              << format_double(lower_bound) << "\n\n";
  }

  Table table({"solver", "status", "makespan", "ratio_lb", "setups", "optimal",
               "time_ms", "lp%"});
  bool any_failed = false;
  for (const RunOutcome& outcome : outcomes) {
    table.row().add(outcome.solver);
    if (outcome.valid) {
      table.add("ok")
          .add(outcome.makespan)
          .add(outcome.ratio)
          .add(outcome.setups)
          .add(describe_certificate(outcome.stats))
          .add(outcome.time_ms, 1);
      // Percent of the solve's wall clock inside the LP substrate.
      if (outcome.time_ms > 0.0) {
        table.add(100.0 * outcome.stats.phase_ms.lp_ms() / outcome.time_ms, 1);
      } else {
        table.add("-");
      }
    } else if (!outcome.supported) {
      table.add("skipped").add("-").add("-").add("-").add("-").add("-").add(
          "-");
    } else {
      any_failed = true;
      table.add("FAILED").add("-").add("-").add("-").add("-").add("-").add("-");
      std::cerr << "setsched_cli: " << outcome.solver << ": " << outcome.error
                << "\n";
    }
  }
  if (options.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return any_failed ? 2 : 0;
}

// --batch: one sweep over presets × seeds × solvers via the expt harness,
// reported as the per-(solver, preset) aggregate table.
int run_batch(const CliOptions& options) {
  expt::ExperimentPlan plan;
  plan.presets = expt::split_list(options.preset);
  plan.solvers =
      options.all ? SolverRegistry::global().names() : options.solvers;
  if (options.seeds.empty()) {
    plan.seed_begin = plan.seed_end = options.seed;
  } else {
    expt::parse_seed_range(options.seeds, &plan.seed_begin, &plan.seed_end);
  }
  plan.epsilon = options.context.epsilon;
  plan.precision = options.context.precision;
  plan.time_limit_s = options.context.time_limit_s;
  plan.lp_algorithm = options.context.lp_algorithm;
  plan.lp_pricing = options.context.lp_pricing;
  plan.inject = options.inject;
  plan.lp_audit_interval = options.lp_audit_interval;
  plan.threads = options.threads;
  plan.record_timing = options.record_timing;
  plan.validate();

  if (!options.csv) {
    std::cout << "batch sweep: " << plan.presets.size() << " presets x "
              << plan.num_seeds() << " seeds x " << plan.solvers.size()
              << " solvers = " << plan.num_cells() << " cells\n\n";
  }
  const std::vector<expt::RunRecord> records = expt::run_experiment(plan);
  if (!options.jsonl_path.empty()) {
    std::ofstream file(options.jsonl_path);
    check(file.good(),
          "cannot open JSONL output file '" + options.jsonl_path + "'");
    expt::write_jsonl(file, records);
    check(file.good(), "failed writing JSONL to '" + options.jsonl_path + "'");
  }

  const Table table = expt::summary_table(expt::aggregate(records));
  options.csv ? table.print_csv(std::cout) : table.print(std::cout);

  bool any_failed = false;
  for (const expt::RunRecord& record : records) {
    if (record.status == expt::RunStatus::kInvalid ||
        record.status == expt::RunStatus::kError) {
      any_failed = true;
      std::cerr << "setsched_cli: " << record.solver << " on " << record.preset
                << " seed " << record.seed << ": " << record.error << "\n";
    }
  }
  return any_failed ? 2 : 0;
}

int cli_main(int argc, char** argv) {
  const std::optional<CliOptions> options = parse_args(argc, argv);
  if (!options) {
    print_usage(std::cerr);
    return 1;
  }
  if (options->list) return list_solvers(options->csv);
  if (options->solvers.empty() && !options->all) {
    std::cerr << "setsched_cli: pick --solver=<name> or --all\n";
    print_usage(std::cerr);
    return 1;
  }
  if (options->batch &&
      (options->preset.empty() || !options->instance_path.empty())) {
    std::cerr << "setsched_cli: --batch sweeps generated presets only "
                 "(--generate=<preset,...>)\n";
    print_usage(std::cerr);
    return 1;
  }
  if (!options->batch &&
      (!options->seeds.empty() || options->threads != 0 ||
       !options->jsonl_path.empty() || !options->record_timing)) {
    std::cerr << "setsched_cli: --seeds/--threads/--jsonl/--no-timing "
                 "require --batch\n";
    print_usage(std::cerr);
    return 1;
  }
  if (!options->batch &&
      options->instance_path.empty() == options->preset.empty()) {
    std::cerr << "setsched_cli: pick exactly one of --instance / --generate\n";
    print_usage(std::cerr);
    return 1;
  }
  try {
    if (!options->trace_path.empty()) obs::start_trace();
    const int rc = options->batch ? run_batch(*options) : run(*options);
    if (!options->trace_path.empty()) {
      obs::stop_trace();
      std::ofstream file(options->trace_path);
      check(file.good(),
            "cannot open trace output file '" + options->trace_path + "'");
      obs::write_chrome_trace(file);
      check(file.good(),
            "failed writing trace to '" + options->trace_path + "'");
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "setsched_cli: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace setsched

int main(int argc, char** argv) { return setsched::cli_main(argc, argv); }
