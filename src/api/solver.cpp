#include "api/solver.h"

#include <utility>

namespace setsched {

ProblemInput ProblemInput::from_unrelated(Instance instance) {
  instance.validate();
  return ProblemInput{std::move(instance), std::nullopt};
}

ProblemInput ProblemInput::from_uniform(UniformInstance uniform) {
  uniform.validate();
  Instance instance = uniform.to_unrelated();
  return ProblemInput{std::move(instance), std::move(uniform)};
}

bool Solver::supports(const ProblemInput&) const { return true; }

}  // namespace setsched
