#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/thread_pool.h"
#include "core/instance.h"
#include "core/result.h"
#include "lp/fault.h"
#include "lp/simplex.h"

namespace setsched {

/// Input handed to every registered solver: the general matrix form plus,
/// when the instance is known to be uniformly related, the structured form
/// required by the uniform-machines algorithms (LPT, PTAS). The matrix form
/// is always present and is the single source of truth for evaluating
/// schedules, so results from different solvers are directly comparable.
struct ProblemInput {
  Instance instance;
  std::optional<UniformInstance> uniform;

  [[nodiscard]] static ProblemInput from_unrelated(Instance instance);
  [[nodiscard]] static ProblemInput from_uniform(UniformInstance uniform);
};

/// Runtime knobs shared by all solvers; each solver reads what it needs and
/// ignores the rest, so one context can drive the whole registry.
struct SolverContext {
  std::uint64_t seed = 1;
  /// Accuracy parameter for the uniform PTAS.
  double epsilon = 0.5;
  /// Binary-search precision for the LP-based solvers.
  double precision = 0.05;
  /// Wall-clock budget for the exact branch-and-bound.
  double time_limit_s = 10.0;
  /// Simplex implementation for the LP-based solvers (kAuto = the sparse
  /// revised path with warm starts and dual re-optimization; kTableau
  /// forces the dense reference oracle, which is what pre-PR-3 behavior
  /// looked like end to end; kDual prefers the dual simplex for every
  /// dual-feasible start).
  lp::SimplexAlgorithm lp_algorithm = lp::SimplexAlgorithm::kAuto;
  /// Primal pricing rule of the revised solver (kDevex trades wall clock
  /// for fewer iterations; see lp/simplex.h).
  lp::SimplexPricing lp_pricing = lp::SimplexPricing::kCandidate;
  /// Optional pool for intra-solver parallelism (rounding trials, colgen
  /// pricing). Null means sequential.
  ThreadPool* pool = nullptr;
  /// Deterministic LP fault-injection plan (lp/fault.h; CLI --inject).
  /// Disarmed by default; when armed, every LP-backed solver routes it into
  /// its simplex solves and enables the residual-audit guard so the
  /// injected corruption is caught and recovered instead of propagated.
  lp::FaultPlan fault_plan;
  /// Residual-audit cadence for the approximation pipelines' warm LP chains
  /// (every Nth solve audited; 0 = off). The exact solvers' bound probes are
  /// always audited regardless. Forced to 1 while fault_plan is armed.
  std::size_t lp_audit_interval = 0;
  /// Optional hard wall-clock deadline (harness watchdog): search-based
  /// solvers abort their budget when the steady clock passes it, bounding a
  /// whole solve call — including setup phases — to the cell's time slot.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Polymorphic facade over the algorithm zoo. Implementations are stateless:
/// solve() may be called concurrently from different threads on different
/// inputs. Every solver returns a complete schedule whose makespan field is
/// re-evaluated on input.instance (see ScheduleResult).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Identifier under which the solver is registered.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True iff the solver's structural preconditions hold for `input`
  /// (e.g. the PTAS needs the uniform form, the 2-approximation needs
  /// class-uniform restrictions). solve() throws CheckError otherwise.
  [[nodiscard]] virtual bool supports(const ProblemInput& input) const;

  [[nodiscard]] virtual ScheduleResult solve(const ProblemInput& input,
                                             const SolverContext& context) const = 0;
};

}  // namespace setsched
