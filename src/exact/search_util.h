#pragma once

#include <vector>

#include "core/instance.h"
#include "exact/branch_bound.h"

namespace setsched::exact {

/// Static per-instance search data shared by the prove and dive modes.
struct SearchPlan {
  /// Branching order: classes by descending total minimum work, jobs inside
  /// a class by descending minimum processing time (good incumbents early,
  /// setups shared early).
  std::vector<JobId> order;
  /// Cheapest eligible processing time per job.
  std::vector<double> min_proc;
  /// Sum of min_proc (seed of the average-load bound).
  double min_total = 0.0;
  /// Machine-equivalence representative: machines with identical processing
  /// columns and setup rows are interchangeable; rep[i] is the smallest
  /// equivalent machine. Sound under eligibility because equivalence implies
  /// identical eligibility.
  std::vector<MachineId> machine_rep;
};

[[nodiscard]] SearchPlan build_search_plan(const Instance& instance);

/// True iff machine `i` duplicates an earlier candidate under the current
/// search state: some equivalent machine r < i has the same load and the
/// same paid-setup row, so branching on r already covers i up to the swap
/// automorphism. `class_on` is the m x num_classes paid-setup matrix in
/// row-major layout.
[[nodiscard]] bool symmetric_duplicate(const Instance& instance,
                                       const SearchPlan& plan, MachineId i,
                                       const std::vector<double>& loads,
                                       const std::vector<char>& class_on);

/// Fills the certificate fields of `out` (proven_optimal, lower_bound, gap)
/// from the incumbent makespan, the best certified lower bound, and whether
/// the search ran to completion. An incumbent that meets the lower bound is
/// proven optimal even when the search was truncated; a complete search
/// raises the lower bound to the incumbent.
void certify(ExactResult* out, double lower_bound, bool search_complete);

/// Adopts ExactOptions::initial_schedule as the search's starting incumbent
/// when it beats the one in *best (shared by the prove and dive modes).
/// Throws CheckError when the schedule is incomplete or infeasible for the
/// instance — an invalid external incumbent must fail loudly, not silently
/// corrupt the ground truth.
void adopt_initial_schedule(const Instance& instance, const Schedule& initial,
                            Schedule* best, double* incumbent);

}  // namespace setsched::exact
