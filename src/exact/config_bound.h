#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "colgen/config_lp.h"
#include "core/instance.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace setsched::exact {

/// Knobs of the configuration-LP bounder (defaults match ExactOptions').
struct ConfigBoundOptions {
  /// Pricing grid resolution (ConfigLpOptions::grid). The conservative probe
  /// inflation is (n + classes) / grid, so the grid must comfortably exceed
  /// the instance size (see kCgMaxGridSlack).
  std::size_t grid = 2048;
  /// Pricing rounds per node probe before declaring a stall (the probe then
  /// demotes to "no bound" and the caller falls back to the assignment LP).
  std::size_t rounds_per_node = 6;
  /// Probe budget of the root-bound bisection.
  std::size_t root_probes = 12;
  /// Pricing-round budget of each ROOT bisection probe. Root probes amortize
  /// over the whole tree, so they get enough rounds to actually converge
  /// (a node-probe stall just skips one prune; a root-probe stall forfeits
  /// the certified bound for the entire search).
  std::size_t root_rounds = 80;
  /// Optional wall-clock cutoff for the root bisection: probes stop once the
  /// deadline passes (the bound certified so far is kept). Node probes are
  /// not checked — they are budgeted by rounds_per_node.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Simplex knobs for the RMP solves (guard is always forced on: every
  /// verdict the search prunes on must survive a residual audit).
  lp::SimplexOptions simplex;
};

/// Configuration-LP bounds for the branch-and-bound: branch-and-price. The
/// restricted master (job-coverage maximization over configuration columns,
/// colgen/config_lp.h) is built ONCE and only ever grows; every probe
/// warm-starts from the previous node's basis exactly like the T-search warm
/// chain, and pricing at a node is restricted to configurations consistent
/// with the node's partial schedule (price_machine_config pins). The column
/// pool and basis survive backtracking: columns are never erased — a column
/// inconsistent with the current pins (or too loaded for the current probe
/// T) is disabled by forcing its bounds to [0, 0], so basis indices stay
/// stable and unpinning re-enables exactly what pinning disabled.
///
/// Soundness of every prune rests on two certificates:
///   * Grid conservatism: probes at T run the pricer at
///     T_eff = T / (1 - (n + classes)/grid), so ANY configuration whose true
///     load is <= T has rounded weight <= grid at T_eff's unit — the
///     integral schedule's own columns are always priceable.
///   * LP weak duality: when exhaustive pricing finds no improving
///     pin-consistent column, the RMP duals are (within tolerance) feasible
///     for the full pin-consistent master, so RMP coverage below n certifies
///     the master below n — no fractional (hence no integral) completion of
///     the pinned partial schedule fits in T. Extra pool columns (priced at
///     looser T or under other pins) can only RAISE the RMP optimum, so they
///     weaken prunes but never corrupt them; disabling them is purely a
///     bound-quality measure.
/// Contested (guard-audited) or non-optimal RMP solves demote the probe to
/// "no bound" — the node is searched, never pruned on corrupted numerics.
class ConfigLpBounder {
 public:
  /// Builds the empty RMP at probe bound `T_build` (<= 0 disables the
  /// bounder, as does a grid too coarse for the instance size).
  ConfigLpBounder(const Instance& instance, double T_build,
                  const ConfigBoundOptions& options);

  [[nodiscard]] bool available() const noexcept { return available_; }

  /// Pin/unpin the branching decision "job j runs on machine i". Pool
  /// columns conflicting with the pin (machine-i columns missing j, other
  /// machines' columns containing j) are disabled while it is active.
  /// Columns priced under an active pin are consistent with it by
  /// construction, so unpin() re-enables exactly the set pin() disabled.
  void pin(JobId j, MachineId i);
  void unpin(JobId j);

  /// True iff a fractional configuration-LP completion respecting the pins
  /// with makespan <= T may exist (or the bounder is unavailable / the probe
  /// was demoted). False CERTIFIES no completion of the pinned partial
  /// schedule has makespan <= T — a sound prune against a cutoff of T.
  [[nodiscard]] bool feasible(double T);

  /// Certified lower bound on OPT from the (unpinned) relaxation: bisects
  /// [lo, hi] on feasible(), climbing `lo` over every certified-infeasible
  /// midpoint. Call before any pins are set; `lo` must itself be a valid
  /// bound (it is returned unimproved when no probe certifies more).
  [[nodiscard]] double root_lower_bound(double lo, double hi);

  // --- effort counters (SolverStats cg_* trio + internals) -----------------
  /// Configuration columns priced into the RMP (pool size; append-only).
  [[nodiscard]] std::size_t columns() const noexcept { return pool_.size(); }
  /// Pricing rounds across all probes (each runs one RMP solve + one
  /// all-machines pricing pass).
  [[nodiscard]] std::size_t pricing_rounds() const noexcept {
    return pricing_rounds_;
  }
  /// Probes demoted to "no bound": contested/non-optimal RMP solves plus
  /// round-limit stalls. The caller's auto-mode demotion adds to this.
  [[nodiscard]] std::size_t fallbacks() const noexcept { return fallbacks_; }
  /// feasible() calls (root bisection + node probes).
  [[nodiscard]] std::size_t probes() const noexcept { return probes_; }
  /// Pricing rounds of the most recent feasible() call (warm-start
  /// regression hook: a child probe resuming the parent's pool/basis must
  /// beat a cold bounder's rebuild).
  [[nodiscard]] std::size_t last_probe_rounds() const noexcept {
    return last_probe_rounds_;
  }
  /// Consecutive round-limit stalls (auto-mode demotion signal; reset by any
  /// probe that terminates properly).
  [[nodiscard]] std::size_t consecutive_stalls() const noexcept {
    return consecutive_stalls_;
  }

  /// Test hook: verifies the pool/RMP invariants — every column's recorded
  /// pin-block count matches a recount against the live pins, disabled
  /// bounds agree with (pin_blocks, load_blocked), and the warm basis never
  /// references a variable the model does not hold (columns are append-only,
  /// so backtracking can never strand a basic column).
  [[nodiscard]] bool check_invariants() const;

 private:
  struct PoolColumn {
    MachineId machine = 0;
    std::vector<JobId> jobs;  ///< sorted
    double load = 0.0;        ///< true load: Σ proc + touched-class setups
    std::size_t z = 0;        ///< RMP variable index (stable forever)
    int pin_blocks = 0;       ///< active pins this column conflicts with
    bool load_blocked = false;  ///< true load exceeds the current probe T
  };

  enum class Probe { kFeasible, kInfeasible, kStall, kContested };

  [[nodiscard]] bool conflicts(const PoolColumn& c, JobId j,
                               MachineId i) const;
  void sync_bounds(const PoolColumn& c);
  void retune(double t_eff);
  void add_column(MachineId i, std::vector<JobId> jobs);
  [[nodiscard]] Probe probe(double t_eff, std::size_t max_rounds);
  /// feasible() with an explicit per-probe round budget (root probes get
  /// opt_.root_rounds, node probes opt_.rounds_per_node).
  [[nodiscard]] bool probe_verdict(double T, std::size_t max_rounds);

  const Instance& inst_;
  ConfigBoundOptions opt_;
  bool available_ = false;
  /// Conservative grid inflation (n + classes) / grid; probes at T price at
  /// T / (1 - slack_).
  double slack_ = 0.0;
  double current_T_ = -1.0;  ///< T_eff the pool's load-blocking is tuned to

  lp::Model rmp_;
  std::vector<std::size_t> job_row_;
  std::vector<std::size_t> machine_row_;
  std::vector<PoolColumn> pool_;
  lp::Basis basis_;
  std::vector<MachineId> pinned_;
  std::vector<double> dual_job_;
  std::vector<double> dual_machine_;

  std::size_t pricing_rounds_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t probes_ = 0;
  std::size_t last_probe_rounds_ = 0;
  std::size_t consecutive_stalls_ = 0;
};

}  // namespace setsched::exact
