#pragma once

/// Named numerical tolerances of the exact search (src/exact). These are the
/// searchers' counterpart of SimplexOptions' named derived tolerances
/// (lp/simplex.h): every slack that decides pruning, dominance, or
/// certification lives here under a name stating what it protects, and
/// tools/lint_invariants.py rejects new raw `1eN` literals in src/exact so
/// the contract cannot silently re-scatter.
///
/// Values are deliberately asymmetric with the LP tolerances: search
/// comparisons operate on makespans evaluated by exact summation (not on
/// simplex output), so the slacks only have to absorb double-rounding of
/// sums, never a whole solve's accumulated error.
// lint: allow-tolerance-file (named-tolerance definition site)

namespace setsched::exact {

/// Pointwise machine-load slack of the dominance tests (the beam's
/// dominated_by scan and the per-depth dominance memo): a kept state's load
/// may exceed the candidate's by this much and still count as <=. Absolute,
/// not relative — loads are sums of O(n) doubles, whose representation error
/// is far below this at every benchmarked scale.
inline constexpr double kDominanceLoadSlack = 1e-12;

/// Incumbent pruning cutoff: branches whose bound reaches
/// incumbent - kIncumbentPruneSlack are dropped. Ties with the incumbent are
/// no improvement, so the cutoff sits a hair *below* the incumbent; the
/// slack only separates genuine ties from double-rounding.
inline constexpr double kIncumbentPruneSlack = 1e-12;

/// Inclusive external-bound slack: ExactOptions::initial_upper_bound is
/// INCLUSIVE (a schedule equal to the bound is acceptable — the PR 4
/// headline bugfix), so the cutoff derived from it is
/// bound * (1 + kExternalBoundRelSlack) + kExternalBoundAbsSlack: relative
/// term for large makespans, absolute term for bounds near zero.
inline constexpr double kExternalBoundRelSlack = 1e-9;
inline constexpr double kExternalBoundAbsSlack = 1e-9;

/// Relative certification tolerance: an incumbent within
/// kCertRelTol * max(1, lower_bound) of the lower bound is certified optimal
/// (and the lb-meets-incumbent early exit fires). Matches the harness's
/// makespan-agreement tolerance so a certified optimum always revalidates.
inline constexpr double kCertRelTol = 1e-9;

/// Floor on the denominator of the reported relative gap
/// (makespan - lb) / max(lb, kGapDenominatorFloor), keeping the gap finite
/// on degenerate instances whose lower bound is 0.
inline constexpr double kGapDenominatorFloor = 1e-9;

}  // namespace setsched::exact
