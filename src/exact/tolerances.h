#pragma once

/// Named numerical tolerances of the exact search (src/exact). These are the
/// searchers' counterpart of SimplexOptions' named derived tolerances
/// (lp/simplex.h): every slack that decides pruning, dominance, or
/// certification lives here under a name stating what it protects, and
/// tools/lint_invariants.py rejects new raw `1eN` literals in src/exact so
/// the contract cannot silently re-scatter.
///
/// Values are deliberately asymmetric with the LP tolerances: search
/// comparisons operate on makespans evaluated by exact summation (not on
/// simplex output), so the slacks only have to absorb double-rounding of
/// sums, never a whole solve's accumulated error.
// lint: allow-tolerance-file (named-tolerance definition site)

#include <cstddef>

namespace setsched::exact {

/// Pointwise machine-load slack of the dominance tests (the beam's
/// dominated_by scan and the per-depth dominance memo): a kept state's load
/// may exceed the candidate's by this much and still count as <=. Absolute,
/// not relative — loads are sums of O(n) doubles, whose representation error
/// is far below this at every benchmarked scale.
inline constexpr double kDominanceLoadSlack = 1e-12;

/// Incumbent pruning cutoff: branches whose bound reaches
/// incumbent - kIncumbentPruneSlack are dropped. Ties with the incumbent are
/// no improvement, so the cutoff sits a hair *below* the incumbent; the
/// slack only separates genuine ties from double-rounding.
inline constexpr double kIncumbentPruneSlack = 1e-12;

/// Inclusive external-bound slack: ExactOptions::initial_upper_bound is
/// INCLUSIVE (a schedule equal to the bound is acceptable — the PR 4
/// headline bugfix), so the cutoff derived from it is
/// bound * (1 + kExternalBoundRelSlack) + kExternalBoundAbsSlack: relative
/// term for large makespans, absolute term for bounds near zero.
inline constexpr double kExternalBoundRelSlack = 1e-9;
inline constexpr double kExternalBoundAbsSlack = 1e-9;

/// Relative certification tolerance: an incumbent within
/// kCertRelTol * max(1, lower_bound) of the lower bound is certified optimal
/// (and the lb-meets-incumbent early exit fires). Matches the harness's
/// makespan-agreement tolerance so a certified optimum always revalidates.
inline constexpr double kCertRelTol = 1e-9;

/// Floor on the denominator of the reported relative gap
/// (makespan - lb) / max(lb, kGapDenominatorFloor), keeping the gap finite
/// on degenerate instances whose lower bound is 0.
inline constexpr double kGapDenominatorFloor = 1e-9;

/// Configuration-LP bounder (exact/config_bound.h) pricing tolerance: the
/// dual-value margin a priced column must beat its machine's convexity dual
/// by to count as improving, and the per-job dual floor below which free
/// jobs are not priced. Matches ConfigLpOptions::tol so the bounder's RMP
/// behaves like the T-search colgen's.
inline constexpr double kCgPricingTol = 1e-6;

/// Coverage slack of the config-LP prune certificate: pricing tolerates a
/// dual-feasibility violation of up to kCgPricingTol per machine row, so
/// "no improving column" only certifies that the full pin-consistent master
/// stays below RMP coverage + (m+1)·kCgPricingTol. A prune therefore
/// requires coverage < n - (m+1)·kCgPricingTol; the matching feasible
/// verdict fires at coverage >= n - kCgPricingTol (the colgen convention),
/// and the ambiguous sliver in between is treated as feasible (no prune).
inline constexpr double kCgCoverageSlackPerRow = 1e-6;

/// Relative termination width of the config-LP root bisection: probing
/// stops once hi - lo <= kCgRootGapRelTol * max(1, lo). The bound is a
/// bisection over sound infeasibility certificates, so a loose width only
/// weakens the reported bound, never its validity.
inline constexpr double kCgRootGapRelTol = 1e-3;

/// Maximum grid-inflation slack (n + classes) / grid the config bounder
/// accepts; above this the conservative probe T_eff = T / (1 - slack) is so
/// inflated the bound is useless and the bounder reports unavailable.
inline constexpr double kCgMaxGridSlack = 0.5;

/// BoundMode::kAuto demotion trigger: this many CONSECUTIVE round-limit
/// stalls of the config-LP node probe and the search permanently falls back
/// to the assignment bound (counted in cg_fallbacks).
inline constexpr std::size_t kCgAutoStallLimit = 3;

}  // namespace setsched::exact
