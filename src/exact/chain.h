#pragma once

#include "exact/branch_bound.h"

namespace setsched::exact {

/// ExactMode::kDiveThenProve implementation: a time-boxed kDive pass whose
/// incumbent schedule seeds a kProve pass (see branch_bound.h for the
/// contract). Internal to src/exact; call through solve_exact().
[[nodiscard]] ExactResult dive_then_prove(const Instance& instance,
                                          const ExactOptions& options);

}  // namespace setsched::exact
