#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "lp/simplex.h"
#include "unrelated/assignment_lp.h"

namespace setsched::exact {

/// Assignment-LP relaxation bounds for the branch-and-bound: ONE parametric
/// model (unrelated/assignment_lp.h) in *makespan-objective* mode, built at
/// the initial cutoff and re-parameterized down the search tree. Jobs on the
/// DFS path are pinned to their machines; every probe warm-starts the
/// simplex from the previous node's basis, and because the min-T objective
/// is all-nonnegative, every probe is a pure dual re-optimization (the
/// bounder forces SimplexAlgorithm::kDual unless the caller overrides the
/// engine). One solve per node yields three things:
///   * the node lower bound (the minimum fractional makespan of any
///     completion respecting the pins) — prune when it meets the cutoff;
///   * the certified root lower bound (the same solve with no pins), which
///     replaces PR 4's geometric feasibility bisection with a single LP;
///   * reduced costs for variable fixing: pairs whose reduced cost exceeds
///     the incumbent gap can never appear in an improving completion and are
///     fixed to zero for the whole subtree (fix_dominated / unfix).
class LpBounder {
 public:
  /// Builds the relaxation at `T_build` (the loosest value that will ever be
  /// probed; the initial cutoff). A non-positive T_build disables the
  /// bounder (available() == false) — probes then never prune. `simplex`
  /// selects the engine/pricing; kAuto is upgraded to kDual (the natural
  /// engine for the all-nonnegative-cost min-T LP).
  LpBounder(const Instance& instance, double T_build,
            const lp::SimplexOptions& simplex);

  [[nodiscard]] bool available() const noexcept { return lp_.has_value(); }

  void pin(JobId j, MachineId i) {
    if (lp_) lp_->pin_job(j, i);
  }
  void unpin(JobId j) {
    if (lp_) lp_->unpin_job(j);
  }

  /// True iff a fractional completion respecting the pins and fixes with
  /// makespan <= T exists (or the bounder is unavailable). False certifies
  /// that no completion of the pinned partial schedule has makespan <= T, so
  /// the subtree can be pruned against a cutoff of T.
  ///
  /// Safe pruning: every probe runs under the lp::solve guard
  /// (AssignmentLpOptions::audit_interval = 1), and an infeasibility /
  /// bound verdict the audit contests is DEMOTED to "no bound" — the probe
  /// answers true and the subtree is searched instead of pruned. Losing a
  /// prune costs nodes; trusting a corrupted bound costs correctness.
  [[nodiscard]] bool feasible(double T);

  /// Certified lower bound on OPT from the unpinned relaxation: the LP
  /// minimum fractional makespan, never below `lo` (itself a valid bound).
  /// Call before any pins are set. `hi` caps the eligibility filters (any
  /// schedule of interest has makespan <= hi); `precision` is kept for API
  /// compatibility with the PR 4 bisection and is unused — the LP optimum is
  /// exact.
  [[nodiscard]] double root_lower_bound(double lo, double hi,
                                        double precision);

  /// Reduced-cost fixing against the most recent probe (feasible() /
  /// root_lower_bound()): fixes every free pair that provably cannot appear
  /// in a completion of makespan < cutoff, appends the pairs to *undo, and
  /// returns how many were fixed. Callers undo with unfix(undo, old_size)
  /// when leaving the subtree.
  std::size_t fix_dominated(double cutoff,
                            std::vector<std::pair<JobId, MachineId>>* undo);

  /// Reverts the fixes in undo[from..] (see fix_dominated).
  void unfix(std::vector<std::pair<JobId, MachineId>>* undo,
             std::size_t from) {
    if (lp_) lp_->unfix(undo, from);
  }

  /// Snapshots the most recent (root, unpinned) solve for refix_root().
  /// Call right after root_lower_bound(), before any pins are set.
  void save_root_snapshot() {
    if (lp_) lp_->save_root_snapshot();
  }

  /// Incremental root fixing: whenever the incumbent improves mid-search,
  /// re-applies the root snapshot's sensitivity bounds at the new cutoff.
  /// Fixes are permanent (no undo entry; they survive every subtree-scope
  /// unwind) and each pair is root-fixed at most once, so calling this on
  /// every improvement stays O(n·m) with no LP solve. Returns pairs fixed.
  std::size_t refix_root(double cutoff);

  /// True iff branching job j onto machine i is currently fixed away.
  [[nodiscard]] bool pair_fixed(JobId j, MachineId i) const {
    return lp_ && lp_->pair_fixed(j, i);
  }

  /// LP probes issued (root search + node probes).
  [[nodiscard]] std::size_t probes() const noexcept {
    return lp_ ? lp_->lp_solves() : 0;
  }
  /// Probes the dual simplex re-optimized.
  [[nodiscard]] std::size_t dual_solves() const noexcept {
    return lp_ ? lp_->dual_solves() : 0;
  }
  /// Simplex iterations across all probes.
  [[nodiscard]] std::size_t iterations() const noexcept {
    return lp_ ? lp_->simplex_iterations() : 0;
  }
  /// Total pairs ever fixed by fix_dominated (cumulative, before undos).
  [[nodiscard]] std::size_t fixed_vars() const noexcept { return fixed_; }
  /// Probes whose post-solve residual audit was contested.
  [[nodiscard]] std::size_t audits_suspect() const noexcept {
    return lp_ ? lp_->audits_suspect() : 0;
  }
  /// Contested probes the guard's ladder recovered (warm/cold re-solve).
  [[nodiscard]] std::size_t recoveries() const noexcept {
    return lp_ ? lp_->recoveries() : 0;
  }
  /// Contested probes escalated to the dense tableau oracle.
  [[nodiscard]] std::size_t oracle_fallbacks() const noexcept {
    return lp_ ? lp_->oracle_fallbacks() : 0;
  }

 private:
  /// True when the most recent probe's answer must not be acted on: the
  /// audit contested it even after the full recovery ladder.
  [[nodiscard]] bool last_contested() const {
    return lp_->last_verdict() == lp::AuditVerdict::kSuspect ||
           lp_->last_verdict() == lp::AuditVerdict::kFailed;
  }

  std::optional<ParametricAssignmentLp> lp_;
  std::size_t fixed_ = 0;
};

}  // namespace setsched::exact
