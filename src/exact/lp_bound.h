#pragma once

#include <cstddef>
#include <optional>

#include "core/instance.h"
#include "lp/simplex.h"
#include "unrelated/assignment_lp.h"

namespace setsched::exact {

/// Assignment-LP relaxation bounds for the branch-and-bound: ONE parametric
/// model (unrelated/assignment_lp.h) built at the initial cutoff and
/// re-parameterized down the search tree. Jobs on the DFS path are pinned to
/// their machines; every probe warm-starts the revised simplex from the
/// previous node's basis, so a probe is a short re-optimization, not a cold
/// phase-1 solve.
class LpBounder {
 public:
  /// Builds the relaxation at `T_build` (the loosest value that will ever be
  /// probed; the initial cutoff). A non-positive T_build disables the
  /// bounder (available() == false) — probes then never prune.
  LpBounder(const Instance& instance, double T_build,
            lp::SimplexAlgorithm algorithm);

  [[nodiscard]] bool available() const noexcept { return lp_.has_value(); }

  void pin(JobId j, MachineId i) {
    if (lp_) lp_->pin_job(j, i);
  }
  void unpin(JobId j) {
    if (lp_) lp_->unpin_job(j);
  }

  /// True iff a fractional completion respecting the pins with makespan <= T
  /// exists (or the bounder is unavailable). False certifies that no
  /// completion of the pinned partial schedule has makespan <= T, so the
  /// subtree can be pruned against a cutoff of T.
  [[nodiscard]] bool feasible(double T);

  /// Certified lower bound on OPT from the unpinned relaxation: geometric
  /// bisection over [lo, hi] to multiplicative precision, returning the
  /// largest probe value found infeasible (or `lo` when the LP is already
  /// feasible there). Call before any pins are set. `lo` must itself be a
  /// valid lower bound; the result never falls below it.
  [[nodiscard]] double root_lower_bound(double lo, double hi,
                                        double precision);

  /// LP probes issued (root search + node probes).
  [[nodiscard]] std::size_t probes() const noexcept {
    return lp_ ? lp_->lp_solves() : 0;
  }
  /// Simplex iterations across all probes.
  [[nodiscard]] std::size_t iterations() const noexcept {
    return lp_ ? lp_->simplex_iterations() : 0;
  }

 private:
  std::optional<ParametricAssignmentLp> lp_;
};

}  // namespace setsched::exact
