#include "exact/branch_bound.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/timer.h"
#include "core/bounds.h"

namespace setsched {

namespace {

class Solver {
 public:
  Solver(const Instance& inst, const ExactOptions& opt)
      : inst_(inst), opt_(opt), m_(inst.num_machines()), kc_(inst.num_classes()) {}

  ExactResult run() {
    order_jobs();
    precompute();

    // Incumbent from the trivial greedy schedule.
    best_schedule_ = best_machine_schedule(inst_);
    best_ = makespan(inst_, best_schedule_);
    if (opt_.initial_upper_bound > 0.0) {
      best_ = std::min(best_, opt_.initial_upper_bound);
    }

    current_ = Schedule::empty(inst_.num_jobs());
    loads_.assign(m_, 0.0);
    class_on_.assign(m_ * kc_, 0);
    dfs(0, 0.0, remaining_min_total_);

    ExactResult out;
    out.schedule = best_schedule_;
    out.makespan = makespan(inst_, best_schedule_);
    out.proven_optimal = !aborted_;
    out.nodes = nodes_;
    return out;
  }

 private:
  void order_jobs() {
    const std::size_t n = inst_.num_jobs();
    min_proc_.resize(n);
    for (JobId j = 0; j < n; ++j) {
      double mn = kInfinity;
      for (MachineId i = 0; i < m_; ++i) {
        if (inst_.eligible(i, j)) mn = std::min(mn, inst_.proc(i, j));
      }
      min_proc_[j] = mn;
    }
    // Class weight = total min processing; heavier classes first, larger jobs
    // first within a class (good incumbents early, setups shared early).
    std::vector<double> class_weight(kc_, 0.0);
    for (JobId j = 0; j < n; ++j) class_weight[inst_.job_class(j)] += min_proc_[j];
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      const ClassId ka = inst_.job_class(a), kb = inst_.job_class(b);
      if (ka != kb) {
        if (class_weight[ka] != class_weight[kb]) {
          return class_weight[ka] > class_weight[kb];
        }
        return ka < kb;
      }
      return min_proc_[a] > min_proc_[b];
    });
    remaining_min_total_ = std::accumulate(min_proc_.begin(), min_proc_.end(), 0.0);
  }

  void precompute() {
    // Machine equivalence classes for symmetry breaking: identical processing
    // columns and setup rows may be interchanged, so among equivalent *empty*
    // machines only the first is branched on.
    machine_rep_.resize(m_);
    for (MachineId i = 0; i < m_; ++i) {
      machine_rep_[i] = i;
      for (MachineId r = 0; r < i; ++r) {
        if (machine_rep_[r] != r) continue;
        bool same = true;
        for (JobId j = 0; j < inst_.num_jobs() && same; ++j) {
          same = inst_.proc(i, j) == inst_.proc(r, j);
        }
        for (ClassId k = 0; k < kc_ && same; ++k) {
          same = inst_.setup(i, k) == inst_.setup(r, k);
        }
        if (same) {
          machine_rep_[i] = r;
          break;
        }
      }
    }
  }

  bool out_of_budget() {
    if (nodes_ >= opt_.max_nodes) return true;
    if ((nodes_ & 0xFFF) == 0 && timer_.elapsed_seconds() > opt_.time_limit_s) {
      return true;
    }
    return false;
  }

  void dfs(std::size_t depth, double current_max, double remaining_min) {
    if (aborted_) return;
    ++nodes_;
    if (out_of_budget()) {
      aborted_ = true;
      return;
    }
    if (depth == order_.size()) {
      if (current_max < best_) {
        best_ = current_max;
        best_schedule_ = current_;
      }
      return;
    }

    // Average-load bound: total future load is at least current total plus
    // each remaining job's cheapest processing time.
    const double total_now = std::accumulate(loads_.begin(), loads_.end(), 0.0);
    if ((total_now + remaining_min) / static_cast<double>(m_) >= best_ - 1e-12) {
      return;
    }

    const JobId j = order_[depth];
    const ClassId k = inst_.job_class(j);

    // Candidate machines sorted by resulting load (best-first search).
    struct Option {
      MachineId machine;
      double new_load;
      double setup_added;
    };
    std::vector<Option> options;
    options.reserve(m_);
    std::vector<char> tried_empty_rep(m_, 0);
    for (MachineId i = 0; i < m_; ++i) {
      if (!inst_.eligible(i, j)) continue;
      if (loads_[i] == 0.0) {
        const MachineId rep = machine_rep_[i];
        if (tried_empty_rep[rep]) continue;  // symmetric duplicate
        tried_empty_rep[rep] = 1;
      }
      const bool has_setup = class_on_[i * kc_ + k] != 0;
      const double add_setup = has_setup ? 0.0 : inst_.setup(i, k);
      const double new_load = loads_[i] + inst_.proc(i, j) + add_setup;
      if (new_load >= best_ - 1e-12) continue;  // this branch cannot improve
      options.push_back({i, new_load, add_setup});
    }
    std::sort(options.begin(), options.end(),
              [](const Option& a, const Option& b) { return a.new_load < b.new_load; });

    const double next_remaining = remaining_min - min_proc_[j];
    for (const Option& o : options) {
      const MachineId i = o.machine;
      const double old_load = loads_[i];
      loads_[i] = o.new_load;
      char& flag = class_on_[i * kc_ + k];
      const char old_flag = flag;
      flag = 1;
      current_.assignment[j] = i;

      dfs(depth + 1, std::max(current_max, o.new_load), next_remaining);

      current_.assignment[j] = kUnassigned;
      flag = old_flag;
      loads_[i] = old_load;
      if (aborted_) return;
    }
  }

  const Instance& inst_;
  ExactOptions opt_;
  std::size_t m_;
  std::size_t kc_;

  std::vector<JobId> order_;
  std::vector<double> min_proc_;
  double remaining_min_total_ = 0.0;
  std::vector<MachineId> machine_rep_;

  Schedule current_ = Schedule::empty(0);
  std::vector<double> loads_;
  std::vector<char> class_on_;

  Schedule best_schedule_ = Schedule::empty(0);
  double best_ = kInfinity;

  std::size_t nodes_ = 0;
  bool aborted_ = false;
  Timer timer_;
};

}  // namespace

ExactResult solve_exact(const Instance& instance, const ExactOptions& options) {
  instance.validate();
  Solver solver(instance, options);
  return solver.run();
}

ExactResult solve_exact(const UniformInstance& instance,
                        const ExactOptions& options) {
  return solve_exact(instance.to_unrelated(), options);
}

}  // namespace setsched
