#include "exact/branch_bound.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/check.h"
#include "common/timer.h"
#include "core/bounds.h"
#include "core/schedule.h"
#include "exact/chain.h"
#include "exact/config_bound.h"
#include "exact/dive.h"
#include "exact/dominance.h"
#include "exact/lp_bound.h"
#include "exact/search_util.h"
#include "exact/tolerances.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched {

namespace {

using exact::ConfigLpBounder;
using exact::DominanceTable;
using exact::LpBounder;
using exact::SearchPlan;

/// One "node" instant per counted search node, tagged with why the node
/// terminated (or "expanded" when it branched). tools/analyze_trace.py
/// reconciles the instant count against SolverStats::nodes.
void emit_node(const char* reason, std::size_t depth) {
  obs::emit_instant("node", "exact", "reason", reason, "depth",
                    static_cast<double>(depth));
}

/// ExactMode::kProve: depth-first branch-and-bound (see branch_bound.h).
class ProveSolver {
 public:
  ProveSolver(const Instance& inst, const ExactOptions& opt)
      : inst_(inst), opt_(opt), m_(inst.num_machines()), kc_(inst.num_classes()) {}

  ExactResult run() {
    plan_ = exact::build_search_plan(inst_);

    // Incumbent from the trivial greedy schedule, improved by the caller's
    // initial_schedule when one is supplied (this is what lets a budget
    // abort return the dive's schedule instead of the greedy one). The
    // external bound is INCLUSIVE and never replaces the incumbent:
    // `incumbent_` is always the makespan of a schedule we actually hold,
    // while the bound only tightens the pruning cutoff (a schedule equal to
    // the bound survives).
    best_schedule_ = best_machine_schedule(inst_);
    incumbent_ = makespan(inst_, best_schedule_);
    if (opt_.initial_schedule.has_value()) {
      exact::adopt_initial_schedule(inst_, *opt_.initial_schedule,
                                    &best_schedule_, &incumbent_);
    }
    lower_bound_ = unrelated_lower_bound(inst_);
    update_cutoff();

    if (opt_.use_lp_bounds && prune_at_ > 0.0 && !incumbent_meets_lb()) {
      const obs::PhaseTimer phase(obs::Phase::kRootBound);
      const obs::TraceSpan span("root_bound", "exact");
      lp::SimplexOptions simplex;
      simplex.algorithm = opt_.lp_algorithm;
      simplex.pricing = opt_.lp_pricing;
      simplex.fault_plan = opt_.fault_plan;
      bounder_.emplace(inst_, prune_at_, simplex);
      if (bounder_->available()) {
        lower_bound_ = std::max(
            lower_bound_, bounder_->root_lower_bound(lower_bound_, prune_at_,
                                                     opt_.root_bound_precision));
        // Root reduced-cost fixing: pairs the root relaxation proves
        // incompatible with beating the cutoff are excluded for the whole
        // search (never undone). The snapshot keeps the root solve's
        // sensitivity bounds alive so every later incumbent improvement can
        // re-run the fixing at its tighter cutoff (refix_root below)
        // without another LP solve — PR 5 fixed once at the initial cutoff
        // and never again, leaving the fixes far weaker than the search
        // state justified.
        if (opt_.reduced_cost_fixing && !incumbent_meets_lb()) {
          bounder_->fix_dominated(prune_at_, &fix_undo_);
          bounder_->save_root_snapshot();
        }
      }
    }

    // Branch-and-price: the configuration-LP bounder prices columns against
    // the same cutoff. Its root bisection runs AFTER the assignment LP's
    // exact root solve, so the combined certified bound dominates the
    // assignment bound by construction; kAuto drops the config bounder on
    // the spot when that bisection bought nothing.
    if (opt_.use_lp_bounds && opt_.bound != BoundMode::kAssignment &&
        prune_at_ > 0.0 && !incumbent_meets_lb()) {
      const obs::PhaseTimer phase(obs::Phase::kRootBound);
      const obs::TraceSpan span("cg_root_bound", "exact");
      exact::ConfigBoundOptions cg;
      cg.grid = opt_.cg_grid;
      cg.rounds_per_node = opt_.cg_rounds_per_node;
      cg.root_probes = opt_.cg_root_probes;
      cg.simplex.algorithm = opt_.lp_algorithm;
      cg.simplex.pricing = opt_.lp_pricing;
      cg.simplex.fault_plan = opt_.fault_plan;
      cg_bounder_.emplace(inst_, prune_at_, cg);
      if (cg_bounder_->available()) {
        const double base = lower_bound_;
        double cg_lb = cg_bounder_->root_lower_bound(base, prune_at_);
        if (opt_.cg_root_grid > opt_.cg_grid) {
          // Fine-grid root pass: a throwaway bounder whose smaller
          // conservative inflation certifies what the coarse grid cannot.
          // Wall clock capped at half the remaining budget so it can never
          // starve the prove phase; its effort folds into the cg counters.
          exact::ConfigBoundOptions fine = cg;
          fine.grid = opt_.cg_root_grid;
          const double left =
              opt_.time_limit_s - timer_.elapsed_seconds();
          if (left > 0.0) {
            auto fine_deadline =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(0.5 * left));
            if (opt_.deadline && *opt_.deadline < fine_deadline) {
              fine_deadline = *opt_.deadline;
            }
            fine.deadline = fine_deadline;
            exact::ConfigLpBounder fine_bounder(inst_, prune_at_, fine);
            if (fine_bounder.available()) {
              cg_lb = std::max(
                  cg_lb,
                  fine_bounder.root_lower_bound(std::max(base, cg_lb),
                                                prune_at_));
              cg_extra_columns_ += fine_bounder.columns();
              cg_extra_rounds_ += fine_bounder.pricing_rounds();
              cg_extra_fallbacks_ += fine_bounder.fallbacks();
            }
          }
        }
        lower_bound_ = std::max(lower_bound_, cg_lb);
        cg_active_ = true;
        if (opt_.bound == BoundMode::kAuto &&
            cg_lb <= base + exact::kCgRootGapRelTol * std::max(1.0, base)) {
          // Root bound no better than the assignment LP's: demote for the
          // whole search instead of paying per-node pricing for nothing.
          cg_active_ = false;
          ++cg_extra_fallbacks_;
        }
      }
    }

    if (!incumbent_meets_lb()) {
      const obs::PhaseTimer phase(obs::Phase::kProve);
      const obs::TraceSpan span("prove", "exact");
      current_ = Schedule::empty(inst_.num_jobs());
      loads_.assign(m_, 0.0);
      class_on_.assign(m_ * kc_, 0);
      if (opt_.memo_limit > 0) {
        memo_.emplace(inst_.num_jobs() + 1, m_, kc_, opt_.memo_limit);
      }
      dfs(0, 0.0, plan_.min_total);
    }

    ExactResult out;
    out.schedule = best_schedule_;
    out.makespan = makespan(inst_, best_schedule_);
    out.nodes = nodes_;
    if (bounder_) {
      out.lp_bounds_used = bounder_->probes();
      out.lp_dual_solves = bounder_->dual_solves();
      out.lp_iterations = bounder_->iterations();
      out.fixed_vars = bounder_->fixed_vars();
      out.lp_audits_suspect = bounder_->audits_suspect();
      out.lp_recoveries = bounder_->recoveries();
      out.lp_oracle_fallbacks = bounder_->oracle_fallbacks();
    }
    if (cg_bounder_) {
      out.cg_columns = cg_bounder_->columns() + cg_extra_columns_;
      out.cg_pricing_rounds =
          cg_bounder_->pricing_rounds() + cg_extra_rounds_;
      out.cg_fallbacks = cg_bounder_->fallbacks() + cg_extra_fallbacks_;
    }
    exact::certify(&out, lower_bound_, !aborted_);
    return out;
  }

 private:
  void update_cutoff() {
    // Branches with load >= prune_at_ cannot lead to an acceptable schedule:
    // ties with the incumbent are no improvement, while a load *equal* to
    // the external bound is still acceptable (inclusive semantics), hence
    // the bound enters with a small upward slack instead of a downward one.
    prune_at_ = incumbent_ - exact::kIncumbentPruneSlack;
    if (opt_.initial_upper_bound > 0.0) {
      const double inclusive =
          opt_.initial_upper_bound * (1.0 + exact::kExternalBoundRelSlack) +
          exact::kExternalBoundAbsSlack;
      prune_at_ = std::min(prune_at_, inclusive);
    }
  }

  [[nodiscard]] bool incumbent_meets_lb() const {
    return incumbent_ <=
           lower_bound_ + exact::kCertRelTol * std::max(1.0, lower_bound_);
  }

  /// True when no further node may be expanded. Checked BEFORE a node is
  /// counted, so a tree fully explored at exactly max_nodes nodes finishes
  /// proven: the budget only aborts when an (max_nodes+1)-th expansion is
  /// actually attempted.
  [[nodiscard]] bool hit_budget() {
    if (nodes_ >= opt_.max_nodes) return true;
    if ((nodes_ & 0x3F) == 0) {
      if (timer_.elapsed_seconds() > opt_.time_limit_s) return true;
      // Harness watchdog: the absolute deadline bounds the whole call, so a
      // cell cannot run away past its wall-clock slot.
      if (opt_.deadline &&
          std::chrono::steady_clock::now() > *opt_.deadline) {
        return true;
      }
    }
    return false;
  }

  void dfs(std::size_t depth, double current_max, double remaining_min) {
    if (aborted_ || optimal_reached_) return;
    if (hit_budget()) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    if (depth == plan_.order.size()) {
      emit_node("leaf", depth);
      if (current_max < incumbent_) {
        incumbent_ = current_max;
        best_schedule_ = current_;
        update_cutoff();
        obs::emit_instant("incumbent", "exact", nullptr, nullptr, "makespan",
                          current_max);
        if (incumbent_meets_lb()) {
          optimal_reached_ = true;
        } else if (bounder_ && opt_.reduced_cost_fixing) {
          // Incremental root fixing: the root snapshot's sensitivity bounds
          // are re-applied at the tightened cutoff. Permanent (no undo
          // entry), so the fixes survive every subtree-scope unwind.
          const obs::PhaseTimer refix_timer(obs::Phase::kRefix);
          const std::size_t fixed = bounder_->refix_root(prune_at_);
          obs::emit_instant("refix", "exact", nullptr, nullptr, "fixed",
                            static_cast<double>(fixed));
        }
      }
      return;
    }

    // Average-load bound: total future load is at least current total plus
    // each remaining job's cheapest processing time.
    const double total_now =
        std::accumulate(loads_.begin(), loads_.end(), 0.0);
    if ((total_now + remaining_min) / static_cast<double>(m_) >= prune_at_) {
      emit_node("bound", depth);
      return;
    }

    // Dominance memo (cheap compare) before the LP probe (simplex solve).
    if (memo_ && depth >= 2) {
      bool dominated = false;
      {
        const obs::PhaseTimer dom_timer(obs::Phase::kDominance);
        dominated = memo_->dominated_or_record(depth, loads_, class_on_);
      }
      if (dominated) {
        emit_node("dominance", depth);
        return;
      }
    }

    // LP relaxation with the path pinned: a fractional bound at or above the
    // cutoff means no completion of this partial schedule can be accepted.
    // A surviving node's duals feed reduced-cost fixing: pairs whose reduced
    // cost exceeds the incumbent gap are excluded for this whole subtree
    // (undone on exit; the cutoff only tightens, so fixes stay valid).
    const std::size_t fix_base = fix_undo_.size();
    const bool lp_probed =
        bounder_ && depth > 0 && depth <= opt_.lp_bound_depth;
    if (lp_probed && !bounder_->feasible(prune_at_)) {
      emit_node("lp_infeasible", depth);
      return;
    }

    // Branch-and-price probe, AFTER the assignment probe (it only has to
    // catch what the weaker relaxation missed): prices pin-consistent
    // configuration columns until the RMP certifies the pinned partial
    // schedule cannot finish within the cutoff. A demoted probe (stall /
    // contested RMP) answers "no bound" inside feasible().
    if (cg_active_ && depth > 0 && depth <= opt_.cg_bound_depth) {
      if (!cg_bounder_->feasible(prune_at_)) {
        emit_node("cg_infeasible", depth);
        return;
      }
      if (opt_.bound == BoundMode::kAuto &&
          cg_bounder_->consecutive_stalls() >= exact::kCgAutoStallLimit) {
        // Pricing keeps hitting the round limit without a verdict: stop
        // paying for config probes for the rest of the search.
        cg_active_ = false;
        ++cg_extra_fallbacks_;
      }
    }

    // Node reduced-cost fixing only after EVERY probe agreed the node
    // survives: fixes appended here are scoped to this node's pins, and an
    // early prune-return above would leak them into the node's siblings
    // (the unfix below never runs), excluding pairs that are perfectly
    // viable there. The fixing reuses the duals of the assignment probe's
    // solve, which the config probe does not disturb.
    if (lp_probed && opt_.reduced_cost_fixing) {
      bounder_->fix_dominated(prune_at_, &fix_undo_);
    }

    emit_node("expanded", depth);
    const JobId j = plan_.order[depth];
    const ClassId k = inst_.job_class(j);

    // Candidate machines sorted by resulting load (best-first search).
    struct Option {
      MachineId machine;
      double new_load;
    };
    std::vector<Option> options;
    options.reserve(m_);
    for (MachineId i = 0; i < m_; ++i) {
      if (!inst_.eligible(i, j)) continue;
      if (bounder_ && bounder_->pair_fixed(j, i)) continue;
      if (exact::symmetric_duplicate(inst_, plan_, i, loads_, class_on_)) {
        continue;
      }
      const bool has_setup = class_on_[i * kc_ + k] != 0;
      const double add_setup = has_setup ? 0.0 : inst_.setup(i, k);
      const double new_load = loads_[i] + inst_.proc(i, j) + add_setup;
      if (new_load >= prune_at_) continue;  // this branch cannot be accepted
      options.push_back({i, new_load});
    }
    std::sort(options.begin(), options.end(),
              [](const Option& a, const Option& b) {
                return a.new_load < b.new_load;
              });

    const double next_remaining = remaining_min - plan_.min_proc[j];
    const bool pin = bounder_ && depth < opt_.lp_bound_depth;
    const bool cg_pin = cg_active_ && depth < opt_.cg_bound_depth;
    for (const Option& o : options) {
      // The cutoff may have tightened — and refix_root may have excluded
      // this pair — while earlier siblings ran.
      if (o.new_load >= prune_at_) continue;
      if (bounder_ && bounder_->pair_fixed(j, o.machine)) continue;
      const MachineId i = o.machine;
      const double old_load = loads_[i];
      loads_[i] = o.new_load;
      char& flag = class_on_[i * kc_ + k];
      const char old_flag = flag;
      flag = 1;
      current_.assignment[j] = i;
      if (pin) bounder_->pin(j, i);
      if (cg_pin) cg_bounder_->pin(j, i);

      dfs(depth + 1, std::max(current_max, o.new_load), next_remaining);

      if (cg_pin) cg_bounder_->unpin(j);
      if (pin) bounder_->unpin(j);
      current_.assignment[j] = kUnassigned;
      flag = old_flag;
      loads_[i] = old_load;
      if (aborted_ || optimal_reached_) return;  // search over; no unfix
    }
    if (bounder_ && fix_undo_.size() > fix_base) {
      bounder_->unfix(&fix_undo_, fix_base);
    }
  }

  const Instance& inst_;
  ExactOptions opt_;
  std::size_t m_;
  std::size_t kc_;

  SearchPlan plan_;
  std::optional<LpBounder> bounder_;
  std::optional<ConfigLpBounder> cg_bounder_;
  /// Config probes run only while true; kAuto clears it (permanent demotion)
  /// when the bounder stops earning its keep. The bounder object outlives
  /// the flag so unwinding unpins — and the final counters — stay valid.
  bool cg_active_ = false;
  std::size_t cg_extra_fallbacks_ = 0;
  /// Effort of the throwaway fine-grid root bounder (folded into the
  /// reported cg counters; the bounder itself does not outlive the root).
  std::size_t cg_extra_columns_ = 0;
  std::size_t cg_extra_rounds_ = 0;
  std::optional<DominanceTable> memo_;
  /// Reduced-cost fix trail: each node unfixes back to the size it saw on
  /// entry (root fixes at the front are permanent).
  std::vector<std::pair<JobId, MachineId>> fix_undo_;

  Schedule current_ = Schedule::empty(0);
  std::vector<double> loads_;
  std::vector<char> class_on_;

  Schedule best_schedule_ = Schedule::empty(0);
  double incumbent_ = kInfinity;
  double lower_bound_ = 0.0;
  double prune_at_ = kInfinity;

  std::size_t nodes_ = 0;
  bool aborted_ = false;
  bool optimal_reached_ = false;
  Timer timer_;
};

}  // namespace

ExactResult solve_exact(const Instance& instance, const ExactOptions& options) {
  instance.validate();
  if (options.mode == ExactMode::kDive) {
    return exact::dive_search(instance, options);
  }
  if (options.mode == ExactMode::kDiveThenProve) {
    return exact::dive_then_prove(instance, options);
  }
  ProveSolver solver(instance, options);
  return solver.run();
}

ExactResult solve_exact(const UniformInstance& instance,
                        const ExactOptions& options) {
  ExactResult result = solve_exact(instance.to_unrelated(), options);
  // The uniform aggregate bound can beat the unrelated per-job bound; use it
  // to tighten the certificate of a truncated search.
  if (!result.proven_optimal) {
    const double uniform_lb = uniform_lower_bound(instance);
    if (uniform_lb > result.lower_bound) {
      exact::certify(&result, uniform_lb, false);
    }
  }
  return result;
}

}  // namespace setsched
