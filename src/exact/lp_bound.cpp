#include "exact/lp_bound.h"

#include <algorithm>
#include <cmath>

namespace setsched::exact {

LpBounder::LpBounder(const Instance& instance, double T_build,
                     const lp::SimplexOptions& simplex) {
  if (T_build <= 0.0) return;
  AssignmentLpOptions options;
  options.makespan_objective = true;
  // Every bound the search prunes or fixes against must survive a residual
  // audit (lp/guard.h); the escalation ladder absorbs suspect solves and
  // feasible()/root_lower_bound() demote whatever still comes back
  // contested.
  options.audit_interval = 1;
  options.simplex = simplex;
  if (options.simplex.algorithm == lp::SimplexAlgorithm::kAuto) {
    // The min-T objective is all-nonnegative, so every basis is
    // dual-feasible: the dual simplex solves these relaxations end to end
    // (cold and warm) without a single phase-1 pivot.
    options.simplex.algorithm = lp::SimplexAlgorithm::kDual;
  }
  lp_.emplace(instance, T_build, options);
}

bool LpBounder::feasible(double T) {
  if (!lp_) return true;  // no bounder, no pruning
  const bool feasible = lp_->feasible(T);
  // Safe pruning: an "infeasible at T" (or "bound above T") answer whose
  // audit stayed contested after the full recovery ladder is demoted to "no
  // bound" — the node is searched, never pruned on corrupted numerics.
  if (!feasible && last_contested()) return true;
  return feasible;
}

double LpBounder::root_lower_bound(double lo, double hi,
                                   double precision) {
  (void)precision;  // the LP optimum needs no bisection
  if (!lp_ || hi <= 0.0 || lo >= hi) return lo;
  const std::optional<double> value = lp_->min_makespan(hi);
  if (!value.has_value()) return lo;  // impossible pins cannot happen at root
  // A contested root solve must not raise the certified bound: fall back to
  // the trusted combinatorial `lo` (the gap report stays sound, just looser).
  if (last_contested()) return lo;
  return std::max(lo, *value);
}

std::size_t LpBounder::fix_dominated(
    double cutoff, std::vector<std::pair<JobId, MachineId>>* undo) {
  if (!lp_) return 0;
  const std::size_t fixed = lp_->fix_dominated(cutoff, undo);
  fixed_ += fixed;
  return fixed;
}

std::size_t LpBounder::refix_root(double cutoff) {
  if (!lp_) return 0;
  const std::size_t fixed = lp_->refix_root(cutoff);
  fixed_ += fixed;
  return fixed;
}

}  // namespace setsched::exact
