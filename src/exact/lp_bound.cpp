#include "exact/lp_bound.h"

#include <algorithm>
#include <cmath>

namespace setsched::exact {

LpBounder::LpBounder(const Instance& instance, double T_build,
                     lp::SimplexAlgorithm algorithm) {
  if (T_build <= 0.0) return;
  AssignmentLpOptions options;
  options.simplex.algorithm = algorithm;
  lp_.emplace(instance, T_build, options);
}

bool LpBounder::feasible(double T) {
  if (!lp_) return true;  // no bounder, no pruning
  return lp_->feasible(T);
}

double LpBounder::root_lower_bound(double lo, double hi, double precision) {
  if (!lp_ || hi <= 0.0 || lo >= hi) return lo;
  // Geometric bisection needs a positive left endpoint; a combinatorial
  // bound of ~0 is replaced by a sliver of hi (still a valid lower bound on
  // the first probe value).
  double left = std::max(lo, hi * 1e-6);
  if (lp_->feasible(left)) return lo;  // LP cannot improve on `lo`
  double right = hi;
  while (right / left > 1.0 + precision) {
    const double mid = std::sqrt(left * right);
    if (lp_->feasible(mid)) {
      right = mid;
    } else {
      left = mid;
    }
  }
  // `left` is LP-infeasible: no schedule (even fractional) meets it.
  return std::max(lo, left);
}

}  // namespace setsched::exact
