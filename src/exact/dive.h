#pragma once

#include "exact/branch_bound.h"

namespace setsched::exact {

/// ExactMode::kDive implementation: time-boxed best-first beam search over
/// the shared job order (see branch_bound.h for the contract). Internal to
/// src/exact; call through solve_exact().
[[nodiscard]] ExactResult dive_search(const Instance& instance,
                                      const ExactOptions& options);

}  // namespace setsched::exact
