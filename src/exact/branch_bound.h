#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "core/instance.h"
#include "core/result.h"
#include "lp/simplex.h"

namespace setsched {

/// Search mode of solve_exact().
enum class ExactMode : std::uint8_t {
  /// Exhaustive LP-bounded depth-first branch-and-bound. Proves optimality
  /// unless a budget runs out; the result then carries the best incumbent
  /// and a certified optimality gap against the root lower bound.
  kProve,
  /// Time-boxed best-first beam dive: yields a high-quality incumbent with a
  /// certified gap for mid-size instances (n ~ 30-60) where proving is
  /// hopeless. proven_optimal is reported only when the incumbent meets the
  /// certified lower bound, or when the beam never dropped a reachable
  /// state (the dive degenerated to an exhaustive search).
  kDive,
  /// Dive-then-prove chain: a time-boxed kDive pass (dive_time_limit_s)
  /// produces an incumbent schedule that seeds a kProve pass as its initial
  /// incumbent/cutoff, so reduced-cost fixing and the load cuts bite from
  /// node 1 instead of waiting for the B&B to rediscover a good schedule.
  /// The two phases' effort counters are merged into one ExactResult; a
  /// budget abort never returns a schedule worse than the dive's.
  kDiveThenProve,
};

/// Which LP relaxation bounds the prove search's nodes (use_lp_bounds must
/// be on for any of them to act).
enum class BoundMode : std::uint8_t {
  /// Assignment-LP probes only (the PR 5 bounder) — the default.
  kAssignment,
  /// Branch-and-price: configuration-LP probes (exact/config_bound.h) run at
  /// every LP-bounded node AFTER the assignment probe (so the combined bound
  /// dominates the assignment bound by construction), and the root bound is
  /// the max of both relaxations' certificates.
  kConfig,
  /// kConfig that demotes itself back to kAssignment when the config LP is
  /// not earning its keep: a root bound no better than the assignment LP's,
  /// or repeated pricing stalls at nodes. Each demotion counts into
  /// cg_fallbacks.
  kAuto,
};

struct ExactOptions {
  ExactMode mode = ExactMode::kProve;
  /// Node budget. Hitting it with unexplored branches left clears
  /// proven_optimal; a tree fully explored at exactly the budget still
  /// counts as proven.
  std::size_t max_nodes = 200'000'000;
  /// Wall-clock budget in seconds (checked coarsely).
  double time_limit_s = 60.0;
  /// Optional hard wall-clock deadline (absolute, steady clock), checked at
  /// the same coarse cadence as time_limit_s. Unlike time_limit_s — which is
  /// relative to each phase's own start — the deadline bounds the whole call
  /// including root-bound setup and the dive phase of a chain, which is what
  /// the experiment harness's per-cell watchdog needs. Exceeding it is a
  /// budget abort: the incumbent is returned with proven_optimal false.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Optional initial upper bound, INCLUSIVE, honored by EVERY mode (the
  /// PR 5 dive silently ignored it, breaking the option's contract): the
  /// caller promises some schedule of makespan <= this value exists, and a
  /// schedule whose makespan exactly equals the bound is acceptable and
  /// will be found. (An invalid bound below OPT makes the search vacuous,
  /// exactly as a MIP cutoff would.) 0 = none.
  double initial_upper_bound = 0.0;
  /// Optional initial incumbent SCHEDULE (must be complete and feasible for
  /// the instance). Both search modes adopt it as their starting incumbent
  /// when it beats the trivial best_machine_schedule one, so (a) the cutoff
  /// — and with it root reduced-cost fixing — starts at the schedule's
  /// makespan, and (b) a budget abort can never return a schedule worse
  /// than this one (a bare initial_upper_bound only tightens the cutoff;
  /// the schedule achieving it used to be thrown away).
  std::optional<Schedule> initial_schedule;
  /// Prune nodes whose assignment-LP relaxation (path jobs pinned to their
  /// machines) cannot beat the current cutoff, and certify the root lower
  /// bound used for gap reporting. One parametric min-makespan model is
  /// built once and re-parameterized down the tree; every probe is a dual
  /// re-optimization warm-started from the previous node's basis (see
  /// exact/lp_bound.h).
  bool use_lp_bounds = true;
  /// LP-probe nodes at depth <= lp_bound_depth only — the top of the tree,
  /// where one pruned node kills an exponential subtree and the probe cost
  /// amortizes.
  std::size_t lp_bound_depth = 12;
  /// Reduced-cost variable fixing at LP-probed nodes (and at the root):
  /// duals of the node relaxation fix job-machine pairs whose reduced cost
  /// exceeds the incumbent gap, shrinking the branching factor of the whole
  /// subtree. Requires use_lp_bounds.
  bool reduced_cost_fixing = true;
  /// Kept for API compatibility with the PR 4 geometric root-bound
  /// bisection; the min-makespan LP certifies the root bound exactly, so
  /// this knob is no longer read.
  double root_bound_precision =
      1e-4;  // lint: allow-tolerance (unused legacy option default, kept for
             // API compatibility; not a live numerical tolerance)
  /// Dominance memo: states kept per depth (0 disables the memo).
  std::size_t memo_limit = 256;
  /// kDive: beam width per level.
  std::size_t beam_width = 256;
  /// kDive: how many kept states each candidate is checked against in the
  /// per-level dominance prefilter (0 = scan them all). The default keeps
  /// the prefilter O(1) per candidate; widening it drops more duplicate /
  /// dominated states (freeing beam slots) but costs a longer scan. Sound
  /// at any value — a kept dominated state is redundant, never wrong — so
  /// the returned makespan does not depend on it when the beam is wide
  /// enough to hold every survivor.
  std::size_t dive_dominance_scan = 64;
  /// kDiveThenProve: wall-clock budget of the dive phase (further capped at
  /// half of time_limit_s); the prove phase gets whatever remains.
  double dive_time_limit_s = 0.5;
  /// Simplex implementation for the LP bounds (kAuto upgrades to kDual, the
  /// natural engine for the min-makespan relaxation; kTableau forces the
  /// dense reference oracle end to end for before/after sweeps).
  lp::SimplexAlgorithm lp_algorithm = lp::SimplexAlgorithm::kAuto;
  /// Primal pricing rule for the LP bounds' revised solver (the node
  /// probes run the dual simplex, which always uses Devex row weights;
  /// this only affects primal fallbacks).
  lp::SimplexPricing lp_pricing = lp::SimplexPricing::kCandidate;
  /// Deterministic fault-injection plan threaded into every LP-bound solve
  /// (lp/fault.h); null = no injection. The bounder's residual audits and
  /// safe-pruning demotions are active regardless, so injected runs stay
  /// sound — they just burn recoveries and prune less.
  const lp::FaultPlan* fault_plan = nullptr;
  /// Node-bound relaxation selector (branch-and-price lives behind kConfig /
  /// kAuto; see BoundMode). Ignored unless use_lp_bounds.
  BoundMode bound = BoundMode::kAssignment;
  /// Config-LP probes run at depth <= cg_bound_depth only (they price a
  /// knapsack per machine per round, so they are costlier than assignment
  /// probes and amortize only near the top of the tree). Also the pin depth
  /// of the config bounder.
  std::size_t cg_bound_depth = 6;
  /// Pricing grid of the config bounder (ConfigBoundOptions::grid).
  std::size_t cg_grid = 2048;
  /// Pricing rounds per config-LP node probe before it stalls to "no bound".
  std::size_t cg_rounds_per_node = 6;
  /// Probe budget of the config-LP root-bound bisection.
  std::size_t cg_root_probes = 12;
  /// Grid of the root-only fine bisection pass. The certified config bound
  /// loses (n + classes)/grid to the conservative probe inflation, which at
  /// mid-size instances eats most of the relaxation's edge over the
  /// assignment LP — a one-off fine-grid pass at the root buys the bound
  /// back at a cost that amortizes over the whole tree (node probes keep
  /// the cheap cg_grid). Set <= cg_grid to disable the pass. Its wall clock
  /// is capped at half the remaining budget.
  std::size_t cg_root_grid = 16384;
};

/// Result contract of the exact subsystem. `proven_optimal` distinguishes
/// ground truth from budget-exhausted incumbents; consumers (registry,
/// experiment harness) must propagate it instead of treating every result
/// as an optimum.
struct ExactResult {
  Schedule schedule;
  double makespan = 0.0;
  /// Best certified lower bound on OPT: the combinatorial bound of
  /// core/bounds.h, raised by the root LP relaxation when LP bounds are on;
  /// equals `makespan` when proven_optimal.
  double lower_bound = 0.0;
  /// Relative optimality gap (makespan - lower_bound) / lower_bound, >= 0.
  /// Exactly 0 iff proven_optimal.
  double gap = 0.0;
  bool proven_optimal = false;
  /// Search-tree nodes expanded (DFS nodes or beam states).
  std::size_t nodes = 0;
  /// Assignment-LP relaxation probes spent on bounding (root search plus
  /// per-node feasibility probes).
  std::size_t lp_bounds_used = 0;
  /// Probes the dual simplex re-optimized (vs cold/primal solves).
  std::size_t lp_dual_solves = 0;
  /// Simplex iterations across those probes.
  std::size_t lp_iterations = 0;
  /// Job-machine pairs excluded by reduced-cost fixing (cumulative across
  /// the search; subtree-local fixes count once per application).
  std::size_t fixed_vars = 0;
  /// LP guard counters across all probes (see SolverStats for semantics).
  std::size_t lp_audits_suspect = 0;
  std::size_t lp_recoveries = 0;
  std::size_t lp_oracle_fallbacks = 0;
  /// Branch-and-price effort (BoundMode kConfig/kAuto; 0 under kAssignment):
  /// configuration columns priced into the RMP, pricing rounds across all
  /// config-LP probes, and probes demoted to the assignment bound
  /// (contested RMP solves, pricing stalls, and kAuto's permanent
  /// demotion). See SolverStats for the record-pipeline echo.
  std::size_t cg_columns = 0;
  std::size_t cg_pricing_rounds = 0;
  std::size_t cg_fallbacks = 0;
};

/// Exact / ground-truth solver over job -> machine assignments.
///
/// kProve: depth-first branch-and-bound. Jobs are ordered class-by-class
/// (largest class workload first, sizes non-increasing inside a class) so
/// setup costs are discovered early. Pruning: branch load cuts against the
/// incumbent (and the inclusive external bound), an average-load bound,
/// machine-equivalence symmetry breaking (sound under eligibility, since
/// equivalent machines have identical columns), a dominance memo over
/// (depth, load-profile, paid-setups) states, and assignment-LP infeasibility
/// at the current cutoff.
///
/// kDive: best-first beam search over the same job order with the same
/// symmetry reductions; reports the incumbent with its certified gap.
///
/// kDiveThenProve: the dive's incumbent schedule seeds the prove pass
/// (initial_schedule/cutoff); counters are merged across the two phases.
[[nodiscard]] ExactResult solve_exact(const Instance& instance,
                                      const ExactOptions& options = {});

/// Convenience overload (converts to the unrelated matrix form). The
/// uniform aggregate lower bound additionally tightens the reported
/// lower_bound/gap when it beats the unrelated one.
[[nodiscard]] ExactResult solve_exact(const UniformInstance& instance,
                                      const ExactOptions& options = {});

}  // namespace setsched
