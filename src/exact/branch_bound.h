#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

struct ExactOptions {
  /// Node budget; exceeded => result flagged as not proven optimal.
  std::size_t max_nodes = 200'000'000;
  /// Wall-clock budget in seconds (checked coarsely).
  double time_limit_s = 60.0;
  /// Optional initial upper bound (e.g. from a heuristic); 0 = none.
  double initial_upper_bound = 0.0;
};

struct ExactResult {
  Schedule schedule;
  double makespan = 0.0;
  bool proven_optimal = false;
  std::size_t nodes = 0;
};

/// Depth-first branch-and-bound over job -> machine assignments.
///
/// Jobs are ordered class-by-class (largest class workload first, sizes
/// non-increasing inside a class) so that setup costs are discovered early.
/// Pruning: current makespan, per-job best-possible completion, and an
/// average-load bound (remaining work spread over all machines).
/// Intended as ground truth for small instances (n <~ 16).
[[nodiscard]] ExactResult solve_exact(const Instance& instance,
                                      const ExactOptions& options = {});

/// Convenience overload (converts to the unrelated matrix form).
[[nodiscard]] ExactResult solve_exact(const UniformInstance& instance,
                                      const ExactOptions& options = {});

}  // namespace setsched
