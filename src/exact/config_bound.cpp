#include "exact/config_bound.h"

#include <algorithm>
#include <cmath>

#include "exact/tolerances.h"

namespace setsched::exact {

ConfigLpBounder::ConfigLpBounder(const Instance& instance, double T_build,
                                 const ConfigBoundOptions& options)
    : inst_(instance), opt_(options), rmp_(lp::Objective::kMaximize) {
  if (T_build <= 0.0 || opt_.grid == 0) return;
  const std::size_t n = inst_.num_jobs();
  const std::size_t m = inst_.num_machines();
  slack_ = static_cast<double>(n + inst_.num_classes()) /
           static_cast<double>(opt_.grid);
  if (slack_ >= kCgMaxGridSlack) return;  // grid too coarse to say anything

  // Same RMP shape as solve_config_lp: u_j coverage variables, job rows
  // u_j - Σ_{c ∋ j} z_c <= 0, machine convexity rows Σ_c z_{i,c} <= 1.
  job_row_.resize(n);
  machine_row_.resize(m);
  for (JobId j = 0; j < n; ++j) {
    const std::size_t u = rmp_.add_variable(0.0, 1.0, 1.0);
    job_row_[j] = rmp_.add_constraint({{u, 1.0}}, lp::Sense::kLessEqual, 0.0);
  }
  for (MachineId i = 0; i < m; ++i) {
    machine_row_[i] = rmp_.add_constraint({}, lp::Sense::kLessEqual, 1.0);
  }
  pinned_.assign(n, kUnassigned);
  dual_job_.assign(n, 0.0);
  dual_machine_.assign(m, 0.0);
  available_ = true;
}

bool ConfigLpBounder::conflicts(const PoolColumn& c, JobId j,
                                MachineId i) const {
  const bool contains =
      std::binary_search(c.jobs.begin(), c.jobs.end(), j);
  // A machine-i column must contain every job pinned to i; any other
  // machine's column must not contain it.
  return c.machine == i ? !contains : contains;
}

void ConfigLpBounder::sync_bounds(const PoolColumn& c) {
  const bool disabled = c.pin_blocks > 0 || c.load_blocked;
  rmp_.set_bounds(c.z, 0.0, disabled ? 0.0 : 1.0);
}

void ConfigLpBounder::pin(JobId j, MachineId i) {
  if (!available_) return;
  pinned_[j] = i;
  for (PoolColumn& c : pool_) {
    if (!conflicts(c, j, i)) continue;
    if (++c.pin_blocks == 1 && !c.load_blocked) sync_bounds(c);
  }
}

void ConfigLpBounder::unpin(JobId j) {
  if (!available_) return;
  const MachineId i = pinned_[j];
  pinned_[j] = kUnassigned;
  if (i == kUnassigned) return;
  for (PoolColumn& c : pool_) {
    if (!conflicts(c, j, i)) continue;
    if (--c.pin_blocks == 0 && !c.load_blocked) sync_bounds(c);
  }
}

void ConfigLpBounder::retune(double t_eff) {
  current_T_ = t_eff;
  for (PoolColumn& c : pool_) {
    const bool blocked = c.load > t_eff;
    if (blocked == c.load_blocked) continue;
    c.load_blocked = blocked;
    if (c.pin_blocks == 0) sync_bounds(c);
  }
}

void ConfigLpBounder::add_column(MachineId i, std::vector<JobId> jobs) {
  std::sort(jobs.begin(), jobs.end());
  PoolColumn c;
  c.machine = i;
  c.jobs = std::move(jobs);
  std::vector<char> touched(inst_.num_classes(), 0);
  for (const JobId j : c.jobs) {
    c.load += inst_.proc(i, j);
    touched[inst_.job_class(j)] = 1;
  }
  for (ClassId k = 0; k < inst_.num_classes(); ++k) {
    if (touched[k]) c.load += inst_.setup(i, k);
  }
  c.z = rmp_.add_variable(0.0, 1.0, 0.0);
  for (const JobId j : c.jobs) rmp_.add_to_row(job_row_[j], c.z, -1.0);
  rmp_.add_to_row(machine_row_[i], c.z, 1.0);
  // The pricer only emits pin-consistent columns that truly fit the current
  // probe T (weights are rounded up), so a fresh column starts enabled.
  c.pin_blocks = 0;
  c.load_blocked = c.load > current_T_;
  if (c.load_blocked) sync_bounds(c);
  pool_.push_back(std::move(c));
}

ConfigLpBounder::Probe ConfigLpBounder::probe(double t_eff,
                                              std::size_t max_rounds) {
  const std::size_t n = inst_.num_jobs();
  const std::size_t m = inst_.num_machines();
  const double coverage_target = static_cast<double>(n) - kCgPricingTol;
  // The prune certificate needs headroom for pricing's per-machine dual
  // tolerance (see kCgCoverageSlackPerRow).
  const double prune_below = static_cast<double>(n) -
                             static_cast<double>(m + 1) *
                                 kCgCoverageSlackPerRow;
  last_probe_rounds_ = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++last_probe_rounds_;
    ++pricing_rounds_;

    lp::SimplexOptions simplex = opt_.simplex;
    simplex.guard = true;  // every prune verdict must survive the audit
    if (!basis_.empty()) simplex.warm_start = &basis_;
    const lp::Solution sol = lp::solve(rmp_, simplex);
    if (!sol.optimal() || sol.audit_contested()) return Probe::kContested;
    if (!sol.basis.empty()) basis_ = sol.basis;
    if (sol.objective >= coverage_target) return Probe::kFeasible;

    for (JobId j = 0; j < n; ++j) {
      dual_job_[j] = std::max(0.0, sol.duals[job_row_[j]]);
    }
    for (MachineId i = 0; i < m; ++i) {
      dual_machine_[i] = std::max(0.0, sol.duals[machine_row_[i]]);
    }

    bool added = false;
    for (MachineId i = 0; i < m; ++i) {
      PricedConfig priced =
          price_machine_config(inst_, i, t_eff, dual_job_, opt_.grid,
                               kCgPricingTol, &pinned_);
      // The jobs pinned to machine i alone overflow the grid: their true
      // load exceeds the probe T in every completion (grid conservatism).
      if (!priced.pins_fit) return Probe::kInfeasible;
      if (priced.jobs.empty()) continue;
      if (priced.value <= dual_machine_[i] + kCgPricingTol) continue;
      add_column(i, std::move(priced.jobs));
      added = true;
    }
    if (!added) {
      // Exhaustive pricing: the duals are feasible for the full
      // pin-consistent master, so its optimum is bounded by the RMP's.
      return sol.objective < prune_below ? Probe::kInfeasible
                                         : Probe::kFeasible;
    }
  }
  return Probe::kStall;
}

bool ConfigLpBounder::probe_verdict(double T, std::size_t max_rounds) {
  if (!available_ || T <= 0.0) return true;  // no bounder, no pruning
  ++probes_;
  const double t_eff = T / (1.0 - slack_);
  if (t_eff != current_T_) retune(t_eff);
  switch (probe(t_eff, max_rounds)) {
    case Probe::kFeasible:
      consecutive_stalls_ = 0;
      return true;
    case Probe::kInfeasible:
      consecutive_stalls_ = 0;
      return false;
    case Probe::kStall:
      ++consecutive_stalls_;
      ++fallbacks_;
      return true;
    case Probe::kContested:
      ++fallbacks_;
      return true;
  }
  return true;  // unreachable
}

bool ConfigLpBounder::feasible(double T) {
  return probe_verdict(T, opt_.rounds_per_node);
}

double ConfigLpBounder::root_lower_bound(double lo, double hi) {
  if (!available_ || hi <= 0.0 || lo >= hi) return lo;
  double certified = lo;
  double ceiling = hi;
  const std::size_t rounds = std::max(opt_.rounds_per_node, opt_.root_rounds);
  for (std::size_t used = 0; used < opt_.root_probes; ++used) {
    if (ceiling - certified <=
        kCgRootGapRelTol * std::max(1.0, certified)) {
      break;
    }
    if (opt_.deadline &&
        std::chrono::steady_clock::now() > *opt_.deadline) {
      break;  // out of wall clock; keep what is certified so far
    }
    const double mid = 0.5 * (certified + ceiling);
    if (probe_verdict(mid, rounds)) {
      // Not certified infeasible — treat as the new search ceiling (grid
      // feasibility is monotone in T up to rounding granularity; a wrong
      // guess here only wastes probes, never the bound's validity).
      ceiling = mid;
    } else {
      certified = mid;  // OPT > mid, certified
    }
  }
  // Root stalls must not count toward the caller's NODE-probe demotion
  // signal: a generous-round root probe that still stalled says nothing
  // about the cheap per-node probes.
  consecutive_stalls_ = 0;
  return certified;
}

bool ConfigLpBounder::check_invariants() const {
  if (!available_) return true;
  for (const PoolColumn& c : pool_) {
    int blocks = 0;
    for (JobId j = 0; j < inst_.num_jobs(); ++j) {
      if (pinned_[j] == kUnassigned) continue;
      if (conflicts(c, j, pinned_[j])) ++blocks;
    }
    if (blocks != c.pin_blocks) return false;
    const bool disabled = c.pin_blocks > 0 || c.load_blocked;
    if (rmp_.upper(c.z) != (disabled ? 0.0 : 1.0)) return false;
    if (c.z >= rmp_.num_variables()) return false;
  }
  // Columns are append-only, so a warm basis carried across backtracking may
  // never reference more structurals than the model holds.
  if (basis_.structurals.size() > rmp_.num_variables()) return false;
  if (basis_.logicals.size() > rmp_.num_constraints()) return false;
  return true;
}

}  // namespace setsched::exact
