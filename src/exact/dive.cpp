#include "exact/dive.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/bounds.h"
#include "core/schedule.h"
#include "exact/lp_bound.h"
#include "exact/search_util.h"
#include "exact/tolerances.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched::exact {

namespace {

/// One partial schedule on the beam: the prefix assignment of the shared
/// job order plus the incrementally maintained load/setup state.
struct BeamState {
  std::vector<MachineId> assignment;  ///< full n, kUnassigned beyond depth
  std::vector<double> loads;
  std::vector<char> class_on;  ///< m x K paid-setup matrix, row-major
  double max_load = 0.0;
  double total_load = 0.0;
  /// Completion lower bound (beam priority): max of the current makespan and
  /// the average-load bound over the remaining jobs.
  double score = 0.0;
};

/// True iff `kept` (a better-scored state) makes `candidate` redundant:
/// pointwise <= loads and >= paid setups, so every completion of the
/// candidate is matched or beaten.
bool dominated_by(const BeamState& kept, const BeamState& candidate) {
  for (std::size_t i = 0; i < kept.loads.size(); ++i) {
    if (kept.loads[i] > candidate.loads[i] + kDominanceLoadSlack) return false;
  }
  for (std::size_t e = 0; e < kept.class_on.size(); ++e) {
    if (candidate.class_on[e] != 0 && kept.class_on[e] == 0) return false;
  }
  return true;
}

}  // namespace

ExactResult dive_search(const Instance& inst, const ExactOptions& opt) {
  const std::size_t n = inst.num_jobs();
  const std::size_t m = inst.num_machines();
  const std::size_t kc = inst.num_classes();
  const SearchPlan plan = build_search_plan(inst);

  // Incumbent: the trivial greedy schedule, improved by the caller's
  // initial_schedule when one is supplied.
  Schedule best_schedule = best_machine_schedule(inst);
  double incumbent = makespan(inst, best_schedule);
  if (opt.initial_schedule.has_value()) {
    adopt_initial_schedule(inst, *opt.initial_schedule, &best_schedule,
                           &incumbent);
  }
  double lower_bound = unrelated_lower_bound(inst);

  // Pruning cutoff, mirroring the prove mode's semantics: a state whose
  // completion bound reaches the incumbent cannot improve on a schedule we
  // already hold, and the external initial_upper_bound is INCLUSIVE — a
  // schedule equal to the bound is still acceptable, so it enters with a
  // small upward slack. (PR 5's dive ignored the external bound entirely,
  // breaking the documented ExactOptions contract.) Cutoff drops are sound
  // exclusions and never count as beam truncation.
  double prune_at = incumbent - kIncumbentPruneSlack;
  if (opt.initial_upper_bound > 0.0) {
    prune_at = std::min(
        prune_at, opt.initial_upper_bound * (1.0 + kExternalBoundRelSlack) +
                      kExternalBoundAbsSlack);
  }

  // Suffix sums of the cheapest processing times in branching order:
  // remaining_min[d] = minimum extra work once jobs order[0..d) are placed.
  std::vector<double> remaining_min(n + 1, 0.0);
  for (std::size_t d = n; d-- > 0;) {
    remaining_min[d] = remaining_min[d + 1] + plan.min_proc[plan.order[d]];
  }
  lower_bound = std::max(lower_bound,
                         remaining_min[0] / static_cast<double>(m));

  ExactResult out;
  std::optional<LpBounder> bounder;
  std::vector<std::pair<JobId, MachineId>> fixed_pairs;
  if (opt.use_lp_bounds && prune_at > 0.0) {
    const obs::PhaseTimer phase(obs::Phase::kRootBound);
    const obs::TraceSpan span("root_bound", "exact");
    lp::SimplexOptions simplex;
    simplex.algorithm = opt.lp_algorithm;
    simplex.pricing = opt.lp_pricing;
    simplex.fault_plan = opt.fault_plan;
    bounder.emplace(inst, prune_at, simplex);
    if (bounder->available()) {
      lower_bound = std::max(
          lower_bound, bounder->root_lower_bound(lower_bound, prune_at,
                                                 opt.root_bound_precision));
      // Root reduced-cost fixing at the real cutoff (incumbent and external
      // bound, not just the trivial incumbent): pairs that provably cannot
      // beat it never enter the beam, cutting the branching factor of
      // every level.
      if (opt.reduced_cost_fixing) {
        bounder->fix_dominated(prune_at, &fixed_pairs);
      }
    }
  }

  Timer timer;
  const std::size_t width = std::max<std::size_t>(1, opt.beam_width);
  std::size_t nodes = 0;
  bool truncated = false;

  const obs::PhaseTimer dive_phase(obs::Phase::kDive);
  const obs::TraceSpan dive_span("dive", "exact");
  std::vector<BeamState> beam(1);
  beam[0].assignment.assign(n, kUnassigned);
  beam[0].loads.assign(m, 0.0);
  beam[0].class_on.assign(m * kc, 0);
  beam[0].score = lower_bound;

  std::vector<BeamState> children;
  for (std::size_t depth = 0; depth < n && !beam.empty(); ++depth) {
    // Time-boxed: once a budget runs out the beam collapses to a greedy
    // descent so a complete schedule is still reached quickly.
    std::size_t level_width = width;
    if (timer.elapsed_seconds() > opt.time_limit_s || nodes >= opt.max_nodes ||
        (opt.deadline && std::chrono::steady_clock::now() > *opt.deadline)) {
      level_width = 1;
      truncated = true;
    }
    if (beam.size() > level_width) {
      beam.resize(level_width);
      truncated = true;
    }

    const JobId j = plan.order[depth];
    const ClassId k = inst.job_class(j);
    children.clear();
    for (const BeamState& state : beam) {
      ++nodes;
      obs::emit_instant("node", "exact", "reason", "beam", "depth",
                        static_cast<double>(depth));
      for (MachineId i = 0; i < m; ++i) {
        if (!inst.eligible(i, j)) continue;
        if (bounder && bounder->pair_fixed(j, i)) continue;
        if (symmetric_duplicate(inst, plan, i, state.loads, state.class_on)) {
          continue;
        }
        const bool has_setup = state.class_on[i * kc + k] != 0;
        const double add_setup = has_setup ? 0.0 : inst.setup(i, k);
        const double new_load = state.loads[i] + inst.proc(i, j) + add_setup;
        // Cutoff cut before the (expensive) state copy: every completion of
        // this child has makespan >= new_load >= prune_at, so it can never
        // be accepted. A sound exclusion, not a truncation.
        if (new_load >= prune_at) continue;
        BeamState child = state;
        child.assignment[j] = i;
        child.loads[i] = new_load;
        child.class_on[i * kc + k] = 1;
        child.total_load += inst.proc(i, j) + add_setup;
        child.max_load = std::max(child.max_load, new_load);
        child.score = std::max(
            child.max_load, (child.total_load + remaining_min[depth + 1]) /
                                static_cast<double>(m));
        // The average-load component can push the completion bound past the
        // cutoff even when no single load does.
        if (child.score >= prune_at) continue;
        children.push_back(std::move(child));
      }
    }
    // Keep the best-scored states, dropping those an already kept (hence
    // better-scored) state dominates. stable_sort keeps the level
    // deterministic across platforms under score ties. The dominance check
    // runs BEFORE the width check: a dominated candidate is redundant
    // whether or not the kept set is full, so only dropping a NON-dominated
    // candidate forfeits the exhaustiveness certificate. (PR 5 broke out of
    // the loop the moment the kept set filled, flagging `truncated` even
    // when every remaining child was dominated — small instances whose
    // survivors exactly fit the width lost their proven_optimal.)
    std::stable_sort(children.begin(), children.end(),
                     [](const BeamState& a, const BeamState& b) {
                       return a.score < b.score;
                     });
    std::vector<BeamState> kept;
    kept.reserve(std::min(level_width, children.size()));
    {
      const obs::PhaseTimer dom_timer(obs::Phase::kDominance);
      for (BeamState& child : children) {
        bool redundant = false;
        const std::size_t scan =
            opt.dive_dominance_scan == 0
                ? kept.size()
                : std::min(kept.size(), opt.dive_dominance_scan);
        for (std::size_t s = 0; s < scan && !redundant; ++s) {
          redundant = dominated_by(kept[s], child);
        }
        if (redundant) continue;
        if (kept.size() >= level_width) {
          truncated = true;
          break;
        }
        kept.push_back(std::move(child));
      }
    }
    beam = std::move(kept);
  }

  for (const BeamState& state : beam) {
    if (state.max_load < incumbent) {
      incumbent = state.max_load;
      best_schedule.assignment = state.assignment;
    }
  }

  out.schedule = std::move(best_schedule);
  out.makespan = makespan(inst, out.schedule);
  out.nodes = nodes;
  if (bounder) {
    out.lp_bounds_used = bounder->probes();
    out.lp_dual_solves = bounder->dual_solves();
    out.lp_iterations = bounder->iterations();
    out.fixed_vars = bounder->fixed_vars();
    out.lp_audits_suspect = bounder->audits_suspect();
    out.lp_recoveries = bounder->recoveries();
    out.lp_oracle_fallbacks = bounder->oracle_fallbacks();
  }
  // If no state was ever dropped for width or time, the beam covered every
  // state that could beat the incumbent/cutoff (up to sound symmetry/
  // dominance/cutoff skips) and the dive degenerates to an exhaustive
  // search; otherwise optimality is only proven when the incumbent meets
  // the certified lower bound.
  certify(&out, lower_bound, /*search_complete=*/!truncated);
  return out;
}

}  // namespace setsched::exact
