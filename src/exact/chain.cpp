#include "exact/chain.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "exact/dive.h"
#include "exact/search_util.h"

namespace setsched::exact {

ExactResult dive_then_prove(const Instance& inst, const ExactOptions& opt) {
  Timer timer;

  // Phase 1: a short dive for a strong incumbent. Capped at half the total
  // budget so the prove phase is never starved by its own warm-up.
  ExactOptions dive_opt = opt;
  dive_opt.mode = ExactMode::kDive;
  dive_opt.time_limit_s =
      std::min(opt.dive_time_limit_s, 0.5 * opt.time_limit_s);
  ExactResult dive = dive_search(inst, dive_opt);
  if (dive.proven_optimal) return dive;

  // Phase 2: prove, seeded with the dive's schedule as the starting
  // incumbent (so root reduced-cost fixing bites at the dive's makespan from
  // node 1, and a budget abort still returns at least that schedule). The
  // dive's spent node/time budget is charged against the chain's total; an
  // exhausted budget means the prove pass aborts on its first expansion and
  // the chain degenerates to the dive result.
  ExactOptions prove_opt = opt;
  prove_opt.mode = ExactMode::kProve;
  prove_opt.initial_schedule = dive.schedule;
  prove_opt.time_limit_s =
      std::max(0.0, opt.time_limit_s - timer.elapsed_seconds());
  prove_opt.max_nodes =
      opt.max_nodes > dive.nodes ? opt.max_nodes - dive.nodes : 0;
  ExactResult out = solve_exact(inst, prove_opt);

  // One RunRecord for the whole chain: effort counters are the sum of both
  // phases, and the certificate keeps the stronger of the two lower bounds.
  out.nodes += dive.nodes;
  out.lp_bounds_used += dive.lp_bounds_used;
  out.lp_dual_solves += dive.lp_dual_solves;
  out.lp_iterations += dive.lp_iterations;
  out.fixed_vars += dive.fixed_vars;
  out.lp_audits_suspect += dive.lp_audits_suspect;
  out.lp_recoveries += dive.lp_recoveries;
  out.lp_oracle_fallbacks += dive.lp_oracle_fallbacks;
  out.cg_columns += dive.cg_columns;
  out.cg_pricing_rounds += dive.cg_pricing_rounds;
  out.cg_fallbacks += dive.cg_fallbacks;
  if (!out.proven_optimal && dive.lower_bound > out.lower_bound) {
    certify(&out, dive.lower_bound, /*search_complete=*/false);
  }
  return out;
}

}  // namespace setsched::exact
