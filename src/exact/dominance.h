#pragma once

#include <cstddef>
#include <vector>

#include "exact/tolerances.h"

namespace setsched::exact {

/// Dominance memo over branch-and-bound states. Because jobs are branched in
/// a fixed order, the remaining-job set is determined by the depth, so a
/// state is (depth, per-machine loads, per-machine paid-setup row). A new
/// state is prunable when some previously explored state at the same depth
/// has pointwise <= loads and a pointwise >= paid-setup row: every
/// completion of the new state maps to a completion of the old one that is
/// at most as large, and cutoffs only tighten over time, so the old
/// subtree's exploration already covered it.
///
/// Storage is flat per depth and capped at `limit` states; once a depth is
/// full, new states are still checked against the stored ones but no longer
/// recorded (the memo stays sound, it just stops growing).
class DominanceTable {
 public:
  DominanceTable(std::size_t depths, std::size_t machines,
                 std::size_t classes_per_machine, std::size_t limit)
      : m_(machines),
        kc_(classes_per_machine),
        limit_(limit),
        levels_(depths) {}

  [[nodiscard]] bool enabled() const noexcept { return limit_ > 0; }

  /// True iff a recorded state at `depth` dominates (loads, class_on);
  /// otherwise records the state (subject to the cap) and returns false.
  bool dominated_or_record(std::size_t depth, const std::vector<double>& loads,
                           const std::vector<char>& class_on) {
    Level& level = levels_[depth];
    for (std::size_t s = 0; s < level.count; ++s) {
      if (dominates(level, s, loads, class_on)) {
        ++hits_;
        return true;
      }
    }
    if (level.count < limit_) {
      level.loads.insert(level.loads.end(), loads.begin(), loads.end());
      level.class_on.insert(level.class_on.end(), class_on.begin(),
                            class_on.end());
      ++level.count;
    }
    return false;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

 private:
  struct Level {
    std::vector<double> loads;    ///< count x m, row-major
    std::vector<char> class_on;   ///< count x (m * kc), row-major
    std::size_t count = 0;
  };

  [[nodiscard]] bool dominates(const Level& level, std::size_t s,
                               const std::vector<double>& loads,
                               const std::vector<char>& class_on) const {
    const double* old_loads = level.loads.data() + s * m_;
    for (std::size_t i = 0; i < m_; ++i) {
      if (old_loads[i] > loads[i] + kDominanceLoadSlack) return false;
    }
    const char* old_on = level.class_on.data() + s * m_ * kc_;
    for (std::size_t e = 0; e < m_ * kc_; ++e) {
      if (class_on[e] != 0 && old_on[e] == 0) return false;
    }
    return true;
  }

  std::size_t m_;
  std::size_t kc_;
  std::size_t limit_;
  std::vector<Level> levels_;
  std::size_t hits_ = 0;
};

}  // namespace setsched::exact
