#include "exact/search_util.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "core/schedule.h"
#include "core/types.h"
#include "exact/tolerances.h"

namespace setsched::exact {

SearchPlan build_search_plan(const Instance& instance) {
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();
  const std::size_t kc = instance.num_classes();

  SearchPlan plan;
  plan.min_proc.resize(n);
  for (JobId j = 0; j < n; ++j) {
    double mn = kInfinity;
    for (MachineId i = 0; i < m; ++i) {
      if (instance.eligible(i, j)) mn = std::min(mn, instance.proc(i, j));
    }
    plan.min_proc[j] = mn;
  }
  std::vector<double> class_weight(kc, 0.0);
  for (JobId j = 0; j < n; ++j) {
    class_weight[instance.job_class(j)] += plan.min_proc[j];
  }
  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), 0);
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&](JobId a, JobId b) {
                     const ClassId ka = instance.job_class(a);
                     const ClassId kb = instance.job_class(b);
                     if (ka != kb) {
                       if (class_weight[ka] != class_weight[kb]) {
                         return class_weight[ka] > class_weight[kb];
                       }
                       return ka < kb;
                     }
                     return plan.min_proc[a] > plan.min_proc[b];
                   });
  plan.min_total =
      std::accumulate(plan.min_proc.begin(), plan.min_proc.end(), 0.0);

  plan.machine_rep.resize(m);
  for (MachineId i = 0; i < m; ++i) {
    plan.machine_rep[i] = i;
    for (MachineId r = 0; r < i; ++r) {
      if (plan.machine_rep[r] != r) continue;
      bool same = true;
      for (JobId j = 0; j < n && same; ++j) {
        same = instance.proc(i, j) == instance.proc(r, j);
      }
      for (ClassId k = 0; k < kc && same; ++k) {
        same = instance.setup(i, k) == instance.setup(r, k);
      }
      if (same) {
        plan.machine_rep[i] = r;
        break;
      }
    }
  }
  return plan;
}

bool symmetric_duplicate(const Instance& instance, const SearchPlan& plan,
                         MachineId i, const std::vector<double>& loads,
                         const std::vector<char>& class_on) {
  const MachineId rep = plan.machine_rep[i];
  if (rep == i) return false;
  const std::size_t kc = instance.num_classes();
  for (MachineId r = rep; r < i; ++r) {
    if (plan.machine_rep[r] != rep) continue;
    if (loads[r] != loads[i]) continue;
    bool same = true;
    for (ClassId k = 0; k < kc && same; ++k) {
      same = class_on[r * kc + k] == class_on[i * kc + k];
    }
    if (same) return true;
  }
  return false;
}

void adopt_initial_schedule(const Instance& instance, const Schedule& initial,
                            Schedule* best, double* incumbent) {
  const std::optional<std::string> error = schedule_error(instance, initial);
  check(!error.has_value(),
        "ExactOptions::initial_schedule is not a feasible schedule: " +
            (error ? *error : std::string()));
  const double value = makespan(instance, initial);
  if (value < *incumbent) {
    *best = initial;
    *incumbent = value;
  }
}

void certify(ExactResult* out, double lower_bound, bool search_complete) {
  const double tol = kCertRelTol * std::max(1.0, lower_bound);
  out->proven_optimal =
      search_complete || out->makespan <= lower_bound + tol;
  if (out->proven_optimal) {
    out->lower_bound = out->makespan;
    out->gap = 0.0;
  } else {
    out->lower_bound = lower_bound;
    out->gap = std::max(
        0.0, (out->makespan - lower_bound) /
                 std::max(lower_bound, kGapDenominatorFloor));
  }
}

}  // namespace setsched::exact
