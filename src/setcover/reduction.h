#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/result.h"
#include "setcover/setcover.h"

namespace setsched {

/// Output of the Theorem 3.5 randomized reduction. The scheduling instance
/// has m machines (one per set), K classes with N jobs each (one per
/// universe element), unit setups s_ik = 1, and p_ij ∈ {0, ∞}: job (k, e) is
/// eligible on machine i iff e ∈ S_{π_k(i)} for the class's random
/// permutation π_k. Makespans therefore count setups per machine.
struct SetCoverReduction {
  Instance instance;
  /// permutation[k][i] = index of the set machine i plays for class k.
  std::vector<std::vector<std::uint32_t>> permutation;
  std::size_t universe_size = 0;

  [[nodiscard]] std::size_t num_classes() const { return permutation.size(); }

  /// Job id of class k's copy of element e.
  [[nodiscard]] JobId job_of(ClassId k, std::uint32_t element) const {
    return static_cast<JobId>(k * universe_size + element);
  }
};

struct ReductionParams {
  /// Number of classes; 0 means the paper's K = (m / t) * log2(m), at least 1.
  std::size_t num_classes = 0;
  std::uint64_t seed = 1;
};

/// Builds the reduction instance from a SetCover instance and the target
/// cover size t (used only for the default K).
[[nodiscard]] SetCoverReduction reduce_setcover(const SetCoverInstance& sc,
                                                std::size_t cover_size,
                                                const ReductionParams& params = {});

/// The Yes-case schedule of the Thm 3.5 proof: set up machine i for class k
/// iff S_{π_k(i)} belongs to `cover`; each job goes to such a machine
/// containing its element. Requires `cover` to be a cover. Its makespan is
/// the max number of class setups on a machine — O(K t / m + log m) whp.
[[nodiscard]] ScheduleResult schedule_from_cover(
    const SetCoverReduction& reduction, const SetCoverInstance& sc,
    const std::vector<std::size_t>& cover);

/// The No-case averaging bound of the Thm 3.5 proof: if every cover of the
/// SetCover instance needs at least `cover_lb` sets, every schedule of the
/// reduction instance has makespan >= K * cover_lb / m.
[[nodiscard]] double reduction_makespan_lower_bound(std::size_t num_classes,
                                                    std::size_t num_machines,
                                                    std::size_t cover_lb);

}  // namespace setsched
