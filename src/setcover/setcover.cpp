#include "setcover/setcover.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"

namespace setsched {

void SetCoverInstance::validate() const {
  std::vector<char> covered(universe_size, 0);
  for (const auto& set : sets) {
    for (const std::uint32_t e : set) {
      check(e < universe_size, "set element out of range");
      covered[e] = 1;
    }
  }
  for (const char c : covered) {
    check(c != 0, "union of sets does not cover the universe");
  }
}

bool is_cover(const SetCoverInstance& instance,
              const std::vector<std::size_t>& selected) {
  std::vector<char> covered(instance.universe_size, 0);
  for (const std::size_t s : selected) {
    check(s < instance.num_sets(), "selected set index out of range");
    for (const std::uint32_t e : instance.sets[s]) covered[e] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

std::vector<std::size_t> greedy_cover(const SetCoverInstance& instance) {
  instance.validate();
  std::vector<char> covered(instance.universe_size, 0);
  std::size_t uncovered = instance.universe_size;
  std::vector<std::size_t> chosen;

  while (uncovered > 0) {
    std::size_t best = SIZE_MAX;
    std::size_t best_gain = 0;
    for (std::size_t s = 0; s < instance.num_sets(); ++s) {
      std::size_t gain = 0;
      for (const std::uint32_t e : instance.sets[s]) gain += covered[e] == 0;
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    check(best != SIZE_MAX, "greedy stuck: universe not coverable");
    chosen.push_back(best);
    for (const std::uint32_t e : instance.sets[best]) {
      if (!covered[e]) {
        covered[e] = 1;
        --uncovered;
      }
    }
  }
  return chosen;
}

std::size_t min_cover_lower_bound(const SetCoverInstance& instance) {
  std::size_t max_size = 0;
  for (const auto& set : instance.sets) max_size = std::max(max_size, set.size());
  check(max_size > 0, "all sets empty");
  return (instance.universe_size + max_size - 1) / max_size;
}

PlantedSetCover generate_planted_setcover(std::size_t universe,
                                          std::size_t num_sets,
                                          std::size_t cover_size,
                                          std::uint64_t seed) {
  check(cover_size >= 1 && cover_size <= num_sets,
        "cover_size must be in [1, num_sets]");
  check(universe >= cover_size, "universe smaller than cover");
  Xoshiro256 rng(seed);

  SetCoverInstance inst;
  inst.universe_size = universe;
  inst.sets.resize(num_sets);

  // Partition the universe into cover_size planted sets (randomized blocks).
  auto elements = random_permutation<std::uint32_t>(universe, rng);
  for (std::size_t e = 0; e < universe; ++e) {
    inst.sets[e % cover_size].push_back(elements[e]);
  }
  const std::size_t avg_size = universe / cover_size;

  // Decoys: random subsets of comparable size (so the planted cover does not
  // stand out by cardinality).
  for (std::size_t s = cover_size; s < num_sets; ++s) {
    const std::size_t size =
        std::max<std::size_t>(1, avg_size / 2 + rng.next_below(avg_size + 1));
    auto perm = random_permutation<std::uint32_t>(universe, rng);
    inst.sets[s].assign(perm.begin(),
                        perm.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(size, universe)));
    std::sort(inst.sets[s].begin(), inst.sets[s].end());
  }
  for (std::size_t s = 0; s < cover_size; ++s) {
    std::sort(inst.sets[s].begin(), inst.sets[s].end());
  }

  // Shuffle set positions so the planted cover is not the prefix.
  auto position = random_permutation<std::uint32_t>(num_sets, rng);
  std::vector<std::vector<std::uint32_t>> shuffled(num_sets);
  for (std::size_t s = 0; s < num_sets; ++s) {
    shuffled[position[s]] = std::move(inst.sets[s]);
  }
  inst.sets = std::move(shuffled);

  PlantedSetCover out;
  out.instance = std::move(inst);
  out.planted.resize(cover_size);
  for (std::size_t s = 0; s < cover_size; ++s) out.planted[s] = position[s];
  std::sort(out.planted.begin(), out.planted.end());
  out.instance.validate();
  check(is_cover(out.instance, out.planted), "planted cover is not a cover");
  return out;
}

SetCoverInstance generate_small_sets_setcover(std::size_t universe,
                                              std::size_t num_sets,
                                              std::size_t max_set_size,
                                              std::uint64_t seed) {
  check(max_set_size >= 1, "max_set_size must be positive");
  check(num_sets * max_set_size >= universe,
        "sets too small to cover the universe");
  Xoshiro256 rng(seed);

  SetCoverInstance inst;
  inst.universe_size = universe;
  inst.sets.resize(num_sets);

  // First ceil(universe / max_set_size) sets tile the universe (ensuring
  // coverage); the rest are random small sets.
  const std::size_t tiles = (universe + max_set_size - 1) / max_set_size;
  check(tiles <= num_sets, "not enough sets to tile the universe");
  auto elements = random_permutation<std::uint32_t>(universe, rng);
  for (std::size_t e = 0; e < universe; ++e) {
    inst.sets[e / max_set_size].push_back(elements[e]);
  }
  for (std::size_t s = tiles; s < num_sets; ++s) {
    const std::size_t size = 1 + rng.next_below(max_set_size);
    auto perm = random_permutation<std::uint32_t>(universe, rng);
    inst.sets[s].assign(perm.begin(),
                        perm.begin() + static_cast<std::ptrdiff_t>(size));
    std::sort(inst.sets[s].begin(), inst.sets[s].end());
  }
  for (std::size_t s = 0; s < tiles; ++s) {
    std::sort(inst.sets[s].begin(), inst.sets[s].end());
  }

  // Shuffle positions.
  auto position = random_permutation<std::uint32_t>(num_sets, rng);
  std::vector<std::vector<std::uint32_t>> shuffled(num_sets);
  for (std::size_t s = 0; s < num_sets; ++s) {
    shuffled[position[s]] = std::move(inst.sets[s]);
  }
  inst.sets = std::move(shuffled);
  inst.validate();
  return inst;
}

}  // namespace setsched
