#include "setcover/reduction.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/prng.h"

namespace setsched {

SetCoverReduction reduce_setcover(const SetCoverInstance& sc,
                                  std::size_t cover_size,
                                  const ReductionParams& params) {
  sc.validate();
  check(cover_size >= 1, "cover size must be positive");
  const std::size_t m = sc.num_sets();
  const std::size_t n_elements = sc.universe_size;

  std::size_t kc = params.num_classes;
  if (kc == 0) {
    // Paper: K = (m / t) log m.
    kc = static_cast<std::size_t>(std::ceil(
        static_cast<double>(m) / static_cast<double>(cover_size) *
        std::log2(std::max<double>(2.0, static_cast<double>(m)))));
  }
  kc = std::max<std::size_t>(kc, 1);

  Xoshiro256 rng(params.seed);

  // job (k, e) has id k * N + e.
  std::vector<ClassId> job_class(kc * n_elements);
  for (std::size_t k = 0; k < kc; ++k) {
    for (std::size_t e = 0; e < n_elements; ++e) {
      job_class[k * n_elements + e] = static_cast<ClassId>(k);
    }
  }
  Instance inst(m, kc, std::move(job_class));

  // Element membership lookup per set.
  std::vector<std::vector<char>> in_set(m, std::vector<char>(n_elements, 0));
  for (std::size_t s = 0; s < m; ++s) {
    for (const std::uint32_t e : sc.sets[s]) in_set[s][e] = 1;
  }

  SetCoverReduction out{std::move(inst), {}, n_elements};
  out.permutation.resize(kc);
  for (std::size_t k = 0; k < kc; ++k) {
    out.permutation[k] = random_permutation<std::uint32_t>(m, rng);
    for (MachineId i = 0; i < m; ++i) {
      const std::uint32_t set_index = out.permutation[k][i];
      out.instance.set_setup(i, static_cast<ClassId>(k), 1.0);
      for (std::uint32_t e = 0; e < n_elements; ++e) {
        const JobId j = out.job_of(static_cast<ClassId>(k), e);
        out.instance.set_proc(i, j, in_set[set_index][e] ? 0.0 : kInfinity);
      }
    }
  }
  out.instance.validate();
  return out;
}

ScheduleResult schedule_from_cover(const SetCoverReduction& reduction,
                                   const SetCoverInstance& sc,
                                   const std::vector<std::size_t>& cover) {
  check(is_cover(sc, cover), "schedule_from_cover requires a cover");
  const Instance& inst = reduction.instance;
  const std::size_t m = inst.num_machines();
  std::vector<char> in_cover(sc.num_sets(), 0);
  for (const std::size_t s : cover) in_cover[s] = 1;

  Schedule schedule = Schedule::empty(inst.num_jobs());
  for (ClassId k = 0; k < reduction.num_classes(); ++k) {
    // Machines playing cover sets for class k.
    std::vector<MachineId> open;
    for (MachineId i = 0; i < m; ++i) {
      if (in_cover[reduction.permutation[k][i]]) open.push_back(i);
    }
    for (std::uint32_t e = 0; e < reduction.universe_size; ++e) {
      const JobId j = reduction.job_of(k, e);
      MachineId chosen = kUnassigned;
      for (const MachineId i : open) {
        if (inst.proc(i, j) == 0.0) {
          chosen = i;
          break;
        }
      }
      check(chosen != kUnassigned,
            "cover does not cover an element (inconsistent reduction)");
      schedule.assignment[j] = chosen;
    }
  }
  return {schedule, makespan(inst, schedule), {}};
}

double reduction_makespan_lower_bound(std::size_t num_classes,
                                      std::size_t num_machines,
                                      std::size_t cover_lb) {
  // Every class needs at least cover_lb distinct machines set up (any fewer
  // machines could not host all its element jobs), so at least
  // K * cover_lb setups are paid in total; some machine pays the average.
  return static_cast<double>(num_classes) * static_cast<double>(cover_lb) /
         static_cast<double>(num_machines);
}

}  // namespace setsched
