#pragma once

#include <cstdint>
#include <vector>

namespace setsched {

/// A SetCover instance: universe {0, ..., universe_size-1} and a family of
/// subsets. Substrate for the Theorem 3.5 hardness reduction.
struct SetCoverInstance {
  std::size_t universe_size = 0;
  std::vector<std::vector<std::uint32_t>> sets;

  [[nodiscard]] std::size_t num_sets() const noexcept { return sets.size(); }

  /// Throws CheckError if some set references an element out of range or the
  /// union of all sets does not cover the universe.
  void validate() const;
};

/// True iff the selected set indices cover the whole universe.
[[nodiscard]] bool is_cover(const SetCoverInstance& instance,
                            const std::vector<std::size_t>& selected);

/// Classic greedy SetCover (repeatedly pick the set covering the most
/// uncovered elements): H_n-approximation, our baseline cover finder.
[[nodiscard]] std::vector<std::size_t> greedy_cover(const SetCoverInstance& instance);

/// Certificate-style lower bound: any cover needs at least
/// ceil(universe / max set size) sets.
[[nodiscard]] std::size_t min_cover_lower_bound(const SetCoverInstance& instance);

/// A SetCover instance with a known (planted) cover.
struct PlantedSetCover {
  SetCoverInstance instance;
  std::vector<std::size_t> planted;  ///< indices of the planted cover
};

/// Yes-type generator: t planted sets partition the universe; the other
/// m - t sets are random decoys (uniform elements, similar sizes). The
/// planted cover certifies OPT <= t.
[[nodiscard]] PlantedSetCover generate_planted_setcover(std::size_t universe,
                                                        std::size_t num_sets,
                                                        std::size_t cover_size,
                                                        std::uint64_t seed);

/// No-type generator: all sets have size <= max_set_size (so any cover needs
/// >= universe / max_set_size sets) while their union still covers the
/// universe.
[[nodiscard]] SetCoverInstance generate_small_sets_setcover(
    std::size_t universe, std::size_t num_sets, std::size_t max_set_size,
    std::uint64_t seed);

}  // namespace setsched
