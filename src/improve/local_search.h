#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

struct LocalSearchOptions {
  /// Stop after this many consecutive non-improving sweeps.
  std::size_t patience = 2;
  /// Hard cap on full improvement sweeps.
  std::size_t max_sweeps = 60;
  /// Also try relocating whole class batches between machines.
  bool class_moves = true;
  /// Also try pairwise job swaps (quadratic per sweep; off for huge n).
  bool swaps = true;
};

struct LocalSearchResult {
  Schedule schedule;
  double makespan = 0.0;
  std::size_t moves_applied = 0;
  std::size_t sweeps = 0;
};

/// First-improvement local search over job moves, job swaps and whole-class
/// batch moves, steered by makespan with total squared load as tie-breaker
/// (so plateau moves that balance load are accepted). A post-optimizer for
/// any schedule produced by the approximation algorithms (used by the A3
/// ablation); it never worsens the input.
[[nodiscard]] LocalSearchResult local_search(const Instance& instance,
                                             const Schedule& start,
                                             const LocalSearchOptions& options = {});

}  // namespace setsched
