#include "improve/local_search.h"

#include <algorithm>

#include "common/check.h"

namespace setsched {

namespace {

/// Incremental load tracker: machine loads plus per-(machine, class) job
/// counts so that removing the last job of a class refunds its setup.
class LoadTracker {
 public:
  LoadTracker(const Instance& inst, const Schedule& schedule)
      : inst_(inst),
        load_(inst.num_machines(), 0.0),
        class_jobs_(inst.num_machines() * inst.num_classes(), 0) {
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      add_job(j, schedule.assignment[j]);
    }
  }

  void add_job(JobId j, MachineId i) {
    const ClassId k = inst_.job_class(j);
    auto& count = class_jobs_[i * inst_.num_classes() + k];
    load_[i] += inst_.proc(i, j);
    if (count == 0) load_[i] += inst_.setup(i, k);
    ++count;
  }

  void remove_job(JobId j, MachineId i) {
    const ClassId k = inst_.job_class(j);
    auto& count = class_jobs_[i * inst_.num_classes() + k];
    load_[i] -= inst_.proc(i, j);
    if (--count == 0) load_[i] -= inst_.setup(i, k);
  }

  [[nodiscard]] double load(MachineId i) const { return load_[i]; }

  [[nodiscard]] double makespan() const {
    return *std::max_element(load_.begin(), load_.end());
  }

  /// Σ load², the balance tie-breaker.
  [[nodiscard]] double potential() const {
    double p = 0.0;
    for (const double l : load_) p += l * l;
    return p;
  }

 private:
  const Instance& inst_;
  std::vector<double> load_;
  std::vector<std::int32_t> class_jobs_;
};

struct Score {
  double makespan;
  double potential;
  [[nodiscard]] bool better_than(const Score& o) const {
    if (makespan < o.makespan - 1e-12) return true;
    if (makespan > o.makespan + 1e-12) return false;
    return potential < o.potential - 1e-9;
  }
};

Score score_of(const LoadTracker& t) { return {t.makespan(), t.potential()}; }

}  // namespace

LocalSearchResult local_search(const Instance& instance, const Schedule& start,
                               const LocalSearchOptions& options) {
  check(!schedule_error(instance, start).has_value(),
        "local search requires a complete valid schedule");
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();

  Schedule schedule = start;
  LoadTracker tracker(instance, schedule);
  Score current = score_of(tracker);

  LocalSearchResult out;
  std::size_t stale = 0;

  const auto by_class = instance.jobs_by_class();

  for (std::size_t sweep = 0;
       sweep < options.max_sweeps && stale < options.patience; ++sweep) {
    ++out.sweeps;
    bool improved = false;

    // --- single-job moves ---
    for (JobId j = 0; j < n; ++j) {
      const MachineId from = schedule.assignment[j];
      for (MachineId to = 0; to < m; ++to) {
        if (to == from || !instance.eligible(to, j)) continue;
        tracker.remove_job(j, from);
        tracker.add_job(j, to);
        const Score candidate = score_of(tracker);
        if (candidate.better_than(current)) {
          schedule.assignment[j] = to;
          current = candidate;
          ++out.moves_applied;
          improved = true;
          break;  // job moved; continue with the next job
        }
        tracker.remove_job(j, to);
        tracker.add_job(j, from);
      }
    }

    // --- pairwise swaps ---
    if (options.swaps) {
      for (JobId a = 0; a < n; ++a) {
        for (JobId b = a + 1; b < n; ++b) {
          const MachineId ia = schedule.assignment[a];
          const MachineId ib = schedule.assignment[b];
          if (ia == ib) continue;
          if (!instance.eligible(ib, a) || !instance.eligible(ia, b)) continue;
          tracker.remove_job(a, ia);
          tracker.remove_job(b, ib);
          tracker.add_job(a, ib);
          tracker.add_job(b, ia);
          const Score candidate = score_of(tracker);
          if (candidate.better_than(current)) {
            std::swap(schedule.assignment[a], schedule.assignment[b]);
            current = candidate;
            ++out.moves_applied;
            improved = true;
          } else {
            tracker.remove_job(a, ib);
            tracker.remove_job(b, ia);
            tracker.add_job(a, ia);
            tracker.add_job(b, ib);
          }
        }
      }
    }

    // --- whole-class batch moves ---
    if (options.class_moves) {
      for (ClassId k = 0; k < instance.num_classes(); ++k) {
        if (by_class[k].empty()) continue;
        for (MachineId to = 0; to < m; ++to) {
          bool eligible = true;
          for (const JobId j : by_class[k]) {
            if (!instance.eligible(to, j)) {
              eligible = false;
              break;
            }
          }
          if (!eligible) continue;
          std::vector<MachineId> old_home(by_class[k].size());
          bool any_moved = false;
          for (std::size_t t = 0; t < by_class[k].size(); ++t) {
            const JobId j = by_class[k][t];
            old_home[t] = schedule.assignment[j];
            if (old_home[t] != to) {
              any_moved = true;
              tracker.remove_job(j, old_home[t]);
              tracker.add_job(j, to);
            }
          }
          if (!any_moved) continue;
          const Score candidate = score_of(tracker);
          if (candidate.better_than(current)) {
            for (const JobId j : by_class[k]) schedule.assignment[j] = to;
            current = candidate;
            ++out.moves_applied;
            improved = true;
          } else {
            for (std::size_t t = 0; t < by_class[k].size(); ++t) {
              const JobId j = by_class[k][t];
              if (old_home[t] != to) {
                tracker.remove_job(j, to);
                tracker.add_job(j, old_home[t]);
              }
            }
          }
        }
      }
    }

    stale = improved ? 0 : stale + 1;
  }

  out.makespan = makespan(instance, schedule);
  out.schedule = std::move(schedule);
  return out;
}

}  // namespace setsched
