#pragma once

#include <cstdint>

#include "common/thread_pool.h"
#include "core/instance.h"
#include "unrelated/assignment_lp.h"
#include "unrelated/rounding.h"

namespace setsched {

/// Column-generation solver for the *configuration LP* of scheduling with
/// setup times: a configuration of machine i is a job set S with
///   Σ_{j∈S} p_ij + Σ_{k: S∩J_k≠∅} s_ik <= T.
/// The restricted master problem maximizes fractional job coverage subject
/// to one unit of configuration mass per machine; coverage n certifies
/// (fractional) feasibility of the guess T. Pricing is a knapsack with
/// class opening costs, solved exactly on a scaled grid of `grid` buckets:
/// item weights are rounded *up*, so every generated configuration genuinely
/// fits in T, at the price of conservatism (a feasible T may be reported
/// infeasible-at-grid when Σ of up-rounding slack matters). The recovered
/// (x, y) pair satisfies the assignment-LP constraints (1), (2), (4) and is
/// consumed unchanged by the Theorem 3.3 randomized rounding — this is the
/// scalable path when the direct LP's Θ(nm) coupling rows are too large.
struct ConfigLpOptions {
  std::size_t grid = 2048;
  std::size_t max_iterations = 80;
  double tol = 1e-6;
  /// Optional pool: pricing problems across machines run in parallel.
  ThreadPool* pool = nullptr;
  /// Simplex knobs for the restricted master. The RMP model is built once
  /// and grows by columns; each round's solve warm-starts from the previous
  /// round's basis (revised path only).
  lp::SimplexOptions simplex = {};
};

enum class ConfigLpStatus {
  kFeasible,          ///< coverage n reached; fractional solution returned
  kInfeasibleAtGrid,  ///< no improving column and coverage < n
  kIterationLimit,
};

struct ConfigLpResult {
  ConfigLpStatus status = ConfigLpStatus::kIterationLimit;
  FractionalAssignment fractional;  ///< valid iff kFeasible
  double coverage = 0.0;            ///< final RMP objective (<= n)
  std::size_t columns = 0;
  std::size_t iterations = 0;
  std::size_t lp_solves = 0;          ///< RMP solves (== rounds run)
  std::size_t simplex_iterations = 0; ///< summed over all RMP solves
};

[[nodiscard]] ConfigLpResult solve_config_lp(const Instance& instance, double T,
                                             const ConfigLpOptions& options = {});

/// One priced configuration column for a machine (the pricing subproblem's
/// optimum): the covered job set and its total dual value.
struct PricedConfig {
  double value = 0.0;  ///< Σ duals of covered jobs (mandatory jobs included)
  std::vector<JobId> jobs;
  /// Pin feasibility certificate (branch-and-price only; always true when no
  /// pins are passed): false means the jobs *pinned to this machine* alone
  /// overflow the grid at T. Because weights are rounded up at an inflated
  /// probe T (exact/config_bound.h picks T so any truly-T-feasible set
  /// rounds within the grid), overflow of the mandatory subset certifies
  /// that machine's true load exceeds T in EVERY completion of the partial
  /// schedule — a sound prune.
  bool pins_fit = true;
};

/// Exact knapsack-with-class-opening-costs pricing for one machine on the
/// scaled grid (weights rounded up, so any returned set truly fits in T).
/// This is the pricing subproblem of solve_config_lp(), exposed for the
/// branch-and-price bounder (exact/config_bound.h).
///
/// `pinned` (optional, size n, kUnassigned = free) restricts the priced
/// configuration to ones consistent with a partial schedule: jobs pinned to
/// machine `i` are MANDATORY (always included, their class openings and
/// weights pre-committed, their duals credited even when below `tol`), jobs
/// pinned elsewhere are EXCLUDED. Without pins a value below `tol` returns
/// an empty job set (no worthwhile configuration); with mandatory jobs the
/// pinned set is always returned so the RMP can cover pinned jobs.
[[nodiscard]] PricedConfig price_machine_config(
    const Instance& instance, MachineId i, double T,
    const std::vector<double>& dual, std::size_t grid, double tol,
    const std::vector<MachineId>* pinned = nullptr);

/// Theorem 3.3 rounding driven by the configuration LP instead of the direct
/// assignment LP: binary-searches the smallest grid-feasible T, then runs
/// the unchanged randomized rounding on the recovered fractional solution.
[[nodiscard]] RoundingResult randomized_rounding_config(
    const Instance& instance, const RoundingOptions& rounding = {},
    const ConfigLpOptions& config = {});

}  // namespace setsched
