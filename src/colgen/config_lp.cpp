#include "colgen/config_lp.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/check.h"
#include "common/prng.h"
#include "core/bounds.h"
#include "lp/simplex.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched {

PricedConfig price_machine_config(const Instance& inst, MachineId i, double T,
                                  const std::vector<double>& dual,
                                  std::size_t grid, double tol,
                                  const std::vector<MachineId>* pinned) {
  const double unit = T / static_cast<double>(grid);
  const auto weight_of = [&](double x) -> std::size_t {
    return static_cast<std::size_t>(std::ceil(x / unit - 1e-12));
  };

  PricedConfig best;

  // Jobs pinned to this machine are mandatory: their weights and class
  // openings are pre-committed (shrinking the free knapsack's capacity) and
  // their duals credited unconditionally. Overflow of the mandatory set
  // alone certifies pins_fit = false (see config_lp.h).
  std::size_t cap = grid;
  double mandatory_value = 0.0;
  std::vector<JobId> mandatory;
  std::vector<char> class_pinned_open(inst.num_classes(), 0);
  if (pinned != nullptr) {
    std::size_t used = 0;
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      if ((*pinned)[j] != i) continue;
      const ClassId k = inst.job_class(j);
      const double p = inst.proc(i, j);
      const double s = inst.setup(i, k);
      if (p >= kInfinity || s >= kInfinity) {
        best.pins_fit = false;  // ineligible pin: no configuration exists
        return best;
      }
      if (!class_pinned_open[k]) {
        class_pinned_open[k] = 1;
        used += weight_of(s);
      }
      used += weight_of(p);
      mandatory_value += dual[j];
      mandatory.push_back(j);
    }
    if (used > grid) {
      best.pins_fit = false;
      return best;
    }
    cap = grid - used;
  }

  struct Item {
    JobId job;
    std::size_t weight;
    double value;
  };
  struct ClassStage {
    ClassId cls;
    std::size_t setup_weight;
    std::vector<Item> items;
  };
  std::vector<ClassStage> stages;
  {
    const auto by_class = inst.jobs_by_class();
    for (ClassId k = 0; k < inst.num_classes(); ++k) {
      // A class opened by a mandatory job admits its free jobs setup-free.
      const bool pinned_open = class_pinned_open[k] != 0;
      const double s = inst.setup(i, k);
      if (!pinned_open && (s >= kInfinity || s > T)) continue;
      ClassStage stage{k, pinned_open ? 0 : weight_of(s), {}};
      for (const JobId j : by_class[k]) {
        if (pinned != nullptr && (*pinned)[j] != kUnassigned) continue;
        if (dual[j] <= tol) continue;
        const double p = inst.proc(i, j);
        if (p >= kInfinity || p > T) continue;
        const std::size_t w = weight_of(p);
        if (stage.setup_weight + w > cap) continue;
        stage.items.push_back({j, w, dual[j]});
      }
      if (!stage.items.empty()) stages.push_back(std::move(stage));
    }
  }

  if (stages.empty()) {
    best.value = mandatory_value;
    best.jobs = std::move(mandatory);
    return best;
  }

  // Forward: dp tables at class boundaries (capacity semantics, monotone).
  const std::size_t width = cap + 1;
  std::vector<std::vector<double>> boundary(stages.size() + 1,
                                            std::vector<double>(width, 0.0));
  const auto run_class = [&](const ClassStage& stage,
                             const std::vector<double>& before,
                             std::vector<char>* choice) {
    // inner[w] = best value when the class is open within capacity w.
    std::vector<double> inner(width, -1.0);
    for (std::size_t w = stage.setup_weight; w < width; ++w) {
      inner[w] = before[w - stage.setup_weight];
    }
    for (std::size_t t = 0; t < stage.items.size(); ++t) {
      const Item& item = stage.items[t];
      for (std::size_t w = width; w-- > item.weight;) {
        const double candidate = inner[w - item.weight];
        if (candidate < 0.0) continue;
        if (candidate + item.value > inner[w]) {
          inner[w] = candidate + item.value;
          if (choice != nullptr) {
            (*choice)[t * width + w] = 1;
          }
        }
      }
    }
    return inner;
  };

  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto inner = run_class(stages[s], boundary[s], nullptr);
    auto& after = boundary[s + 1];
    for (std::size_t w = 0; w < width; ++w) {
      after[w] = std::max(boundary[s][w], inner[w]);
    }
  }

  const double free_value = boundary[stages.size()][cap];
  if (free_value <= tol) {
    // No worthwhile free configuration. Without pins this is the legacy
    // "empty column" answer; with mandatory jobs the pinned set itself is
    // still a valid (and required) configuration.
    best.value = mandatory_value;
    best.jobs = std::move(mandatory);
    return best;
  }
  best.value = free_value + mandatory_value;

  // Backtrack, recomputing each class's inner table with choice flags.
  std::size_t w = cap;
  for (std::size_t s = stages.size(); s-- > 0;) {
    const auto& before = boundary[s];
    const auto& after = boundary[s + 1];
    if (after[w] == before[w]) continue;  // class skipped
    const ClassStage& stage = stages[s];
    std::vector<char> choice(stage.items.size() * width, 0);
    const auto inner = run_class(stage, before, &choice);
    check(std::abs(inner[w] - after[w]) < 1e-9, "pricing backtrack mismatch");
    for (std::size_t t = stage.items.size(); t-- > 0;) {
      if (choice[t * width + w]) {
        best.jobs.push_back(stage.items[t].job);
        w -= stage.items[t].weight;
      }
    }
    check(w >= stage.setup_weight, "pricing backtrack below setup weight");
    w -= stage.setup_weight;
  }
  best.jobs.insert(best.jobs.end(), mandatory.begin(), mandatory.end());
  return best;
}

ConfigLpResult solve_config_lp(const Instance& instance, double T,
                               const ConfigLpOptions& options) {
  instance.validate();
  check(options.grid >= 16, "grid too coarse");
  const std::size_t n = instance.num_jobs();
  const std::size_t m = instance.num_machines();

  struct Column {
    MachineId machine;
    std::vector<JobId> jobs;
  };
  std::vector<Column> columns;

  ConfigLpResult out;
  std::vector<double> dual_job(n, 1.0);   // pricing duals; 1.0 seeds round 0
  std::vector<double> dual_machine(m, 0.0);

  // The restricted master is built ONCE (u variables, job rows, machine
  // rows) and only grows: each round appends the newly priced configuration
  // columns and re-solves warm-started from the previous round's basis, so
  // late rounds cost a handful of simplex iterations instead of a full
  // cold solve over every column generated so far.
  lp::Model rmp(lp::Objective::kMaximize);
  std::vector<std::size_t> u_var(n);
  for (JobId j = 0; j < n; ++j) u_var[j] = rmp.add_variable(0.0, 1.0, 1.0);
  // u_j - Σ_{c ∋ j} z_c <= 0 per job (z entries appended as columns arrive).
  std::vector<std::size_t> job_row_index(n);
  for (JobId j = 0; j < n; ++j) {
    job_row_index[j] =
        rmp.add_constraint({{u_var[j], 1.0}}, lp::Sense::kLessEqual, 0.0);
  }
  // Σ_c z_{i,c} <= 1 per machine (rows start empty).
  std::vector<std::size_t> machine_row_index(m);
  for (MachineId i = 0; i < m; ++i) {
    machine_row_index[i] = rmp.add_constraint({}, lp::Sense::kLessEqual, 1.0);
  }
  std::vector<std::size_t> z_var;
  lp::Basis rmp_basis;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;

    // --- pricing (parallel across machines) ---
    std::vector<PricedConfig> priced(m);
    const auto price_one = [&](std::size_t i) {
      priced[i] = price_machine_config(instance, static_cast<MachineId>(i), T,
                                       dual_job, options.grid, options.tol);
    };
    {
      const obs::PhaseTimer phase(obs::Phase::kColgenPricing);
      obs::TraceSpan span("colgen_pricing", "colgen");
      span.set_arg("round", static_cast<double>(iter));
      if (options.pool != nullptr) {
        options.pool->parallel_for(0, m, price_one);
      } else {
        for (std::size_t i = 0; i < m; ++i) price_one(i);
      }
    }

    // A configuration improves the RMP iff its dual value beats the
    // machine's convexity dual.
    bool added = false;
    for (MachineId i = 0; i < m; ++i) {
      if (priced[i].jobs.empty()) continue;
      if (priced[i].value <= dual_machine[i] + options.tol) continue;
      added = true;
      const std::size_t z = rmp.add_variable(0.0, 1.0, 0.0);
      z_var.push_back(z);
      for (const JobId j : priced[i].jobs) {
        rmp.add_to_row(job_row_index[j], z, -1.0);
      }
      rmp.add_to_row(machine_row_index[i], z, 1.0);
      columns.push_back({i, std::move(priced[i].jobs)});
    }
    if (!added) {
      // No improving column exists: the RMP optimum is the configuration-LP
      // optimum on this grid; coverage below n certifies grid-infeasibility.
      out.status = ConfigLpStatus::kInfeasibleAtGrid;
      out.columns = columns.size();
      return out;
    }

    // --- restricted master problem (warm-started re-solve) ---
    lp::SimplexOptions simplex = options.simplex;
    if (!rmp_basis.empty()) simplex.warm_start = &rmp_basis;
    const lp::Solution sol = lp::solve(rmp, simplex);
    ++out.lp_solves;
    out.simplex_iterations += sol.iterations;
    check(sol.optimal(), "RMP solve failed");
    if (!sol.basis.empty()) rmp_basis = sol.basis;
    out.coverage = sol.objective;

    if (sol.objective >= static_cast<double>(n) - options.tol) {
      // Feasible: recover (x, y).
      FractionalAssignment frac{
          Matrix<double>(m, n, 0.0),
          Matrix<double>(m, instance.num_classes(), 0.0)};
      for (std::size_t c = 0; c < columns.size(); ++c) {
        const double z = std::clamp(sol.x[z_var[c]], 0.0, 1.0);
        if (z <= 0.0) continue;
        const MachineId i = columns[c].machine;
        std::vector<char> touched(instance.num_classes(), 0);
        for (const JobId j : columns[c].jobs) {
          frac.x(i, j) += z;
          touched[instance.job_class(j)] = 1;
        }
        for (ClassId k = 0; k < instance.num_classes(); ++k) {
          if (touched[k]) frac.y(i, k) += z;
        }
      }
      // Normalize each job's mass to exactly 1 and restore y >= x.
      for (JobId j = 0; j < n; ++j) {
        double total = 0.0;
        for (MachineId i = 0; i < m; ++i) total += frac.x(i, j);
        check(total > 0.5, "covered job without configuration mass");
        for (MachineId i = 0; i < m; ++i) {
          frac.x(i, j) = std::min(1.0, frac.x(i, j) / total);
          frac.y(i, instance.job_class(j)) =
              std::min(1.0, std::max(frac.y(i, instance.job_class(j)),
                                     frac.x(i, j)));
        }
      }
      out.status = ConfigLpStatus::kFeasible;
      out.fractional = std::move(frac);
      out.columns = columns.size();
      return out;
    }

    // Duals for the next pricing round (maximize convention: y >= 0).
    for (JobId j = 0; j < n; ++j) {
      dual_job[j] = std::max(0.0, sol.duals[job_row_index[j]]);
    }
    for (MachineId i = 0; i < m; ++i) {
      dual_machine[i] = std::max(0.0, sol.duals[machine_row_index[i]]);
    }
  }
  out.columns = columns.size();
  out.status = ConfigLpStatus::kIterationLimit;
  return out;
}

RoundingResult randomized_rounding_config(const Instance& instance,
                                          const RoundingOptions& rounding,
                                          const ConfigLpOptions& config) {
  instance.validate();
  const std::size_t n = instance.num_jobs();

  double lo = assignment_lp_floor(instance);
  double hi = std::max(lo, unrelated_upper_bound(instance));

  RoundingResult out;
  out.lp_lower_bound = lo;  // certified independent of the pricing grid

  // The grid is conservative: an integral schedule's makespan may be
  // rejected; widen hi until the config LP accepts.
  // lp_solves/lp_iterations report the actual RMP work: every outer
  // solve_config_lp call accumulates its inner per-round counters (an
  // earlier version counted outer calls as one solve each, so the registry
  // path dropped the colgen effort entirely).
  ConfigLpResult at_hi = solve_config_lp(instance, hi, config);
  out.lp_solves = at_hi.lp_solves;
  out.lp_iterations = at_hi.simplex_iterations;
  std::size_t widenings = 0;
  while (at_hi.status != ConfigLpStatus::kFeasible && widenings < 8) {
    hi *= 1.3;
    ++widenings;
    at_hi = solve_config_lp(instance, hi, config);
    out.lp_solves += at_hi.lp_solves;
    out.lp_iterations += at_hi.simplex_iterations;
  }
  check(at_hi.status == ConfigLpStatus::kFeasible,
        "config LP did not accept any upper bound");

  FractionalAssignment best = std::move(at_hi.fractional);
  while (hi / lo > 1.0 + rounding.search_precision) {
    const double mid = std::sqrt(lo * hi);
    ConfigLpResult probe = solve_config_lp(instance, mid, config);
    out.lp_solves += probe.lp_solves;
    out.lp_iterations += probe.simplex_iterations;
    if (probe.status == ConfigLpStatus::kFeasible) {
      hi = mid;
      best = std::move(probe.fractional);
    } else {
      lo = mid;  // grid-conservative reject: not a certified OPT bound
    }
  }
  out.lp_T = hi;

  const std::size_t rounds = static_cast<std::size_t>(std::max(
      1.0,
      std::ceil(rounding.c *
                std::log2(static_cast<double>(std::max<std::size_t>(n, 2))))));
  out.rounds = rounds;

  Xoshiro256 seeder(rounding.seed);
  double best_ms = kInfinity;
  Schedule best_schedule = Schedule::empty(n);
  for (std::size_t t = 0; t < rounding.trials; ++t) {
    std::size_t fallback = 0;
    Schedule s = round_fractional(instance, best, rounds, seeder(), &fallback);
    const double ms = makespan(instance, s);
    out.fallback_jobs += fallback;
    if (ms < best_ms) {
      best_ms = ms;
      best_schedule = std::move(s);
    }
  }
  out.schedule = std::move(best_schedule);
  out.makespan = best_ms;
  return out;
}

}  // namespace setsched
