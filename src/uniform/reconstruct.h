#pragma once

#include "core/instance.h"
#include "core/schedule.h"
#include "uniform/groups.h"
#include "uniform/relaxed_dp.h"

namespace setsched {

/// The Lemma 2.8 construction: turns a relaxed schedule with makespan T into
/// a regular schedule of the (simplified) instance with makespan (1+O(ε))T.
///
/// Fractional jobs of group g are packed into groups >= g+2: per class they
/// are either co-located with a fringe job of their class (F1), wrapped into
/// a container with one setup (F2, total <= (1+1/ε) s_k), or appended to a
/// greedy sequence (F3) that fills the free space of each group's leaving
/// machines, overshooting each machine by at most one small item.
[[nodiscard]] Schedule reconstruct_schedule(const UniformInstance& instance,
                                            const GroupStructure& groups,
                                            const RelaxedSchedule& relaxed);

}  // namespace setsched
