#pragma once

#include "core/instance.h"
#include "core/schedule.h"

namespace setsched {

/// The simplification pipeline of Section 2.1 (Lemmas 2.2-2.4) for a given
/// makespan guess T and accuracy ε (a power of two):
///   I -> I1: drop machines slower than ε vmax / m; raise job/setup sizes
///            below ε vmin T / (n + K);
///   I1 -> I2: per class k, replace jobs with p_j <= ε s_k by
///            ceil(Σ p / (ε s_k)) placeholders of size ε s_k;
///   I2 -> I3: round sizes up to 2^e + κ ε 2^e (e = floor(log2 t)); round
///            speeds down to (1+ε)^k vmin.
/// If the original instance has a schedule of makespan T, the simplified one
/// has one of makespan (1+ε)^5 T; a simplified schedule of makespan T' lifts
/// back to (1+ε) T' (placeholder unpacking, Lemma 2.3).
struct SimplifiedInstance {
  UniformInstance instance;  ///< I3

  /// Maps simplified machine index -> original machine index.
  std::vector<MachineId> machine_map;
  std::size_t original_machines = 0;

  /// Simplified job j: original job (when original[j] != kUnassigned) or a
  /// placeholder of its class.
  std::vector<JobId> original_job;
  /// Per class: the original small jobs merged into that class's placeholders.
  std::vector<std::vector<JobId>> merged_small_jobs;

  double epsilon = 0.0;
  double T = 0.0;
};

/// Applies the pipeline. epsilon must be a power of two (<= 1/2).
[[nodiscard]] SimplifiedInstance simplify_instance(const UniformInstance& original,
                                                   double T, double epsilon);

/// Lifts a schedule of the simplified instance back to the original:
/// original jobs keep their (mapped) machine; placeholder loads are unpacked
/// greedily, over-packing at most one small job per class-machine pair
/// (Lemma 2.3). The result is a complete schedule of the original instance.
[[nodiscard]] Schedule lift_schedule(const SimplifiedInstance& simplified,
                                     const UniformInstance& original,
                                     const Schedule& schedule);

}  // namespace setsched
