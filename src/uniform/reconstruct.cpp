#include "uniform/reconstruct.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/check.h"

namespace setsched {

namespace {

struct Item {
  double total = 0.0;  ///< job sizes, plus the class setup for containers
  std::vector<JobId> jobs;
};

}  // namespace

Schedule reconstruct_schedule(const UniformInstance& instance,
                              const GroupStructure& groups,
                              const RelaxedSchedule& relaxed) {
  const double T = groups.T();
  const std::size_t kc = instance.num_classes();

  Schedule schedule = relaxed.integral;
  std::vector<double> load = relaxed.relaxed_load;

  // Per-class bookkeeping.
  std::vector<char> has_fringe(kc, 0);
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    const ClassId k = instance.job_class[j];
    if (groups.is_fringe_job(instance.job_size[j], instance.setup_size[k])) {
      has_fringe[k] = 1;
    }
  }

  // Machines leaving at group g (their free space hosts F_{g-2}).
  int max_group = 0;
  std::vector<int> machine_lower(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    machine_lower[i] = groups.machine_lower_group(instance.speed[i]);
    max_group = std::max(max_group, machine_lower[i]);
  }

  std::deque<Item> sequence;
  std::vector<std::vector<JobId>> postponed(kc);  // F1, placed at the end

  for (int g = 0; g <= max_group; ++g) {
    // Gather F' = F_{g-2} (g >= 1) or all groups <= -2 (g == 0).
    std::vector<JobId> fresh;
    for (const auto& [fg, jobs] : relaxed.fractional_by_group) {
      const bool take = g == 0 ? fg <= -2 : fg == g - 2;
      if (take) fresh.insert(fresh.end(), jobs.begin(), jobs.end());
    }

    // Partition into F1 / F2 / F3.
    std::vector<Item> containers;
    std::vector<Item> fringe_items;
    std::map<ClassId, std::vector<JobId>> core_by_class;
    for (const JobId j : fresh) {
      const ClassId k = instance.job_class[j];
      if (groups.is_fringe_job(instance.job_size[j], instance.setup_size[k])) {
        fringe_items.push_back({instance.job_size[j], {j}});
      } else {
        core_by_class[k].push_back(j);
      }
    }
    std::vector<Item> core_items;  // F3 cores, grouped by class
    for (auto& [k, jobs] : core_by_class) {
      double total = 0.0;
      for (const JobId j : jobs) total += instance.job_size[j];
      if (total > instance.setup_size[k] / groups.epsilon()) {
        // F3: individually, but keeping the class contiguous.
        for (const JobId j : jobs) {
          core_items.push_back({instance.job_size[j], {j}});
        }
      } else if (has_fringe[k]) {
        // F1: co-locate with a fringe job of k after everything is placed.
        auto& list = postponed[k];
        list.insert(list.end(), jobs.begin(), jobs.end());
      } else {
        // F2: one container carrying the class setup.
        Item c{instance.setup_size[k] + total, std::move(jobs)};
        containers.push_back(std::move(c));
      }
    }

    for (auto& c : containers) sequence.push_back(std::move(c));
    for (auto& f : fringe_items) sequence.push_back(std::move(f));
    for (auto& c : core_items) sequence.push_back(std::move(c));

    // Fill the group's leaving machines: admit items while load <= v T.
    if (sequence.empty()) continue;
    for (MachineId i = 0; i < instance.num_machines() && !sequence.empty(); ++i) {
      if (machine_lower[i] != g) continue;
      const double cap = instance.speed[i] * T;
      while (!sequence.empty() && load[i] <= cap) {
        Item item = std::move(sequence.front());
        sequence.pop_front();
        for (const JobId j : item.jobs) schedule.assignment[j] = i;
        load[i] += item.total;
      }
    }
  }

  // Anything still in the sequence means the relaxed space accounting was
  // violated (cannot happen for DP-produced relaxed schedules); place on the
  // fastest machine to stay correct.
  if (!sequence.empty()) {
    MachineId fastest = 0;
    for (MachineId i = 1; i < instance.num_machines(); ++i) {
      if (instance.speed[i] > instance.speed[fastest]) fastest = i;
    }
    while (!sequence.empty()) {
      for (const JobId j : sequence.front().jobs) {
        schedule.assignment[j] = fastest;
      }
      sequence.pop_front();
    }
  }

  // F1: fractional core jobs of classes with fringe jobs join one of their
  // class's fringe jobs (which is placed by now).
  for (ClassId k = 0; k < kc; ++k) {
    if (postponed[k].empty()) continue;
    MachineId host = kUnassigned;
    for (JobId j = 0; j < instance.num_jobs() && host == kUnassigned; ++j) {
      if (instance.job_class[j] != k) continue;
      if (!groups.is_fringe_job(instance.job_size[j], instance.setup_size[k])) {
        continue;
      }
      host = schedule.assignment[j];
    }
    check(host != kUnassigned, "F1 class has no placed fringe job");
    for (const JobId j : postponed[k]) schedule.assignment[j] = host;
  }

  check(schedule.complete(), "reconstruction left a job unassigned");
  return schedule;
}

}  // namespace setsched
