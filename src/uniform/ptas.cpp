#include "uniform/ptas.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/bounds.h"
#include "uniform/groups.h"
#include "uniform/lpt.h"
#include "uniform/reconstruct.h"
#include "uniform/relaxed_dp.h"
#include "uniform/simplify.h"

namespace setsched {

namespace {

enum class ProbeOutcome { kAccept, kReject, kResourceLimit };

struct Probe {
  ProbeOutcome outcome = ProbeOutcome::kReject;
  Schedule schedule = Schedule::empty(0);  // lifted, original instance
  double makespan = 0.0;
  std::size_t dp_states = 0;
};

/// Tests guess T: if a schedule of makespan <= T exists for `original`, the
/// simplified instance has one of makespan (1+ε)^5 T, hence a relaxed
/// schedule at that bound, which the DP finds; reconstruction + lifting then
/// yield a (1+O(ε)) T schedule. A kReject verdict certifies OPT > T.
Probe probe_T(const UniformInstance& original, double T, double epsilon,
              std::size_t max_states) {
  Probe out;
  const SimplifiedInstance simplified = simplify_instance(original, T, epsilon);
  const double T1 = std::pow(1.0 + epsilon, 5) * T;
  const double vmin = *std::min_element(simplified.instance.speed.begin(),
                                        simplified.instance.speed.end());
  const GroupStructure groups(epsilon, vmin, T1);

  RelaxedDpOptions dp_options;
  dp_options.max_states = max_states;
  const RelaxedDpResult dp =
      solve_relaxed_dp(simplified.instance, groups, dp_options);
  out.dp_states = dp.states;
  switch (dp.status) {
    case DpStatus::kInfeasible:
      out.outcome = ProbeOutcome::kReject;
      return out;
    case DpStatus::kResourceLimit:
      out.outcome = ProbeOutcome::kResourceLimit;
      return out;
    case DpStatus::kFeasible:
      break;
  }

  const Schedule simplified_schedule =
      reconstruct_schedule(simplified.instance, groups, dp.relaxed);
  out.schedule = lift_schedule(simplified, original, simplified_schedule);
  out.makespan = makespan(original, out.schedule);
  out.outcome = ProbeOutcome::kAccept;
  return out;
}

}  // namespace

PtasResult ptas_uniform(const UniformInstance& instance,
                        const PtasOptions& options) {
  instance.validate();
  const double epsilon = floor_epsilon_to_power_of_two(options.epsilon);

  // Bootstrap bounds via Lemma 2.1 LPT.
  const ScheduleResult lpt = lpt_with_placeholders(instance);
  PtasResult result;
  result.schedule = lpt.schedule;
  result.makespan = lpt.makespan;

  double lo = std::max(lpt.makespan / kLptSetupFactor, uniform_lower_bound(instance));
  double hi = lpt.makespan;
  result.lower_bound = 0.0;  // no rejection witnessed yet
  result.accepted_T = hi;    // LPT certifies feasibility at its makespan

  // Geometric binary search. Invariants: a schedule of makespan <= hi is
  // known; every probe rejection raises `lo` to a certified lower bound.
  while (hi / lo > 1.0 + epsilon) {
    const double mid = std::sqrt(lo * hi);
    ++result.probes;
    const Probe probe = probe_T(instance, mid, epsilon, options.max_states);
    result.max_dp_states = std::max(result.max_dp_states, probe.dp_states);
    if (probe.outcome == ProbeOutcome::kResourceLimit) {
      result.resource_limited = true;
      break;
    }
    if (probe.outcome == ProbeOutcome::kAccept) {
      hi = mid;
      result.accepted_T = mid;
      if (probe.makespan < result.makespan) {
        result.makespan = probe.makespan;
        result.schedule = probe.schedule;
      }
    } else {
      lo = mid;
      result.lower_bound = std::max(result.lower_bound, mid);
    }
  }

  check(!schedule_error(instance.to_unrelated(), result.schedule).has_value(),
        "PTAS produced an invalid schedule");
  return result;
}

}  // namespace setsched
