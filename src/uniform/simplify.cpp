#include "uniform/simplify.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "uniform/groups.h"

namespace setsched {

namespace {

/// Gálvez et al. rounding: t -> 2^e + ceil((t - 2^e) / (ε 2^e)) * ε 2^e with
/// e = floor(log2 t). With ε a power of two the result is an exact dyadic
/// rational. Rounding never decreases t and inflates it at most by (1 + ε).
double round_size(double t, double epsilon) {
  if (t <= 0.0) return 0.0;
  const int e = std::ilogb(t);
  const double base = std::ldexp(1.0, e);        // 2^e <= t
  const double unit = epsilon * base;            // grid ε 2^e
  const double steps = std::ceil((t - base) / unit - 1e-12);
  return base + std::max(0.0, steps) * unit;
}

/// Geometric speed rounding: v -> (1+ε)^k' vmin, k' = floor(log_{1+ε}(v/vmin)).
double round_speed(double v, double vmin, double epsilon) {
  const double k = std::floor(std::log(v / vmin) / std::log1p(epsilon) + 1e-9);
  return vmin * std::pow(1.0 + epsilon, k);
}

}  // namespace

SimplifiedInstance simplify_instance(const UniformInstance& original, double T,
                                     double epsilon) {
  original.validate();
  check(T > 0.0, "makespan guess must be positive");
  check(epsilon > 0.0 && epsilon <= 0.5, "epsilon must be in (0, 1/2]");
  check(std::ldexp(1.0, std::ilogb(epsilon)) == epsilon,
        "epsilon must be a power of two");

  SimplifiedInstance out;
  out.epsilon = epsilon;
  out.T = T;
  out.original_machines = original.num_machines();

  const std::size_t n = original.num_jobs();
  const std::size_t kc = original.num_classes();

  // --- I -> I1: machine filter + minimum sizes ---------------------------
  const double vmax =
      *std::max_element(original.speed.begin(), original.speed.end());
  const double keep_threshold =
      epsilon * vmax / static_cast<double>(original.num_machines());
  std::vector<double> speed;
  for (MachineId i = 0; i < original.num_machines(); ++i) {
    if (original.speed[i] >= keep_threshold) {
      out.machine_map.push_back(i);
      speed.push_back(original.speed[i]);
    }
  }
  check(!speed.empty(), "machine filter removed every machine");
  const double vmin = *std::min_element(speed.begin(), speed.end());
  const double min_size =
      epsilon * vmin * T / static_cast<double>(n + kc);

  std::vector<double> setup_size(kc);
  for (ClassId k = 0; k < kc; ++k) {
    setup_size[k] = std::max(original.setup_size[k], min_size);
  }

  // --- I1 -> I2: placeholders for small jobs -----------------------------
  out.merged_small_jobs.assign(kc, {});
  UniformInstance& inst = out.instance;
  inst.speed = speed;

  std::vector<double> class_small_total(kc, 0.0);
  for (JobId j = 0; j < n; ++j) {
    const ClassId k = original.job_class[j];
    const double p = std::max(original.job_size[j], min_size);
    if (p <= epsilon * setup_size[k]) {
      out.merged_small_jobs[k].push_back(j);
      class_small_total[k] += p;
    } else {
      inst.job_size.push_back(p);
      inst.job_class.push_back(k);
      out.original_job.push_back(j);
    }
  }
  for (ClassId k = 0; k < kc; ++k) {
    if (out.merged_small_jobs[k].empty()) continue;
    const double unit = epsilon * setup_size[k];
    const std::size_t count = static_cast<std::size_t>(
        std::ceil(class_small_total[k] / unit - 1e-12));
    for (std::size_t c = 0; c < std::max<std::size_t>(count, 1); ++c) {
      inst.job_size.push_back(unit);
      inst.job_class.push_back(k);
      out.original_job.push_back(kUnassigned);
    }
  }

  // --- I2 -> I3: rounding -------------------------------------------------
  for (double& p : inst.job_size) p = round_size(p, epsilon);
  inst.setup_size.resize(kc);
  for (ClassId k = 0; k < kc; ++k) {
    inst.setup_size[k] = round_size(setup_size[k], epsilon);
  }
  for (double& v : inst.speed) v = round_speed(v, vmin, epsilon);

  inst.validate();
  return out;
}

Schedule lift_schedule(const SimplifiedInstance& simplified,
                       const UniformInstance& original,
                       const Schedule& schedule) {
  check(schedule.num_jobs() == simplified.instance.num_jobs(),
        "schedule does not match the simplified instance");
  check(schedule.complete(), "simplified schedule must be complete");

  Schedule lifted = Schedule::empty(original.num_jobs());

  // Original jobs keep their machine (mapped back).
  const std::size_t kc = original.num_classes();
  // Placeholder capacity per (class, original machine).
  std::vector<std::vector<double>> capacity(
      kc, std::vector<double>(original.num_machines(), 0.0));

  for (JobId j = 0; j < simplified.instance.num_jobs(); ++j) {
    const MachineId mapped = simplified.machine_map[schedule.assignment[j]];
    const JobId orig = simplified.original_job[j];
    if (orig != kUnassigned) {
      lifted.assignment[orig] = mapped;
    } else {
      capacity[simplified.instance.job_class[j]][mapped] +=
          simplified.instance.job_size[j];
    }
  }

  // Unpack placeholders greedily (Lemma 2.3): machines admit small jobs
  // while below their placeholder capacity, over-packing by at most one job.
  for (ClassId k = 0; k < kc; ++k) {
    const auto& jobs = simplified.merged_small_jobs[k];
    if (jobs.empty()) continue;
    std::size_t pos = 0;
    MachineId last_with_capacity = kUnassigned;
    for (MachineId i = 0; i < original.num_machines() && pos < jobs.size(); ++i) {
      const double cap = capacity[k][i];
      if (cap <= 0.0) continue;
      last_with_capacity = i;
      double used = 0.0;
      while (pos < jobs.size() && used < cap) {
        const JobId j = jobs[pos++];
        lifted.assignment[j] = i;
        used += std::max(original.job_size[j], 0.0);
      }
    }
    // Numerical slack: leftovers go to the last machine that had capacity.
    if (pos < jobs.size()) {
      check(last_with_capacity != kUnassigned,
            "placeholder jobs without any placeholder slot");
      while (pos < jobs.size()) {
        lifted.assignment[jobs[pos++]] = last_with_capacity;
      }
    }
  }

  check(lifted.complete(), "lift left a job unassigned");
  return lifted;
}

}  // namespace setsched
