#pragma once

#include <map>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "uniform/groups.h"

namespace setsched {

enum class DpStatus {
  kFeasible,       ///< a relaxed schedule with makespan T exists (returned)
  kInfeasible,     ///< provably no relaxed schedule with makespan T
  kResourceLimit,  ///< state budget exhausted before deciding
};

/// A *relaxed schedule* (Sec. 2.1) materialized on concrete machines:
/// integral jobs are assigned (fringe jobs to their native group, core jobs
/// to their class's core group; fringe setups ignored), the rest are
/// fractional, to be packed by the Lemma 2.8 reconstruction.
struct RelaxedSchedule {
  /// Integral assignments; fractional jobs are kUnassigned.
  Schedule integral = Schedule::empty(0);
  /// Relaxed load L'_i per machine (integral processing + core setups).
  std::vector<double> relaxed_load;
  /// Fractional jobs keyed by their native group (fringe jobs) or their
  /// class's core group (core jobs); negative keys allowed.
  std::map<int, std::vector<JobId>> fractional_by_group;
};

struct RelaxedDpOptions {
  /// Abort with kResourceLimit beyond this many distinct DP states.
  std::size_t max_states = 300'000;
};

struct RelaxedDpResult {
  DpStatus status = DpStatus::kInfeasible;
  RelaxedSchedule relaxed;
  std::size_t states = 0;
};

/// The dynamic program of Section 2.1: processes speed groups from slowest
/// to fastest; within a group, first the fringe jobs native to it (dummy
/// class, no setups), then each class whose core group it is (placements pay
/// the setup on first use per machine); any job may instead be declared
/// fractional, accumulating (with one setup per fringe-less class) into the
/// λ vector, which leaving machines' free space must absorb two groups up.
/// States are canonicalized and explored by BFS with full parent tracking,
/// so a feasible verdict comes with a concrete relaxed schedule.
///
/// `instance` must be a *simplified* instance (see simplify_instance) whose
/// sizes are dyadic rationals — all DP arithmetic is then exact.
[[nodiscard]] RelaxedDpResult solve_relaxed_dp(const UniformInstance& instance,
                                               const GroupStructure& groups,
                                               const RelaxedDpOptions& options = {});

}  // namespace setsched
