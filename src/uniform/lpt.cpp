#include "uniform/lpt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace setsched {

namespace {

/// Runs plain LPT over abstract items (sizes + ids); returns per-item machine.
/// Finishing time of an item of size p on machine i is (load_i + p) / v_i.
std::vector<MachineId> lpt_items(const std::vector<double>& sizes,
                                 const std::vector<double>& speed) {
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizes[a] > sizes[b];
  });

  std::vector<double> load(speed.size(), 0.0);  // in size units
  std::vector<MachineId> out(sizes.size(), kUnassigned);
  for (const std::size_t item : order) {
    MachineId best = 0;
    double best_finish = kInfinity;
    for (MachineId i = 0; i < speed.size(); ++i) {
      const double finish = (load[i] + sizes[item]) / speed[i];
      if (finish < best_finish) {
        best_finish = finish;
        best = i;
      }
    }
    load[best] += sizes[item];
    out[item] = best;
  }
  return out;
}

}  // namespace

ScheduleResult lpt_uniform(const UniformInstance& instance) {
  instance.validate();
  const auto assignment = lpt_items(instance.job_size, instance.speed);
  Schedule schedule{assignment};
  return {schedule, makespan(instance, schedule), {}};
}

ScheduleResult lpt_with_placeholders(const UniformInstance& instance) {
  instance.validate();
  const std::size_t n = instance.num_jobs();

  // Item list: every job with p_j >= s_k stays itself; smaller jobs of class
  // k are merged into ceil(sum / s_k) placeholders of size s_k each.
  std::vector<double> item_size;
  std::vector<JobId> item_job;          // n-sized items -> original job
  std::vector<ClassId> item_class;      // parallel to item_size
  std::vector<bool> item_is_placeholder;

  const auto by_class = instance.jobs_by_class();
  std::vector<std::vector<JobId>> small_jobs(instance.num_classes());

  for (JobId j = 0; j < n; ++j) {
    const ClassId k = instance.job_class[j];
    if (instance.job_size[j] < instance.setup_size[k]) {
      small_jobs[k].push_back(j);
    } else {
      item_size.push_back(instance.job_size[j]);
      item_job.push_back(j);
      item_class.push_back(k);
      item_is_placeholder.push_back(false);
    }
  }
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (small_jobs[k].empty()) continue;
    double total = 0.0;
    for (const JobId j : small_jobs[k]) total += instance.job_size[j];
    const double sk = instance.setup_size[k];
    std::size_t count = 1;
    if (sk > 0.0) {
      count = static_cast<std::size_t>(std::ceil(total / sk));
      count = std::max<std::size_t>(count, 1);
    }
    for (std::size_t c = 0; c < count; ++c) {
      item_size.push_back(sk);
      item_job.push_back(kUnassigned);  // placeholder
      item_class.push_back(k);
      item_is_placeholder.push_back(true);
    }
  }

  const auto item_machine = lpt_items(item_size, instance.speed);

  Schedule schedule = Schedule::empty(n);
  // Regular items keep their machine.
  for (std::size_t t = 0; t < item_size.size(); ++t) {
    if (!item_is_placeholder[t]) schedule.assignment[item_job[t]] = item_machine[t];
  }

  // Unpack placeholders: per class, each machine's placeholder slots form a
  // pooled capacity of (#slots * s_k); small jobs fill machines greedily,
  // over-packing each machine by at most one job (as in the Lemma 2.1 proof).
  for (ClassId k = 0; k < instance.num_classes(); ++k) {
    if (small_jobs[k].empty()) continue;
    // Count slots per machine, in machine order.
    std::vector<std::size_t> slots(instance.num_machines(), 0);
    for (std::size_t t = 0; t < item_size.size(); ++t) {
      if (item_is_placeholder[t] && item_class[t] == k) ++slots[item_machine[t]];
    }
    const double sk = instance.setup_size[k];
    std::size_t job_pos = 0;
    for (MachineId i = 0; i < instance.num_machines() && job_pos < small_jobs[k].size(); ++i) {
      if (slots[i] == 0) continue;
      const double capacity = static_cast<double>(slots[i]) * sk;
      double used = 0.0;
      while (job_pos < small_jobs[k].size() && used < capacity) {
        const JobId j = small_jobs[k][job_pos++];
        schedule.assignment[j] = i;
        used += instance.job_size[j];
      }
      // Degenerate zero setup sizes: capacity 0 would strand jobs; place one.
      if (capacity == 0.0 && job_pos < small_jobs[k].size()) {
        schedule.assignment[small_jobs[k][job_pos++]] = i;
      }
    }
    // If capacities were exhausted before all jobs were placed (possible only
    // through floating-point slack or zero setups), put leftovers on the
    // machine with the most slots.
    if (job_pos < small_jobs[k].size()) {
      MachineId fallback = 0;
      for (MachineId i = 1; i < instance.num_machines(); ++i) {
        if (slots[i] > slots[fallback]) fallback = i;
      }
      while (job_pos < small_jobs[k].size()) {
        schedule.assignment[small_jobs[k][job_pos++]] = fallback;
      }
    }
  }

  check(schedule.complete(), "LPT left a job unassigned");
  return {schedule, makespan(instance, schedule), {}};
}

}  // namespace setsched
