#pragma once

#include <numbers>

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

/// Kovács' approximation factor of LPT on uniformly related machines
/// (without setup times).
inline constexpr double kLptUniformFactor = 1.0 + 1.0 / std::numbers::sqrt3;

/// Approximation factor of lpt_with_placeholders (Lemma 2.1):
/// 3 * (1 + 1/sqrt(3)) ~= 4.73.
inline constexpr double kLptSetupFactor = 3.0 * kLptUniformFactor;

/// Plain LPT on uniformly related machines, ignoring classes: jobs sorted by
/// non-increasing size, each assigned to the machine where it finishes first
/// (by processing load only). Setups are *not* anticipated — the returned
/// makespan includes them, but no guarantee holds. Baseline for E1.
[[nodiscard]] ScheduleResult lpt_uniform(const UniformInstance& instance);

/// Lemma 2.1: per class k, jobs smaller than the setup size s_k are replaced
/// by ceil(sum/s_k) placeholder jobs of size s_k; plain LPT schedules the
/// modified job set; placeholders are unpacked greedily (over-packing at
/// most one small job per class-machine pair). Guarantees makespan
/// <= kLptSetupFactor * OPT.
[[nodiscard]] ScheduleResult lpt_with_placeholders(const UniformInstance& instance);

}  // namespace setsched
