#include "uniform/relaxed_dp.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/check.h"

namespace setsched {

namespace {

constexpr double kTinySlack = 1e-9;

std::uint64_t bits_of(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Canonical multiset of machine slots of the current group.
struct Slot {
  double speed = 0.0;
  double load = 0.0;
  std::uint8_t zeta = 0;
  std::uint32_t count = 0;

  [[nodiscard]] bool same_kind(const Slot& o) const {
    return speed == o.speed && load == o.load && zeta == o.zeta;
  }
  [[nodiscard]] bool operator<(const Slot& o) const {
    if (speed != o.speed) return speed < o.speed;
    if (load != o.load) return load < o.load;
    return zeta < o.zeta;
  }
};

/// Pending jobs of the current batch: size -> multiplicity, sizes descending.
struct Pending {
  double size = 0.0;
  std::uint32_t count = 0;
};

struct State {
  std::int32_t group = 0;
  std::int32_t batch = 0;  // index into the group's batch list
  std::uint8_t xi = 0;
  std::vector<Pending> pending;  // sorted by size descending
  std::vector<Slot> slots;       // sorted canonical
  double l1 = 0.0, l2 = 0.0, l3 = 0.0;

  [[nodiscard]] std::vector<std::uint64_t> key() const {
    std::vector<std::uint64_t> k;
    k.reserve(5 + 2 * pending.size() + 4 * slots.size());
    k.push_back((static_cast<std::uint64_t>(static_cast<std::uint32_t>(group)) << 32) |
                static_cast<std::uint32_t>(batch));
    k.push_back(xi);
    k.push_back(bits_of(l1));
    k.push_back(bits_of(l2));
    k.push_back(bits_of(l3));
    for (const Pending& p : pending) {
      k.push_back(bits_of(p.size));
      k.push_back(p.count);
    }
    k.push_back(0xFFFFFFFFFFFFFFFFULL);  // separator
    for (const Slot& s : slots) {
      k.push_back(bits_of(s.speed));
      k.push_back(bits_of(s.load));
      k.push_back(s.zeta);
      k.push_back(s.count);
    }
    return k;
  }
};

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t w : k) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// One batch of jobs processed together inside a group.
struct Batch {
  bool dummy = false;  ///< fringe batch (no setups)
  ClassId cls = 0;     ///< class of a core batch
  double setup = 0.0;
  bool class_has_fringe = false;
  std::vector<Pending> sizes;                        // descending
  std::map<double, std::vector<JobId>, std::greater<>> jobs_by_size;
};

struct Decision {
  enum class Kind : std::uint8_t {
    kRoot,
    kPlace,       // place largest pending job on a slot (no setup)
    kPlaceSetup,  // place largest pending job on a slot, paying the setup
    kFractional,  // declare largest pending job fractional
    kNextBatch,
    kNextGroup,
  };
  Kind kind = Kind::kRoot;
  double size = 0.0;
  double speed = 0.0;
  double load = 0.0;  // slot load before placement
  std::uint8_t zeta = 0;
};

struct Node {
  std::int64_t parent = -1;
  Decision decision;
};

class DpSolver {
 public:
  DpSolver(const UniformInstance& inst, const GroupStructure& groups,
           const RelaxedDpOptions& opt)
      : inst_(inst), groups_(groups), opt_(opt) {}

  RelaxedDpResult run();

 private:
  bool prepare(RelaxedDpResult& out);  // false => early infeasible
  void build_batches();
  [[nodiscard]] State initial_state() const;
  void expand(const State& state, std::int64_t node_index);
  std::int64_t intern(State&& state, std::int64_t parent, Decision decision);
  [[nodiscard]] bool is_end_state(const State& state) const;
  [[nodiscard]] RelaxedSchedule replay(std::int64_t end_node) const;

  // --- static problem data ---
  const UniformInstance& inst_;
  GroupStructure groups_;
  RelaxedDpOptions opt_;
  int max_group_ = 0;  // G
  std::vector<int> machine_lower_;               // L(i)
  std::vector<std::vector<MachineId>> enter_at_; // machines entering group g
  std::vector<std::vector<Batch>> batches_;      // per group
  std::vector<char> class_has_fringe_;
  // Fractional-from-the-start jobs (native/core group < 0), by group.
  std::map<int, std::vector<JobId>> preassigned_fractional_;
  double init_l2_ = 0.0, init_l3_ = 0.0;
  bool infeasible_upfront_ = false;

  // --- search state ---
  std::unordered_map<std::vector<std::uint64_t>, std::int64_t, KeyHash> seen_;
  std::vector<Node> nodes_;
  std::vector<State> states_;
  std::deque<std::int64_t> queue_;
  std::int64_t end_node_ = -1;
};

bool DpSolver::prepare(RelaxedDpResult& out) {
  const double T = groups_.T();
  const std::size_t kc = inst_.num_classes();

  machine_lower_.resize(inst_.num_machines());
  max_group_ = 0;
  for (MachineId i = 0; i < inst_.num_machines(); ++i) {
    machine_lower_[i] = groups_.machine_lower_group(inst_.speed[i]);
    check(machine_lower_[i] >= 1, "machine below group 0");
    max_group_ = std::max(max_group_, machine_lower_[i]);
  }
  enter_at_.assign(max_group_ + 1, {});
  for (MachineId i = 0; i < inst_.num_machines(); ++i) {
    enter_at_[machine_lower_[i] - 1].push_back(i);
  }

  class_has_fringe_.assign(kc, 0);
  for (JobId j = 0; j < inst_.num_jobs(); ++j) {
    const ClassId k = inst_.job_class[j];
    if (groups_.is_fringe_job(inst_.job_size[j], inst_.setup_size[k])) {
      class_has_fringe_[k] = 1;
    }
  }

  // Sort jobs into batches / preassigned fractional / early rejects.
  build_batches();
  if (infeasible_upfront_) {
    out.status = DpStatus::kInfeasible;
    return false;
  }

  // Initial λ from negative groups: W_{-1} -> l2, everything older -> l3.
  std::vector<char> class_counted(kc, 0);
  for (const auto& [g, jobs] : preassigned_fractional_) {
    double w = 0.0;
    for (const JobId j : jobs) {
      w += inst_.job_size[j];
      const ClassId k = inst_.job_class[j];
      // One setup per fringe-less class with fractional core jobs.
      const bool fringe_job =
          groups_.is_fringe_job(inst_.job_size[j], inst_.setup_size[k]);
      if (!fringe_job && !class_has_fringe_[k] && !class_counted[k]) {
        class_counted[k] = 1;
        w += inst_.setup_size[k];
      }
    }
    if (g == -1) {
      init_l2_ += w;
    } else {
      init_l3_ += w;
    }
  }
  (void)T;
  return true;
}

void DpSolver::build_batches() {
  const std::size_t kc = inst_.num_classes();
  batches_.assign(max_group_ + 1, {});

  // Group jobs: fringe jobs by native group; core jobs by class.
  std::vector<std::vector<JobId>> fringe_of_group(max_group_ + 1);
  std::vector<std::vector<JobId>> core_of_class(kc);

  for (JobId j = 0; j < inst_.num_jobs(); ++j) {
    const ClassId k = inst_.job_class[j];
    const double p = inst_.job_size[j];
    if (groups_.is_fringe_job(p, inst_.setup_size[k])) {
      const int g = groups_.native_group(p);
      if (g > max_group_) {
        infeasible_upfront_ = true;  // huge for every machine
        return;
      }
      if (g < 0) {
        preassigned_fractional_[g].push_back(j);
      } else {
        fringe_of_group[g].push_back(j);
      }
    } else {
      core_of_class[k].push_back(j);
    }
  }

  // Core jobs follow their class's core group.
  std::vector<std::vector<ClassId>> classes_of_group(max_group_ + 1);
  for (ClassId k = 0; k < kc; ++k) {
    if (core_of_class[k].empty()) continue;
    const int g = groups_.core_group(inst_.setup_size[k]);
    if (g > max_group_) {
      // Setup does not fit on any machine: jobs of this class cannot run.
      infeasible_upfront_ = true;
      return;
    }
    if (g < 0) {
      auto& list = preassigned_fractional_[g];
      list.insert(list.end(), core_of_class[k].begin(), core_of_class[k].end());
    } else {
      classes_of_group[g].push_back(k);
    }
  }

  const auto make_sizes = [&](const std::vector<JobId>& jobs, Batch& batch) {
    for (const JobId j : jobs) {
      batch.jobs_by_size[inst_.job_size[j]].push_back(j);
    }
    for (const auto& [size, list] : batch.jobs_by_size) {
      batch.sizes.push_back(
          {size, static_cast<std::uint32_t>(list.size())});
    }
  };

  for (int g = 0; g <= max_group_; ++g) {
    if (!fringe_of_group[g].empty()) {
      Batch batch;
      batch.dummy = true;
      make_sizes(fringe_of_group[g], batch);
      batches_[g].push_back(std::move(batch));
    }
    for (const ClassId k : classes_of_group[g]) {
      Batch batch;
      batch.dummy = false;
      batch.cls = k;
      batch.setup = inst_.setup_size[k];
      batch.class_has_fringe = class_has_fringe_[k] != 0;
      make_sizes(core_of_class[k], batch);
      batches_[g].push_back(std::move(batch));
    }
  }
}

State DpSolver::initial_state() const {
  State s;
  s.group = 0;
  s.batch = 0;
  s.l2 = init_l2_;
  s.l3 = init_l3_;

  // Machines active in group 0: those entering at 0 (L = 1).
  std::vector<Slot> slots;
  for (const MachineId i : enter_at_[0]) {
    Slot slot{inst_.speed[i], 0.0, 0, 1};
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const Slot& o) { return o.same_kind(slot); });
    if (it == slots.end()) {
      slots.push_back(slot);
    } else {
      ++it->count;
    }
  }
  std::sort(slots.begin(), slots.end());
  s.slots = std::move(slots);

  if (!batches_.empty() && !batches_[0].empty()) {
    s.pending = batches_[0][0].sizes;
  }
  return s;
}

bool DpSolver::is_end_state(const State& s) const {
  if (s.group != max_group_ + 1) return false;
  if (s.l1 > kTinySlack || s.l2 > kTinySlack) return false;
  return s.l3 <= kTinySlack;  // absorption already applied at the transition
}

std::int64_t DpSolver::intern(State&& state, std::int64_t parent,
                              Decision decision) {
  auto key = state.key();
  const auto [it, inserted] = seen_.try_emplace(std::move(key),
                                                static_cast<std::int64_t>(nodes_.size()));
  if (!inserted) return -1;
  nodes_.push_back({parent, decision});
  states_.push_back(std::move(state));
  queue_.push_back(it->second);
  return it->second;
}

void DpSolver::expand(const State& s, std::int64_t node_index) {
  const double T = groups_.T();
  const auto& group_batches = batches_[s.group];

  if (!s.pending.empty()) {
    const Batch& batch = group_batches[s.batch];
    const double p = s.pending.front().size;

    const auto pop_largest = [&](State& next) {
      next.pending = s.pending;
      if (--next.pending.front().count == 0) {
        next.pending.erase(next.pending.begin());
      }
    };

    // Placement options, one per distinct slot kind.
    for (std::size_t t = 0; t < s.slots.size(); ++t) {
      const Slot& slot = s.slots[t];
      double add = 0.0;
      Decision::Kind kind;
      std::uint8_t new_zeta = slot.zeta;
      if (batch.dummy) {
        add = p;  // fringe: no setup, zeta untouched
        kind = Decision::Kind::kPlace;
      } else if (slot.zeta == 0) {
        add = p + batch.setup;
        kind = Decision::Kind::kPlaceSetup;
        new_zeta = 1;
      } else {
        add = p;
        kind = Decision::Kind::kPlace;
      }
      if (slot.load + add > slot.speed * T * (1.0 + kTinySlack)) continue;

      State next;
      next.group = s.group;
      next.batch = s.batch;
      next.xi = s.xi;
      next.l1 = s.l1;
      next.l2 = s.l2;
      next.l3 = s.l3;
      pop_largest(next);
      next.slots = s.slots;
      // Detach one machine from slot t, reinsert with the new load/zeta.
      if (--next.slots[t].count == 0) {
        next.slots.erase(next.slots.begin() + static_cast<std::ptrdiff_t>(t));
      }
      Slot moved{slot.speed, slot.load + add, new_zeta, 1};
      auto it = std::find_if(next.slots.begin(), next.slots.end(),
                             [&](const Slot& o) { return o.same_kind(moved); });
      if (it != next.slots.end()) {
        ++it->count;
      } else {
        next.slots.insert(
            std::upper_bound(next.slots.begin(), next.slots.end(), moved),
            moved);
      }
      intern(std::move(next), node_index,
             {kind, p, slot.speed, slot.load, slot.zeta});
    }

    // Fractional option.
    {
      State next;
      next.group = s.group;
      next.batch = s.batch;
      next.slots = s.slots;
      next.l2 = s.l2;
      next.l3 = s.l3;
      pop_largest(next);
      next.xi = s.xi;
      next.l1 = s.l1 + p;
      if (!batch.dummy && !batch.class_has_fringe && s.xi == 0) {
        next.l1 += batch.setup;  // first fractional core job of the class
        next.xi = 1;
      }
      intern(std::move(next), node_index,
             {Decision::Kind::kFractional, p, 0.0, 0.0, 0});
    }
    return;
  }

  // Pending empty: advance to the next batch or the next group.
  if (static_cast<std::size_t>(s.batch) + 1 < group_batches.size()) {
    State next;
    next.group = s.group;
    next.batch = s.batch + 1;
    next.xi = 0;
    next.l1 = s.l1;
    next.l2 = s.l2;
    next.l3 = s.l3;
    next.pending = group_batches[next.batch].sizes;
    // Reset zeta flags (class change) and re-canonicalize.
    next.slots = s.slots;
    for (Slot& slot : next.slots) slot.zeta = 0;
    std::sort(next.slots.begin(), next.slots.end());
    for (std::size_t t = 0; t + 1 < next.slots.size();) {
      if (next.slots[t].same_kind(next.slots[t + 1])) {
        next.slots[t].count += next.slots[t + 1].count;
        next.slots.erase(next.slots.begin() + static_cast<std::ptrdiff_t>(t) + 1);
      } else {
        ++t;
      }
    }
    intern(std::move(next), node_index,
           {Decision::Kind::kNextBatch, 0.0, 0.0, 0.0, 0});
    return;
  }

  // Group transition (possibly into the accepting pseudo-group G+1).
  const double T2 = groups_.T();
  double leaving_free = 0.0;
  std::vector<Slot> staying;
  for (const Slot& slot : s.slots) {
    const int L = groups_.machine_lower_group(slot.speed);
    if (L == s.group) {
      leaving_free += std::max(0.0, slot.speed * T2 - slot.load) * slot.count;
    } else {
      Slot kept = slot;
      kept.zeta = 0;
      staying.push_back(kept);
    }
  }

  State next;
  next.group = s.group + 1;
  next.batch = 0;
  next.xi = 0;
  next.l1 = 0.0;
  next.l2 = s.l1;
  next.l3 = s.l2 + std::max(0.0, s.l3 - leaving_free);

  if (next.group > max_group_) {
    // End: all machines were leaving; l1/l2 of the pseudo-state must vanish.
    next.slots.clear();
    if (next.l2 > kTinySlack || next.l3 > kTinySlack) return;  // dead end
    // note: next.l2 = s.l1 (fractional jobs of group G need faster machines)
    //       next.l3 includes s.l2 (group G-1's fractional jobs) -- both must
    //       be zero, enforced above and by is_end_state.
    intern(std::move(next), node_index,
           {Decision::Kind::kNextGroup, 0.0, 0.0, 0.0, 0});
    return;
  }

  for (const MachineId i : enter_at_[next.group]) {
    Slot slot{inst_.speed[i], 0.0, 0, 1};
    auto it = std::find_if(staying.begin(), staying.end(),
                           [&](const Slot& o) { return o.same_kind(slot); });
    if (it != staying.end()) {
      ++it->count;
    } else {
      staying.push_back(slot);
    }
  }
  std::sort(staying.begin(), staying.end());
  // Merge duplicates after the zeta reset.
  for (std::size_t t = 0; t + 1 < staying.size();) {
    if (staying[t].same_kind(staying[t + 1])) {
      staying[t].count += staying[t + 1].count;
      staying.erase(staying.begin() + static_cast<std::ptrdiff_t>(t) + 1);
    } else {
      ++t;
    }
  }
  next.slots = std::move(staying);
  if (!batches_[next.group].empty()) {
    next.pending = batches_[next.group][0].sizes;
  }
  intern(std::move(next), node_index,
         {Decision::Kind::kNextGroup, 0.0, 0.0, 0.0, 0});
}

RelaxedSchedule DpSolver::replay(std::int64_t end_node) const {
  // Collect the decision chain root -> end.
  std::vector<const Decision*> chain;
  for (std::int64_t at = end_node; at >= 0; at = nodes_[at].parent) {
    chain.push_back(&nodes_[at].decision);
  }
  std::reverse(chain.begin(), chain.end());

  RelaxedSchedule out;
  out.integral = Schedule::empty(inst_.num_jobs());
  out.relaxed_load.assign(inst_.num_machines(), 0.0);
  out.fractional_by_group = preassigned_fractional_;

  // Concrete machine states of the current group.
  struct ConcreteMachine {
    MachineId id;
    double speed;
    double load;
    std::uint8_t zeta;
  };
  std::vector<ConcreteMachine> active;
  for (const MachineId i : enter_at_[0]) {
    active.push_back({i, inst_.speed[i], 0.0, 0});
  }

  int group = 0;
  std::size_t batch_index = 0;
  auto jobs_by_size = batches_.empty() || batches_[0].empty()
                          ? std::map<double, std::vector<JobId>, std::greater<>>{}
                          : batches_[0][0].jobs_by_size;

  const auto pop_job = [&](double size) {
    auto it = jobs_by_size.find(size);
    check(it != jobs_by_size.end() && !it->second.empty(),
          "replay: no job of the decided size");
    const JobId j = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) jobs_by_size.erase(it);
    return j;
  };

  for (const Decision* d : chain) {
    switch (d->kind) {
      case Decision::Kind::kRoot:
        break;
      case Decision::Kind::kPlace:
      case Decision::Kind::kPlaceSetup: {
        const JobId j = pop_job(d->size);
        const Batch& batch = batches_[group][batch_index];
        auto it = std::find_if(active.begin(), active.end(),
                               [&](const ConcreteMachine& cm) {
                                 return cm.speed == d->speed &&
                                        cm.load == d->load &&
                                        cm.zeta == d->zeta;
                               });
        check(it != active.end(), "replay: no machine matches the slot");
        out.integral.assignment[j] = it->id;
        it->load += d->size;
        if (d->kind == Decision::Kind::kPlaceSetup) {
          it->load += batch.setup;
          it->zeta = 1;
        }
        break;
      }
      case Decision::Kind::kFractional: {
        const JobId j = pop_job(d->size);
        out.fractional_by_group[group].push_back(j);
        break;
      }
      case Decision::Kind::kNextBatch: {
        check(jobs_by_size.empty(), "replay: batch advanced with jobs left");
        ++batch_index;
        jobs_by_size = batches_[group][batch_index].jobs_by_size;
        for (ConcreteMachine& cm : active) cm.zeta = 0;
        break;
      }
      case Decision::Kind::kNextGroup: {
        check(jobs_by_size.empty(), "replay: group advanced with jobs left");
        // Leaving machines freeze their relaxed load.
        std::vector<ConcreteMachine> staying;
        for (ConcreteMachine& cm : active) {
          if (machine_lower_[cm.id] == group) {
            out.relaxed_load[cm.id] = cm.load;
          } else {
            cm.zeta = 0;
            staying.push_back(cm);
          }
        }
        active = std::move(staying);
        ++group;
        batch_index = 0;
        if (group <= max_group_) {
          for (const MachineId i : enter_at_[group]) {
            active.push_back({i, inst_.speed[i], 0.0, 0});
          }
          if (!batches_[group].empty()) {
            jobs_by_size = batches_[group][0].jobs_by_size;
          } else {
            jobs_by_size.clear();
          }
        }
        break;
      }
    }
  }
  check(active.empty(), "replay: machines left active after the last group");
  return out;
}

RelaxedDpResult DpSolver::run() {
  RelaxedDpResult out;
  if (!prepare(out)) return out;

  State init = initial_state();
  // A group-0 state with no batches still needs transitions; expand() handles
  // empty pending by advancing, so just seed the search.
  intern(std::move(init), -1, {Decision::Kind::kRoot, 0.0, 0.0, 0.0, 0});

  // LIFO order (depth-first): feasible instances reach an accepting state
  // quickly along a mostly-integral path; infeasible ones must exhaust the
  // reachable set either way.
  while (!queue_.empty()) {
    const std::int64_t at = queue_.back();
    queue_.pop_back();
    // Copy: expand() appends to states_, which may reallocate.
    const State s = states_[at];
    if (is_end_state(s)) {
      end_node_ = at;
      break;
    }
    if (nodes_.size() > opt_.max_states) {
      out.status = DpStatus::kResourceLimit;
      out.states = nodes_.size();
      return out;
    }
    expand(s, at);
  }

  out.states = nodes_.size();
  if (end_node_ < 0) {
    out.status = DpStatus::kInfeasible;
    return out;
  }
  out.status = DpStatus::kFeasible;
  out.relaxed = replay(end_node_);
  return out;
}

}  // namespace

RelaxedDpResult solve_relaxed_dp(const UniformInstance& instance,
                                 const GroupStructure& groups,
                                 const RelaxedDpOptions& options) {
  instance.validate();
  DpSolver solver(instance, groups, options);
  return solver.run();
}

}  // namespace setsched
