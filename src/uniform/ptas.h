#pragma once

#include "core/instance.h"
#include "core/result.h"

namespace setsched {

struct PtasOptions {
  /// Accuracy parameter; floored internally to a power of two (<= 1/2).
  double epsilon = 0.5;
  /// DP state budget per feasibility probe.
  std::size_t max_states = 300'000;
};

struct PtasResult {
  Schedule schedule;
  double makespan = 0.0;
  /// Largest probed T for which the DP proved no schedule of makespan <= T
  /// exists (a valid lower bound on OPT); the binary search converges to
  /// accepted_T / lower_bound <= 1 + ε.
  double lower_bound = 0.0;
  /// Smallest accepted makespan guess.
  double accepted_T = 0.0;
  /// True if some probe ran out of DP states; the result is then only as
  /// good as the probes that completed (plus the LPT fallback).
  bool resource_limited = false;
  std::size_t probes = 0;
  std::size_t max_dp_states = 0;
};

/// The Section 2.1 PTAS for scheduling with setup times on uniformly
/// related machines: dual-approximation binary search over makespan guesses;
/// each probe simplifies the instance (Lemmas 2.2-2.4), decides relaxed
/// feasibility by the group DP, reconstructs (Lemma 2.8) and lifts the
/// schedule back to the original instance. The returned schedule's makespan
/// is (1 + O(ε)) * OPT; the exact empirical factor is reported by E2.
[[nodiscard]] PtasResult ptas_uniform(const UniformInstance& instance,
                                      const PtasOptions& options = {});

}  // namespace setsched
