#pragma once

#include <climits>
#include <cmath>

#include "core/instance.h"

namespace setsched {

/// Speed-group structure of Section 2.1 (see Fig. 1 of the paper).
///
/// With γ = ε³, group g covers speeds [v̌_g, v̂_g) where v̌_g = vmin/γ^(g-1)
/// and v̂_g = vmin/γ^(g+1) = v̌_(g+2); every speed lies in exactly two
/// consecutive groups. We index membership via the *lower half*: a speed v
/// with v̌_L <= v < v̌_(L+1) belongs to groups L-1 (upper half) and L (lower
/// half). A machine therefore enters the group-by-group DP at group L-1 and
/// leaves after group L.
///
/// Native group of a job j:   lower_index(p_j / T) — the unique group whose
/// lower half contains p_j/T; it contains all speeds for which p_j is big
/// (eps*v*T <= p_j <= v*T), making Remark 2.7 hold.
/// Core group of a class k:   lower_index(s_k / T) — contains all speeds of
/// core machines (s_k <= T*v < s_k/γ).
///
/// ε is restricted to powers of two, so γ = ε³ and all group boundaries are
/// exact powers of two times vmin — boundary classifications are exact.
class GroupStructure {
 public:
  GroupStructure(double epsilon, double vmin, double T)
      : epsilon_(epsilon), gamma_(epsilon * epsilon * epsilon),
        delta_(epsilon * epsilon), vmin_(vmin), T_(T) {}

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }
  [[nodiscard]] double delta() const noexcept { return delta_; }
  [[nodiscard]] double T() const noexcept { return T_; }

  /// v̌_g = vmin / γ^(g-1).
  [[nodiscard]] double lower_boundary(int g) const {
    return vmin_ * std::pow(gamma_, 1 - g);
  }

  /// The unique L with v̌_L <= x < v̌_(L+1); may be negative or > G.
  [[nodiscard]] int lower_index(double x) const {
    if (x <= 0.0) return INT_MIN / 2;
    // Solve gamma^(1-L) <= x/vmin < gamma^(-L).
    const double ratio = x / vmin_;
    // L = 1 + floor(log_{1/gamma}(ratio)) computed in log2 space (gamma is a
    // power of two, so log2(1/gamma) is a positive integer).
    const double log_inv_gamma = -std::log2(gamma_);
    int L = 1 + static_cast<int>(std::floor(std::log2(ratio) / log_inv_gamma));
    // Guard against boundary roundoff: enforce v̌_L <= x < v̌_(L+1).
    while (x < lower_boundary(L)) --L;
    while (x >= lower_boundary(L + 1)) ++L;
    return L;
  }

  /// Machine membership: machine with speed v is in groups {L-1, L}.
  [[nodiscard]] int machine_lower_group(double v) const { return lower_index(v); }
  [[nodiscard]] bool machine_in_group(double v, int g) const {
    const int L = lower_index(v);
    return g == L || g == L - 1;
  }

  [[nodiscard]] int native_group(double job_size) const {
    return lower_index(job_size / T_);
  }
  [[nodiscard]] int core_group(double setup_size) const {
    return lower_index(setup_size / T_);
  }

  /// Fringe jobs of class k have p >= s_k / δ; core jobs ε s_k <= p < s_k/δ.
  [[nodiscard]] bool is_fringe_job(double job_size, double setup_size) const {
    return job_size >= setup_size / delta_;
  }

  /// Job size classification relative to a speed (paper's small/big/huge).
  [[nodiscard]] bool small_for(double size, double v) const {
    return size < epsilon_ * v * T_;
  }
  [[nodiscard]] bool big_for(double size, double v) const {
    return size >= epsilon_ * v * T_ && size <= v * T_;
  }
  [[nodiscard]] bool huge_for(double size, double v) const {
    return size > v * T_;
  }

 private:
  double epsilon_;
  double gamma_;
  double delta_;
  double vmin_;
  double T_;
};

/// Rounds epsilon down to the largest power of two 2^-a <= epsilon with
/// a >= 1 (the PTAS requires 1/ε ∈ Z, and powers of two make every rounded
/// size a dyadic rational — all DP arithmetic is then exact in double).
[[nodiscard]] inline double floor_epsilon_to_power_of_two(double epsilon) {
  double e = 0.5;
  while (e > epsilon) e /= 2.0;
  return e;
}

}  // namespace setsched
