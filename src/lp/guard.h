#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace setsched::lp {

/// Findings of one post-solve residual audit. All magnitudes are absolute
/// worst cases over their check; `complaint` is a static string naming the
/// first check that tripped (nullptr when clean).
struct AuditReport {
  AuditVerdict verdict = AuditVerdict::kSkipped;
  /// max over rows of the sense-aware residual of a_r^T x vs b_r
  /// (<= rows only penalize overshoot, >= rows undershoot).
  double primal_residual = 0.0;
  /// max over columns of bound violation of x_j.
  double bound_violation = 0.0;
  /// max wrong-sign reduced-cost magnitude over nonbasic columns, plus
  /// |d_j| over basic columns (basic reduced costs must vanish).
  double dual_residual = 0.0;
  /// relative disagreement between c^T x and the dual objective
  /// y^T b + sum_j d_j x_j (complementary slackness in aggregate).
  double objective_gap = 0.0;
  const char* complaint = nullptr;
};

/// Audits a finished solve against the model it claims to have solved:
/// primal residuals ||a_r^T x - b_r|| per sense, bound violations,
/// reduced-cost sign consistency for the basis statuses the solution
/// reports, and primal/dual objective agreement. O(nnz + n + m), no solver
/// state needed — everything is recomputed from (model, solution).
///
/// Classification: kClean when every check passes within
/// options.audit_slack() (rows get the 10x row cushion); kFailed on any
/// non-finite value or a violation worse than 1e6 * slack; kSuspect in
/// between. kOptimal solves get the full audit; kInfeasible solves get a
/// dual-consistency audit of the returned duals (an infeasibility claim
/// whose duals are sign-inconsistent or non-finite is not trustworthy
/// evidence); kUnbounded is always contested (the scheduling LPs are
/// bounded, so the claim itself smells of corruption); kIterationLimit is
/// kSkipped (a budget bailout carries no answer to audit).
[[nodiscard]] AuditReport audit_solution(const Model& model,
                                         const Solution& solution,
                                         const SimplexOptions& options);

}  // namespace setsched::lp
