#pragma once

// Internal declaration of the sparse revised simplex, shared by its two
// translation units: revised.cpp (substrate — CSC gather, LU factorization,
// FTRAN/BTRAN, warm-start basis adoption — plus the composite primal
// phase 1/2 loop) and dual.cpp (the bounded-variable dual simplex that
// re-optimizes warm bases which are primal-infeasible but dual-feasible).
// Not part of the public API; include lp/simplex.h instead.

#include <cstddef>
#include <utility>
#include <vector>

#include "lp/fault.h"
#include "lp/pricing.h"
#include "lp/simplex.h"

namespace setsched::lp::internal {

/// Column-wise sparse (CSC) copy of the structural part of [A | I], gathered
/// once per solve from the row-wise Model.
struct SparseColumns {
  std::vector<std::size_t> start;  ///< nstruct + 1 offsets
  std::vector<std::size_t> row;
  std::vector<double> value;

  static SparseColumns gather(const Model& model);
};

/// One product-form update: the basis column at `slot` was replaced by a
/// column whose FTRAN image was `pivot_value` at `slot` and `entries`
/// elsewhere.
struct Eta {
  std::size_t slot = 0;
  double pivot_value = 1.0;
  std::vector<std::pair<std::size_t, double>> entries;  ///< excludes the slot
};

class RevisedSolver {
 public:
  RevisedSolver(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options), injector_(options.fault_plan) {}

  Solution run();

 private:
  // --- setup (revised.cpp) -------------------------------------------------
  void build();
  void init_basis(const Basis* warm);
  void reset_to_logical_basis();

  // --- factorization (revised.cpp) -----------------------------------------
  void factorize();             ///< LU of the current basis, with repair
  bool try_factorize();         ///< one elimination pass; false => repaired
  void compute_basics();        ///< xb = B^-1 (b - N x_N)
  void ftran(std::vector<double>& slots);  ///< rows in work_rows_ -> slots
  /// Solves B^T y = `slots` (costs per slot) into `rows_out` (row space).
  void btran(std::vector<double>& slots, std::vector<double>& rows_out);

  // --- primal iteration (revised.cpp) --------------------------------------
  /// The composite primal loop (phase 1 = minimize total infeasibility,
  /// phase 2 = the model objective). Entered after an optional dual
  /// prologue; returns the final Solution.
  Solution run_primal();
  bool phase_one_costs();       ///< fills cslot_; true iff any infeasibility
  std::size_t price(bool phase1);
  std::size_t price_devex(bool phase1);
  std::size_t full_scan(bool phase1, bool bland);
  /// Devex reference-framework update for the primal pricing weights after
  /// the basis change (enter, leave_slot); reads the pivot row via BTRAN.
  void devex_primal_update(std::size_t enter, std::size_t leave_slot);
  [[nodiscard]] double reduced_cost(std::size_t j, bool phase1) const;
  [[nodiscard]] double bound_value(std::size_t j) const {
    return state_[j] == VarStatus::kAtUpper ? upper_[j] : lower_[j];
  }

  // --- dual simplex (dual.cpp) ---------------------------------------------
  enum class DualOutcome {
    kOptimal,         ///< primal feasibility restored; duals stayed feasible
    kInfeasible,      ///< dual unbounded: the primal is infeasible
    kFallback,        ///< numerics forced a bail-out; run the primal loop
    kIterationLimit,
  };
  /// True iff every nonbasic column's phase-2 reduced cost respects its
  /// bound status within `tol` (fixed columns are exempt). Refreshes y_.
  [[nodiscard]] bool dual_feasible(double tol);
  /// The bounded-variable dual simplex with Devex row pricing. Assumes a
  /// factorized basis with xb_ computed and the duals of the current basis
  /// already in y_ (run() establishes both via dual_feasible()); maintains
  /// dual feasibility while driving out primal infeasibilities.
  DualOutcome run_dual();

  [[nodiscard]] Solution extract(SolveStatus status);

  const Model& model_;
  SimplexOptions opt_;

  std::size_t nrows_ = 0;
  std::size_t nstruct_ = 0;
  std::size_t ncols_ = 0;  ///< nstruct_ + nrows_ (structural | logical)

  SparseColumns cols_;
  std::vector<double> lower_, upper_;  ///< per column, internal form
  std::vector<double> cost2_;          ///< phase-2 costs (internal minimize)
  std::vector<double> rhs_;
  double sign_ = 1.0;  ///< +1 minimize, -1 maximize

  std::vector<VarStatus> state_;     ///< per column
  std::vector<std::size_t> basis_;   ///< column basic in each slot
  std::vector<double> xb_;           ///< value of the basic column per slot

  // LU factors of P B Q = L U: columns eliminated in sparsity order Q
  // (thin columns first keeps the fill an order of magnitude down on the
  // scheduling LPs, whose bases mix unit logicals, 2-nonzero dominance
  // columns, and a few dense load columns), rows chosen by partial
  // pivoting P. Everything below is indexed by elimination step.
  std::vector<std::vector<std::pair<std::size_t, double>>> lcols_;  // (row, v)
  std::vector<std::vector<std::pair<std::size_t, double>>> ucols_;  // (step, v)
  std::vector<double> udiag_;
  std::vector<std::size_t> rowof_;    ///< elimination step -> pivot row
  std::vector<std::size_t> posof_;    ///< row -> elimination step
  std::vector<std::size_t> colperm_;  ///< elimination step -> basis slot
  std::vector<double> z_;             ///< scratch, elimination space
  std::vector<Eta> etas_;

  /// One kink of the piecewise-linear phase-1 objective along the entering
  /// direction (see the primal ratio test).
  struct Kink {
    double t;
    double slope_drop;  ///< how much the improvement rate loses here
    std::size_t slot;
    bool to_upper;
  };

  // Scratch (members so the per-iteration hot loop never allocates).
  std::vector<double> work_rows_;  ///< dense over rows, kept zeroed
  std::vector<double> alpha_;      ///< FTRAN image of the entering column
  std::vector<double> cslot_;      ///< basic costs per slot
  std::vector<double> btran_scratch_;
  std::vector<double> y_;          ///< duals over rows (last BTRAN)
  std::vector<double> rho_;        ///< B^-T e_r (pivot-row BTRAN image)
  std::vector<std::size_t> candidates_;
  std::vector<Kink> kinks_;
  std::vector<char> shunned_;  ///< columns with numerically unusable pivots
  bool any_shunned_ = false;

  // Devex reference frameworks: columns for primal pricing, slots (rows) for
  // the dual simplex's leaving-row selection.
  DevexWeights devex_cols_;
  DevexWeights devex_rows_;

  double total_infeas_ = 0.0;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
  bool use_bland_ = false;
  std::size_t stall_count_ = 0;
  /// True when the last factorize() had to repair a singular basis (the
  /// basis changed outside a pivot, invalidating dual-loop invariants).
  bool factor_repaired_ = false;
  /// True once the dual simplex performed this solve (Solution::via_dual).
  bool via_dual_ = false;

  /// Deterministic fault injection (lp/fault.h); disarmed unless the options
  /// carry a plan. Sites: eta pushes (kEtaFlip), try_factorize
  /// (kFactorPerturb), ftran results (kFtranNan), the periodic refactor
  /// trigger (kSkipRefactor), and the Devex weight updates (kStaleDevex).
  FaultInjector injector_;
  /// Corrupts one entry of a freshly pushed eta when kEtaFlip fires; shared
  /// by the primal and dual eta-push sites.
  void maybe_flip_eta(Eta& eta) {
    if (!injector_.armed() || eta.entries.empty()) return;
    if (!injector_.fire(FaultKind::kEtaFlip)) return;
    eta.entries[injector_.pick(eta.entries.size())].second *= -1.0;
  }

  /// Incremental-duals state (dual.cpp): when true, y_ currently holds the
  /// exact duals of basis_ and the dual loop may advance it per pivot via
  /// y += theta_d * rho instead of a fresh BTRAN. Dropped to exact-recompute
  /// mode for the rest of the solve when the periodic refactorization
  /// cross-check detects drift.
  bool incremental_duals_ok_ = true;
  std::size_t dual_drift_events_ = 0;

  [[nodiscard]] double infeas_tol() const {
    return opt_.feas_tol * std::max<double>(1.0, static_cast<double>(nrows_));
  }
};

}  // namespace setsched::lp::internal
