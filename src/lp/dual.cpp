// Bounded-variable dual simplex for the revised solver (see revised.cpp for
// the shared substrate). The dual loop starts from a basis whose reduced
// costs are feasible — a warm basis right after an rhs/bound mutation, or
// any basis of an all-nonnegative-cost model such as the min-makespan node
// relaxations of src/exact — and drives out primal infeasibilities while
// preserving dual feasibility. Each iteration:
//
//   1. pick the leaving slot r by Devex-weighted primal infeasibility
//      (lp/pricing.h: maximize infeas^2 / w_r within the current reference
//      framework);
//   2. BTRAN the unit vector e_r into the pivot row rho = B^-T e_r, then
//      sweep the nonbasic columns once, computing both the row coefficient
//      alpha_rj = rho^T A_j and the reduced cost d_j = c_j - y^T A_j;
//   3. the bounded-variable dual ratio test picks the entering column with
//      the tightest dual step d_j / alpha_rj among the columns whose status
//      allows a move in the direction that repairs slot r (no candidates
//      means the dual is unbounded, i.e. the primal is infeasible);
//   4. FTRAN the entering column, take the primal step that lands the
//      leaving variable exactly on its violated bound, update the Devex row
//      weights from the pivot column, and push the eta.
//
// Degenerate dual steps are allowed; a long stall flips both selections to
// Bland-style smallest-index rules, which terminates finitely. Numerical
// disagreement between the row and column views of the pivot element aborts
// into the composite primal phase 1 (DualOutcome::kFallback) — the dual
// loop is an accelerator, never the only path to a correct answer.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/revised_impl.h"
#include "obs/trace.h"

namespace setsched::lp::internal {

namespace {
constexpr std::size_t kNone = SIZE_MAX;
}  // namespace

bool RevisedSolver::dual_feasible(double tol) {
  for (std::size_t k = 0; k < nrows_; ++k) cslot_[k] = cost2_[basis_[k]];
  btran_scratch_ = cslot_;
  btran(btran_scratch_, y_);
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed columns never move
    const double d = reduced_cost(j, /*phase1=*/false);
    if (state_[j] == VarStatus::kAtLower && d < -tol) return false;
    if (state_[j] == VarStatus::kAtUpper && d > tol) return false;
  }
  return true;
}

RevisedSolver::DualOutcome RevisedSolver::run_dual() {
  devex_rows_.reset(nrows_);
  std::size_t dual_stall = 0;
  bool bland = false;
  // run() calls dual_feasible() immediately before entering, which left the
  // current basis's duals in y_ — the first iteration reuses them instead of
  // re-running the same BTRAN (probes are only a few pivots long, so one
  // BTRAN per probe is measurable).
  bool duals_ready = true;
  // Incremental dual maintenance: after each pivot y can be advanced in
  // place (y += theta_d * rho, rho = B^-T e_leave already computed for the
  // ratio test), replacing the per-iteration BTRAN. The update is
  // cross-checked against an exact BTRAN at every periodic refactorization;
  // drift beyond the audit slack restores the exact duals and drops back to
  // per-iteration BTRANs for the rest of the solve.
  const bool incremental = opt_.incremental_duals;

  while (true) {
    if (iterations_ >= max_iterations_) return DualOutcome::kIterationLimit;
    if (devex_rows_.overflowed()) devex_rows_.reset(nrows_);

    // Fresh duals of the current basis (phase-2 costs); the ratio test needs
    // reduced costs and extract() reads y_ afterwards.
    if (!duals_ready) {
      for (std::size_t k = 0; k < nrows_; ++k) cslot_[k] = cost2_[basis_[k]];
      btran_scratch_ = cslot_;
      btran(btran_scratch_, y_);
    }
    duals_ready = false;

    // --- leaving slot: Devex-weighted most-infeasible basic ---------------
    std::size_t leave = kNone;
    double best_score = 0.0;
    bool below = false;
    for (std::size_t k = 0; k < nrows_; ++k) {
      const std::size_t b = basis_[k];
      double infeas = 0.0;
      bool under = false;
      if (xb_[k] < lower_[b] - opt_.feas_tol) {
        infeas = lower_[b] - xb_[k];
        under = true;
      } else if (xb_[k] > upper_[b] + opt_.feas_tol) {
        infeas = xb_[k] - upper_[b];
      } else {
        continue;
      }
      if (bland) {
        if (leave == kNone || b < basis_[leave]) {
          leave = k;
          below = under;
        }
        continue;
      }
      const double score = devex_rows_.score(k, infeas);
      if (leave == kNone || score > best_score) {
        best_score = score;
        leave = k;
        below = under;
      }
    }
    if (leave == kNone) return DualOutcome::kOptimal;  // primal feasible

    const std::size_t bleave = basis_[leave];

    // --- pivot row: rho = B^-T e_leave ------------------------------------
    std::fill(btran_scratch_.begin(), btran_scratch_.end(), 0.0);
    btran_scratch_[leave] = 1.0;
    btran(btran_scratch_, rho_);

    // --- dual ratio test --------------------------------------------------
    // The leaving variable exits at its violated bound. `below` (xb under
    // the lower bound) needs xb_leave to INCREASE, which the entering
    // direction dir_j delivers when alpha_rj * dir_j < 0; the dual step
    // theta_d = d_q / alpha_rq is then <= 0 and every other reduced cost
    // moves by -theta_d * alpha_rj, staying feasible as long as |theta_d| is
    // the minimum ratio. The mirrored case (above the upper bound) takes
    // theta_d >= 0. Among near-tie ratios prefer the largest |alpha| pivot
    // for numerical stability; Bland mode takes the smallest column index.
    std::size_t enter = kNone;
    double enter_alpha = 0.0;
    double enter_d = 0.0;
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_mag = 0.0;
    // Columns whose direction would help but whose pivot-row coefficient
    // fell under the tolerance: declaring infeasibility while such a column
    // exists would turn a numerical corner into a hard (and for the exact
    // solver, soundness-critical) verdict — bail to the primal loop instead.
    bool skipped_tiny = false;
    for (std::size_t j = 0; j < ncols_; ++j) {
      if (state_[j] == VarStatus::kBasic) continue;
      if (lower_[j] == upper_[j]) continue;  // fixed
      double a = 0.0;
      if (j < nstruct_) {
        for (std::size_t t = cols_.start[j]; t < cols_.start[j + 1]; ++t) {
          a += cols_.value[t] * rho_[cols_.row[t]];
        }
      } else {
        a = rho_[j - nstruct_];
      }
      const bool at_lower = state_[j] == VarStatus::kAtLower;
      // Eligibility: entering from lower moves +1, from upper moves -1; the
      // move must push xb_leave toward its violated bound.
      const double push = at_lower ? -a : a;  // sign of xb_leave change
      if (below ? push <= 0.0 : push >= 0.0) continue;
      if (std::abs(a) < opt_.pivot_tol) {
        skipped_tiny = true;
        continue;
      }
      const double d = reduced_cost(j, /*phase1=*/false);
      // |theta_d| this column allows before its own reduced cost flips
      // sign. In the below case theta_d is <= 0 and the raw ratios d/a are
      // <= 0 (the binding one is the largest); negating both cases leaves
      // "smallest nonnegative normalized ratio = tightest".
      double ratio = d / a;
      if (below) ratio = -ratio;
      ratio = std::max(ratio, 0.0);
      const double mag = std::abs(a);
      bool better;
      if (enter == kNone) {
        better = true;
      } else if (bland) {
        better = j < enter;
        if (ratio > best_ratio + opt_.opt_tol) better = false;
        if (ratio < best_ratio - opt_.opt_tol) better = true;
      } else if (ratio < best_ratio - opt_.ratio_tie_tol()) {
        better = true;
      } else if (ratio <= best_ratio + opt_.ratio_tie_tol()) {
        better = mag > best_mag;
      } else {
        better = false;
      }
      if (better) {
        enter = j;
        enter_alpha = a;
        enter_d = d;
        best_ratio = ratio;
        best_mag = mag;
      }
    }
    if (enter == kNone) {
      // No column can absorb the infeasibility without breaking dual
      // feasibility: the dual is unbounded, the primal infeasible. Unless
      // eligible columns were dropped for tiny pivots only — then the
      // verdict is numerically uncertain and the primal loop must confirm.
      return skipped_tiny ? DualOutcome::kFallback : DualOutcome::kInfeasible;
    }

    // --- FTRAN the entering column ----------------------------------------
    if (enter < nstruct_) {
      for (std::size_t t = cols_.start[enter]; t < cols_.start[enter + 1];
           ++t) {
        work_rows_[cols_.row[t]] += cols_.value[t];
      }
    } else {
      work_rows_[enter - nstruct_] += 1.0;
    }
    ftran(alpha_);

    const double apivot = alpha_[leave];
    // The row (enter_alpha) and column (apivot) views of the pivot element
    // must agree; drift beyond roundoff means the eta file degraded.
    if (!std::isfinite(apivot) || std::abs(apivot) < opt_.pivot_tol ||
        std::abs(apivot - enter_alpha) >
            opt_.pivot_agreement_tol() * std::max(1.0, std::abs(apivot))) {
      std::fill(alpha_.begin(), alpha_.end(), 0.0);
      return DualOutcome::kFallback;
    }

    const bool from_lower = state_[enter] == VarStatus::kAtLower;
    const double dir = from_lower ? 1.0 : -1.0;
    const double target = below ? lower_[bleave] : upper_[bleave];
    double step = (xb_[leave] - target) / (dir * apivot);
    step = std::max(step, 0.0);

    ++iterations_;
    if (step <= opt_.feas_tol) {
      if (++dual_stall > 2 * (nrows_ + ncols_)) bland = true;
    } else {
      dual_stall = 0;
    }

    // Devex row weights from the pivot column (pre-pivot view). kStaleDevex
    // drops one whole update when it fires: the weights go stale, which can
    // only degrade pivot choice (more iterations), never correctness — the
    // fault the audit must NOT flag.
    if (!bland && !injector_.fire(FaultKind::kStaleDevex)) {
      const double w_pivot = devex_rows_.weight(leave);
      for (std::size_t k = 0; k < nrows_; ++k) {
        if (k == leave || alpha_[k] == 0.0) continue;
        devex_rows_.update_neighbor(k, alpha_[k] / apivot, w_pivot);
      }
      devex_rows_.update_pivot(leave, w_pivot, apivot);
    }

    // --- apply the primal step and exchange the basis ---------------------
    if (step != 0.0) {
      for (std::size_t k = 0; k < nrows_; ++k) {
        if (alpha_[k] != 0.0) xb_[k] -= dir * alpha_[k] * step;
      }
    }
    const double enter_from = bound_value(enter);
    state_[bleave] = below ? VarStatus::kAtLower : VarStatus::kAtUpper;
    basis_[leave] = enter;
    state_[enter] = VarStatus::kBasic;
    xb_[leave] = enter_from + dir * step;

    Eta eta;
    eta.slot = leave;
    eta.pivot_value = apivot;
    for (std::size_t k = 0; k < nrows_; ++k) {
      if (k != leave && alpha_[k] != 0.0) {
        eta.entries.push_back({k, alpha_[k]});
      }
      alpha_[k] = 0.0;
    }
    etas_.push_back(std::move(eta));
    maybe_flip_eta(etas_.back());

    if (incremental && incremental_duals_ok_) {
      // Advance the duals in place of the next iteration's BTRAN: the new
      // basis's reduced costs are d'_j = d_j - theta_d * alpha_rj with
      // theta_d = d_enter / apivot, i.e. y' = y + theta_d * rho (rho_ still
      // holds this pivot's row B^-T e_leave).
      const double theta_d = enter_d / apivot;
      if (theta_d != 0.0) {
        for (std::size_t r = 0; r < nrows_; ++r) {
          y_[r] += theta_d * rho_[r];
        }
      }
      duals_ready = true;
    }

    if (etas_.size() >= std::max<std::size_t>(1, opt_.refactor_interval) &&
        !injector_.fire(FaultKind::kSkipRefactor)) {
      factorize();
      if (factor_repaired_) {
        // The repair swapped basis columns behind the dual loop's back; its
        // dual-feasibility invariant is gone. Let the primal loop finish.
        compute_basics();
        return DualOutcome::kFallback;
      }
      compute_basics();
      if (incremental && incremental_duals_ok_ && duals_ready) {
        // Periodic exact-BTRAN cross-check of the incremental duals: with
        // fresh factors, recompute y from scratch, measure the drift the
        // eta-era updates accumulated, and always adopt the exact values.
        // Drift beyond the audit slack (or a NaN) disables the incremental
        // path for the rest of this solve — correctness never depends on
        // the shortcut.
        for (std::size_t k = 0; k < nrows_; ++k) {
          cslot_[k] = cost2_[basis_[k]];
        }
        btran_scratch_ = cslot_;
        btran(btran_scratch_, rho_);  // rho_ is dead until the next pivot
        double drift = 0.0;
        double scale = 1.0;
        for (std::size_t r = 0; r < nrows_; ++r) {
          drift = std::max(drift, std::abs(rho_[r] - y_[r]));
          scale = std::max(scale, std::abs(rho_[r]));
        }
        y_ = rho_;
        if (!(drift <= opt_.audit_slack() * scale)) {
          ++dual_drift_events_;
          incremental_duals_ok_ = false;
          obs::emit_instant("lp_dual_drift", "lp", nullptr, nullptr, "drift",
                            drift);
        }
      }
    }
  }
}

}  // namespace setsched::lp::internal
