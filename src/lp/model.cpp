#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace setsched::lp {

std::size_t Model::add_variable(double lower, double upper, double objective) {
  check(std::isfinite(lower), "variable lower bound must be finite");
  check(!(upper < lower), "variable upper bound below lower bound");
  lower_.push_back(lower);
  upper_.push_back(upper);
  obj_.push_back(objective);
  return lower_.size() - 1;
}

std::size_t Model::add_constraint(std::vector<Entry> row, Sense sense,
                                  double rhs) {
  // Merge duplicate columns so downstream code sees clean rows.
  std::sort(row.begin(), row.end(),
            [](const Entry& a, const Entry& b) { return a.col < b.col; });
  std::vector<Entry> merged;
  merged.reserve(row.size());
  for (const Entry& e : row) {
    check(e.col < num_variables(), "constraint references unknown column");
    check(std::isfinite(e.value), "constraint coefficient must be finite");
    if (!merged.empty() && merged.back().col == e.col) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  check(std::isfinite(rhs), "constraint rhs must be finite");
  rows_.push_back(std::move(merged));
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  return rows_.size() - 1;
}

void Model::set_objective(std::size_t col, double coefficient) {
  check(col < num_variables(), "unknown column");
  obj_[col] = coefficient;
}

void Model::set_rhs(std::size_t row, double rhs) {
  check(row < num_constraints(), "unknown row");
  check(std::isfinite(rhs), "constraint rhs must be finite");
  rhs_[row] = rhs;
}

void Model::set_bounds(std::size_t col, double lower, double upper) {
  check(col < num_variables(), "unknown column");
  check(std::isfinite(lower), "variable lower bound must be finite");
  check(!(upper < lower), "variable upper bound below lower bound");
  lower_[col] = lower;
  upper_[col] = upper;
}

void Model::update_entry(std::size_t row, std::size_t col, double value) {
  check(row < num_constraints(), "unknown row");
  check(std::isfinite(value), "constraint coefficient must be finite");
  for (Entry& e : rows_[row]) {
    if (e.col == col) {
      e.value = value;
      return;
    }
  }
  check(false, "update_entry: (row, col) has no existing entry");
}

void Model::add_to_row(std::size_t row, std::size_t col, double value) {
  check(row < num_constraints(), "unknown row");
  check(col < num_variables(), "add_to_row references unknown column");
  check(std::isfinite(value), "constraint coefficient must be finite");
  check(rows_[row].empty() || rows_[row].back().col < col,
        "add_to_row: column must extend the row (rows stay sorted)");
  rows_[row].push_back({col, value});
}

double Model::row_activity(std::size_t r, const std::vector<double>& x) const {
  double acc = 0.0;
  for (const Entry& e : rows_[r]) acc += e.value * x[e.col];
  return acc;
}

double Model::max_violation(const std::vector<double>& x) const {
  check(x.size() == num_variables(), "assignment size mismatch");
  double worst = 0.0;
  for (std::size_t j = 0; j < num_variables(); ++j) {
    worst = std::max(worst, lower_[j] - x[j]);
    if (std::isfinite(upper_[j])) worst = std::max(worst, x[j] - upper_[j]);
  }
  for (std::size_t r = 0; r < num_constraints(); ++r) {
    const double lhs = row_activity(r, x);
    switch (senses_[r]) {
      case Sense::kLessEqual:
        worst = std::max(worst, lhs - rhs_[r]);
        break;
      case Sense::kGreaterEqual:
        worst = std::max(worst, rhs_[r] - lhs);
        break;
      case Sense::kEqual:
        worst = std::max(worst, std::abs(lhs - rhs_[r]));
        break;
    }
  }
  return worst;
}

double Model::objective_value(const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < num_variables(); ++j) acc += obj_[j] * x[j];
  return acc;
}

}  // namespace setsched::lp
