#include "lp/fault.h"

#include <charconv>
#include <system_error>

#include "common/check.h"

namespace setsched::lp {

namespace {

constexpr std::string_view kKindNames[kFaultKindCount] = {
    "eta-flip", "factor-perturb", "ftran-nan", "skip-refactor", "stale-devex",
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  check(index < kFaultKindCount, "unknown FaultKind value");
  return kKindNames[index];
}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  spec = trim(spec);
  check(!spec.empty(), "empty fault-injection spec");

  if (const std::size_t at = spec.rfind('@'); at != std::string_view::npos) {
    const std::string_view rate_token = trim(spec.substr(at + 1));
    double rate = 0.0;
    const auto [end, ec] = std::from_chars(
        rate_token.data(), rate_token.data() + rate_token.size(), rate);
    check(ec == std::errc{} && end == rate_token.data() + rate_token.size() &&
              rate > 0.0 && rate <= 1.0,
          "bad fault-injection rate '" + std::string(rate_token) +
              "' (want a number in (0, 1])");
    plan.rate = rate;
    spec = trim(spec.substr(0, at));
  }

  check(!spec.empty(), "fault-injection spec names no fault kinds");
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? spec : spec.substr(0, comma));
    if (!item.empty()) {
      if (item == "all") {
        for (std::size_t k = 0; k < kFaultKindCount; ++k) {
          plan.arm(static_cast<FaultKind>(k));
        }
      } else {
        bool found = false;
        for (std::size_t k = 0; k < kFaultKindCount; ++k) {
          if (item == kKindNames[k]) {
            plan.arm(static_cast<FaultKind>(k));
            found = true;
            break;
          }
        }
        check(found, "unknown fault kind '" + std::string(item) +
                         "' (want eta-flip, factor-perturb, ftran-nan, "
                         "skip-refactor, stale-devex, or all)");
      }
    }
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  check(plan.any(), "fault-injection spec names no fault kinds");
  return plan;
}

std::string FaultPlan::spec() const {
  std::string out;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (!armed[k]) continue;
    if (!out.empty()) out += ',';
    out += kKindNames[k];
  }
  if (out.empty()) return out;
  out += '@';
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), rate,
                    std::chars_format::general, 17);
  check(ec == std::errc{}, "fault rate formatting failed");
  out.append(buffer, end);
  return out;
}

}  // namespace setsched::lp
