// Sparse revised simplex with warm starting — substrate and primal loop.
//
// The problem is held in the standard computational form
//   min  c^T x   s.t.  A x + s = b,   l <= (x, s) <= u
// where one logical column s_r per row absorbs the row sense
// (<=: s in [0, inf),  >=: s in (-inf, 0],  =: s fixed at 0). Structural
// columns live in a CSC copy gathered once from the Model; logical columns
// are implicit unit vectors. The basis matrix is kept as a sparse LU
// factorization (left-looking elimination with partial pivoting) plus a
// product-form eta file that absorbs basis changes between periodic
// refactorizations. Primal feasibility is reached by minimizing the sum of
// primal infeasibilities of the current basis ("composite" phase 1) — there
// are no artificial columns, so a warm-started basis that is only slightly
// infeasible after a re-parameterization (the T-search, column generation)
// is repaired in a handful of pivots instead of a full cold phase 1.
//
// Since PR 5 the solver has a second engine, the bounded-variable dual
// simplex in dual.cpp: whenever the starting basis is primal-infeasible but
// dual-feasible — exactly the state of a warm basis after an rhs/bound
// mutation — run() re-optimizes dually instead of running phase 1 at all.
// Primal pricing is selectable (SimplexOptions::pricing): candidate-list
// partial pricing over raw reduced costs, or Devex reference-framework
// pricing shared with the dual loop via lp/pricing.h.

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "lp/revised_impl.h"
#include "lp/simplex.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched::lp {

namespace internal {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = SIZE_MAX;
}  // namespace

SparseColumns SparseColumns::gather(const Model& model) {
  const std::size_t nstruct = model.num_variables();
  const std::size_t nrows = model.num_constraints();
  SparseColumns csc;
  std::vector<std::size_t> count(nstruct, 0);
  for (std::size_t r = 0; r < nrows; ++r) {
    for (const Entry& e : model.row(r)) ++count[e.col];
  }
  csc.start.assign(nstruct + 1, 0);
  for (std::size_t j = 0; j < nstruct; ++j) {
    csc.start[j + 1] = csc.start[j] + count[j];
  }
  csc.row.resize(csc.start[nstruct]);
  csc.value.resize(csc.start[nstruct]);
  std::vector<std::size_t> cursor(csc.start.begin(), csc.start.end() - 1);
  for (std::size_t r = 0; r < nrows; ++r) {
    for (const Entry& e : model.row(r)) {
      csc.row[cursor[e.col]] = r;
      csc.value[cursor[e.col]] = e.value;
      ++cursor[e.col];
    }
  }
  return csc;
}

void RevisedSolver::build() {
  nrows_ = model_.num_constraints();
  nstruct_ = model_.num_variables();
  ncols_ = nstruct_ + nrows_;
  sign_ = model_.objective_sense() == Objective::kMinimize ? 1.0 : -1.0;

  cols_ = SparseColumns::gather(model_);

  lower_.resize(ncols_);
  upper_.resize(ncols_);
  cost2_.assign(ncols_, 0.0);
  rhs_.resize(nrows_);
  for (std::size_t j = 0; j < nstruct_; ++j) {
    lower_[j] = model_.lower(j);
    upper_[j] = model_.upper(j);
    cost2_[j] = sign_ * model_.objective(j);
  }
  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::size_t s = nstruct_ + r;
    switch (model_.row_sense(r)) {
      case Sense::kLessEqual:
        lower_[s] = 0.0;
        upper_[s] = kInf;
        break;
      case Sense::kGreaterEqual:
        lower_[s] = -kInf;
        upper_[s] = 0.0;
        break;
      case Sense::kEqual:
        lower_[s] = 0.0;
        upper_[s] = 0.0;
        break;
    }
    rhs_[r] = model_.rhs(r);
  }

  work_rows_.assign(nrows_, 0.0);
  z_.assign(nrows_, 0.0);
  alpha_.assign(nrows_, 0.0);
  cslot_.assign(nrows_, 0.0);
  y_.assign(nrows_, 0.0);
  rho_.assign(nrows_, 0.0);
  shunned_.assign(ncols_, 0);

  max_iterations_ = opt_.max_iterations != 0
                        ? opt_.max_iterations
                        : 400 * (nrows_ + ncols_) + 10000;
}

void RevisedSolver::reset_to_logical_basis() {
  basis_.resize(nrows_);
  for (std::size_t j = 0; j < ncols_; ++j) {
    state_[j] = std::isfinite(lower_[j]) ? VarStatus::kAtLower
                                         : VarStatus::kAtUpper;
  }
  for (std::size_t r = 0; r < nrows_; ++r) {
    basis_[r] = nstruct_ + r;
    state_[nstruct_ + r] = VarStatus::kBasic;
  }
}

void RevisedSolver::init_basis(const Basis* warm) {
  state_.assign(ncols_, VarStatus::kAtLower);
  if (warm == nullptr || warm->empty() ||
      warm->structurals.size() > nstruct_ ||
      warm->logicals.size() != nrows_) {
    reset_to_logical_basis();
    return;
  }

  // Adopt the snapshot. Columns appended since it was taken (column
  // generation) default to nonbasic; statuses then get coerced onto a finite
  // bound below.
  for (std::size_t j = 0; j < warm->structurals.size(); ++j) {
    state_[j] = warm->structurals[j];
  }
  for (std::size_t r = 0; r < nrows_; ++r) {
    state_[nstruct_ + r] = warm->logicals[r];
  }

  std::vector<std::size_t> basic;
  basic.reserve(nrows_);
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kBasic) basic.push_back(j);
  }
  // Size repair: demote surplus basics (latest columns first), pad a deficit
  // with nonbasic logicals. The factorization repairs singularity afterwards.
  while (basic.size() > nrows_) {
    state_[basic.back()] = VarStatus::kAtLower;
    basic.pop_back();
  }
  for (std::size_t r = 0; r < nrows_ && basic.size() < nrows_; ++r) {
    if (state_[nstruct_ + r] != VarStatus::kBasic) {
      state_[nstruct_ + r] = VarStatus::kBasic;
      basic.push_back(nstruct_ + r);
    }
  }
  if (basic.size() != nrows_) {  // degenerate snapshot beyond repair
    reset_to_logical_basis();
    return;
  }
  std::sort(basic.begin(), basic.end());
  basis_ = std::move(basic);

  // Nonbasic statuses must sit on a finite bound.
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kAtLower && !std::isfinite(lower_[j])) {
      state_[j] = VarStatus::kAtUpper;
    } else if (state_[j] == VarStatus::kAtUpper && !std::isfinite(upper_[j])) {
      state_[j] = VarStatus::kAtLower;
    }
  }
}

bool RevisedSolver::try_factorize() {
  lcols_.assign(nrows_, {});
  ucols_.assign(nrows_, {});
  udiag_.assign(nrows_, 0.0);
  rowof_.assign(nrows_, kNone);
  posof_.assign(nrows_, kNone);
  etas_.clear();

  // Eliminate thin columns first (unit logicals, then the 2-nonzero
  // dominance columns, ...): a cheap static approximation of Markowitz
  // ordering that keeps the fill-in an order of magnitude down on the
  // scheduling LPs.
  colperm_.resize(nrows_);
  for (std::size_t k = 0; k < nrows_; ++k) colperm_[k] = k;
  const auto col_nnz = [&](std::size_t slot) -> std::size_t {
    const std::size_t col = basis_[slot];
    if (col >= nstruct_) return 1;
    return cols_.start[col + 1] - cols_.start[col];
  };
  std::stable_sort(colperm_.begin(), colperm_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return col_nnz(a) < col_nnz(b);
                   });

  const double lu_tol = opt_.lu_pivot_floor();
  std::vector<double>& w = work_rows_;  // invariant: all zero on entry/exit
  std::vector<std::size_t> deficient;

  for (std::size_t k = 0; k < nrows_; ++k) {
    // Scatter the basis column eliminated at step k.
    const std::size_t col = basis_[colperm_[k]];
    if (col < nstruct_) {
      for (std::size_t t = cols_.start[col]; t < cols_.start[col + 1]; ++t) {
        w[cols_.row[t]] += cols_.value[t];
      }
    } else {
      w[col - nstruct_] += 1.0;
    }
    // Left-looking elimination against the pivots chosen so far.
    for (std::size_t t = 0; t < k; ++t) {
      if (rowof_[t] == kNone) continue;  // deficient earlier step
      const double ut = w[rowof_[t]];
      if (ut == 0.0) continue;
      ucols_[k].push_back({t, ut});
      for (const auto& [r, v] : lcols_[t]) w[r] -= v * ut;
    }
    // Partial pivoting over the rows not yet claimed.
    std::size_t pivot_row = kNone;
    double best = lu_tol;
    for (std::size_t r = 0; r < nrows_; ++r) {
      if (posof_[r] != kNone) continue;
      const double mag = std::abs(w[r]);
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (pivot_row == kNone) {
      deficient.push_back(k);
      ucols_[k].clear();
      std::fill(w.begin(), w.end(), 0.0);
      continue;
    }
    udiag_[k] = w[pivot_row];
    rowof_[k] = pivot_row;
    posof_[pivot_row] = k;
    for (std::size_t r = 0; r < nrows_; ++r) {
      if (posof_[r] != kNone || w[r] == 0.0) continue;
      lcols_[k].push_back({r, w[r] / udiag_[k]});
    }
    std::fill(w.begin(), w.end(), 0.0);
  }

  if (deficient.empty()) {
    // Fault site (lp/fault.h): one U diagonal perturbed by
    // 1 +/- kFactorPerturbScale per firing — the shape of a marginally
    // unstable pivot.
    if (injector_.armed() && injector_.fire(FaultKind::kFactorPerturb)) {
      udiag_[injector_.pick(nrows_)] *=
          1.0 + injector_.pick_sign() * kFactorPerturbScale;
    }
    return true;
  }

  // Repair: swap each dependent basis column for the logical of a distinct
  // unclaimed row (those logicals are provably nonbasic only in the common
  // case; when one is not, fall back to the always-valid all-logical basis).
  factor_repaired_ = true;
  std::vector<std::size_t> free_rows;
  for (std::size_t r = 0; r < nrows_; ++r) {
    if (posof_[r] == kNone && state_[nstruct_ + r] != VarStatus::kBasic) {
      free_rows.push_back(r);
    }
  }
  if (free_rows.size() < deficient.size()) {
    reset_to_logical_basis();
    return false;
  }
  for (std::size_t i = 0; i < deficient.size(); ++i) {
    const std::size_t slot = colperm_[deficient[i]];
    const std::size_t old = basis_[slot];
    state_[old] = std::isfinite(lower_[old]) ? VarStatus::kAtLower
                                             : VarStatus::kAtUpper;
    basis_[slot] = nstruct_ + free_rows[i];
    state_[basis_[slot]] = VarStatus::kBasic;
  }
  return false;
}

void RevisedSolver::factorize() {
  const obs::PhaseTimer timer(obs::Phase::kLpFactor);
  factor_repaired_ = false;
  for (std::size_t attempt = 0; attempt <= nrows_ + 1; ++attempt) {
    if (try_factorize()) return;
  }
  check(false, "revised simplex: basis repair did not converge");
}

void RevisedSolver::ftran(std::vector<double>& slots) {
  const obs::PhaseTimer timer(obs::Phase::kLpFtran);
  // Solve B z = work_rows_ into `slots` (position space); zeroes work_rows_.
  std::vector<double>& w = work_rows_;
  for (std::size_t k = 0; k < nrows_; ++k) {
    const double zk = w[rowof_[k]];
    z_[k] = zk;
    if (zk != 0.0) {
      for (const auto& [r, v] : lcols_[k]) w[r] -= v * zk;
    }
  }
  for (std::size_t k = 0; k < nrows_; ++k) w[rowof_[k]] = 0.0;
  for (std::size_t k = nrows_; k-- > 0;) {
    const double xk = z_[k] / udiag_[k];
    z_[k] = xk;
    if (xk != 0.0) {
      for (const auto& [q, v] : ucols_[k]) z_[q] -= v * xk;
    }
  }
  // The coefficient solved at elimination step k belongs to slot colperm_[k].
  for (std::size_t k = 0; k < nrows_; ++k) slots[colperm_[k]] = z_[k];
  for (const Eta& e : etas_) {
    const double xp = slots[e.slot] / e.pivot_value;
    if (xp != 0.0) {
      for (const auto& [q, v] : e.entries) slots[q] -= v * xp;
    }
    slots[e.slot] = xp;
  }
  // Fault site (lp/fault.h): a NaN dropped into one FTRAN result entry —
  // the shape of an uninitialized read or a 0/0 slipping through.
  if (injector_.armed() && injector_.fire(FaultKind::kFtranNan)) {
    slots[injector_.pick(slots.size())] =
        std::numeric_limits<double>::quiet_NaN();
  }
}

void RevisedSolver::btran(std::vector<double>& slots,
                          std::vector<double>& rows_out) {
  const obs::PhaseTimer timer(obs::Phase::kLpBtran);
  // Solve B^T y = `slots` (costs per slot); the result lands in `rows_out`.
  for (std::size_t i = etas_.size(); i-- > 0;) {
    const Eta& e = etas_[i];
    double acc = slots[e.slot];
    for (const auto& [q, v] : e.entries) acc -= v * slots[q];
    slots[e.slot] = acc / e.pivot_value;
  }
  for (std::size_t k = 0; k < nrows_; ++k) z_[k] = slots[colperm_[k]];
  for (std::size_t k = 0; k < nrows_; ++k) {
    double tk = z_[k];
    for (const auto& [q, v] : ucols_[k]) tk -= v * z_[q];
    z_[k] = tk / udiag_[k];
  }
  for (std::size_t k = nrows_; k-- > 0;) {
    double sk = z_[k];
    for (const auto& [r, v] : lcols_[k]) sk -= v * z_[posof_[r]];
    z_[k] = sk;
  }
  for (std::size_t k = 0; k < nrows_; ++k) rows_out[rowof_[k]] = z_[k];
}

void RevisedSolver::compute_basics() {
  std::vector<double>& w = work_rows_;
  for (std::size_t r = 0; r < nrows_; ++r) w[r] = rhs_[r];
  // Nonbasic logicals always sit at 0, so only structural columns contribute.
  for (std::size_t j = 0; j < nstruct_; ++j) {
    if (state_[j] == VarStatus::kBasic) continue;
    const double v = bound_value(j);
    if (v == 0.0) continue;
    for (std::size_t t = cols_.start[j]; t < cols_.start[j + 1]; ++t) {
      w[cols_.row[t]] -= cols_.value[t] * v;
    }
  }
  xb_.assign(nrows_, 0.0);
  ftran(xb_);
}

bool RevisedSolver::phase_one_costs() {
  total_infeas_ = 0.0;
  bool any = false;
  for (std::size_t k = 0; k < nrows_; ++k) {
    const std::size_t b = basis_[k];
    const double v = xb_[k];
    if (v < lower_[b] - opt_.feas_tol) {
      cslot_[k] = -1.0;
      total_infeas_ += lower_[b] - v;
      any = true;
    } else if (v > upper_[b] + opt_.feas_tol) {
      cslot_[k] = 1.0;
      total_infeas_ += v - upper_[b];
      any = true;
    } else {
      cslot_[k] = 0.0;
    }
  }
  if (!any) {
    for (std::size_t k = 0; k < nrows_; ++k) cslot_[k] = cost2_[basis_[k]];
  }
  return any;
}

double RevisedSolver::reduced_cost(std::size_t j, bool phase1) const {
  double d = phase1 ? 0.0 : cost2_[j];
  if (j < nstruct_) {
    for (std::size_t t = cols_.start[j]; t < cols_.start[j + 1]; ++t) {
      d -= cols_.value[t] * y_[cols_.row[t]];
    }
  } else {
    d -= y_[j - nstruct_];
  }
  return d;
}

std::size_t RevisedSolver::full_scan(bool phase1, bool bland) {
  candidates_.clear();
  const std::size_t list_size =
      std::max<std::size_t>(16, ncols_ / 8);
  std::vector<std::pair<double, std::size_t>> eligible;
  std::size_t best = kNone;
  double best_score = opt_.opt_tol;
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed
    if (shunned_[j]) continue;
    const double d = reduced_cost(j, phase1);
    double score = 0.0;
    if (state_[j] == VarStatus::kAtLower && d < -opt_.opt_tol) {
      score = -d;
    } else if (state_[j] == VarStatus::kAtUpper && d > opt_.opt_tol) {
      score = d;
    } else {
      continue;
    }
    if (bland) return j;  // first eligible index
    eligible.push_back({score, j});
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  if (eligible.size() > list_size) {
    std::nth_element(eligible.begin(), eligible.begin() + list_size,
                     eligible.end(), std::greater<>());
    eligible.resize(list_size);
  }
  candidates_.reserve(eligible.size());
  for (const auto& [score, j] : eligible) candidates_.push_back(j);
  return best;
}

std::size_t RevisedSolver::price_devex(bool phase1) {
  // Full Devex pricing pass: maximize d_j^2 / w_j over the eligible nonbasic
  // columns. Weights live in the reference framework established at the
  // last reset; an overflow re-anchors it.
  if (devex_cols_.size() != ncols_ || devex_cols_.overflowed()) {
    devex_cols_.reset(ncols_);
  }
  std::size_t best = kNone;
  double best_score = 0.0;
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed
    if (shunned_[j]) continue;
    const double d = reduced_cost(j, phase1);
    double violation = 0.0;
    if (state_[j] == VarStatus::kAtLower && d < -opt_.opt_tol) {
      violation = -d;
    } else if (state_[j] == VarStatus::kAtUpper && d > opt_.opt_tol) {
      violation = d;
    } else {
      continue;
    }
    const double score = devex_cols_.score(j, violation);
    if (best == kNone || score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

std::size_t RevisedSolver::price(bool phase1) {
  const obs::PhaseTimer timer(obs::Phase::kLpPricing);
  if (use_bland_) return full_scan(phase1, /*bland=*/true);
  if (opt_.pricing == SimplexPricing::kDevex) return price_devex(phase1);
  // Minor pass over the candidate list with fresh reduced costs; fall back
  // to a full pricing scan (which also refreshes the list) when it runs dry.
  std::size_t best = kNone;
  double best_score = opt_.opt_tol;
  std::size_t keep = 0;
  for (const std::size_t j : candidates_) {
    if (state_[j] == VarStatus::kBasic || shunned_[j]) continue;
    candidates_[keep++] = j;
    const double d = reduced_cost(j, phase1);
    double score = 0.0;
    if (state_[j] == VarStatus::kAtLower && d < -opt_.opt_tol) {
      score = -d;
    } else if (state_[j] == VarStatus::kAtUpper && d > opt_.opt_tol) {
      score = d;
    } else {
      continue;
    }
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  candidates_.resize(keep);
  if (best != kNone) return best;
  return full_scan(phase1, /*bland=*/false);
}

void RevisedSolver::devex_primal_update(std::size_t enter,
                                        std::size_t leave_slot) {
  // Pivot row via BTRAN: rho = B^-T e_{leave_slot}; the ratio of each
  // nonbasic column against the pivot element drives the Devex update. Runs
  // BEFORE the eta for this pivot is pushed, so rho is the pre-pivot row.
  const double pivot = alpha_[leave_slot];
  if (pivot == 0.0) return;
  std::fill(btran_scratch_.begin(), btran_scratch_.end(), 0.0);
  btran_scratch_[leave_slot] = 1.0;
  btran(btran_scratch_, rho_);

  const double w_enter = devex_cols_.weight(enter);
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarStatus::kBasic || j == enter) continue;
    if (lower_[j] == upper_[j]) continue;
    double a = 0.0;
    if (j < nstruct_) {
      for (std::size_t t = cols_.start[j]; t < cols_.start[j + 1]; ++t) {
        a += cols_.value[t] * rho_[cols_.row[t]];
      }
    } else {
      a = rho_[j - nstruct_];
    }
    if (a != 0.0) devex_cols_.update_neighbor(j, a / pivot, w_enter);
  }
  // The leaving variable becomes nonbasic and inherits the pivot weight.
  devex_cols_.update_pivot(basis_[leave_slot], w_enter, pivot);
}

Solution RevisedSolver::extract(SolveStatus status) {
  Solution sol;
  sol.status = status;
  sol.iterations = iterations_;
  sol.via_dual = via_dual_;
  sol.faults_injected = injector_.injected();

  // The basis snapshot is useful even for infeasible probes (the T-search
  // warm-starts the next probe from it), so fill it for every terminal
  // status except an iteration-limit bailout mid-flight.
  if (status == SolveStatus::kOptimal || status == SolveStatus::kInfeasible) {
    sol.basis.structurals.assign(state_.begin(), state_.begin() + nstruct_);
    sol.basis.logicals.assign(state_.begin() + nstruct_, state_.end());
  }
  if (status != SolveStatus::kOptimal) return sol;

  sol.x.resize(nstruct_);
  sol.basic.assign(nstruct_, false);
  for (std::size_t j = 0; j < nstruct_; ++j) {
    sol.x[j] = bound_value(j);
    sol.basic[j] = state_[j] == VarStatus::kBasic;
  }
  for (std::size_t k = 0; k < nrows_; ++k) {
    if (basis_[k] >= nstruct_) continue;
    double v = xb_[k];
    // Snap roundoff onto the box.
    const std::size_t b = basis_[k];
    if (v < lower_[b] && v > lower_[b] - opt_.feas_tol * 10) v = lower_[b];
    if (v > upper_[b] && v < upper_[b] + opt_.feas_tol * 10) v = upper_[b];
    sol.x[b] = v;
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < nstruct_; ++j) {
    sol.objective += model_.objective(j) * sol.x[j];
  }
  // Duals from the last phase-2 BTRAN, converted to the user's sense.
  sol.duals.resize(nrows_);
  for (std::size_t r = 0; r < nrows_; ++r) sol.duals[r] = sign_ * y_[r];
  return sol;
}

Solution RevisedSolver::run_primal() {
  while (true) {
    if (iterations_ >= max_iterations_) {
      return extract(SolveStatus::kIterationLimit);
    }

    const bool phase1 = phase_one_costs();
    btran_scratch_ = cslot_;
    btran(btran_scratch_, y_);

    const std::size_t enter = price(phase1);
    if (enter == kNone) {
      if (!phase1) return extract(SolveStatus::kOptimal);
      if (total_infeas_ > infeas_tol()) {
        return extract(SolveStatus::kInfeasible);
      }
      // Residual infeasibility is within the aggregate tolerance: snap the
      // stragglers onto their bounds and continue as phase 2. One bound at a
      // time (a basic var violates at most one, and the other may be
      // infinite, so std::clamp's lo <= hi precondition need not hold).
      for (std::size_t k = 0; k < nrows_; ++k) {
        const std::size_t b = basis_[k];
        if (xb_[k] < lower_[b]) xb_[k] = lower_[b];
        if (xb_[k] > upper_[b]) xb_[k] = upper_[b];
      }
      continue;
    }

    // FTRAN the entering column.
    if (enter < nstruct_) {
      for (std::size_t t = cols_.start[enter]; t < cols_.start[enter + 1];
           ++t) {
        work_rows_[cols_.row[t]] += cols_.value[t];
      }
    } else {
      work_rows_[enter - nstruct_] += 1.0;
    }
    ftran(alpha_);

    const bool from_lower = state_[enter] == VarStatus::kAtLower;
    const double dir = from_lower ? 1.0 : -1.0;

    // Bounded-variable ratio test, phase-aware. In phase 2 every basic is
    // feasible and blocks at the bound it moves toward. In phase 1 the
    // objective (total infeasibility) is piecewise linear in the step: each
    // basic variable reaching a bound is a kink where the slope changes, and
    // the classic long-step rule walks through kinks while the slope stays
    // improving — an infeasible basic turning feasible removes its
    // unit-rate gain, a feasible basic pushed past its bound adds a
    // unit-rate loss — taking one long step where the textbook rule would
    // take many degenerate ones.
    std::size_t leave_slot = kNone;
    double row_t = kInf;
    bool leave_to_upper = false;
    if (!phase1) {
      double leave_mag = 0.0;
      for (std::size_t k = 0; k < nrows_; ++k) {
        const double a = dir * alpha_[k];
        if (std::abs(a) < opt_.pivot_tol) continue;
        const std::size_t b = basis_[k];
        const double v = xb_[k];
        const double target = a > 0.0 ? lower_[b] : upper_[b];
        if (!std::isfinite(target)) continue;
        double t = (a > 0.0 ? v - target : target - v) / std::abs(a);
        t = std::max(t, 0.0);
        const double mag = std::abs(a);
        bool better;
        if (leave_slot == kNone) {
          better = t < row_t;
        } else if (t < row_t - opt_.ratio_tie_tol()) {
          better = true;
        } else if (t <= row_t + opt_.ratio_tie_tol()) {
          // Tie-break: Bland-friendly smallest column when stalling, biggest
          // pivot magnitude otherwise (numerical stability).
          better =
              use_bland_ ? basis_[k] < basis_[leave_slot] : mag > leave_mag;
        } else {
          better = false;
        }
        if (better) {
          leave_slot = k;
          row_t = t;
          leave_mag = mag;
          leave_to_upper = a > 0.0 ? false : true;
        }
      }
    } else {
      // Kinks of the phase-1 objective along the entering direction.
      std::vector<Kink>& kinks = kinks_;
      kinks.clear();
      for (std::size_t k = 0; k < nrows_; ++k) {
        const double a = dir * alpha_[k];
        if (std::abs(a) < opt_.pivot_tol) continue;
        const std::size_t b = basis_[k];
        const double v = xb_[k];
        const bool below = v < lower_[b] - opt_.feas_tol;
        const bool above = v > upper_[b] + opt_.feas_tol;
        const double mag = std::abs(a);
        if (a > 0.0) {  // basic decreases
          if (below) continue;  // moving further below: slope already paid
          if (above && std::isfinite(upper_[b])) {
            // Turns feasible at its upper bound, could then continue down to
            // its lower bound (second kink).
            kinks.push_back({(v - upper_[b]) / a, mag, k, true});
            if (std::isfinite(lower_[b])) {
              kinks.push_back({(v - lower_[b]) / a, mag, k, false});
            }
          } else if (!above && std::isfinite(lower_[b])) {
            kinks.push_back({std::max(0.0, (v - lower_[b]) / a), mag, k,
                             false});
          }
        } else {  // basic increases
          if (above) continue;
          if (below && std::isfinite(lower_[b])) {
            kinks.push_back({(lower_[b] - v) / mag, mag, k, false});
            if (std::isfinite(upper_[b])) {
              kinks.push_back({(upper_[b] - v) / mag, mag, k, true});
            }
          } else if (!below && std::isfinite(upper_[b])) {
            kinks.push_back({std::max(0.0, (upper_[b] - v) / mag), mag, k,
                             true});
          }
        }
      }
      std::sort(kinks.begin(), kinks.end(),
                [](const Kink& a, const Kink& b) { return a.t < b.t; });
      // The improvement rate starts at |d_enter| >= the sum of the
      // unit-rate gains from the infeasible basics this direction helps;
      // walk kinks until it is used up. The kink that exhausts the rate
      // yields the leaving variable.
      double slope = std::abs(reduced_cost(enter, /*phase1=*/true));
      for (const Kink& kink : kinks) {
        slope -= kink.slope_drop;
        leave_slot = kink.slot;
        row_t = kink.t;
        leave_to_upper = kink.to_upper;
        if (slope <= opt_.opt_tol) break;
      }
    }

    const double flip_t =
        std::isfinite(upper_[enter]) && std::isfinite(lower_[enter])
            ? upper_[enter] - lower_[enter]
            : kInf;
    if (leave_slot == kNone && !std::isfinite(flip_t)) {
      if (!phase1) return extract(SolveStatus::kUnbounded);
      // A phase-1 improving direction cannot truly be unbounded (the
      // objective is bounded below by 0); the blocking pivot fell under the
      // tolerance. Shun the column and re-price.
      shunned_[enter] = 1;
      any_shunned_ = true;
      continue;
    }

    const bool do_flip = leave_slot == kNone || flip_t < row_t;
    const double step = do_flip ? flip_t : row_t;

    ++iterations_;
    if (step <= opt_.feas_tol) {
      ++stall_count_;
      if (stall_count_ > 2 * (nrows_ + ncols_)) use_bland_ = true;
    } else {
      stall_count_ = 0;
    }

    if (step != 0.0) {
      for (std::size_t k = 0; k < nrows_; ++k) {
        if (alpha_[k] != 0.0) xb_[k] -= dir * alpha_[k] * step;
      }
    }

    if (do_flip) {
      state_[enter] =
          from_lower ? VarStatus::kAtUpper : VarStatus::kAtLower;
      std::fill(alpha_.begin(), alpha_.end(), 0.0);
      continue;
    }

    // Devex weight maintenance needs the pre-pivot row; run it before the
    // eta for this pivot lands. kStaleDevex drops one update when it fires
    // (stale weights cost iterations, never correctness).
    if (opt_.pricing == SimplexPricing::kDevex && !use_bland_ &&
        !injector_.fire(FaultKind::kStaleDevex)) {
      devex_primal_update(enter, leave_slot);
    }

    // Basis change.
    const std::size_t leaving = basis_[leave_slot];
    state_[leaving] =
        leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    basis_[leave_slot] = enter;
    state_[enter] = VarStatus::kBasic;
    xb_[leave_slot] =
        from_lower ? lower_[enter] + step : upper_[enter] - step;
    if (any_shunned_) {
      std::fill(shunned_.begin(), shunned_.end(), 0);
      any_shunned_ = false;
    }

    Eta eta;
    eta.slot = leave_slot;
    eta.pivot_value = alpha_[leave_slot];
    for (std::size_t k = 0; k < nrows_; ++k) {
      if (k != leave_slot && alpha_[k] != 0.0) {
        eta.entries.push_back({k, alpha_[k]});
      }
      alpha_[k] = 0.0;
    }
    etas_.push_back(std::move(eta));
    maybe_flip_eta(etas_.back());

    // kSkipRefactor suppresses one periodic trigger: the eta file keeps
    // growing and roundoff accumulates — exactly the failure a forgotten
    // refactorization causes.
    if (etas_.size() >= std::max<std::size_t>(1, opt_.refactor_interval) &&
        !injector_.fire(FaultKind::kSkipRefactor)) {
      factorize();
      compute_basics();
    }
  }
}

Solution RevisedSolver::run() {
  build();
  init_basis(opt_.warm_start);
  factorize();
  compute_basics();
  // (Devex column weights are lazily initialized by price_devex; candidate
  // pricing never touches them.)

  // Dual prologue: a warm basis that turned primal-infeasible under a
  // re-parameterization but kept dual feasibility (rhs/bound mutations never
  // disturb reduced costs) is re-optimized by the dual simplex instead of
  // being repaired by phase 1. kDual makes the dual loop the engine of
  // choice for every dual-feasible start (the min-makespan relaxations of
  // src/exact start dual-feasible from ANY basis: all costs are >= 0).
  // Explicit kRevised opts OUT: it stays the primal-only PR 3 path, which
  // before/after sweeps (--lp=revised) use as the pre-dual baseline.
  const bool prefer_dual =
      opt_.algorithm == SimplexAlgorithm::kDual ||
      (opt_.algorithm == SimplexAlgorithm::kAuto &&
       opt_.warm_start != nullptr && !opt_.warm_start->empty());
  if (prefer_dual) {
    bool primal_infeasible = false;
    for (std::size_t k = 0; k < nrows_ && !primal_infeasible; ++k) {
      const std::size_t b = basis_[k];
      primal_infeasible = xb_[k] < lower_[b] - opt_.feas_tol ||
                          xb_[k] > upper_[b] + opt_.feas_tol;
    }
    const bool worth_it =
        primal_infeasible || opt_.algorithm == SimplexAlgorithm::kDual;
    if (worth_it && dual_feasible(opt_.dual_feas_floor())) {
      const obs::PhaseTimer dual_timer(obs::Phase::kLpDual);
      switch (run_dual()) {
        case DualOutcome::kOptimal:
          via_dual_ = true;
          break;  // the primal loop below confirms and extracts
        case DualOutcome::kInfeasible:
          via_dual_ = true;
          return extract(SolveStatus::kInfeasible);
        case DualOutcome::kIterationLimit:
          return extract(SolveStatus::kIterationLimit);
        case DualOutcome::kFallback:
          break;  // numerics bailed out: the primal loop takes over
      }
    }
  }

  const obs::PhaseTimer primal_timer(obs::Phase::kLpPrimal);
  return run_primal();
}

}  // namespace internal

Solution solve_revised(const Model& model, const SimplexOptions& options) {
  check(model.num_constraints() > 0, "LP needs at least one constraint");
  check(model.num_variables() > 0, "LP needs at least one variable");
  const obs::PhaseTimer timer(obs::Phase::kLpSolve);
  obs::TraceSpan span("lp_solve", "lp");
  internal::RevisedSolver solver(model, options);
  Solution sol = solver.run();
  span.set_arg("iterations", static_cast<double>(sol.iterations));
  return sol;
}

}  // namespace setsched::lp
