#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/matrix.h"
#include "lp/guard.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace setsched::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarState : std::uint8_t { kBasic, kAtLower, kAtUpper };

/// Internal solver state. Column layout: structural | slack | artificial.
/// Structural columns are shifted so every lower bound is 0. Rows are
/// normalized to rhs >= 0 before choosing the initial basis.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {}

  Solution run();

 private:
  void build();
  bool phase(bool phase_one, Solution& out);
  void drive_out_artificials();
  void pivot(std::size_t row, std::size_t col);
  void rebuild_cost_row(const std::vector<double>& costs);
  [[nodiscard]] Solution extract(SolveStatus status) const;

  const Model& model_;
  SimplexOptions opt_;

  std::size_t nrows_ = 0;
  std::size_t nstruct_ = 0;  // structural columns
  std::size_t ncols_ = 0;    // structural + slack + artificial

  Matrix<double> t_;                   // nrows x ncols, holds B^-1 A
  std::vector<double> basic_value_;    // value of the basic var per row
  std::vector<std::size_t> basis_;     // column basic in each row
  std::vector<VarState> state_;        // per column
  std::vector<double> ub_;             // per column (lower bounds are 0)
  std::vector<double> shift_;          // original lower bound per structural
  std::vector<double> phase2_cost_;    // per column (internal minimize)
  std::vector<double> cost_row_;       // current reduced costs
  std::vector<std::size_t> row_unit_col_;  // slack/artificial giving e_r
  std::vector<double> row_unit_sign_;
  std::vector<std::size_t> artificial_cols_;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
  bool use_bland_ = false;
  std::size_t stall_count_ = 0;
  double sign_ = 1.0;  // +1 minimize, -1 maximize (internal minimize)

  // Audit-mode snapshot of the initial (normalized) system.
  Matrix<double> a0_;
  std::vector<double> b0_;

  /// Recovers the value of every column from the solver state.
  [[nodiscard]] std::vector<double> current_values() const {
    std::vector<double> value(ncols_, 0.0);
    for (std::size_t j = 0; j < ncols_; ++j) {
      if (state_[j] == VarState::kAtUpper) value[j] = ub_[j];
    }
    for (std::size_t r = 0; r < nrows_; ++r) value[basis_[r]] = basic_value_[r];
    return value;
  }

  /// Verifies A0 * value == b0 and bound feasibility (audit mode). The
  /// slacks are the shared named tolerances of SimplexOptions: audit_slack()
  /// on bounds, with the 10x row cushion on the row equations (rows
  /// accumulate a term per column).
  void audit_check(const char* where) const {
    const auto value = current_values();
    const double slack = opt_.audit_slack();
    for (std::size_t j = 0; j < ncols_; ++j) {
      check(value[j] >= -slack, std::string("audit(") + where +
                                    "): variable below lower bound");
      if (std::isfinite(ub_[j])) {
        check(value[j] <= ub_[j] + slack, std::string("audit(") + where +
                                              "): variable above upper bound");
      }
    }
    for (std::size_t r = 0; r < nrows_; ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < ncols_; ++j) lhs += a0_(r, j) * value[j];
      check(std::abs(lhs - b0_[r]) < slack * 10.0,
            std::string("audit(") + where + "): row equation violated");
    }
  }
};

void Tableau::build() {
  nrows_ = model_.num_constraints();
  nstruct_ = model_.num_variables();
  sign_ = model_.objective_sense() == Objective::kMinimize ? 1.0 : -1.0;

  // Column bookkeeping for structural variables (shift lower bounds to 0).
  shift_.resize(nstruct_);
  ub_.assign(nstruct_, kInf);
  for (std::size_t j = 0; j < nstruct_; ++j) {
    shift_[j] = model_.lower(j);
    const double u = model_.upper(j);
    ub_[j] = std::isfinite(u) ? u - shift_[j] : kInf;
  }

  // One slack per inequality row; artificials are assigned after we know the
  // normalized row signs. First pass: count slacks.
  std::vector<std::size_t> slack_col(nrows_, SIZE_MAX);
  std::size_t next = nstruct_;
  for (std::size_t r = 0; r < nrows_; ++r) {
    if (model_.row_sense(r) != Sense::kEqual) slack_col[r] = next++;
  }
  // Artificial for every row (unused ones stay fixed at 0 and never enter).
  artificial_cols_.resize(nrows_);
  for (std::size_t r = 0; r < nrows_; ++r) artificial_cols_[r] = next++;
  ncols_ = next;

  ub_.resize(ncols_, kInf);
  t_ = Matrix<double>(nrows_, ncols_, 0.0);
  basic_value_.assign(nrows_, 0.0);
  basis_.assign(nrows_, SIZE_MAX);
  state_.assign(ncols_, VarState::kAtLower);
  row_unit_col_.assign(nrows_, SIZE_MAX);
  row_unit_sign_.assign(nrows_, 1.0);

  for (std::size_t r = 0; r < nrows_; ++r) {
    // rhs adjusted for the lower-bound shift of structural variables.
    double b = model_.rhs(r);
    for (const Entry& e : model_.row(r)) b -= e.value * shift_[e.col];

    double slack_sign = 0.0;
    switch (model_.row_sense(r)) {
      case Sense::kLessEqual:
        slack_sign = 1.0;
        break;
      case Sense::kGreaterEqual:
        slack_sign = -1.0;
        break;
      case Sense::kEqual:
        slack_sign = 0.0;
        break;
    }

    const double row_sign = b < 0.0 ? -1.0 : 1.0;
    b *= row_sign;
    for (const Entry& e : model_.row(r)) {
      t_(r, e.col) += row_sign * e.value;
    }
    if (slack_col[r] != SIZE_MAX) {
      t_(r, slack_col[r]) = row_sign * slack_sign;
    }
    t_(r, artificial_cols_[r]) = 1.0;

    // Initial basis: the slack if its coefficient is +1, else the artificial.
    if (slack_col[r] != SIZE_MAX && row_sign * slack_sign > 0.0) {
      basis_[r] = slack_col[r];
      ub_[artificial_cols_[r]] = 0.0;  // artificial never needed
    } else {
      basis_[r] = artificial_cols_[r];
    }
    state_[basis_[r]] = VarState::kBasic;
    basic_value_[r] = b;

    // Unit column for dual recovery: prefer the artificial (exact identity).
    row_unit_col_[r] = artificial_cols_[r];
    row_unit_sign_[r] = row_sign;  // A_art = row_sign * e_r in original rows
  }

  // Internal phase-2 costs (minimization).
  phase2_cost_.assign(ncols_, 0.0);
  for (std::size_t j = 0; j < nstruct_; ++j) {
    phase2_cost_[j] = sign_ * model_.objective(j);
  }

  max_iterations_ = opt_.max_iterations != 0
                        ? opt_.max_iterations
                        : 400 * (nrows_ + ncols_) + 10000;

  if (opt_.audit) {
    a0_ = t_;  // t_ holds the untouched normalized system before any pivot
    b0_ = basic_value_;
    audit_check("build");
  }
}

void Tableau::rebuild_cost_row(const std::vector<double>& costs) {
  cost_row_ = costs;
  // d_j = c_j - c_B^T (B^-1 A_j); subtract each basic row scaled by c_B.
  for (std::size_t r = 0; r < nrows_; ++r) {
    const double cb = costs[basis_[r]];
    if (cb == 0.0) continue;
    const double* row = t_.row(r);
    for (std::size_t j = 0; j < ncols_; ++j) cost_row_[j] -= cb * row[j];
  }
  // Basic columns have exact zero reduced cost by construction.
  for (std::size_t r = 0; r < nrows_; ++r) cost_row_[basis_[r]] = 0.0;
}

void Tableau::pivot(std::size_t prow, std::size_t pcol) {
  double* piv_row = t_.row(prow);
  const double piv = piv_row[pcol];
  const double inv = 1.0 / piv;
  for (std::size_t j = 0; j < ncols_; ++j) piv_row[j] *= inv;
  piv_row[pcol] = 1.0;  // kill roundoff

  for (std::size_t r = 0; r < nrows_; ++r) {
    if (r == prow) continue;
    double* row = t_.row(r);
    const double factor = row[pcol];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < ncols_; ++j) row[j] -= factor * piv_row[j];
    row[pcol] = 0.0;
  }
  {
    const double factor = cost_row_[pcol];
    if (factor != 0.0) {
      for (std::size_t j = 0; j < ncols_; ++j) {
        cost_row_[j] -= factor * piv_row[j];
      }
      cost_row_[pcol] = 0.0;
    }
  }
}

bool Tableau::phase(bool phase_one, Solution& out) {
  // Returns false if the overall solve should stop (status set in `out`).
  while (true) {
    if (iterations_ >= max_iterations_) {
      out = extract(SolveStatus::kIterationLimit);
      return false;
    }

    // --- pricing ---
    std::size_t enter = SIZE_MAX;
    double best_score = opt_.opt_tol;
    for (std::size_t j = 0; j < ncols_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (ub_[j] == 0.0) continue;  // fixed (disabled artificials)
      const double d = cost_row_[j];
      double score = 0.0;
      if (state_[j] == VarState::kAtLower && d < -opt_.opt_tol) {
        score = -d;
      } else if (state_[j] == VarState::kAtUpper && d > opt_.opt_tol) {
        score = d;
      } else {
        continue;
      }
      if (use_bland_) {
        enter = j;  // first eligible index
        break;
      }
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == SIZE_MAX) return true;  // phase optimal

    const bool from_lower = state_[enter] == VarState::kAtLower;
    // Moving the entering variable by step t >= 0 changes each basic value
    // by -dir * t_(r, enter) * t.
    const double dir = from_lower ? 1.0 : -1.0;

    // --- ratio test over basic variables ---
    double row_t = kInf;
    std::size_t leave_row = SIZE_MAX;
    bool leave_to_upper = false;
    for (std::size_t r = 0; r < nrows_; ++r) {
      const double a = dir * t_(r, enter);
      if (std::abs(a) < opt_.pivot_tol) continue;
      double t;
      bool to_upper;
      if (a > 0.0) {
        // basic decreases, hits 0
        t = basic_value_[r] / a;
        to_upper = false;
      } else {
        // basic increases, hits its upper bound (if finite)
        const double u = ub_[basis_[r]];
        if (!std::isfinite(u)) continue;
        t = (u - basic_value_[r]) / (-a);
        to_upper = true;
      }
      t = std::max(t, 0.0);
      const bool better =
          t < row_t - opt_.ratio_tie_tol() ||
          (t <= row_t + opt_.ratio_tie_tol() && leave_row != SIZE_MAX &&
           basis_[r] < basis_[leave_row]);  // Bland-friendly tie-break
      if (leave_row == SIZE_MAX ? t < row_t : better) {
        row_t = t;
        leave_row = r;
        leave_to_upper = to_upper;
      }
    }

    const double flip_t = ub_[enter];  // distance to the opposite bound
    if (leave_row == SIZE_MAX && !std::isfinite(flip_t)) {
      out = extract(phase_one ? SolveStatus::kInfeasible
                              : SolveStatus::kUnbounded);
      return false;
    }

    const bool do_flip = leave_row == SIZE_MAX || flip_t < row_t;
    const double step = do_flip ? flip_t : row_t;

    ++iterations_;
    if (step <= opt_.feas_tol) {
      ++stall_count_;
      if (stall_count_ > 2 * (nrows_ + ncols_)) use_bland_ = true;
    } else {
      stall_count_ = 0;
    }

    // --- apply step to the current basic values (pre-pivot column) ---
    for (std::size_t r = 0; r < nrows_; ++r) {
      basic_value_[r] -= dir * t_(r, enter) * step;
      if (basic_value_[r] < 0.0 && basic_value_[r] > -opt_.feas_tol) {
        basic_value_[r] = 0.0;  // clamp roundoff
      }
    }

    if (do_flip) {
      state_[enter] = from_lower ? VarState::kAtUpper : VarState::kAtLower;
      if (opt_.audit) audit_check("flip");
      continue;
    }

    // Basis change.
    const std::size_t leaving = basis_[leave_row];
    state_[leaving] = leave_to_upper ? VarState::kAtUpper : VarState::kAtLower;
    basis_[leave_row] = enter;
    state_[enter] = VarState::kBasic;
    basic_value_[leave_row] = from_lower ? step : ub_[enter] - step;
    pivot(leave_row, enter);
    if (opt_.audit) audit_check("pivot");
  }
}

void Tableau::drive_out_artificials() {
  // Artificial columns form the tail block of the tableau. Phase 1 ended
  // with every basic artificial at value ~0 (within tolerance); we snap the
  // residual to exactly 0 and perform degenerate pivots in which the
  // entering variable keeps its current value (0 if at lower bound, u if at
  // upper bound) — the basis is relabeled, no variable moves.
  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::size_t b = basis_[r];
    if (b < artificial_cols_.front()) continue;
    basic_value_[r] = 0.0;  // snap the ~0 artificial residual

    // Pick the non-artificial nonbasic column with the largest pivot.
    std::size_t col = SIZE_MAX;
    double best_mag = opt_.pivot_tol * 10;
    for (std::size_t j = 0; j < artificial_cols_.front(); ++j) {
      if (state_[j] == VarState::kBasic) continue;
      const double mag = std::abs(t_(r, j));
      if (mag > best_mag) {
        best_mag = mag;
        col = j;
      }
    }
    if (col != SIZE_MAX) {
      const double entering_value =
          state_[col] == VarState::kAtUpper ? ub_[col] : 0.0;
      const std::size_t leaving = basis_[r];
      state_[leaving] = VarState::kAtLower;
      basis_[r] = col;
      state_[col] = VarState::kBasic;
      pivot(r, col);
      basic_value_[r] = entering_value;
    }
    // Otherwise the row is redundant; the artificial stays basic at 0.
  }
  // No artificial may ever re-enter.
  for (const std::size_t a : artificial_cols_) {
    if (state_[a] != VarState::kBasic) ub_[a] = 0.0;
  }
  if (opt_.audit) audit_check("drive_out");
}

Solution Tableau::extract(SolveStatus status) const {
  Solution sol;
  sol.status = status;
  sol.iterations = iterations_;
  if (status != SolveStatus::kOptimal) return sol;

  std::vector<double> value(ncols_, 0.0);
  for (std::size_t j = 0; j < ncols_; ++j) {
    if (state_[j] == VarState::kAtUpper) value[j] = ub_[j];
  }
  for (std::size_t r = 0; r < nrows_; ++r) value[basis_[r]] = basic_value_[r];

  sol.x.resize(nstruct_);
  sol.basic.assign(nstruct_, false);
  for (std::size_t j = 0; j < nstruct_; ++j) {
    sol.x[j] = value[j] + shift_[j];
    sol.basic[j] = state_[j] == VarState::kBasic;
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < nstruct_; ++j) {
    sol.objective += model_.objective(j) * sol.x[j];
  }

  // Duals from the unit (artificial) columns: the final cost row holds
  //   d_a = c_a - y_int^T (row_sign * e_r)  with c_a = 0
  // => y_int_r = -row_sign * d_a ; convert to the user's sense.
  sol.duals.resize(nrows_);
  for (std::size_t r = 0; r < nrows_; ++r) {
    const double d = cost_row_[row_unit_col_[r]];
    const double y_internal = -row_unit_sign_[r] * d;
    sol.duals[r] = sign_ * y_internal;
  }
  return sol;
}

Solution Tableau::run() {
  build();

  Solution out;
  // Phase 1: minimize the sum of artificials (those that started basic).
  bool need_phase1 = false;
  std::vector<double> phase1_cost(ncols_, 0.0);
  for (std::size_t r = 0; r < nrows_; ++r) {
    if (basis_[r] == artificial_cols_[r]) {
      phase1_cost[artificial_cols_[r]] = 1.0;
      if (basic_value_[r] > opt_.feas_tol) need_phase1 = true;
    }
  }
  if (need_phase1) {
    rebuild_cost_row(phase1_cost);
    if (!phase(/*phase_one=*/true, out)) return out;
    double infeas = 0.0;
    for (std::size_t r = 0; r < nrows_; ++r) {
      if (phase1_cost[basis_[r]] > 0.0) infeas += basic_value_[r];
    }
    if (infeas > opt_.feas_tol * std::max<double>(1.0, static_cast<double>(nrows_))) {
      return extract(SolveStatus::kInfeasible);
    }
    drive_out_artificials();
  } else {
    // Disable artificials that never served.
    for (const std::size_t a : artificial_cols_) {
      if (state_[a] != VarState::kBasic) ub_[a] = 0.0;
    }
  }

  use_bland_ = false;
  stall_count_ = 0;
  rebuild_cost_row(phase2_cost_);
  if (!phase(/*phase_one=*/false, out)) return out;
  return extract(SolveStatus::kOptimal);
}

}  // namespace

Solution solve_tableau(const Model& model, const SimplexOptions& options) {
  check(model.num_constraints() > 0, "LP needs at least one constraint");
  check(model.num_variables() > 0, "LP needs at least one variable");
  const obs::PhaseTimer timer(obs::Phase::kLpSolve);
  obs::TraceSpan span("lp_solve", "lp");
  Tableau tableau(model, options);
  Solution sol = tableau.run();
  span.set_arg("iterations", static_cast<double>(sol.iterations));
  return sol;
}

namespace {

Solution dispatch(const Model& model, const SimplexOptions& options) {
  switch (options.algorithm) {
    case SimplexAlgorithm::kTableau:
      return solve_tableau(model, options);
    case SimplexAlgorithm::kRevised:
    case SimplexAlgorithm::kDual:
      // Both are the sparse revised solver; kDual additionally prefers the
      // dual loop for every dual-feasible start (solve_revised reads
      // options.algorithm).
      return solve_revised(model, options);
    case SimplexAlgorithm::kAuto:
      break;
  }
  // Audit mode instruments the dense tableau (the reference oracle); every
  // other automatic solve takes the sparse revised path (which re-optimizes
  // warm primal-infeasible/dual-feasible bases with the dual simplex).
  if (options.audit) return solve_tableau(model, options);
  return solve_revised(model, options);
}

/// Guarded solve: audit the primary answer, and on a contested verdict walk
/// the recovery escalation ladder — refactorize-and-warm-re-solve from the
/// contested basis, then a cold solve, then the audited dense tableau
/// oracle. Recovery solves run fault-free: injected faults model transient
/// corruption, and the ladder's job is to clear it, not re-roll the dice.
Solution solve_guarded(const Model& model, const SimplexOptions& options) {
  Solution sol = dispatch(model, options);
  const AuditReport primary = audit_solution(model, sol, options);
  sol.audit_verdict = primary.verdict;
  if (!sol.audit_contested()) return sol;

  // The dense tableau is this ladder's oracle; a contested tableau solve has
  // nowhere to escalate, so hand the verdict straight to the caller (which
  // demotes the answer instead of acting on it).
  if (options.algorithm == SimplexAlgorithm::kTableau) {
    sol.audits_suspect = 1;
    return sol;
  }

  std::size_t audits_suspect = 1;
  std::size_t iterations = sol.iterations;
  const std::size_t faults = sol.faults_injected;
  obs::emit_instant("lp_audit_suspect", "lp", "complaint", primary.complaint);

  SimplexOptions retry = options;
  retry.guard = false;
  retry.fault_plan = nullptr;

  // Rungs 1 and 2. Every revised solve refactorizes on entry, so adopting
  // the contested end basis re-derives all numerics from the model data
  // (rung 1); the cold solve additionally discards the basis itself
  // (rung 2).
  const Basis warm = sol.basis;
  for (int rung = 1; rung <= 2; ++rung) {
    if (rung == 1) {
      if (warm.empty()) continue;
      retry.warm_start = &warm;
    } else {
      retry.warm_start = nullptr;
    }
    Solution again = solve_revised(model, retry);
    iterations += again.iterations;
    const AuditReport audit = audit_solution(model, again, retry);
    again.audit_verdict = audit.verdict;
    if (!again.audit_contested()) {
      again.iterations = iterations;
      again.faults_injected = faults;
      again.audits_suspect = audits_suspect;
      again.recoveries = 1;
      obs::emit_instant("lp_recovery", "lp", nullptr, nullptr, "rung",
                        static_cast<double>(rung));
      return again;
    }
    ++audits_suspect;
  }

  // Rung 3: the audited tableau oracle — per-pivot self-checks on, so an
  // answer that comes back at all is the reference answer. A post-audit that
  // is merely kSkipped (e.g. an infeasible claim without duals) counts as
  // clean here: the oracle's claim is as good as this library gets.
  retry.warm_start = nullptr;
  retry.audit = true;
  Solution oracle = solve_tableau(model, retry);
  iterations += oracle.iterations;
  const AuditReport audit = audit_solution(model, oracle, retry);
  oracle.audit_verdict = audit.verdict == AuditVerdict::kSkipped
                             ? AuditVerdict::kClean
                             : audit.verdict;
  oracle.iterations = iterations;
  oracle.faults_injected = faults;
  oracle.audits_suspect = audits_suspect;
  oracle.oracle_fallbacks = 1;
  obs::emit_instant("lp_oracle_fallback", "lp", "complaint",
                    primary.complaint);
  return oracle;
}

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options) {
  if (options.guard) return solve_guarded(model, options);
  return dispatch(model, options);
}

}  // namespace setsched::lp
