#pragma once

#include <cstddef>
#include <vector>

namespace setsched::lp::internal {

/// Devex reference-framework weights (Forrest & Goldfarb, "Steepest-edge
/// simplex algorithms for linear programming", 1992), shared by the primal
/// column pricing and the dual row pricing of the revised simplex. A weight
/// w_i approximates the steepest-edge norm of entity i (a nonbasic column
/// for primal pricing, a basis slot for dual pricing) measured within the
/// reference framework established at the last reset(); the classic
/// selection rule maximizes violation^2 / w_i. After each basis change the
/// weights are refreshed with the rank-one Devex update: every entity
/// touched by the pivot row/column inherits at least the pivot entity's
/// weight scaled by its pivot ratio, and the pivot entity itself restarts
/// from its own scaled weight. Weights only ever grow between resets, so a
/// runaway maximum (overflowed()) signals that the reference framework is
/// stale and a reset establishes a fresh one.
class DevexWeights {
 public:
  /// Establishes a new reference framework over `n` entities (all weights 1).
  void reset(std::size_t n) {
    w_.assign(n, 1.0);
    max_w_ = 1.0;
  }

  [[nodiscard]] bool empty() const noexcept { return w_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return w_.size(); }

  /// Selection score of entity i with the given violation (reduced cost for
  /// primal pricing, primal infeasibility for dual pricing).
  [[nodiscard]] double score(std::size_t i, double violation) const {
    return violation * violation / w_[i];
  }

  /// Devex update for an entity i != pivot whose pivot-row (or pivot-column)
  /// ratio is `ratio` = alpha_i / alpha_pivot, given the pivot entity's
  /// pre-update weight.
  void update_neighbor(std::size_t i, double ratio, double pivot_weight) {
    const double candidate = ratio * ratio * pivot_weight;
    if (candidate > w_[i]) {
      w_[i] = candidate;
      if (candidate > max_w_) max_w_ = candidate;
    }
  }

  /// Devex update for the pivot entity itself (the leaving variable in
  /// primal pricing, the pivot slot in dual pricing): its new weight is the
  /// old one seen through the pivot value, floored at the reference weight.
  void update_pivot(std::size_t i, double pivot_weight, double pivot_value) {
    double w = pivot_weight / (pivot_value * pivot_value);
    if (w < 1.0) w = 1.0;
    w_[i] = w;
    if (w > max_w_) max_w_ = w;
  }

  [[nodiscard]] double weight(std::size_t i) const { return w_[i]; }

  /// True once the largest weight has outgrown the reference framework; the
  /// caller should reset(). The classic threshold keeps weights within a few
  /// orders of magnitude of their steepest-edge meaning.
  [[nodiscard]] bool overflowed() const noexcept { return max_w_ > 1e7; }

 private:
  std::vector<double> w_;
  double max_w_ = 1.0;
};

}  // namespace setsched::lp::internal
