#include "lp/guard.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace setsched::lp {

std::string_view audit_verdict_name(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kSkipped: return "skipped";
    case AuditVerdict::kClean: return "clean";
    case AuditVerdict::kSuspect: return "suspect";
    case AuditVerdict::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

/// Reduced costs d_j = c_j - y^T A_j in the model's original sense,
/// recomputed from scratch — the audit trusts nothing the solver cached.
std::vector<double> reduced_costs(const Model& model,
                                  const std::vector<double>& y) {
  const std::size_t n = model.num_variables();
  std::vector<double> d(n);
  for (std::size_t j = 0; j < n; ++j) d[j] = model.objective(j);
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (const Entry& e : model.row(r)) d[e.col] -= yr * e.value;
  }
  return d;
}

bool all_finite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Wrong-sign magnitude of one nonbasic reduced cost under minimization
/// (callers flip d for maximization): at-lower wants d >= 0, at-upper wants
/// d <= 0, basic wants d == 0.
double sign_violation(double d, VarStatus status) {
  switch (status) {
    case VarStatus::kAtLower: return std::max(0.0, -d);
    case VarStatus::kAtUpper: return std::max(0.0, d);
    case VarStatus::kBasic: return std::abs(d);
  }
  return std::abs(d);
}

/// Dual-side consistency shared by the optimal and infeasible audits:
/// reduced-cost signs for the reported basis statuses plus row-dual signs
/// against the row senses. Returns the worst violation magnitude.
double dual_consistency(const Model& model, const Solution& sol,
                        const std::vector<double>& d) {
  const bool minimize = model.objective_sense() == Objective::kMinimize;
  const double flip = minimize ? 1.0 : -1.0;
  double worst = 0.0;

  const bool have_basis =
      sol.basis.structurals.size() == model.num_variables();
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    VarStatus status;
    if (have_basis) {
      status = sol.basis.structurals[j];
    } else if (j < sol.basic.size() && sol.basic[j]) {
      status = VarStatus::kBasic;
    } else if (!sol.x.empty() &&
               std::abs(sol.x[j] - model.upper(j)) <
                   std::abs(sol.x[j] - model.lower(j))) {
      status = VarStatus::kAtUpper;
    } else {
      status = VarStatus::kAtLower;
    }
    // Fixed columns (lower == upper) have no sign constraint.
    if (status != VarStatus::kBasic && model.lower(j) == model.upper(j)) {
      continue;
    }
    worst = std::max(worst, sign_violation(flip * d[j], status));
  }

  // Row duals are the logical columns' reduced costs in disguise: a <= row's
  // slack has d_slack = -y_r, so y_r <= 0 while the slack sits at lower
  // (minimize). When the logical is basic the row is non-binding and y_r
  // must vanish.
  const bool have_logicals =
      sol.basis.logicals.size() == model.num_constraints();
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const double yr = flip * sol.duals[r];
    switch (model.row_sense(r)) {
      case Sense::kLessEqual:
        if (have_logicals && sol.basis.logicals[r] == VarStatus::kBasic) {
          worst = std::max(worst, std::abs(yr));
        } else {
          worst = std::max(worst, std::max(0.0, yr));
        }
        break;
      case Sense::kGreaterEqual:
        if (have_logicals && sol.basis.logicals[r] == VarStatus::kBasic) {
          worst = std::max(worst, std::abs(yr));
        } else {
          worst = std::max(worst, std::max(0.0, -yr));
        }
        break;
      case Sense::kEqual:
        break;  // equality duals are sign-free
    }
  }
  return worst;
}

AuditVerdict classify(double worst_ratio) {
  if (!std::isfinite(worst_ratio) || worst_ratio > 1e6) {
    return AuditVerdict::kFailed;
  }
  return worst_ratio <= 1.0 ? AuditVerdict::kClean : AuditVerdict::kSuspect;
}

}  // namespace

AuditReport audit_solution(const Model& model, const Solution& solution,
                           const SimplexOptions& options) {
  AuditReport report;
  const double slack = options.audit_slack();
  const double row_slack = slack * 10.0;

  if (solution.status == SolveStatus::kInfeasible) {
    // An infeasibility claim prunes search trees, so it deserves scrutiny,
    // but there is no x to check. What we can audit is the evidence: the
    // final duals must at least be finite and sign-consistent with the
    // reported basis — a corrupted solve that "concluded" infeasibility
    // typically leaves neither.
    //
    // Sign consistency is necessary, not sufficient: a fault can steer a
    // solve to a wrong "infeasible" exit whose duals are nonetheless
    // sign-clean. When the injector recorded a fault actually firing in
    // this solve, that weak evidence cannot certify the claim — contest it
    // and let the ladder's fault-free re-solve settle it (genuine
    // infeasibility survives the re-solve unchanged).
    if (solution.faults_injected > 0) {
      report.verdict = AuditVerdict::kSuspect;
      report.complaint = "infeasibility claim from a fault-injected solve";
      return report;
    }
    if (solution.duals.size() != model.num_constraints()) {
      report.verdict = AuditVerdict::kSkipped;
      return report;
    }
    if (!all_finite(solution.duals)) {
      report.verdict = AuditVerdict::kFailed;
      report.complaint = "non-finite duals on an infeasibility claim";
      return report;
    }
    const std::vector<double> d = reduced_costs(model, solution.duals);
    report.dual_residual = dual_consistency(model, solution, d);
    report.verdict = classify(report.dual_residual / slack);
    if (report.verdict != AuditVerdict::kClean) {
      report.complaint = "sign-inconsistent duals on an infeasibility claim";
    }
    return report;
  }

  if (solution.status == SolveStatus::kUnbounded) {
    // The scheduling LPs all have bounded feasible regions, so an
    // unboundedness claim under guard is itself evidence of corruption
    // (a NaN-poisoned ratio test reports "no blocking row"). Contest it and
    // let the ladder confirm with the oracle.
    report.verdict = AuditVerdict::kSuspect;
    report.complaint = "unboundedness claim under guard";
    return report;
  }

  if (solution.status != SolveStatus::kOptimal ||
      solution.x.size() != model.num_variables() ||
      solution.duals.size() != model.num_constraints()) {
    report.verdict = AuditVerdict::kSkipped;
    return report;
  }

  if (!all_finite(solution.x) || !all_finite(solution.duals) ||
      !std::isfinite(solution.objective)) {
    report.verdict = AuditVerdict::kFailed;
    report.complaint = "non-finite primal/dual values";
    return report;
  }

  // Primal side: bounds, then sense-aware row residuals.
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const double below = model.lower(j) - solution.x[j];
    const double above = solution.x[j] - model.upper(j);
    report.bound_violation =
        std::max(report.bound_violation, std::max(below, above));
  }
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const double activity = model.row_activity(r, solution.x);
    const double gap = activity - model.rhs(r);
    double violation = 0.0;
    switch (model.row_sense(r)) {
      case Sense::kLessEqual: violation = std::max(0.0, gap); break;
      case Sense::kGreaterEqual: violation = std::max(0.0, -gap); break;
      case Sense::kEqual: violation = std::abs(gap); break;
    }
    report.primal_residual = std::max(report.primal_residual, violation);
  }

  // Dual side: reduced-cost signs for the reported statuses.
  const std::vector<double> d = reduced_costs(model, solution.duals);
  report.dual_residual = dual_consistency(model, solution, d);

  // Primal/dual objective agreement. For a consistent basic solution,
  // c^T x = y^T b + sum_j d_j x_j holds up to roundoff: a dual that is
  // nonzero on a non-binding row, or a reduced cost that disagrees with the
  // activity, breaks the identity.
  double primal_obj = 0.0;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    primal_obj += model.objective(j) * solution.x[j];
  }
  double dual_obj = 0.0;
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    dual_obj += solution.duals[r] * model.rhs(r);
  }
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    dual_obj += d[j] * solution.x[j];
  }
  const double scale =
      std::max({1.0, std::abs(primal_obj), std::abs(dual_obj)});
  // Two claims must agree with the recomputed c^T x: the dual objective
  // (complementary slackness in aggregate) and the solver's own reported
  // objective value — a solution whose `objective` field disagrees with its
  // x is lying about one of them.
  report.objective_gap =
      std::max(std::abs(primal_obj - dual_obj),
               std::abs(primal_obj - solution.objective)) /
      scale;

  const double worst =
      std::max({report.bound_violation / slack,
                report.primal_residual / row_slack,
                report.dual_residual / slack,
                report.objective_gap / row_slack});
  report.verdict = classify(worst);
  if (report.verdict != AuditVerdict::kClean) {
    if (report.bound_violation > slack) {
      report.complaint = "bound violation";
    } else if (report.primal_residual > row_slack) {
      report.complaint = "primal row residual";
    } else if (report.dual_residual > slack) {
      report.complaint = "reduced-cost sign inconsistency";
    } else {
      report.complaint = "primal/dual objective disagreement";
    }
  }
  return report;
}

}  // namespace setsched::lp
