#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "lp/model.h"

namespace setsched::lp {

struct FaultPlan;  // lp/fault.h — deterministic fault-injection plan

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Verdict of the post-solve residual audit (lp/guard.h): kClean when every
/// check passed within tolerance, kSuspect on a tolerance-scale violation,
/// kFailed on a gross violation or a non-finite value. kSkipped when the
/// solve ran unguarded or its status leaves nothing auditable.
enum class AuditVerdict : std::uint8_t { kSkipped, kClean, kSuspect, kFailed };

[[nodiscard]] std::string_view audit_verdict_name(AuditVerdict verdict);

/// Status of one column (structural or logical) in a simplex basis.
enum class VarStatus : std::uint8_t { kAtLower, kAtUpper, kBasic };

/// Snapshot of a simplex basis: one status per structural column plus one per
/// row (the row's logical/slack column). Returned in Solution by the revised
/// solver and accepted back through SimplexOptions::warm_start, so closely
/// related solves (the assignment-LP T-search, column-generation rounds) can
/// skip phase 1 instead of re-deriving a basis from scratch. A basis stays
/// meaningful across re-parameterizations of the *same* model (rhs, bounds,
/// coefficient updates) and across appended columns (new columns default to
/// nonbasic-at-lower); it is not transferable between unrelated models.
struct Basis {
  std::vector<VarStatus> structurals;
  std::vector<VarStatus> logicals;  ///< one per constraint row

  [[nodiscard]] bool empty() const noexcept {
    return structurals.empty() && logicals.empty();
  }
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  /// Primal values for the model's variables (empty unless kOptimal).
  std::vector<double> x;
  /// Row duals y, in the convention  reduced_cost_j = c_j - y^T A_j  for the
  /// model's *original* objective sense. For a kMinimize model: y_r <= 0 for
  /// binding <= rows; for kMaximize: y_r >= 0 for binding <= rows.
  std::vector<double> duals;
  /// True for variables that ended basic (useful to inspect the extreme
  /// point structure; at most num_constraints variables are basic).
  std::vector<bool> basic;
  /// Final basis snapshot for warm starting subsequent solves. Populated by
  /// the revised solver on kOptimal and kInfeasible (an infeasible probe's
  /// basis is still a good seed for the next probe of a T-search); empty
  /// from the tableau solver.
  Basis basis;
  std::size_t iterations = 0;
  /// True when the dual simplex drove this solve to its terminal state
  /// (optimal or infeasible) — i.e. the solve was a dual re-optimization of
  /// a warm basis or an explicit kDual run. Deliberately false when the
  /// dual loop started but bailed into the primal phase 1 (numerics): the
  /// end basis is then a primal artifact, and consumers rely on via_dual
  /// both for the lp_dual_solves effort counters and to decide that the end
  /// basis of an *infeasible* probe is still a dual-feasible warm-start
  /// seed.
  bool via_dual = false;
  /// Post-solve residual-audit verdict; kSkipped when options.guard was off.
  /// A guarded solve that escalated reports the verdict of whatever rung of
  /// the recovery ladder produced the returned answer.
  AuditVerdict audit_verdict = AuditVerdict::kSkipped;
  /// Guard-ladder counters for this solve: non-clean audits observed,
  /// successful warm/cold re-solve recoveries, and escalations to the dense
  /// tableau oracle. All zero when unguarded.
  std::size_t audits_suspect = 0;
  std::size_t recoveries = 0;
  std::size_t oracle_fallbacks = 0;
  /// Faults the injection framework actually fired during this solve
  /// (lp/fault.h); diagnostics for tests, not serialized.
  std::size_t faults_injected = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
  /// True when the audit did not contest the solve: clean, or unaudited.
  /// Soundness-critical consumers (search pruning, reduced-cost fixing)
  /// additionally require audit_verdict == kClean before acting.
  [[nodiscard]] bool audit_contested() const noexcept {
    return audit_verdict == AuditVerdict::kSuspect ||
           audit_verdict == AuditVerdict::kFailed;
  }
};

/// Which simplex implementation solve() runs.
enum class SimplexAlgorithm : std::uint8_t {
  /// Revised solver, unless audit mode is requested (audit instruments the
  /// dense tableau, which then acts as the reference oracle). The revised
  /// solver itself picks dual re-optimization whenever a warm basis is
  /// primal-infeasible but dual-feasible (the state a warm basis is in
  /// right after an rhs/bound re-parameterization).
  kAuto,
  /// Dense bounded-variable two-phase tableau (reference implementation).
  kTableau,
  /// Sparse revised simplex with LU basis factorization and warm starts,
  /// primal-only: never runs the dual prologue, which makes it the exact
  /// PR 3 configuration (--lp=revised is what before/after sweeps use as
  /// the pre-dual baseline).
  kRevised,
  /// Revised solver, but prefer the dual simplex: run the dual loop whenever
  /// the starting basis is dual-feasible (even without primal
  /// infeasibility), falling back to the composite primal phase 1 when it is
  /// not. The min-makespan node relaxations of src/exact start dual-feasible
  /// from any basis (all costs >= 0), so kDual solves them without a single
  /// primal phase-1 pivot.
  kDual,
};

/// Pricing rule of the revised solver (primal pricing; the dual simplex
/// always uses Devex-weighted row selection, whose weights fall out of the
/// pivot column for free).
enum class SimplexPricing : std::uint8_t {
  /// Candidate-list partial pricing over raw reduced costs: cheap minor
  /// passes over a cached candidate list with periodic full scans. More
  /// iterations than Devex, much less work per iteration — measured fastest
  /// in wall clock on the scheduling LPs, hence the default.
  kCandidate,
  /// Devex reference-framework pricing (Forrest & Goldfarb): weights
  /// approximate the steepest-edge norms within the current reference
  /// framework and are updated from the pivot row each basis change. Costs
  /// a full pricing scan plus one extra BTRAN per pivot; cuts iteration
  /// counts (~30% on cold assignment-LP solves), which pays off when
  /// iterations are the scarce resource (hard/degenerate LPs), not on the
  /// warm re-optimization chains.
  kDevex,
};

struct SimplexOptions {
  /// Feasibility tolerance on variable values / rhs.
  double feas_tol = 1e-7;  // lint: allow-tolerance (primary definition)
  /// Optimality tolerance on reduced costs.
  double opt_tol = 1e-9;  // lint: allow-tolerance (primary definition)
  /// Minimum acceptable pivot magnitude.
  double pivot_tol = 1e-8;  // lint: allow-tolerance (primary definition)
  /// 0 = automatic (proportional to rows + cols).
  std::size_t max_iterations = 0;
  /// Paranoid mode: snapshot the initial system and verify the incremental
  /// solver state against it after every pivot (throws CheckError on drift).
  /// Costs one O(rows*cols) pass per pivot; intended for tests. Tableau only
  /// (kAuto routes audited solves to the tableau).
  bool audit = false;
  /// Implementation selector; see SimplexAlgorithm.
  SimplexAlgorithm algorithm = SimplexAlgorithm::kAuto;
  /// Primal pricing rule of the revised solver; see SimplexPricing. The
  /// tableau ignores it.
  SimplexPricing pricing = SimplexPricing::kCandidate;
  /// Starting basis for the revised solver (ignored by the tableau). The
  /// caller keeps ownership; pass the Basis returned by a previous solve of
  /// the same (possibly re-parameterized) model. Stale or structurally
  /// broken bases are repaired, never trusted blindly.
  const Basis* warm_start = nullptr;
  /// Revised solver: rebuild the LU factorization after this many eta
  /// updates (bounds the eta file and the accumulated roundoff).
  std::size_t refactor_interval = 64;
  /// Run the post-solve residual audit (lp/guard.h) and, on a non-clean
  /// verdict, the recovery escalation ladder: refactorize-and-warm-re-solve,
  /// then cold solve, then the dense tableau oracle. Off by default — the
  /// guarded path must cost nothing when disabled. Consumers that prune
  /// search trees on LP verdicts (src/exact) turn it on.
  bool guard = false;
  /// Deterministic fault-injection plan (lp/fault.h); nullptr = no faults.
  /// The caller keeps ownership for the duration of the solve. Recovery
  /// re-solves triggered by the guard run fault-free.
  const FaultPlan* fault_plan = nullptr;
  /// Dual simplex: update the duals incrementally across pivots
  /// (y += theta_d * rho) instead of recomputing them with one BTRAN per
  /// iteration. Cross-checked against an exact BTRAN at every periodic
  /// refactorization; detected drift restores the exact duals and disables
  /// the incremental path for the rest of the solve.
  bool incremental_duals = true;

  // Named derived tolerances — one contract shared by the solvers and the
  // guard instead of scattered magic constants.
  /// Slack for post-hoc primal checks (bound violations, audited row
  /// residuals): a 10x cushion over feas_tol, since audited quantities have
  /// accumulated a whole solve's roundoff. The tableau audit's row-equation
  /// check allows another 10x on top (rows sum many terms).
  [[nodiscard]] double audit_slack() const noexcept { return feas_tol * 10.0; }
  /// Pivot row/column agreement: the FTRAN and BTRAN views of the pivot
  /// element must agree to this relative tolerance or the dual simplex
  /// bails to the primal (a disagreement means the factorization is lying).
  [[nodiscard]] double pivot_agreement_tol() const noexcept {
    return pivot_tol * 100.0;
  }
  /// Dual-feasibility floor for the dual-simplex prologue: reduced costs may
  /// dip this far below optimality-sign and the basis still counts as
  /// dual-feasible (warm bases carry primal-scale noise, so the floor never
  /// drops below feas_tol).
  [[nodiscard]] double dual_feas_floor() const noexcept {
    const double scaled = opt_tol * 100.0;
    return scaled > feas_tol ? scaled : feas_tol;
  }
  /// Floor on the LU factorization's acceptable pivot magnitude: the
  /// eliminations tolerate pivots down to this even when pivot_tol is set
  /// tighter, because a structurally necessary small pivot is better than a
  /// spurious singularity (deficient columns are repaired with logicals).
  [[nodiscard]] double lu_pivot_floor() const noexcept {
    const double floor = 1e-11;  // lint: allow-tolerance (definition site)
    return pivot_tol > floor ? pivot_tol : floor;
  }
  /// Absolute tie window of the ratio tests (primal leaving row, dual
  /// entering column): candidates within this band of the best step length
  /// count as tied, and the tie-break (Bland's smallest index when stalling,
  /// largest pivot magnitude otherwise) picks among them. Deliberately far
  /// below feas_tol — it only has to separate genuinely equal steps from
  /// roundoff-distinct ones, and widening it degenerates the ratio test.
  [[nodiscard]] double ratio_tie_tol() const noexcept {
    return 1e-12;  // lint: allow-tolerance (named-tolerance definition site)
  }
};

/// Solves the LP. The default (kAuto) runs the sparse revised simplex; the
/// dense two-phase tableau remains available as the reference oracle (and is
/// what audit mode instruments). Both implementations use bounded-variable
/// pricing, switch to Bland's rule after a long stall to guarantee
/// termination, and return basic optimal solutions — extreme points of the
/// feasible region, a property Theorem 3.10's pseudoforest rounding relies
/// on.
[[nodiscard]] Solution solve(const Model& model, const SimplexOptions& options = {});

/// The dense two-phase tableau, directly (reference oracle).
[[nodiscard]] Solution solve_tableau(const Model& model,
                                     const SimplexOptions& options = {});

/// The sparse revised simplex, directly: column-wise sparse storage, LU
/// basis factorization with product-form eta updates and periodic
/// refactorization, FTRAN/BTRAN, selectable pricing (candidate-list partial
/// pricing or Devex), warm starting from SimplexOptions::warm_start, and a
/// bounded-variable dual simplex that re-optimizes warm bases which are
/// primal-infeasible but dual-feasible (forced for every dual-feasible
/// start by SimplexAlgorithm::kDual).
[[nodiscard]] Solution solve_revised(const Model& model,
                                     const SimplexOptions& options = {});

}  // namespace setsched::lp
