#pragma once

#include <cstddef>
#include <vector>

#include "lp/model.h"

namespace setsched::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  /// Primal values for the model's variables (empty unless kOptimal).
  std::vector<double> x;
  /// Row duals y, in the convention  reduced_cost_j = c_j - y^T A_j  for the
  /// model's *original* objective sense. For a kMinimize model: y_r <= 0 for
  /// binding <= rows; for kMaximize: y_r >= 0 for binding <= rows.
  std::vector<double> duals;
  /// True for variables that ended basic (useful to inspect the extreme
  /// point structure; at most num_constraints variables are basic).
  std::vector<bool> basic;
  std::size_t iterations = 0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
};

struct SimplexOptions {
  /// Feasibility tolerance on variable values / rhs.
  double feas_tol = 1e-7;
  /// Optimality tolerance on reduced costs.
  double opt_tol = 1e-9;
  /// Minimum acceptable pivot magnitude.
  double pivot_tol = 1e-8;
  /// 0 = automatic (proportional to rows + cols).
  std::size_t max_iterations = 0;
  /// Paranoid mode: snapshot the initial system and verify the incremental
  /// solver state against it after every pivot (throws CheckError on drift).
  /// Costs one O(rows*cols) pass per pivot; intended for tests.
  bool audit = false;
};

/// Solves the LP with a bounded-variable two-phase primal tableau simplex.
///
/// Dantzig pricing with an automatic switch to Bland's rule after a long
/// stall guarantees termination. Basic optimal solutions are extreme points
/// of the feasible region — a property Theorem 3.10's pseudoforest rounding
/// relies on.
[[nodiscard]] Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace setsched::lp
