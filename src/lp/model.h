#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"

namespace setsched::lp {

enum class Sense { kLessEqual, kGreaterEqual, kEqual };
enum class Objective { kMinimize, kMaximize };

/// One nonzero of a constraint row.
struct Entry {
  std::size_t col = 0;
  double value = 0.0;
};

/// A linear program
///   opt  c^T x
///   s.t. a_r^T x  {<=, >=, =}  b_r   for every row r
///        l_j <= x_j <= u_j           for every column j
/// built incrementally. Lower bounds must be finite (all problems in this
/// library have natural 0 lower bounds); upper bounds may be +infinity.
class Model {
 public:
  explicit Model(Objective sense = Objective::kMinimize) : sense_(sense) {}

  /// Adds a variable, returns its column index.
  std::size_t add_variable(double lower, double upper, double objective);

  /// Adds a constraint, returns its row index. Duplicate column entries in
  /// `row` are summed.
  std::size_t add_constraint(std::vector<Entry> row, Sense sense, double rhs);

  void set_objective(std::size_t col, double coefficient);

  // --- in-place re-parameterization (parametric solves, warm starting) ----
  // The T-search and column generation keep ONE model alive and mutate it
  // between solves so a basis from the previous solve stays meaningful:
  // column indices never move, only numbers change.

  /// Replaces a row's right-hand side.
  void set_rhs(std::size_t row, double rhs);

  /// Replaces a variable's bounds (lower must stay finite, upper >= lower).
  void set_bounds(std::size_t col, double lower, double upper);

  /// Replaces the coefficient of an entry that already exists in `row`
  /// (throws CheckError when (row, col) has no entry).
  void update_entry(std::size_t row, std::size_t col, double value);

  /// Appends an entry for a column that does not yet appear in `row`; the
  /// column index must be >= every column already in the row (the natural
  /// case when extending rows with freshly added variables, as the
  /// restricted master of column generation does).
  void add_to_row(std::size_t row, std::size_t col, double value);

  [[nodiscard]] Objective objective_sense() const noexcept { return sense_; }
  [[nodiscard]] std::size_t num_variables() const noexcept {
    return lower_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return rows_.size();
  }

  [[nodiscard]] double lower(std::size_t col) const { return lower_[col]; }
  [[nodiscard]] double upper(std::size_t col) const { return upper_[col]; }
  [[nodiscard]] double objective(std::size_t col) const { return obj_[col]; }
  [[nodiscard]] const std::vector<Entry>& row(std::size_t r) const {
    return rows_[r];
  }
  [[nodiscard]] Sense row_sense(std::size_t r) const { return senses_[r]; }
  [[nodiscard]] double rhs(std::size_t r) const { return rhs_[r]; }

  /// Value of row r's left-hand side under assignment x.
  [[nodiscard]] double row_activity(std::size_t r,
                                    const std::vector<double>& x) const;

  /// Maximum constraint/bound violation of x (for validation in tests).
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

  /// Objective value of x under the model's sense.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

 private:
  Objective sense_;
  std::vector<double> lower_, upper_, obj_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<Sense> senses_;
  std::vector<double> rhs_;
};

}  // namespace setsched::lp
