#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/prng.h"

namespace setsched::lp {

/// Catalog of numerical faults the revised solver can inject on purpose.
/// Each kind corrupts one well-defined internal quantity, chosen to mimic a
/// realistic numerics failure (accumulated roundoff, a bad pivot, a stale
/// cache) rather than arbitrary memory damage, so the guard/recovery ladder
/// is exercised on the failure shapes it is designed for.
enum class FaultKind : std::uint8_t {
  kEtaFlip,        ///< flip the sign of one entry of a freshly pushed eta
  kFactorPerturb,  ///< scale one U diagonal by 1 +/- kFactorPerturbScale
  kFtranNan,       ///< overwrite one FTRAN result entry with NaN
  kSkipRefactor,   ///< suppress one periodic refactorization trigger
  kStaleDevex,     ///< drop one Devex weight update (weights go stale)
};

inline constexpr std::size_t kFaultKindCount = 5;

/// Relative magnitude of the kFactorPerturb corruption: each firing scales
/// one U diagonal by 1 +/- this. Big enough that the residual audit must
/// notice, small enough to mimic marginal pivot instability rather than
/// obvious breakage.
inline constexpr double kFactorPerturbScale =
    1e-6;  // lint: allow-tolerance (fault magnitude, not a solver tolerance)

/// Stable spec name ("eta-flip", "factor-perturb", ...).
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

/// Deterministic, seeded description of which faults to inject and how
/// often. Shared, immutable during a solve: per-solve injection state lives
/// in FaultInjector, so concurrent solvers reading one plan stay
/// deterministic per solve.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Per-opportunity firing probability for every armed kind. Opportunities
  /// are frequent (one per eta push / FTRAN / factorization / Devex update),
  /// so the useful range is small; 0 disarms everything.
  double rate = 1e-3;  // lint: allow-tolerance (firing rate, not a
                       // numerical tolerance)
  bool armed[kFaultKindCount] = {};

  [[nodiscard]] bool any() const noexcept {
    if (rate <= 0.0) return false;
    for (const bool a : armed) {
      if (a) return true;
    }
    return false;
  }
  void arm(FaultKind kind) noexcept {
    armed[static_cast<std::size_t>(kind)] = true;
  }
  [[nodiscard]] bool is_armed(FaultKind kind) const noexcept {
    return armed[static_cast<std::size_t>(kind)] && rate > 0.0;
  }

  /// Parses an `--inject=` / plan `inject` spec: a comma-separated list of
  /// kind names (or `all`), with an optional `@rate` suffix applying to the
  /// whole plan, e.g. "eta-flip,ftran-nan@0.02" or "all@0.005". Throws
  /// CheckError on unknown kinds or a rate outside (0, 1].
  [[nodiscard]] static FaultPlan parse(std::string_view spec,
                                       std::uint64_t seed);

  /// Canonical round-trip of parse() (kinds in enum order + "@rate");
  /// empty string when nothing is armed.
  [[nodiscard]] std::string spec() const;
};

/// Per-solve injection state: one deterministic SplitMix64 stream drawn from
/// the plan's seed, advanced once per opportunity of an armed kind. The
/// disarmed fast path is a single null check, so carrying an injector
/// through the hot loops costs nothing in production.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan* plan)
      : plan_(plan != nullptr && plan->any() ? plan : nullptr),
        rng_(plan_ != nullptr ? plan_->seed : 0) {}

  [[nodiscard]] bool armed() const noexcept { return plan_ != nullptr; }

  /// True iff `kind` fires at this opportunity. Advances the stream only for
  /// armed kinds so disarmed kinds never perturb the sequence.
  [[nodiscard]] bool fire(FaultKind kind) {
    if (plan_ == nullptr || !plan_->is_armed(kind)) return false;
    ++opportunities_;
    const bool hit =
        static_cast<double>(rng_() >> 11) * 0x1.0p-53 < plan_->rate;
    if (hit) ++injected_;
    return hit;
  }

  /// Deterministic index draw for "which entry to corrupt" decisions.
  [[nodiscard]] std::size_t pick(std::size_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::size_t>(rng_() % bound);
  }

  /// +1 or -1, for the 1 +/- kFactorPerturbScale factor perturbation.
  [[nodiscard]] double pick_sign() { return (rng_() & 1) != 0 ? 1.0 : -1.0; }

  [[nodiscard]] std::size_t injected() const noexcept { return injected_; }
  [[nodiscard]] std::size_t opportunities() const noexcept {
    return opportunities_;
  }

 private:
  const FaultPlan* plan_ = nullptr;
  SplitMix64 rng_{0};
  std::size_t injected_ = 0;
  std::size_t opportunities_ = 0;
};

}  // namespace setsched::lp
